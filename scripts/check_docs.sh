#!/usr/bin/env bash
# Docs-consistency gate (CI lint job): every crate, bench binary, or
# example that docs/*.md or README.md mentions must actually exist in
# the workspace, so a rename can't silently strand the prose.
set -euo pipefail
cd "$(dirname "$0")/.."

pages=(docs/*.md README.md)
fail=0

# Crate mentions (`egka-foo` in prose, `egka_foo` in paths): the package
# egka-<dir> lives at crates/<dir>. The lookahead skips artifact schema
# tags (`egka-radio-churn/1`), which are names of JSON shapes, not crates.
for name in $(grep -rhoP 'egka[-_][a-z0-9]+(?![a-z0-9/-])' "${pages[@]}" | sort -u); do
  dir=${name#egka-}
  dir=${dir#egka_}
  if [[ ! -d "crates/$dir" ]]; then
    echo "docs mention crate '$name' but crates/$dir does not exist" >&2
    fail=1
  fi
done

# `--bin foo` must be an egka-bench binary.
for bin in $(grep -rhoE '[-][-]bin [a-z0-9_]+' "${pages[@]}" | awk '{print $2}' | sort -u); do
  if [[ ! -f "crates/bench/src/bin/$bin.rs" ]]; then
    echo "docs mention binary '$bin' but crates/bench/src/bin/$bin.rs does not exist" >&2
    fail=1
  fi
done

# `--example foo` must exist under examples/.
for ex in $(grep -rhoE '[-][-]example [a-z0-9_]+' "${pages[@]}" | awk '{print $2}' | sort -u); do
  if [[ ! -f "examples/$ex.rs" ]]; then
    echo "docs mention example '$ex' but examples/$ex.rs does not exist" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "docs are out of date with the workspace — fix the prose or restore the artifact" >&2
  exit 1
fi
echo "docs consistent: every mentioned crate, binary and example exists"
