//! Cross-crate integration: full group lifecycles chaining the initial GKA
//! with every dynamic protocol, checking key agreement, key freshness and
//! the ring invariant at every step.

use egka::prelude::*;

fn pkg() -> Pkg {
    let mut rng = ChaChaRng::seed_from_u64(0xe2e);
    Pkg::setup(&mut rng, SecurityProfile::Toy)
}

#[test]
fn lifecycle_join_leave_join() {
    let pkg = pkg();
    let keys = pkg.extract_group(5);
    let (report, s0) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
    assert!(report.keys_agree());
    assert!(s0.invariant_holds());

    // Join (composable mode so the ring stays usable).
    let s1 = dynamics::join(&s0, UserId(50), &pkg.extract(UserId(50)), 2, true);
    assert!(s1.session.invariant_holds());
    assert_eq!(s1.session.n(), 6);

    // Leave the member that just joined (it sits at the ring's end).
    let s2 = dynamics::leave(&s1.session, 5, 3);
    assert!(s2.session.invariant_holds());
    assert_eq!(s2.session.n(), 5);

    // Another join on the post-leave ring.
    let s3 = dynamics::join(&s2.session, UserId(51), &pkg.extract(UserId(51)), 4, true);
    assert!(s3.session.invariant_holds());
    assert_eq!(s3.session.n(), 6);

    // Every step produced a fresh key.
    let keys_seen = [&s0.key, &s1.session.key, &s2.session.key, &s3.session.key];
    for i in 0..keys_seen.len() {
        for j in i + 1..keys_seen.len() {
            assert_ne!(keys_seen[i], keys_seen[j], "keys {i} and {j} collided");
        }
    }
}

#[test]
fn lifecycle_merge_partition_merge() {
    let pkg = pkg();
    let keys_a = pkg.extract_group(4);
    let keys_b: Vec<_> = (4..8).map(|i| pkg.extract(UserId(i))).collect();
    let (_, sa) = proposed::run(pkg.params(), &keys_a, 1, RunConfig::default());
    let (_, sb) = proposed::run(pkg.params(), &keys_b, 2, RunConfig::default());

    let merged = dynamics::merge(&sa, &sb, 3);
    assert_eq!(merged.session.n(), 8);
    assert!(merged.session.invariant_holds());

    // Partition away half of the former group B.
    let out = dynamics::partition(&merged.session, &[6, 7], 4);
    assert_eq!(out.session.n(), 6);
    assert!(out.session.invariant_holds());

    // The partitioned survivors can merge with a fresh group.
    let keys_c: Vec<_> = (8..11).map(|i| pkg.extract(UserId(i))).collect();
    let (_, sc) = proposed::run(pkg.params(), &keys_c, 5, RunConfig::default());
    let merged2 = dynamics::merge(&out.session, &sc, 6);
    assert_eq!(merged2.session.n(), 9);
    assert!(merged2.session.invariant_holds());
}

#[test]
fn all_five_initial_protocols_agree_on_keys() {
    use egka::core::{authbd, ssn};
    let mut rng = ChaChaRng::seed_from_u64(0xa11);
    let pkg = pkg();
    let keys = pkg.extract_group(4);
    let (r, _) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
    assert!(r.keys_agree());
    assert!(ssn::run(pkg.params(), &keys, 2).keys_agree());

    let bd = egka::bigint::gen_schnorr_group(&mut rng, 192, 64);
    let kit = AuthKit::setup_ecdsa(&mut rng, egka::sig::Ecdsa::new(egka::ec::secp160r1()), 4);
    assert!(authbd::run(&bd, &kit, 3).keys_agree());
    let dsa = egka::sig::Dsa::new(egka::bigint::gen_schnorr_group(&mut rng, 192, 64));
    let kit = AuthKit::setup_dsa(&mut rng, dsa, 4);
    assert!(authbd::run(&bd, &kit, 4).keys_agree());
    let pairing = egka::ec::gen_pairing_group(&mut rng, 96, 64);
    let kit = AuthKit::setup_sok(&mut rng, pairing, 4);
    assert!(authbd::run(&bd, &kit, 5).keys_agree());
}

#[test]
fn retransmission_recovers_and_is_accounted() {
    let pkg = pkg();
    let keys = pkg.extract_group(4);
    let (clean, _) = proposed::run(pkg.params(), &keys, 9, RunConfig::default());
    let (faulty, _) = proposed::run(
        pkg.params(),
        &keys,
        9,
        RunConfig {
            max_attempts: 3,
            fault: Some(Fault::CorruptX {
                node: 1,
                on_attempt: 0,
            }),
        },
    );
    assert_eq!(faulty.attempts, 2);
    // The retransmitted run costs exactly double traffic; computationally
    // the failed attempt pays z_i and X_i but aborts before the key
    // derivation, so exponentiations are 2·3 − 1 = 5.
    assert_eq!(
        faulty.nodes[0].counts.tx_bits,
        2 * clean.nodes[0].counts.tx_bits
    );
    assert_eq!(
        faulty.nodes[0].counts.rx_bits,
        2 * clean.nodes[0].counts.rx_bits
    );
    assert_eq!(
        faulty.nodes[0].counts.exps(),
        2 * clean.nodes[0].counts.exps() - 1
    );
}

#[test]
fn energy_model_is_monotone_in_group_size() {
    // More members ⇒ at least as much per-node energy, for every protocol
    // and radio.
    let cpu = CpuModel::strongarm_133();
    for proto in InitialProtocol::ALL {
        for radio in Transceiver::paper_pair() {
            let mut prev = 0.0;
            for n in [2u64, 4, 8, 16, 64, 256] {
                let e = total_energy_mj(&cpu, &radio, &proto.per_user_counts(n));
                assert!(e >= prev, "{} at n={n} on {}", proto.key(), radio.name);
                prev = e;
            }
        }
    }
}

#[test]
fn nominal_vs_actual_framing_ablation() {
    // The paper prices envelopes at plaintext size (accounting convention
    // 3); the real encoding carries IV + padding + HMAC tag + length
    // framing. Actual size only exceeds nominal when the algebra is
    // paper-sized (a 1024-bit K* fills the envelope); run on the fixture.
    let pkg = egka::core::paper_fixture();
    let keys = pkg.extract_group(4);
    let (_, s0) = proposed::run(pkg.params(), &keys, 21, RunConfig::default());
    let out = dynamics::join(&s0, UserId(70), &pkg.extract(UserId(70)), 22, false);
    let u1 = &out.reports[0].counts;
    assert_eq!(u1.tx_bits, 1088, "paper-nominal m'_1 size");
    assert!(
        u1.tx_bits_actual > u1.tx_bits,
        "real framing exceeds the idealized accounting ({} vs {})",
        u1.tx_bits_actual,
        u1.tx_bits
    );
    // The overhead is bounded: well under 2× even for this
    // envelope-heavy message.
    assert!(u1.tx_bits_actual < 2 * u1.tx_bits);
}

#[test]
fn session_key_material_feeds_envelope() {
    // The group key drives real AEAD envelopes end to end.
    let pkg = pkg();
    let keys = pkg.extract_group(3);
    let (_, session) = proposed::run(pkg.params(), &keys, 7, RunConfig::default());
    let env = egka::symmetric::Envelope::from_key_material(&session.key_material());
    let mut rng = ChaChaRng::seed_from_u64(1);
    let sealed = env.seal(&mut rng, b"attack at dawn");
    assert_eq!(env.open(&sealed).unwrap(), b"attack at dawn");
    // A different session's key cannot open it.
    let (_, other) = proposed::run(pkg.params(), &keys, 8, RunConfig::default());
    let env2 = egka::symmetric::Envelope::from_key_material(&other.key_material());
    assert!(env2.open(&sealed).is_err());
}
