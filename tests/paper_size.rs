//! Full paper-size (1024-bit) executions on the pinned fixture.
//!
//! These run the real protocols at the paper's exact parameter sizes —
//! 1024-bit BD modulus, 160-bit subgroup, 1024-bit GQ modulus with a
//! 161-bit prime exponent. They take seconds-to-minutes, so all but a
//! smoke test are `#[ignore]`d; run with
//! `cargo test --test paper_size -- --ignored`.

use egka::prelude::*;

#[test]
fn paper_fixture_gq_roundtrip() {
    // Cheap smoke test at full size: one signature.
    let pkg = egka::core::paper_fixture();
    let mut rng = ChaChaRng::seed_from_u64(1);
    let key = pkg.extract(UserId(0));
    let sig = pkg.params().gq.sign(&mut rng, &key, b"paper-size");
    assert!(pkg
        .params()
        .gq
        .verify(&UserId(0).to_bytes(), b"paper-size", &sig));
}

#[test]
#[ignore = "1024-bit full GKA; run with --ignored"]
fn paper_size_proposed_gka() {
    let pkg = egka::core::paper_fixture();
    let keys = pkg.extract_group(5);
    let (report, session) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
    assert!(report.keys_agree());
    assert!(session.invariant_holds());
    assert!(session.key.bit_length().max(1) <= 1024);
    // Counts are identical to the toy-profile runs — the accounting is
    // parameter-size independent, which is what justifies toy sweeps.
    let expect = InitialProtocol::ProposedGqBatch.per_user_counts(5);
    assert_eq!(report.nodes[0].counts.exps(), expect.exps());
    assert_eq!(report.nodes[0].counts.tx_bits, expect.tx_bits);
}

#[test]
#[ignore = "1024-bit dynamics; run with --ignored"]
fn paper_size_join_and_leave() {
    let pkg = egka::core::paper_fixture();
    let keys = pkg.extract_group(4);
    let (_, s0) = proposed::run(pkg.params(), &keys, 2, RunConfig::default());
    let j = dynamics::join(&s0, UserId(9), &pkg.extract(UserId(9)), 3, true);
    assert!(j.session.invariant_holds());
    let l = dynamics::leave(&j.session, 1, 4);
    assert!(l.session.invariant_holds());
    assert_eq!(l.session.n(), 4);
}
