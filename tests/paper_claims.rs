//! The paper's headline claims, asserted end-to-end:
//!
//! 1. the proposed scheme is the most energy-efficient initial GKA at every
//!    group size on both radios (Figure 1);
//! 2. SOK is the most expensive at scale;
//! 3. the dynamic protocols beat BD re-execution by an order of magnitude
//!    (Table 5);
//! 4. the closed forms used for large-n pricing agree exactly with
//!    instrumented executions at the sizes we run.

use egka::prelude::*;
use egka::sim::{check_shape, generate_figure1, generate_table5};

#[test]
fn figure1_shape_holds_on_instrumented_sweep() {
    let fig = generate_figure1(&Figure1Config {
        sizes: vec![4, 8, 12],
        max_instrumented_n: 12,
        seed: 0xc1a1,
    });
    check_shape(&fig).expect("paper's Figure 1 ordering");
}

#[test]
fn figure1_closed_form_matches_paper_sizes() {
    let fig = generate_figure1(&Figure1Config {
        sizes: vec![10, 50, 100, 500],
        max_instrumented_n: 0,
        seed: 0,
    });
    check_shape(&fig).expect("paper's Figure 1 ordering at paper sizes");
    // Crossover the paper's figure shows: on the 100 kbps radio SSN is
    // cheaper than BD+DSA at every size (2n+4 exps < DSA's comm+verify),
    // but on WLAN SSN overtakes ECDSA only at large n.
    let ssn_100k = fig.get("ssn", 500, "100kbps").unwrap().total_j;
    let dsa_100k = fig.get("bd_dsa", 500, "100kbps").unwrap().total_j;
    assert!(ssn_100k < dsa_100k);
}

#[test]
fn figure1_radio_dependent_crossovers() {
    // The figure's subtler structure: which baseline wins depends on the
    // radio, because the radios move the comm/comp balance.
    let fig = generate_figure1(&Figure1Config {
        sizes: vec![10, 50, 100, 500],
        max_instrumented_n: 0,
        seed: 0,
    });
    for n in [10u64, 50, 100, 500] {
        // On WLAN (comm nearly free) SSN's pure-exponentiation profile
        // beats both certificate schemes at every size…
        let ssn_w = fig.get("ssn", n, "WLAN").unwrap().total_j;
        let ecdsa_w = fig.get("bd_ecdsa", n, "WLAN").unwrap().total_j;
        let dsa_w = fig.get("bd_dsa", n, "WLAN").unwrap().total_j;
        assert!(ssn_w < ecdsa_w && ssn_w < dsa_w, "WLAN, n={n}");
        // …while on the 100 kbps radio SSN's fatter 2080-bit messages cost
        // it the lead over ECDSA (whose round-1 is only 1744 bits).
        let ssn_s = fig.get("ssn", n, "100kbps").unwrap().total_j;
        let ecdsa_s = fig.get("bd_ecdsa", n, "100kbps").unwrap().total_j;
        assert!(ssn_s > ecdsa_s, "100kbps, n={n}");
    }
    // Regime check: the proposed protocol is channel-bound on the slow
    // radio at every size, but compute-bound on WLAN for small groups
    // (reception grows with n and overtakes the fixed compute by n = 50).
    let p_slow = fig.get("proposed", 100, "100kbps").unwrap();
    assert!(p_slow.comm_j > p_slow.comp_j);
    let p_small = fig.get("proposed", 10, "WLAN").unwrap();
    assert!(p_small.comm_j < p_small.comp_j);
    let p_big = fig.get("proposed", 100, "WLAN").unwrap();
    assert!(p_big.comm_j > p_big.comp_j);
}

#[test]
fn latency_extension_matches_energy_structure() {
    use egka::sim::initial_gka_latency;
    let cpu = CpuModel::strongarm_133();
    // Compute latency of the proposed scheme is size-independent; SOK's
    // grows linearly; both orderings mirror Figure 1's.
    for radio in Transceiver::paper_pair() {
        for n in [10u64, 100, 500] {
            let ours = initial_gka_latency(InitialProtocol::ProposedGqBatch, n, &cpu, &radio);
            let sok = initial_gka_latency(InitialProtocol::BdSok, n, &cpu, &radio);
            assert!(ours.total_ms() < sok.total_ms(), "n={n}, {}", radio.name);
        }
    }
}

#[test]
fn table5_reproduces_paper_within_4_percent() {
    let t = generate_table5(&Table5Config {
        instrument: false,
        ..Table5Config::default()
    });
    assert!(
        t.max_rel_err() < 0.04,
        "max deviation {:.2}%",
        t.max_rel_err() * 100.0
    );
}

#[test]
fn dynamics_are_an_order_of_magnitude_cheaper() {
    let t = generate_table5(&Table5Config {
        instrument: false,
        ..Table5Config::default()
    });
    let max_of = |proto: &str| {
        t.rows
            .iter()
            .filter(|r| r.protocol == proto)
            .map(|r| r.measured_j)
            .fold(0.0f64, f64::max)
    };
    assert!(max_of("BD Join") / max_of("Our Join Protocol") > 10.0);
    assert!(max_of("BD Merge") / max_of("Our Merge Protocol") > 10.0);
    assert!(max_of("BD Leave") / max_of("Our Leave Protocol") > 5.0);
    assert!(max_of("BD Partition") / max_of("Our Partition Protocol") > 5.0);
}

#[test]
fn small_instrumented_table5_round_trips() {
    // Instrumented at reduced size: every role's counts are asserted equal
    // to the closed forms inside the generator.
    let t = generate_table5(&Table5Config {
        n: 8,
        m: 4,
        ld: 2,
        instrument: true,
        seed: 5,
    });
    assert_eq!(t.rows.len(), 17);
}

#[test]
fn proposed_scheme_constant_verification_cost() {
    // Table 1's punchline: the proposed protocol's signature work does not
    // grow with n.
    for n in [4u64, 16, 64, 256] {
        let c = InitialProtocol::ProposedGqBatch.per_user_counts(n);
        assert_eq!(c.get(CompOp::SignGen(Scheme::Gq)), 1);
        assert_eq!(c.get(CompOp::SignVerify(Scheme::Gq)), 1);
        assert_eq!(c.exps(), 3);
    }
    // …whereas every baseline's verification count is linear.
    for n in [4u64, 16] {
        let c = InitialProtocol::BdEcdsa.per_user_counts(n);
        assert_eq!(c.get(CompOp::SignVerify(Scheme::Ecdsa)), n - 1);
    }
}
