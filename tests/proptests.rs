//! Workspace-level property tests on the protocol invariants.
//!
//! (Per-crate properties — bigint algebra, AES/SHA vectors, curve group
//! laws — live in their own crates; these cover the cross-crate laws the
//! paper's correctness rests on.)

use egka::prelude::*;
use proptest::prelude::*;

/// Shared toy PKG: parameter generation is too slow to re-run per case.
fn pkg() -> &'static Pkg {
    use std::sync::OnceLock;
    static PKG: OnceLock<Pkg> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x9c9c);
        Pkg::setup(&mut rng, SecurityProfile::Toy)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BD: any ring size, any seed ⇒ all members derive the same key and
    /// Lemma 1 holds.
    #[test]
    fn bd_agreement(n in 2usize..9, seed in any::<u64>()) {
        let group = &pkg().params().bd;
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let keys = egka::core::bd::run_plain(&mut rng, group, n);
        prop_assert!(keys.windows(2).all(|w| w[0] == w[1]));
    }

    /// The proposed protocol agrees for any (n, seed) and its session
    /// satisfies the ring invariant.
    #[test]
    fn proposed_agreement(n in 2u32..8, seed in any::<u64>()) {
        let keys = pkg().extract_group(n);
        let (report, session) = proposed::run(pkg().params(), &keys, seed, RunConfig::default());
        prop_assert!(report.keys_agree());
        prop_assert!(session.invariant_holds());
    }

    /// Join then leave of the newcomer returns to a consistent ring of the
    /// original size, with a key different from every intermediate.
    #[test]
    fn join_leave_roundtrip(n in 3u32..7, seed in any::<u64>()) {
        let keys = pkg().extract_group(n);
        let (_, s0) = proposed::run(pkg().params(), &keys, seed, RunConfig::default());
        let id = UserId(1000);
        let j = dynamics::join(&s0, id, &pkg().extract(id), seed ^ 1, true);
        prop_assert!(j.session.invariant_holds());
        let l = dynamics::leave(&j.session, n as usize, seed ^ 2);
        prop_assert_eq!(l.session.n(), n as usize);
        prop_assert!(l.session.invariant_holds());
        prop_assert_ne!(&l.session.key, &j.session.key);
        prop_assert_ne!(&l.session.key, &s0.key);
    }

    /// GQ signatures verify for arbitrary messages and fail for any other
    /// message or identity.
    #[test]
    fn gq_sign_verify(msg in proptest::collection::vec(any::<u8>(), 0..128),
                      other in proptest::collection::vec(any::<u8>(), 0..128),
                      seed in any::<u64>()) {
        let params = &pkg().params().gq;
        let key = pkg().extract(UserId(1));
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let sig = params.sign(&mut rng, &key, &msg);
        prop_assert!(params.verify(&UserId(1).to_bytes(), &msg, &sig));
        if other != msg {
            prop_assert!(!params.verify(&UserId(1).to_bytes(), &other, &sig));
        }
        prop_assert!(!params.verify(&UserId(2).to_bytes(), &msg, &sig));
    }

    /// Envelopes round-trip arbitrary payloads and reject any bit flip.
    #[test]
    fn envelope_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..256),
                          flip in any::<(u16, u8)>(),
                          seed in any::<u64>()) {
        let env = egka::symmetric::Envelope::from_key_material(b"k");
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let mut sealed = env.seal(&mut rng, &payload);
        prop_assert_eq!(env.open(&sealed).unwrap(), payload);
        let idx = flip.0 as usize % sealed.len();
        let bit = 1u8 << (flip.1 % 8);
        sealed[idx] ^= bit;
        prop_assert!(env.open(&sealed).is_err());
    }

    /// Wire codec: Writer/Reader round-trips arbitrary field sequences.
    #[test]
    fn wire_roundtrip(id in any::<u32>(),
                      a in proptest::collection::vec(any::<u8>(), 0..64),
                      b in proptest::collection::vec(any::<u8>(), 0..64)) {
        use egka::core::wire::{Reader, Writer};
        let ua = egka::bigint::Ubig::from_bytes_be(&a);
        let mut w = Writer::new();
        w.put_id(UserId(id)).put_ubig(&ua).put_bytes(&b);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.get_id().unwrap(), UserId(id));
        prop_assert_eq!(r.get_ubig().unwrap(), ua);
        prop_assert_eq!(r.get_bytes().unwrap(), &b[..]);
        r.expect_end().unwrap();
    }

    /// Energy model: total energy is linear in counts (pricing is a dot
    /// product — merging two runs' counts prices to the sum).
    #[test]
    fn energy_is_linear(n1 in 2u64..50, n2 in 2u64..50) {
        let cpu = CpuModel::strongarm_133();
        let radio = Transceiver::radio_100kbps();
        let a = InitialProtocol::ProposedGqBatch.per_user_counts(n1);
        let b = InitialProtocol::Ssn.per_user_counts(n2);
        let mut merged = a.clone();
        merged.merge(&b);
        let lhs = total_energy_mj(&cpu, &radio, &merged);
        let rhs = total_energy_mj(&cpu, &radio, &a) + total_energy_mj(&cpu, &radio, &b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
