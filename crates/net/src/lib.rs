//! # egka-net
//!
//! A simulated wireless broadcast medium for the `egka` reproduction.
//!
//! The paper's evaluation assumes a shared broadcast channel: every message
//! a user sends is received by all other group members (each user transmits
//! 2 messages and receives `2(n − 1)` during the initial GKA, Table 1).
//! This crate provides that channel as an in-process [`Medium`] with:
//!
//! * **reliable broadcast and unicast** between registered [`Endpoint`]s;
//! * **per-node traffic accounting** ([`TrafficStats`]) in both *nominal*
//!   bits (the paper's printed wire sizes, used by the energy model) and
//!   *actual* serialized bits (used for the "measured encoding" ablation);
//! * **loss injection** (seeded, deterministic) to exercise the paper's
//!   "all members retransmit" failure path;
//! * **partitions**, used by the Partition protocol scenarios: endpoints in
//!   different partition groups cannot hear each other.
//!
//! Delivery is synchronous (messages are enqueued on the receivers'
//! unbounded channels during `send`), which is exactly what the round-based
//! GKA drivers need; endpoints block on [`Endpoint::recv`] until their next
//! message arrives, so per-node threads synchronize naturally.
//!
//! A medium can instead be built **deferred** ([`Medium::deferred`]): sends
//! park in an outbox as [`Transmission`]s and a transport layer (e.g. the
//! `egka-medium` virtual-time radio) decides *when* — on its own clock —
//! each receiver hears them via [`Medium::deliver_to`]. The instant path
//! stays byte-for-byte untouched when no transport is attached.
//!
//! ```
//! use bytes::Bytes;
//! use egka_net::Medium;
//!
//! // Instant medium: a broadcast reaches every *other* endpoint with the
//! // sender's paper-nominal bit accounting attached.
//! let medium = Medium::new();
//! let (a, b) = (medium.join(), medium.join());
//! a.broadcast(1, Bytes::from_static(b"round 1"), 40);
//! let pkt = b.recv();
//! assert_eq!((pkt.from, pkt.kind, pkt.nominal_bits), (a.id(), 1, 40));
//! assert_eq!(&pkt.payload[..], b"round 1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

mod reactor;

pub use reactor::{Reactor, ReactorEvent, Token};

/// Identifies a node on the medium (dense, assigned at [`Medium::join`]).
pub type NodeId = u32;

/// Typed delivery/receive errors for service-grade callers.
///
/// The paper-exact protocol drivers keep the original infallible API
/// ([`Endpoint::unicast`] silently drops toward detached nodes, matching a
/// radio transmitting into the void); a key-management *service* instead
/// needs to distinguish "the member is powered off" from "the member is
/// slow", so [`Endpoint::try_unicast`] and [`Endpoint::recv_within`]
/// surface these as values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No packet arrived within the caller-supplied timeout.
    Timeout {
        /// How long the caller was willing to wait.
        waited: std::time::Duration,
    },
    /// The unicast target has been [`Medium::detach`]ed (powered off).
    PeerDetached {
        /// The detached target.
        peer: NodeId,
    },
    /// The unicast target id was never registered on this medium.
    UnknownPeer {
        /// The unregistered id.
        peer: NodeId,
    },
    /// The *sender* itself is detached; nothing was transmitted.
    SelfDetached,
    /// A packet of a different kind arrived where a specific round tag was
    /// required. A sans-IO scheduler treats this as a value and re-buffers
    /// or drops, instead of tearing down the node thread (the deleted
    /// `recv_kind` shim used to panic here).
    UnexpectedKind {
        /// The round tag the caller was waiting for.
        expected: u16,
        /// The round tag that actually arrived.
        got: u16,
        /// Who sent the unexpected packet.
        from: NodeId,
    },
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::Timeout { waited } => {
                write!(f, "no packet arrived within {waited:?}")
            }
            NetError::PeerDetached { peer } => {
                write!(f, "peer node {peer} is detached (powered off)")
            }
            NetError::UnknownPeer { peer } => {
                write!(f, "peer node {peer} is not registered on this medium")
            }
            NetError::SelfDetached => write!(f, "sending endpoint is detached"),
            NetError::UnexpectedKind {
                expected,
                got,
                from,
            } => write!(
                f,
                "protocol round mismatch: expected kind {expected}, got {got} from node {from}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// A message in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sender.
    pub from: NodeId,
    /// Protocol-defined message kind (round tags etc.).
    pub kind: u16,
    /// Serialized payload (cheaply shared between receivers).
    pub payload: Bytes,
    /// The paper-accounting size of this message in bits. Energy models
    /// charge this, not `payload.len() * 8`.
    pub nominal_bits: u64,
}

/// Per-node cumulative traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Nominal bits transmitted.
    pub tx_bits: u64,
    /// Nominal bits received.
    pub rx_bits: u64,
    /// Actual serialized bits transmitted.
    pub tx_bits_actual: u64,
    /// Actual serialized bits received.
    pub rx_bits_actual: u64,
    /// Messages transmitted.
    pub msgs_tx: u64,
    /// Messages received.
    pub msgs_rx: u64,
}

struct NodeSlot {
    sender: Sender<Packet>,
    stats: Mutex<TrafficStats>,
    /// Partition group; deliveries only happen within a group.
    partition: u8,
    /// Detached nodes neither send nor receive (a leaver that powered off).
    detached: bool,
}

/// Deterministic xorshift for loss decisions (no `rand` state sharing
/// headaches across threads; one u64 under a lock is enough at this rate).
struct LossState {
    /// Drop probability in [0, 1].
    prob: f64,
    rng: u64,
}

impl LossState {
    fn drop_now(&mut self) -> bool {
        if self.prob <= 0.0 {
            return false;
        }
        // xorshift64*
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        let x = self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u < self.prob
    }
}

/// A transmission parked in a deferred medium's outbox: the sender has
/// been charged, the recipient set is resolved (partition/detachment
/// filtered at send time), and a transport layer decides when — and
/// whether — each target hears it via [`Medium::deliver_to`].
#[derive(Clone, Debug)]
pub struct Transmission {
    /// Transmitting node.
    pub from: NodeId,
    /// Resolved recipients (already filtered for partition/detachment).
    pub targets: Vec<NodeId>,
    /// The packet itself.
    pub packet: Packet,
}

struct Inner {
    nodes: RwLock<Vec<NodeSlot>>,
    loss: Mutex<LossState>,
    /// Deferred media park sends here instead of delivering instantly.
    /// `None` = instant fan-out (the classic medium).
    outbox: Option<Mutex<Vec<Transmission>>>,
}

/// The shared broadcast medium. Cloning is cheap and all clones observe the
/// same channel state.
#[derive(Clone)]
pub struct Medium {
    inner: Arc<Inner>,
}

impl Default for Medium {
    fn default() -> Self {
        Self::new()
    }
}

impl Medium {
    /// A lossless medium.
    pub fn new() -> Self {
        Medium {
            inner: Arc::new(Inner {
                nodes: RwLock::new(Vec::new()),
                loss: Mutex::new(LossState {
                    prob: 0.0,
                    rng: 0x9E37_79B9_7F4A_7C15,
                }),
                outbox: None,
            }),
        }
    }

    /// A medium whose sends park in an outbox instead of delivering
    /// instantly. The sender is charged at send time; a transport layer
    /// drains [`Medium::take_outbox`] and hands each packet to its
    /// receivers with [`Medium::deliver_to`] when its clock says so.
    ///
    /// The medium's own loss generator is **not** consulted on the
    /// deferred path — the transport owns the drop decision along with the
    /// delivery time.
    pub fn deferred() -> Self {
        Medium {
            inner: Arc::new(Inner {
                nodes: RwLock::new(Vec::new()),
                loss: Mutex::new(LossState {
                    prob: 0.0,
                    rng: 0x9E37_79B9_7F4A_7C15,
                }),
                outbox: Some(Mutex::new(Vec::new())),
            }),
        }
    }

    /// True iff this medium parks sends for a transport layer.
    pub fn is_deferred(&self) -> bool {
        self.inner.outbox.is_some()
    }

    /// Drains the deferred outbox in send order. Empty on an instant
    /// medium.
    pub fn take_outbox(&self) -> Vec<Transmission> {
        match &self.inner.outbox {
            Some(outbox) => std::mem::take(&mut *outbox.lock()),
            None => Vec::new(),
        }
    }

    /// Delivers `packet` to `to` *now*, charging its receive counters —
    /// the transport layer's half of a deferred send. Returns `false`
    /// (delivering nothing) if the target has detached since the packet
    /// went on the air.
    pub fn deliver_to(&self, to: NodeId, packet: &Packet) -> bool {
        let nodes = self.inner.nodes.read();
        let dst = &nodes[to as usize];
        if dst.detached {
            return false;
        }
        {
            let mut s = dst.stats.lock();
            s.rx_bits += packet.nominal_bits;
            s.rx_bits_actual += packet.payload.len() as u64 * 8;
            s.msgs_rx += 1;
        }
        let _ = dst.sender.send(packet.clone());
        true
    }

    /// Whether `id` is currently detached (powered off).
    pub fn is_detached(&self, id: NodeId) -> bool {
        self.inner.nodes.read()[id as usize].detached
    }

    /// Registers a new endpoint and returns its handle.
    pub fn join(&self) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut nodes = self.inner.nodes.write();
        let id = nodes.len() as NodeId;
        nodes.push(NodeSlot {
            sender: tx,
            stats: Mutex::new(TrafficStats::default()),
            partition: 0,
            detached: false,
        });
        Endpoint {
            id,
            medium: self.clone(),
            rx,
            stash: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of registered endpoints (including detached ones).
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Sets the per-delivery drop probability (deterministic given the
    /// built-in seed). `0.0` restores reliable delivery.
    ///
    /// # Panics
    /// Panics unless `0.0 <= prob < 1.0`.
    pub fn set_loss(&self, prob: f64) {
        assert!((0.0..1.0).contains(&prob), "loss probability out of range");
        self.inner.loss.lock().prob = prob;
    }

    /// [`Medium::set_loss`] with an explicit generator seed. Retried
    /// protocol attempts over a fresh medium must not replay the identical
    /// drop pattern (the built-in seed would livelock a retry loop), so
    /// callers salt the seed per attempt.
    ///
    /// # Panics
    /// Panics unless `0.0 <= prob < 1.0`.
    pub fn set_loss_seeded(&self, prob: f64, seed: u64) {
        assert!((0.0..1.0).contains(&prob), "loss probability out of range");
        let mut loss = self.inner.loss.lock();
        loss.prob = prob;
        // xorshift64* needs a non-zero state.
        loss.rng = seed | 1;
    }

    /// Moves `id` into partition `group`. Nodes only hear nodes in the same
    /// group. All nodes start in group 0.
    pub fn set_partition(&self, id: NodeId, group: u8) {
        self.inner.nodes.write()[id as usize].partition = group;
    }

    /// Detaches `id`: it stops receiving (and its sends are ignored).
    pub fn detach(&self, id: NodeId) {
        self.inner.nodes.write()[id as usize].detached = true;
    }

    /// Traffic counters for `id`.
    pub fn stats(&self, id: NodeId) -> TrafficStats {
        *self.inner.nodes.read()[id as usize].stats.lock()
    }

    /// Resets the traffic counters of every node (used between protocol
    /// phases so each table row starts from zero).
    pub fn reset_stats(&self) {
        for slot in self.inner.nodes.read().iter() {
            *slot.stats.lock() = TrafficStats::default();
        }
    }

    fn send_impl(&self, from: NodeId, to: Targets<'_>, packet: Packet) {
        let nodes = self.inner.nodes.read();
        self.send_locked(&nodes, from, to, packet);
    }

    /// Delivery under an already-held registry read guard, so callers can
    /// validate the target and transmit atomically with respect to
    /// [`Medium::detach`].
    fn send_locked(&self, nodes: &[NodeSlot], from: NodeId, to: Targets<'_>, packet: Packet) {
        let src = &nodes[from as usize];
        if src.detached {
            return;
        }
        let actual_bits = packet.payload.len() as u64 * 8;
        {
            let mut s = src.stats.lock();
            s.tx_bits += packet.nominal_bits;
            s.tx_bits_actual += actual_bits;
            s.msgs_tx += 1;
        }
        let targets: Box<dyn Iterator<Item = usize> + '_> = match to {
            Targets::One(t) => Box::new(std::iter::once(t as usize)),
            Targets::All => Box::new((0..nodes.len()).filter(|&i| i != from as usize)),
            Targets::Set(set) => Box::new(
                set.iter()
                    .map(|&t| t as usize)
                    .filter(move |&i| i != from as usize),
            ),
        };
        if let Some(outbox) = &self.inner.outbox {
            // Deferred: resolve the audible recipient set now (partition
            // and detachment are send-time physics), but let the transport
            // layer own loss and delivery time.
            let audible: Vec<NodeId> = targets
                .filter(|&idx| {
                    let dst = &nodes[idx];
                    !dst.detached && dst.partition == src.partition
                })
                .map(|idx| idx as NodeId)
                .collect();
            outbox.lock().push(Transmission {
                from,
                targets: audible,
                packet,
            });
            return;
        }
        for idx in targets {
            let dst = &nodes[idx];
            if dst.detached || dst.partition != src.partition {
                continue;
            }
            if self.inner.loss.lock().drop_now() {
                continue;
            }
            {
                let mut s = dst.stats.lock();
                s.rx_bits += packet.nominal_bits;
                s.rx_bits_actual += actual_bits;
                s.msgs_rx += 1;
            }
            // A full inbox only happens if a receiver thread died; ignore.
            let _ = dst.sender.send(packet.clone());
        }
    }
}

/// Recipient selector for [`Medium::send_impl`].
enum Targets<'a> {
    One(NodeId),
    All,
    Set(&'a [NodeId]),
}

/// A node's handle onto the medium.
pub struct Endpoint {
    id: NodeId,
    medium: Medium,
    rx: Receiver<Packet>,
    /// Out-of-round packets buffered by [`Endpoint::recv_kind_within`]
    /// until a matching `recv` asks for their kind. Every receive path
    /// drains this stash before touching the channel, so buffering and
    /// plain receives compose.
    stash: Mutex<VecDeque<Packet>>,
}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The medium this endpoint is attached to.
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Broadcasts to every other (same-partition, attached) endpoint.
    pub fn broadcast(&self, kind: u16, payload: Bytes, nominal_bits: u64) {
        self.medium.send_impl(
            self.id,
            Targets::All,
            Packet {
                from: self.id,
                kind,
                payload,
                nominal_bits,
            },
        );
    }

    /// Sends to a single endpoint.
    pub fn unicast(&self, to: NodeId, kind: u16, payload: Bytes, nominal_bits: u64) {
        self.medium.send_impl(
            self.id,
            Targets::One(to),
            Packet {
                from: self.id,
                kind,
                payload,
                nominal_bits,
            },
        );
    }

    /// Sends to an explicit recipient set (the paper's energy accounting
    /// charges reception only to *intended* recipients; duty-cycled radios
    /// sleep through traffic not addressed to them). Self is skipped if
    /// present in `targets`.
    pub fn multicast(&self, targets: &[NodeId], kind: u16, payload: Bytes, nominal_bits: u64) {
        self.medium.send_impl(
            self.id,
            Targets::Set(targets),
            Packet {
                from: self.id,
                kind,
                payload,
                nominal_bits,
            },
        );
    }

    /// Blocks until the next packet arrives (stash first, then channel).
    ///
    /// # Panics
    /// Panics if the medium was dropped while waiting (cannot happen while
    /// any endpoint holds a `Medium` clone, which every endpoint does).
    pub fn recv(&self) -> Packet {
        if let Some(p) = self.stash.lock().pop_front() {
            return p;
        }
        self.rx.recv().expect("medium alive while endpoints exist")
    }

    /// Non-blocking receive (stash first, then channel).
    pub fn try_recv(&self) -> Option<Packet> {
        if let Some(p) = self.stash.lock().pop_front() {
            return Some(p);
        }
        self.rx.try_recv().ok()
    }

    /// Receive with a timeout; `None` on expiry.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Packet> {
        if let Some(p) = self.stash.lock().pop_front() {
            return Some(p);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(p) => Some(p),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                panic!("medium alive while endpoints exist")
            }
        }
    }

    /// Receive with a per-call deadline and a typed error: `None` blocks
    /// like [`Endpoint::recv`], `Some(timeout)` returns
    /// [`NetError::Timeout`] on expiry instead of hanging the caller — the
    /// form service shards use so one powered-off member cannot stall an
    /// epoch.
    pub fn recv_within(&self, timeout: Option<std::time::Duration>) -> Result<Packet, NetError> {
        match timeout {
            None => Ok(self.recv()),
            Some(t) => self.recv_timeout(t).ok_or(NetError::Timeout { waited: t }),
        }
    }

    /// Unicast with delivery-failure reporting: returns a typed error when
    /// the target is detached (powered off) or unknown, instead of
    /// silently transmitting into the void like [`Endpoint::unicast`].
    ///
    /// On success the transmission is charged exactly as a plain unicast.
    pub fn try_unicast(
        &self,
        to: NodeId,
        kind: u16,
        payload: Bytes,
        nominal_bits: u64,
    ) -> Result<(), NetError> {
        let nodes = self.medium.inner.nodes.read();
        if nodes[self.id as usize].detached {
            return Err(NetError::SelfDetached);
        }
        match nodes.get(to as usize) {
            None => return Err(NetError::UnknownPeer { peer: to }),
            Some(slot) if slot.detached => return Err(NetError::PeerDetached { peer: to }),
            Some(_) => {}
        }
        // Same guard: a concurrent detach cannot slip between the check
        // and the transmission and turn an accepted send into a silent drop.
        self.medium.send_locked(
            &nodes,
            self.id,
            Targets::One(to),
            Packet {
                from: self.id,
                kind,
                payload,
                nominal_bits,
            },
        );
        Ok(())
    }

    /// Blocks for the next packet of *any* kind and fails with a typed
    /// [`NetError::UnexpectedKind`] if it is not `kind` — the value-level
    /// form of the deleted panicking `recv_kind` contract. Unlike
    /// [`Endpoint::recv_kind_within`] the mismatching packet is *not*
    /// buffered: the caller asked for strict round ordering.
    pub fn recv_kind_checked(&self, kind: u16) -> Result<Packet, NetError> {
        let p = self.recv();
        if p.kind == kind {
            Ok(p)
        } else {
            Err(NetError::UnexpectedKind {
                expected: kind,
                got: p.kind,
                from: p.from,
            })
        }
    }

    /// Receives the next packet with round tag `kind`, **buffering** any
    /// packet of a different kind for a later receive instead of failing on
    /// it — out-of-order rounds are a network event, not a driver bug,
    /// once many groups' rounds interleave on one scheduler thread.
    ///
    /// `None` blocks until a match arrives; `Some(t)` bounds the total wait
    /// and returns [`NetError::Timeout`] on expiry.
    pub fn recv_kind_within(
        &self,
        kind: u16,
        timeout: Option<std::time::Duration>,
    ) -> Result<Packet, NetError> {
        // A matching packet may already be stashed by an earlier call.
        {
            let mut stash = self.stash.lock();
            if let Some(at) = stash.iter().position(|p| p.kind == kind) {
                return Ok(stash.remove(at).expect("position just found"));
            }
            // Drop the guard before blocking: senders never touch the
            // stash, but a sibling receive call must not deadlock on it.
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let p = match deadline {
                None => self.rx.recv().expect("medium alive while endpoints exist"),
                Some(d) => {
                    let left = d.saturating_duration_since(std::time::Instant::now());
                    match self.rx.recv_timeout(left) {
                        Ok(p) => p,
                        Err(RecvTimeoutError::Timeout) => {
                            return Err(NetError::Timeout {
                                waited: timeout.expect("deadline implies timeout"),
                            })
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            panic!("medium alive while endpoints exist")
                        }
                    }
                }
            };
            if p.kind == kind {
                return Ok(p);
            }
            self.stash.lock().push_back(p);
        }
    }

    /// This endpoint's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.medium.stats(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn broadcast_reaches_all_others() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        let c = m.join();
        a.broadcast(7, Bytes::from_static(b"hello"), 2080);
        assert_eq!(b.recv().kind, 7);
        assert_eq!(c.recv().payload.as_ref(), b"hello");
        assert!(a.try_recv().is_none(), "no self-delivery");
    }

    #[test]
    fn unicast_reaches_only_target() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        let c = m.join();
        a.unicast(b.id(), 1, Bytes::from_static(b"x"), 8);
        assert_eq!(b.recv().from, a.id());
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn nominal_and_actual_bits_accounted() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        a.broadcast(0, Bytes::from_static(b"abcd"), 2080); // 4 bytes actual
        let sa = a.stats();
        assert_eq!(sa.tx_bits, 2080);
        assert_eq!(sa.tx_bits_actual, 32);
        assert_eq!(sa.msgs_tx, 1);
        let sb = b.stats();
        assert_eq!(sb.rx_bits, 2080);
        assert_eq!(sb.rx_bits_actual, 32);
        assert_eq!(sb.msgs_rx, 1);
    }

    #[test]
    fn rx_counts_match_paper_shape() {
        // n nodes, each broadcasts 2 messages: every node receives 2(n−1).
        let m = Medium::new();
        let n = 5;
        let eps: Vec<Endpoint> = (0..n).map(|_| m.join()).collect();
        for ep in &eps {
            ep.broadcast(1, Bytes::new(), 100);
            ep.broadcast(2, Bytes::new(), 100);
        }
        for ep in &eps {
            assert_eq!(ep.stats().msgs_rx, 2 * (n as u64 - 1));
            assert_eq!(ep.stats().msgs_tx, 2);
        }
    }

    #[test]
    fn partitions_block_delivery() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        m.set_partition(b.id(), 1);
        a.broadcast(0, Bytes::new(), 8);
        assert!(b.try_recv().is_none());
        assert_eq!(b.stats().msgs_rx, 0);
        // Moving back re-enables delivery.
        m.set_partition(b.id(), 0);
        a.broadcast(0, Bytes::new(), 8);
        assert!(b.try_recv().is_some());
    }

    #[test]
    fn detached_nodes_are_silent() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        m.detach(b.id());
        b.broadcast(0, Bytes::new(), 8);
        assert!(a.try_recv().is_none());
        a.broadcast(0, Bytes::new(), 8);
        assert!(b.try_recv().is_none());
        assert_eq!(b.stats().msgs_tx, 0, "detached sends are not charged");
    }

    #[test]
    fn loss_drops_a_fraction() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        m.set_loss(0.5);
        for _ in 0..1000 {
            a.broadcast(0, Bytes::new(), 8);
        }
        let got = b.stats().msgs_rx;
        assert!(
            (300..700).contains(&got),
            "50% loss delivered {got}/1000 — generator badly biased"
        );
        // Sender is still charged for every transmission.
        assert_eq!(a.stats().msgs_tx, 1000);
    }

    #[test]
    fn loss_is_deterministic_per_medium_seed() {
        let run = || {
            let m = Medium::new();
            let a = m.join();
            let b = m.join();
            m.set_loss(0.3);
            for _ in 0..200 {
                a.broadcast(0, Bytes::new(), 8);
            }
            b.stats().msgs_rx
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_stats_zeroes_everything() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        a.broadcast(0, Bytes::new(), 8);
        let _ = b.try_recv();
        m.reset_stats();
        assert_eq!(a.stats(), TrafficStats::default());
        assert_eq!(b.stats(), TrafficStats::default());
    }

    #[test]
    fn recv_timeout_expires() {
        let m = Medium::new();
        let a = m.join();
        assert!(a.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn recv_within_times_out_with_typed_error() {
        let m = Medium::new();
        let a = m.join();
        let waited = Duration::from_millis(10);
        assert_eq!(
            a.recv_within(Some(waited)),
            Err(NetError::Timeout { waited })
        );
        // A delivered packet comes straight back, under either mode.
        let b = m.join();
        b.unicast(a.id(), 3, Bytes::from_static(b"x"), 8);
        assert_eq!(a.recv_within(Some(waited)).unwrap().kind, 3);
        b.unicast(a.id(), 4, Bytes::from_static(b"y"), 8);
        assert_eq!(a.recv_within(None).unwrap().kind, 4);
    }

    #[test]
    fn try_unicast_reports_detached_and_unknown_peers() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        // Healthy target: delivered and charged.
        a.try_unicast(b.id(), 1, Bytes::from_static(b"ok"), 16)
            .unwrap();
        assert_eq!(b.recv().kind, 1);
        assert_eq!(a.stats().msgs_tx, 1);
        // Detached target: typed error, nothing charged.
        m.detach(b.id());
        assert_eq!(
            a.try_unicast(b.id(), 2, Bytes::new(), 8),
            Err(NetError::PeerDetached { peer: b.id() })
        );
        assert_eq!(a.stats().msgs_tx, 1, "failed unicast is not charged");
        // Unknown target id.
        assert_eq!(
            a.try_unicast(999, 2, Bytes::new(), 8),
            Err(NetError::UnknownPeer { peer: 999 })
        );
        // Detached sender.
        m.detach(a.id());
        assert_eq!(
            a.try_unicast(0, 2, Bytes::new(), 8),
            Err(NetError::SelfDetached)
        );
    }

    #[test]
    fn multicast_reaches_only_listed_targets() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        let c = m.join();
        let d = m.join();
        a.multicast(&[b.id(), d.id(), a.id()], 5, Bytes::from_static(b"m"), 64);
        assert_eq!(b.recv().kind, 5);
        assert_eq!(d.recv().kind, 5);
        assert!(c.try_recv().is_none());
        assert!(a.try_recv().is_none(), "self in target set is skipped");
        assert_eq!(a.stats().msgs_tx, 1);
        assert_eq!(c.stats().msgs_rx, 0);
    }

    #[test]
    fn cross_thread_round_trip() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        std::thread::scope(|s| {
            s.spawn(|| {
                let p = b.recv_kind_within(9, None).unwrap();
                b.unicast(p.from, 10, Bytes::from_static(b"pong"), 32);
            });
            a.broadcast(9, Bytes::from_static(b"ping"), 32);
            let reply = a.recv_kind_within(10, None).unwrap();
            assert_eq!(reply.payload.as_ref(), b"pong");
        });
    }

    #[test]
    fn recv_kind_checked_reports_mismatch_as_value() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        a.broadcast(1, Bytes::new(), 8);
        assert_eq!(
            b.recv_kind_checked(2),
            Err(NetError::UnexpectedKind {
                expected: 2,
                got: 1,
                from: a.id(),
            })
        );
    }

    #[test]
    fn recv_kind_within_buffers_out_of_round_packets() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        // Round 2 arrives before round 1 (interleaved-scheduler reality).
        a.broadcast(2, Bytes::from_static(b"late"), 8);
        a.broadcast(1, Bytes::from_static(b"early"), 8);
        let r1 = b.recv_kind_within(1, None).unwrap();
        assert_eq!(r1.payload.as_ref(), b"early");
        // The buffered round-2 packet is still there.
        let r2 = b.recv_kind_within(2, None).unwrap();
        assert_eq!(r2.payload.as_ref(), b"late");
    }

    #[test]
    fn recv_kind_within_times_out_without_losing_buffered_packets() {
        let m = Medium::new();
        let a = m.join();
        let b = m.join();
        a.broadcast(9, Bytes::new(), 8);
        let waited = Duration::from_millis(10);
        assert_eq!(
            b.recv_kind_within(7, Some(waited)),
            Err(NetError::Timeout { waited })
        );
        // The kind-9 packet was stashed, not dropped, and plain receives
        // see the stash too.
        assert_eq!(b.try_recv().unwrap().kind, 9);
    }

    #[test]
    fn deferred_medium_parks_sends_in_the_outbox() {
        let m = Medium::deferred();
        assert!(m.is_deferred());
        let a = m.join();
        let b = m.join();
        let c = m.join();
        a.broadcast(3, Bytes::from_static(b"air"), 2080);
        // Nothing delivered yet; the sender is already charged.
        assert!(b.try_recv().is_none());
        assert_eq!(a.stats().msgs_tx, 1);
        assert_eq!(a.stats().tx_bits, 2080);
        assert_eq!(b.stats().msgs_rx, 0);
        let outbox = m.take_outbox();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].from, a.id());
        assert_eq!(outbox[0].targets, vec![b.id(), c.id()]);
        // A second take is empty (drained).
        assert!(m.take_outbox().is_empty());
        // The transport delivers when its clock says so; rx is charged then.
        assert!(m.deliver_to(b.id(), &outbox[0].packet));
        assert_eq!(b.recv().payload.as_ref(), b"air");
        assert_eq!(b.stats().rx_bits, 2080);
        assert_eq!(c.stats().msgs_rx, 0, "undelivered target uncharged");
    }

    #[test]
    fn deferred_send_resolves_partition_and_detachment_at_send_time() {
        let m = Medium::deferred();
        let a = m.join();
        let b = m.join();
        let c = m.join();
        m.set_partition(c.id(), 1);
        m.detach(b.id());
        a.broadcast(0, Bytes::new(), 8);
        let outbox = m.take_outbox();
        assert_eq!(outbox.len(), 1);
        assert!(
            outbox[0].targets.is_empty(),
            "partitioned and detached nodes are not audible"
        );
        // A target that detaches *after* the send but before delivery is
        // dropped at delivery time.
        let d = m.join();
        a.broadcast(0, Bytes::new(), 8);
        let outbox = m.take_outbox();
        assert_eq!(outbox[0].targets, vec![d.id()]);
        m.detach(d.id());
        assert!(!m.deliver_to(d.id(), &outbox[0].packet));
        assert_eq!(d.stats().msgs_rx, 0);
    }

    #[test]
    fn seeded_loss_changes_the_drop_pattern() {
        let run = |seed: Option<u64>| {
            let m = Medium::new();
            let a = m.join();
            let b = m.join();
            match seed {
                Some(s) => m.set_loss_seeded(0.4, s),
                None => m.set_loss(0.4),
            }
            for _ in 0..64 {
                a.broadcast(0, Bytes::new(), 8);
            }
            let mut pattern = 0u64;
            while let Some(_p) = b.try_recv() {
                pattern = pattern.wrapping_mul(31).wrapping_add(b.stats().msgs_rx);
            }
            (b.stats().msgs_rx, pattern)
        };
        assert_eq!(run(Some(7)), run(Some(7)), "same seed, same drops");
        let (d, _) = run(None);
        let (s1, _) = run(Some(1));
        let (s2, _) = run(Some(2));
        // All in the plausible band, but seeds decorrelate the pattern.
        for got in [d, s1, s2] {
            assert!((20..55).contains(&got), "40% loss delivered {got}/64");
        }
    }
}
