//! A non-blocking reactor over [`Endpoint`]s.
//!
//! The sans-IO protocol engines in `egka-core` never touch an endpoint:
//! they consume [`Packet`]s and emit outgoing messages from a `poll` call.
//! Something still has to move bytes between the medium and those
//! machines — that is this reactor. One [`Reactor`] owns the endpoints of
//! every session a scheduler drives (for the service layer: every member
//! of every group on one shard) and [`Reactor::poll_all`] fans whatever
//! has arrived into **per-registration mailboxes**, without ever blocking
//! the scheduler thread.
//!
//! Each registration can also carry a **deadline**: if it expires before
//! any packet arrives for that mailbox, `poll_all` reports
//! [`ReactorEvent::TimedOut`] carrying a [`NetError::Timeout`], which the
//! scheduler feeds into the stalled machine (`RoundMachine::on_timeout`)
//! instead of hanging forever on a powered-off peer.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::{Endpoint, NetError, Packet};

/// Handle to one registered endpoint (index into the reactor; stable for
/// the reactor's lifetime).
pub type Token = usize;

/// What [`Reactor::poll_all`] observed for one registration.
#[derive(Debug)]
pub enum ReactorEvent {
    /// New packets were fanned into this token's mailbox.
    Readable(Token),
    /// The registration's deadline expired with its mailbox empty. The
    /// embedded error is always [`NetError::Timeout`].
    TimedOut(Token, NetError),
}

struct Slot {
    ep: Endpoint,
    mailbox: VecDeque<Packet>,
    deadline: Option<(Instant, Duration)>,
    /// Virtual-clock deadline `(fires_at_ns, timeout_ns)` for transports
    /// that run on simulated time instead of the host clock.
    vdeadline: Option<(u64, u64)>,
}

/// Non-blocking fan-in from many endpoints to per-registration mailboxes.
#[derive(Default)]
pub struct Reactor {
    slots: Vec<Slot>,
}

impl Reactor {
    /// An empty reactor.
    pub fn new() -> Self {
        Reactor::default()
    }

    /// Registers `ep`; its packets will accumulate in the token's mailbox.
    pub fn register(&mut self, ep: Endpoint) -> Token {
        self.slots.push(Slot {
            ep,
            mailbox: VecDeque::new(),
            deadline: None,
            vdeadline: None,
        });
        self.slots.len() - 1
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Send-side access to a registered endpoint (receives must go through
    /// the mailbox, or packets would bypass the fan-in).
    pub fn endpoint(&self, token: Token) -> &Endpoint {
        &self.slots[token].ep
    }

    /// Arms (or with `None` disarms) a deadline `timeout` from now. The
    /// deadline fires at most once per arming: expiry disarms it.
    pub fn set_deadline(&mut self, token: Token, timeout: Option<Duration>) {
        self.slots[token].deadline = timeout.map(|t| (Instant::now() + t, t));
    }

    /// Arms (or with `None` disarms) a **virtual-clock** silence deadline:
    /// it fires when a transport's simulated time — supplied to
    /// [`Reactor::poll_all_at`] — passes `now_ns + timeout_ns` with the
    /// token's mailbox still empty. Like the wall-clock form, traffic
    /// re-arms it and expiry disarms it.
    pub fn set_virtual_deadline(&mut self, token: Token, now_ns: u64, timeout_ns: Option<u64>) {
        self.slots[token].vdeadline = timeout_ns.map(|t| (now_ns + t, t));
    }

    /// Drains every endpoint's channel into its mailbox (never blocking)
    /// and checks deadlines. Returns one event per registration that
    /// became readable or timed out this poll.
    pub fn poll_all(&mut self) -> Vec<ReactorEvent> {
        let now = Instant::now();
        let mut events = Vec::new();
        for (token, slot) in self.slots.iter_mut().enumerate() {
            let mut readable = false;
            while let Some(p) = slot.ep.try_recv() {
                slot.mailbox.push_back(p);
                readable = true;
            }
            if readable {
                // Progress resets the clock: deadlines bound *silence*,
                // not total session duration.
                if let Some((_, t)) = slot.deadline {
                    slot.deadline = Some((now + t, t));
                }
                events.push(ReactorEvent::Readable(token));
            } else if let Some((at, waited)) = slot.deadline {
                if now >= at && slot.mailbox.is_empty() {
                    slot.deadline = None;
                    events.push(ReactorEvent::TimedOut(token, NetError::Timeout { waited }));
                }
            }
        }
        events
    }

    /// The earliest armed virtual deadline across all registrations, if
    /// any — the "next timer event" a discrete-event driver jumps the
    /// clock to when nothing is on the air.
    pub fn next_virtual_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| s.vdeadline.map(|(at, _)| at))
            .min()
    }

    /// Like [`Reactor::poll_all`] but for transports on **simulated
    /// time**: silence deadlines armed with
    /// [`Reactor::set_virtual_deadline`] are compared against the supplied
    /// virtual clock `now_ns` instead of the host clock. Wall-clock
    /// deadlines are ignored on this path — a virtual-time run must never
    /// time out because the host was slow.
    pub fn poll_all_at(&mut self, now_ns: u64) -> Vec<ReactorEvent> {
        let mut events = Vec::new();
        for (token, slot) in self.slots.iter_mut().enumerate() {
            let mut readable = false;
            while let Some(p) = slot.ep.try_recv() {
                slot.mailbox.push_back(p);
                readable = true;
            }
            if readable {
                // Progress resets the virtual clock too: deadlines bound
                // *silence* in simulated time.
                if let Some((_, t)) = slot.vdeadline {
                    slot.vdeadline = Some((now_ns + t, t));
                }
                events.push(ReactorEvent::Readable(token));
            } else if let Some((at, timeout_ns)) = slot.vdeadline {
                if now_ns >= at && slot.mailbox.is_empty() {
                    slot.vdeadline = None;
                    events.push(ReactorEvent::TimedOut(
                        token,
                        NetError::Timeout {
                            waited: Duration::from_nanos(timeout_ns),
                        },
                    ));
                }
            }
        }
        events
    }

    /// Pops the oldest mailbox packet for `token`, if any.
    pub fn pop(&mut self, token: Token) -> Option<Packet> {
        self.slots[token].mailbox.pop_front()
    }

    /// Pops the oldest mailbox packet of round tag `kind`, skipping (and
    /// keeping) packets of other kinds.
    pub fn pop_kind(&mut self, token: Token, kind: u16) -> Option<Packet> {
        let mailbox = &mut self.slots[token].mailbox;
        let at = mailbox.iter().position(|p| p.kind == kind)?;
        mailbox.remove(at)
    }

    /// Packets currently buffered for `token`.
    pub fn mailbox_len(&self, token: Token) -> usize {
        self.slots[token].mailbox.len()
    }

    /// Drains the whole mailbox of `token` (oldest first).
    pub fn drain(&mut self, token: Token) -> Vec<Packet> {
        self.slots[token].mailbox.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Medium;
    use bytes::Bytes;

    #[test]
    fn poll_all_fans_packets_to_the_right_mailboxes() {
        let m = Medium::new();
        let a = m.join();
        let mut r = Reactor::new();
        let tb = r.register(m.join());
        let tc = r.register(m.join());
        a.unicast(r.endpoint(tb).id(), 1, Bytes::from_static(b"b"), 8);
        a.unicast(r.endpoint(tc).id(), 2, Bytes::from_static(b"c"), 8);
        let events = r.poll_all();
        assert_eq!(events.len(), 2);
        assert_eq!(r.pop(tb).unwrap().payload.as_ref(), b"b");
        assert_eq!(r.pop(tc).unwrap().payload.as_ref(), b"c");
        assert!(r.pop(tb).is_none());
    }

    #[test]
    fn pop_kind_skips_and_keeps_other_kinds() {
        let m = Medium::new();
        let a = m.join();
        let mut r = Reactor::new();
        let t = r.register(m.join());
        a.broadcast(5, Bytes::from_static(b"five"), 8);
        a.broadcast(6, Bytes::from_static(b"six"), 8);
        r.poll_all();
        assert_eq!(r.pop_kind(t, 6).unwrap().payload.as_ref(), b"six");
        assert_eq!(r.mailbox_len(t), 1);
        assert_eq!(r.pop_kind(t, 5).unwrap().payload.as_ref(), b"five");
        assert!(r.pop_kind(t, 5).is_none());
    }

    #[test]
    fn deadline_surfaces_timeout_once_and_only_when_silent() {
        let m = Medium::new();
        let a = m.join();
        let mut r = Reactor::new();
        let t = r.register(m.join());
        r.set_deadline(t, Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let events = r.poll_all();
        assert!(matches!(
            events[..],
            [ReactorEvent::TimedOut(tok, NetError::Timeout { .. })] if tok == t
        ));
        // Expiry disarmed it: silence no longer reports.
        assert!(r.poll_all().is_empty());
        // Re-armed, but traffic resets the clock instead of timing out.
        r.set_deadline(t, Some(Duration::from_millis(0)));
        a.broadcast(1, Bytes::new(), 8);
        std::thread::sleep(Duration::from_millis(2));
        let events = r.poll_all();
        assert!(matches!(events[..], [ReactorEvent::Readable(tok)] if tok == t));
    }

    #[test]
    fn virtual_deadline_fires_on_the_simulated_clock_only() {
        let m = Medium::new();
        let a = m.join();
        let mut r = Reactor::new();
        let t = r.register(m.join());
        r.set_virtual_deadline(t, 0, Some(1_000_000)); // 1 virtual ms
                                                       // The host clock is irrelevant: polling *before* the virtual
                                                       // deadline reports nothing, no matter how long the host waited.
        std::thread::sleep(Duration::from_millis(3));
        assert!(r.poll_all_at(999_999).is_empty());
        // Crossing the virtual deadline with a silent mailbox fires once.
        let events = r.poll_all_at(1_000_000);
        assert!(matches!(
            events[..],
            [ReactorEvent::TimedOut(tok, NetError::Timeout { waited })]
                if tok == t && waited == Duration::from_millis(1)
        ));
        assert!(r.poll_all_at(2_000_000).is_empty(), "expiry disarms");
        // Traffic re-arms the silence window instead of timing out.
        r.set_virtual_deadline(t, 2_000_000, Some(1_000_000));
        a.broadcast(1, Bytes::new(), 8);
        let events = r.poll_all_at(3_000_000);
        assert!(matches!(events[..], [ReactorEvent::Readable(tok)] if tok == t));
        assert!(r.pop(t).is_some());
        assert!(r.poll_all_at(3_500_000).is_empty(), "re-armed at 3 ms");
        assert_eq!(r.poll_all_at(4_000_000).len(), 1, "fires at 3 ms + 1 ms");
    }

    #[test]
    fn never_blocks_with_nothing_to_read() {
        let m = Medium::new();
        let mut r = Reactor::new();
        let t = r.register(m.join());
        assert!(r.poll_all().is_empty());
        assert_eq!(r.mailbox_len(t), 0);
        assert!(r.drain(t).is_empty());
    }
}
