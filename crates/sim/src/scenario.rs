//! Scenario runners: set up credentials and execute one protocol at one
//! group size, returning the (symmetric) per-user operation counts.
//!
//! All scenarios run on the **toy security profile** — the paper's energy
//! model prices *operation counts* and *nominal wire bits*, both of which
//! are independent of the actual parameter sizes, so sweeps use fast
//! algebra while remaining real executions (keys agree, signatures verify).
//! `run_initial` asserts the instrumented counts equal the Table 1 closed
//! form before returning them.

use egka_core::{authbd, proposed, ssn, AuthKit, Pkg, RunConfig, SecurityProfile};
use egka_energy::complexity::InitialProtocol;
use egka_energy::OpCounts;
use egka_hash::ChaChaRng;
use egka_sig::{Dsa, Ecdsa};
use rand::SeedableRng;

/// Runs `protocol` at group size `n` (instrumented, toy algebra) and
/// returns one representative per-user count vector.
///
/// # Panics
/// Panics if the run fails, keys disagree, per-user counts are asymmetric,
/// or the instrumented counts deviate from the Table 1 closed form.
pub fn run_initial(protocol: InitialProtocol, n: usize, seed: u64) -> OpCounts {
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x5ce9_a710);
    let report = match protocol {
        InitialProtocol::ProposedGqBatch => {
            let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
            let keys = pkg.extract_group(n as u32);
            proposed::run(pkg.params(), &keys, seed, RunConfig::default()).0
        }
        InitialProtocol::Ssn => {
            let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
            let keys = pkg.extract_group(n as u32);
            ssn::run(pkg.params(), &keys, seed)
        }
        InitialProtocol::BdSok => {
            let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
            let pairing = egka_ec::gen_pairing_group(&mut rng, 96, 64);
            let kit = AuthKit::setup_sok(&mut rng, pairing, n);
            authbd::run(&bd, &kit, seed)
        }
        InitialProtocol::BdEcdsa => {
            let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
            let kit = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), n);
            authbd::run(&bd, &kit, seed)
        }
        InitialProtocol::BdDsa => {
            let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
            let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96));
            let kit = AuthKit::setup_dsa(&mut rng, dsa, n);
            authbd::run(&bd, &kit, seed)
        }
    };
    assert!(report.keys_agree(), "{}: keys diverged", protocol.key());
    let expect = protocol.per_user_counts(n as u64);
    for node in &report.nodes {
        assert_priced_counts_eq(&node.counts, &expect, protocol.key());
    }
    report.nodes[0].counts.clone()
}

/// Asserts the *priced* operations and traffic of `got` equal `want`
/// (bookkeeping ops the paper prices at zero are excluded).
pub fn assert_priced_counts_eq(got: &OpCounts, want: &OpCounts, what: &str) {
    use egka_energy::CompOp;
    for i in 0..egka_energy::NUM_OPS {
        let op = CompOp::from_index(i).expect("valid op index");
        if matches!(
            op,
            CompOp::Hash | CompOp::ModInv | CompOp::ModMul | CompOp::SymEnc | CompOp::SymDec
        ) {
            continue;
        }
        assert_eq!(
            got.comp.get(i).copied().unwrap_or(0),
            want.comp.get(i).copied().unwrap_or(0),
            "{what}: count mismatch for {op:?}"
        );
    }
    assert_eq!(got.msgs_tx, want.msgs_tx, "{what}: msgs_tx");
    assert_eq!(got.msgs_rx, want.msgs_rx, "{what}: msgs_rx");
    assert_eq!(got.tx_bits, want.tx_bits, "{what}: tx_bits");
    assert_eq!(got.rx_bits, want.rx_bits, "{what}: rx_bits");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The instrumented == closed-form assertion inside `run_initial` is
    /// the real test; these calls exercise it for every protocol.
    #[test]
    fn all_protocols_match_closed_forms_at_n6() {
        for p in InitialProtocol::ALL {
            let counts = run_initial(p, 6, 0xc0ffee);
            assert_eq!(counts.msgs_tx, 2, "{}", p.key());
        }
    }

    #[test]
    fn proposed_matches_at_larger_n() {
        let counts = run_initial(InitialProtocol::ProposedGqBatch, 17, 7);
        assert_eq!(counts.msgs_rx, 32);
    }
}
