//! Report data structures and text/CSV renderers for the reproduced
//! tables and figure, plus the radio-scenario summary.

use egka_medium::BatteryStatus;
use serde::{Deserialize, Serialize};

/// What running a scenario over the virtual-time radio adds to its
/// report: rekey latency in **virtual radio milliseconds** and the
/// battery ledger.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RadioSummary {
    /// `(p50, p95, p99)` virtual-ms latency across every committed rekey.
    pub latency_quantiles_ms: Option<(f64, f64, f64)>,
    /// Members whose battery drained to zero (each was powered off
    /// mid-protocol and auto-detached).
    pub nodes_died: u64,
    /// The dead, ascending by raw user id.
    pub died: Vec<u32>,
    /// Total energy drawn from all batteries, microjoules.
    pub total_spent_uj: f64,
    /// The heaviest spenders (top 5 by µJ drawn), for the per-node budget
    /// view.
    pub top_spenders: Vec<BatteryStatus>,
}

impl RadioSummary {
    /// Plain-text rendering appended to a scenario report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if let Some((p50, p95, p99)) = self.latency_quantiles_ms {
            let _ = writeln!(
                out,
                "radio: rekey latency p50 {p50:.1} / p95 {p95:.1} / p99 {p99:.1} virtual ms"
            );
        }
        let _ = writeln!(
            out,
            "radio: {:.1} mJ drawn from batteries   {} node(s) died{}",
            self.total_spent_uj / 1000.0,
            self.nodes_died,
            if self.died.is_empty() {
                String::new()
            } else {
                format!(
                    " ({})",
                    self.died
                        .iter()
                        .map(|u| format!("U{u}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        );
        for s in &self.top_spenders {
            let _ = writeln!(
                out,
                "  U{:<6} spent {:>12.1} µJ   remaining {:>12}   {}",
                s.user,
                s.spent_uj,
                if s.capacity_uj.is_infinite() {
                    "∞".to_string()
                } else {
                    format!("{:.1} µJ", s.remaining_uj())
                },
                if s.dead { "DEAD" } else { "alive" }
            );
        }
        out
    }
}

/// How a data point's operation counts were obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Real protocol execution over the simulated medium, instrumented.
    Instrumented,
    /// Closed-form counts (validated against instrumented runs at the
    /// sizes that are executed).
    ClosedForm,
}

impl Source {
    /// One-character tag for table rendering.
    pub fn tag(self) -> &'static str {
        match self {
            Source::Instrumented => "I",
            Source::ClosedForm => "C",
        }
    }
}

/// One point of Figure 1: per-node energy for (protocol, n, transceiver).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure1Point {
    /// Protocol key (`proposed`, `bd_sok`, …).
    pub protocol: String,
    /// Curve label from the paper's legend (a–j).
    pub curve: char,
    /// Group size.
    pub n: u64,
    /// Transceiver name.
    pub transceiver: String,
    /// Computational energy, joules.
    pub comp_j: f64,
    /// Communication energy, joules.
    pub comm_j: f64,
    /// Total per-node energy, joules.
    pub total_j: f64,
    /// Count provenance.
    pub source: Source,
}

/// The full Figure 1 dataset.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Figure1 {
    /// All points (5 protocols × sizes × 2 transceivers).
    pub points: Vec<Figure1Point>,
}

impl Figure1 {
    /// CSV rendering (one row per point).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("protocol,curve,n,transceiver,comp_j,comm_j,total_j,source\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.6},{}\n",
                p.protocol,
                p.curve,
                p.n,
                p.transceiver,
                p.comp_j,
                p.comm_j,
                p.total_j,
                p.source.tag()
            ));
        }
        out
    }

    /// Looks up a point.
    pub fn get(&self, protocol: &str, n: u64, transceiver_contains: &str) -> Option<&Figure1Point> {
        self.points.iter().find(|p| {
            p.protocol == protocol && p.n == n && p.transceiver.contains(transceiver_contains)
        })
    }

    /// An ASCII log-scale rendering in the shape of the paper's Figure 1:
    /// energy (log10 J) against group size, one column block per n.
    pub fn to_ascii_chart(&self) -> String {
        let ns: Vec<u64> = {
            let mut v: Vec<u64> = self.points.iter().map(|p| p.n).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut out = String::new();
        out.push_str("Energy consumed per node (J, log scale) — Figure 1 reproduction\n");
        let curves: Vec<(char, String, String)> = {
            let mut v: Vec<(char, String, String)> = self
                .points
                .iter()
                .map(|p| (p.curve, p.protocol.clone(), p.transceiver.clone()))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        for (curve, proto, radio) in &curves {
            out.push_str(&format!("  ({curve}) {proto:<10} {radio}\n"));
        }
        out.push('\n');
        // Rows: log10 bands from 100 J down to 0.01 J (paper's axis).
        let bands: Vec<f64> = (-2..=2).rev().map(|e| 10f64.powi(e)).collect();
        out.push_str("   J      ");
        for n in &ns {
            out.push_str(&format!("n={n:<7}"));
        }
        out.push('\n');
        for (bi, band) in bands.iter().enumerate() {
            let upper = band * 10.0;
            out.push_str(&format!("{band:>7} | "));
            for n in &ns {
                let mut cell: Vec<char> = Vec::new();
                for p in self.points.iter().filter(|p| p.n == *n) {
                    let in_band = if bi == 0 {
                        p.total_j >= *band
                    } else {
                        p.total_j >= *band && p.total_j < upper
                    };
                    if in_band {
                        cell.push(p.curve);
                    }
                }
                cell.sort_unstable();
                let s: String = cell.into_iter().collect();
                out.push_str(&format!("{s:<9}"));
            }
            out.push('\n');
        }
        out
    }
}

/// One row of the reproduced Table 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table5Row {
    /// "BD Join", "Our Join Protocol", …
    pub protocol: String,
    /// Role within the event ("U1", "Remain. Users", …).
    pub role: String,
    /// The paper's printed energy in joules.
    pub paper_j: f64,
    /// Our measured/derived energy in joules.
    pub measured_j: f64,
    /// Count provenance.
    pub source: Source,
}

impl Table5Row {
    /// Relative deviation from the paper's printed value.
    pub fn rel_err(&self) -> f64 {
        (self.measured_j - self.paper_j).abs() / self.paper_j
    }
}

/// The reproduced Table 5.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table5 {
    /// All rows, paper order.
    pub rows: Vec<Table5Row>,
}

impl Table5 {
    /// Markdown rendering with paper-vs-measured columns.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Protocol | Role | Paper (J) | Measured (J) | Δ% | Src |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {:.4} | {:+.1}% | {} |\n",
                r.protocol,
                r.role,
                r.paper_j,
                r.measured_j,
                (r.measured_j - r.paper_j) / r.paper_j * 100.0,
                r.source.tag()
            ));
        }
        out
    }

    /// Largest relative deviation across rows.
    pub fn max_rel_err(&self) -> f64 {
        self.rows.iter().map(|r| r.rel_err()).fold(0.0, f64::max)
    }
}

/// A generic markdown table builder used by the Table 1/2/3/4 printers.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(protocol: &str, curve: char, n: u64, total: f64) -> Figure1Point {
        Figure1Point {
            protocol: protocol.into(),
            curve,
            n,
            transceiver: "WLAN".into(),
            comp_j: total / 2.0,
            comm_j: total / 2.0,
            total_j: total,
            source: Source::Instrumented,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let f = Figure1 {
            points: vec![pt("proposed", 'j', 10, 0.07)],
        };
        let csv = f.to_csv();
        assert!(csv.starts_with("protocol,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("proposed,j,10"));
    }

    #[test]
    fn ascii_chart_places_curves_in_bands() {
        let f = Figure1 {
            points: vec![pt("proposed", 'j', 10, 0.07), pt("bd_sok", 'e', 10, 15.0)],
        };
        let chart = f.to_ascii_chart();
        assert!(chart.contains("(e)"));
        assert!(chart.contains("(j)"));
        // 15 J lands in the 10–100 band; 0.07 J in the 0.01–0.1 band.
        let band10 = chart
            .lines()
            .find(|l| l.trim_start().starts_with("10 "))
            .unwrap();
        assert!(band10.contains('e'), "{band10}");
    }

    #[test]
    fn table5_markdown_and_errors() {
        let t = Table5 {
            rows: vec![Table5Row {
                protocol: "BD Join".into(),
                role: "U1 - Un".into(),
                paper_j: 1.234,
                measured_j: 1.235,
                source: Source::ClosedForm,
            }],
        };
        assert!(t.to_markdown().contains("| BD Join |"));
        assert!(t.max_rel_err() < 0.001);
    }

    #[test]
    fn generic_markdown_table_shape() {
        let md = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(md.lines().count(), 3);
    }
}
