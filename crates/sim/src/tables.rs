//! Table 4/5 reproduction: the dynamic protocols' complexity and energy.
//!
//! [`generate_table5`] runs every dynamic event **for real** (instrumented,
//! toy algebra) at the paper's parameters (`n = 100`, `m = 20`, `ℓd = 20`,
//! StrongARM + WLAN), cross-checks the per-role instrumented counts against
//! the closed forms, prices them, and lays the result next to the paper's
//! printed joules.

use egka_core::dynamics;
use egka_core::{authbd, proposed, AuthKit, Pkg, RunConfig, SecurityProfile, UserId};
use egka_energy::complexity::{
    bd_reexec, proposed_join, proposed_leave, proposed_merge, proposed_partition, DynamicEvent,
};
use egka_energy::{total_energy_mj, CpuModel, OpCounts, Transceiver};
use egka_hash::ChaChaRng;
use egka_sig::Ecdsa;
use rand::SeedableRng;

use crate::report::{Source, Table5, Table5Row};
use crate::scenario::assert_priced_counts_eq;

/// Table 5 run configuration.
#[derive(Clone, Copy, Debug)]
pub struct Table5Config {
    /// Current group size (paper: 100).
    pub n: usize,
    /// Merging users (paper: 20).
    pub m: usize,
    /// Leaving users (paper: 20).
    pub ld: usize,
    /// Execute instrumented runs (`false` = closed forms only; the closed
    /// forms are themselves validated by instrumented runs in the tests).
    pub instrument: bool,
    /// Seed for instrumented runs.
    pub seed: u64,
}

impl Default for Table5Config {
    fn default() -> Self {
        Table5Config {
            n: 100,
            m: 20,
            ld: 20,
            instrument: true,
            seed: 0x7ab1e5,
        }
    }
}

/// Paper-printed Table 5 values in joules, with role labels.
pub const PAPER_TABLE5: [(&str, &str, f64); 15] = [
    ("BD Join", "U1 - Un", 1.234),
    ("BD Join", "Un+1", 2.31),
    ("Our Join Protocol", "U1", 0.039),
    ("Our Join Protocol", "Un", 0.049),
    ("Our Join Protocol", "Un+1", 0.057),
    ("Our Join Protocol", "Others", 0.00134),
    ("BD Leave", "Remain. Users", 1.179),
    ("Our Leave Protocol", "Uj, j = odd", 0.160),
    ("Our Leave Protocol", "Uk, k = even", 0.150),
    ("BD Merge", "Group A Users", 1.660),
    ("BD Merge", "Group B Users", 2.532),
    ("Our Merge Protocol", "U1", 0.079),
    ("Our Merge Protocol", "Un+1", 0.079),
    ("Our Merge Protocol", "Others", 0.000986),
    ("BD Partition", "Remain. Users", 0.942),
];

fn energy_j(counts: &OpCounts) -> f64 {
    total_energy_mj(
        &CpuModel::strongarm_133(),
        &Transceiver::wlan_spectrum24(),
        counts,
    ) / 1000.0
}

/// Per-role counts for every Table 5 row, in [`PAPER_TABLE5`] order plus
/// the two final Partition rows.
struct RoleTable {
    rows: Vec<(String, String, OpCounts)>,
    source: Source,
}

/// Generates the reproduced Table 5.
///
/// # Panics
/// When `config.instrument` is set, panics if any instrumented role count
/// deviates from its closed form (the cross-check that justifies the
/// model).
pub fn generate_table5(config: &Table5Config) -> Table5 {
    let roles = if config.instrument {
        instrumented_roles(config)
    } else {
        closed_form_roles(config)
    };
    let mut rows = Vec::new();
    let paper: Vec<(&str, &str, f64)> = PAPER_TABLE5
        .into_iter()
        .chain([
            ("Our Partition Protocol", "Uj, j = odd", 0.142),
            ("Our Partition Protocol", "Uk, k = even", 0.132),
        ])
        .collect();
    for (protocol, role, paper_j) in paper {
        let counts = roles
            .rows
            .iter()
            .find(|(p, r, _)| p == protocol && r == role)
            .map(|(_, _, c)| c)
            .unwrap_or_else(|| panic!("missing role {protocol}/{role}"));
        rows.push(Table5Row {
            protocol: protocol.to_string(),
            role: role.to_string(),
            paper_j,
            measured_j: energy_j(counts),
            source: roles.source,
        });
    }
    Table5 { rows }
}

fn push_roles(
    rows: &mut Vec<(String, String, OpCounts)>,
    proto: &str,
    roles: Vec<egka_energy::RoleCounts>,
    names: &[&str],
) {
    for (rc, name) in roles.into_iter().zip(names) {
        rows.push((proto.to_string(), name.to_string(), rc.counts));
    }
}

fn closed_form_roles(config: &Table5Config) -> RoleTable {
    let (n, m, ld) = (config.n as u64, config.m as u64, config.ld as u64);
    let v_leave = n / 2; // even-indexed leaver keeps all 1-based odds
    let v_part = (n - ld) / 2; // leavers split evenly between parities
    let mut rows = Vec::new();
    push_roles(
        &mut rows,
        "BD Join",
        bd_reexec(DynamicEvent::Join, n, m, ld),
        &["U1 - Un", "Un+1"],
    );
    push_roles(
        &mut rows,
        "Our Join Protocol",
        proposed_join(n),
        &["U1", "Un", "Un+1", "Others"],
    );
    push_roles(
        &mut rows,
        "BD Leave",
        bd_reexec(DynamicEvent::Leave, n, m, ld),
        &["Remain. Users"],
    );
    push_roles(
        &mut rows,
        "Our Leave Protocol",
        proposed_leave(n, v_leave),
        &["Uj, j = odd", "Uk, k = even"],
    );
    push_roles(
        &mut rows,
        "BD Merge",
        bd_reexec(DynamicEvent::Merge, n, m, ld),
        &["Group A Users", "Group B Users"],
    );
    // The paper's Merge table lists both controllers (same cost) and one
    // bystander row.
    let merge_roles = proposed_merge(n, m);
    rows.push((
        "Our Merge Protocol".into(),
        "U1".into(),
        merge_roles[0].counts.clone(),
    ));
    rows.push((
        "Our Merge Protocol".into(),
        "Un+1".into(),
        merge_roles[1].counts.clone(),
    ));
    rows.push((
        "Our Merge Protocol".into(),
        "Others".into(),
        merge_roles[2].counts.clone(),
    ));
    push_roles(
        &mut rows,
        "BD Partition",
        bd_reexec(DynamicEvent::Partition, n, m, ld),
        &["Remain. Users"],
    );
    push_roles(
        &mut rows,
        "Our Partition Protocol",
        proposed_partition(n, ld, v_part),
        &["Uj, j = odd", "Uk, k = even"],
    );
    RoleTable {
        rows,
        source: Source::ClosedForm,
    }
}

fn instrumented_roles(config: &Table5Config) -> RoleTable {
    let (n, m, ld) = (config.n, config.m, config.ld);
    assert!(
        n >= 6 && m >= 2 && ld >= 2 && ld < n,
        "degenerate Table 5 config"
    );
    let mut rng = ChaChaRng::seed_from_u64(config.seed);
    let mut rows: Vec<(String, String, OpCounts)> = Vec::new();

    // ---- Proposed dynamics over a real session ----
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys_a = pkg.extract_group(n as u32);
    let (_, session_a) = proposed::run(pkg.params(), &keys_a, config.seed, RunConfig::default());

    // Join: a brand-new member joins.
    {
        let nk = pkg.extract(UserId((n + m) as u32));
        let out = dynamics::join(
            &session_a,
            UserId((n + m) as u32),
            &nk,
            config.seed ^ 1,
            false,
        );
        let want = proposed_join(n as u64);
        let picks = [(0usize, "U1"), (n - 1, "Un"), (n, "Un+1"), (1, "Others")];
        for ((idx, name), role) in picks.iter().zip(&want) {
            assert_priced_counts_eq(&out.reports[*idx].counts, &role.counts, "join role");
            rows.push((
                "Our Join Protocol".into(),
                name.to_string(),
                out.reports[*idx].counts.clone(),
            ));
        }
    }

    // Leave: an even 1-based member departs (keeps v = n/2 refreshers).
    {
        let out = dynamics::leave(&session_a, 3, config.seed ^ 2);
        let v = out.refreshers.len() as u64;
        assert_eq!(v, n as u64 / 2);
        let want = proposed_leave(n as u64, v);
        let odd_idx = out.refreshers[0];
        let even_idx = (0..out.reports.len())
            .find(|k| !out.refreshers.contains(k))
            .expect("even member exists");
        assert_priced_counts_eq(&out.reports[odd_idx].counts, &want[0].counts, "leave odd");
        assert_priced_counts_eq(&out.reports[even_idx].counts, &want[1].counts, "leave even");
        rows.push((
            "Our Leave Protocol".into(),
            "Uj, j = odd".into(),
            out.reports[odd_idx].counts.clone(),
        ));
        rows.push((
            "Our Leave Protocol".into(),
            "Uk, k = even".into(),
            out.reports[even_idx].counts.clone(),
        ));
    }

    // Merge with a second real group.
    {
        let keys_b: Vec<_> = (n..n + m).map(|i| pkg.extract(UserId(i as u32))).collect();
        let (_, session_b) =
            proposed::run(pkg.params(), &keys_b, config.seed ^ 3, RunConfig::default());
        let out = dynamics::merge(&session_a, &session_b, config.seed ^ 4);
        let want = proposed_merge(n as u64, m as u64);
        assert_priced_counts_eq(&out.reports[0].counts, &want[0].counts, "merge U1");
        assert_priced_counts_eq(&out.reports[n].counts, &want[1].counts, "merge Un+1");
        assert_priced_counts_eq(&out.reports[1].counts, &want[2].counts, "merge others");
        rows.push((
            "Our Merge Protocol".into(),
            "U1".into(),
            out.reports[0].counts.clone(),
        ));
        rows.push((
            "Our Merge Protocol".into(),
            "Un+1".into(),
            out.reports[n].counts.clone(),
        ));
        rows.push((
            "Our Merge Protocol".into(),
            "Others".into(),
            out.reports[1].counts.clone(),
        ));
    }

    // Partition: the tail `ld` positions depart (even parity split ⇒ the
    // paper's v = (n − ld)/2).
    {
        let leavers: Vec<usize> = (n - ld..n).collect();
        let out = dynamics::partition(&session_a, &leavers, config.seed ^ 5);
        let v = out.refreshers.len() as u64;
        assert_eq!(v, (n as u64 - ld as u64) / 2);
        let want = proposed_partition(n as u64, ld as u64, v);
        let odd_idx = out.refreshers[0];
        let even_idx = (0..out.reports.len())
            .find(|k| !out.refreshers.contains(k))
            .expect("even member exists");
        assert_priced_counts_eq(
            &out.reports[odd_idx].counts,
            &want[0].counts,
            "partition odd",
        );
        assert_priced_counts_eq(
            &out.reports[even_idx].counts,
            &want[1].counts,
            "partition even",
        );
        rows.push((
            "Our Partition Protocol".into(),
            "Uj, j = odd".into(),
            out.reports[odd_idx].counts.clone(),
        ));
        rows.push((
            "Our Partition Protocol".into(),
            "Uk, k = even".into(),
            out.reports[even_idx].counts.clone(),
        ));
    }

    // ---- BD re-execution baselines (ECDSA, cached certificates) ----
    let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
    let ecdsa = Ecdsa::new(egka_ec::secp160r1());
    // Join: n+1 nodes; the last one is the newcomer.
    {
        let kit = AuthKit::setup_ecdsa(&mut rng, ecdsa.clone(), n + 1);
        let report = authbd::run_with_trust(&bd, &kit, config.seed ^ 6, |i, j| i < n && j < n);
        let want = bd_reexec(DynamicEvent::Join, n as u64, m as u64, ld as u64);
        assert_priced_counts_eq(
            &report.nodes[0].counts,
            &want[0].counts,
            "bd join returning",
        );
        assert_priced_counts_eq(&report.nodes[n].counts, &want[1].counts, "bd join newcomer");
        rows.push((
            "BD Join".into(),
            "U1 - Un".into(),
            report.nodes[0].counts.clone(),
        ));
        rows.push((
            "BD Join".into(),
            "Un+1".into(),
            report.nodes[n].counts.clone(),
        ));
    }
    // Leave: n−1 nodes, all certificates already trusted.
    {
        let kit = AuthKit::setup_ecdsa(&mut rng, ecdsa.clone(), n - 1);
        let report = authbd::run_with_trust(&bd, &kit, config.seed ^ 7, |_, _| true);
        let want = bd_reexec(DynamicEvent::Leave, n as u64, m as u64, ld as u64);
        assert_priced_counts_eq(&report.nodes[0].counts, &want[0].counts, "bd leave");
        rows.push((
            "BD Leave".into(),
            "Remain. Users".into(),
            report.nodes[0].counts.clone(),
        ));
    }
    // Merge: n+m nodes; same-side certificates trusted.
    {
        let kit = AuthKit::setup_ecdsa(&mut rng, ecdsa.clone(), n + m);
        let report = authbd::run_with_trust(&bd, &kit, config.seed ^ 8, |i, j| (i < n) == (j < n));
        let want = bd_reexec(DynamicEvent::Merge, n as u64, m as u64, ld as u64);
        assert_priced_counts_eq(&report.nodes[0].counts, &want[0].counts, "bd merge A");
        assert_priced_counts_eq(&report.nodes[n].counts, &want[1].counts, "bd merge B");
        rows.push((
            "BD Merge".into(),
            "Group A Users".into(),
            report.nodes[0].counts.clone(),
        ));
        rows.push((
            "BD Merge".into(),
            "Group B Users".into(),
            report.nodes[n].counts.clone(),
        ));
    }
    // Partition: n−ld nodes, everything trusted.
    {
        let kit = AuthKit::setup_ecdsa(&mut rng, ecdsa, n - ld);
        let report = authbd::run_with_trust(&bd, &kit, config.seed ^ 9, |_, _| true);
        let want = bd_reexec(DynamicEvent::Partition, n as u64, m as u64, ld as u64);
        assert_priced_counts_eq(&report.nodes[0].counts, &want[0].counts, "bd partition");
        rows.push((
            "BD Partition".into(),
            "Remain. Users".into(),
            report.nodes[0].counts.clone(),
        ));
    }

    RoleTable {
        rows,
        source: Source::Instrumented,
    }
}

/// Measured total message counts for Table 4's "Msgs" column, from one
/// instrumented run of each proposed dynamic protocol.
pub fn measured_dynamic_msgs(n: usize, m: usize, ld: usize, seed: u64) -> [(char, u64); 4] {
    let mut rng = ChaChaRng::seed_from_u64(seed);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys = pkg.extract_group(n as u32);
    let (_, session) = proposed::run(pkg.params(), &keys, seed, RunConfig::default());
    let join_msgs = {
        let nk = pkg.extract(UserId((n + m) as u32));
        let out = dynamics::join(&session, UserId((n + m) as u32), &nk, seed ^ 1, false);
        out.reports.iter().map(|r| r.counts.msgs_tx).sum()
    };
    let leave_msgs = {
        let out = dynamics::leave(&session, 3, seed ^ 2);
        out.reports.iter().map(|r| r.counts.msgs_tx).sum()
    };
    let merge_msgs = {
        let keys_b: Vec<_> = (n..n + m).map(|i| pkg.extract(UserId(i as u32))).collect();
        let (_, sb) = proposed::run(pkg.params(), &keys_b, seed ^ 3, RunConfig::default());
        let out = dynamics::merge(&session, &sb, seed ^ 4);
        out.reports.iter().map(|r| r.counts.msgs_tx).sum()
    };
    let part_msgs = {
        let leavers: Vec<usize> = (n - ld..n).collect();
        let out = dynamics::partition(&session, &leavers, seed ^ 5);
        out.reports.iter().map(|r| r.counts.msgs_tx).sum()
    };
    [
        ('J', join_msgs),
        ('L', leave_msgs),
        ('M', merge_msgs),
        ('P', part_msgs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small instrumented Table 5 (n = 10, m = 4, ld = 4): every role's
    /// instrumented counts must match the closed forms (asserted inside).
    #[test]
    fn small_instrumented_table5_is_consistent() {
        let config = Table5Config {
            n: 10,
            m: 4,
            ld: 4,
            instrument: true,
            seed: 42,
        };
        let t = generate_table5(&config);
        assert_eq!(t.rows.len(), 17);
        // At n=10 the measured values won't match the paper's n=100 numbers
        // (they're parameter-dependent); shape only: ours beats BD.
        let bd_join = t.rows.iter().find(|r| r.protocol == "BD Join").unwrap();
        let our_join = t
            .rows
            .iter()
            .find(|r| r.protocol == "Our Join Protocol" && r.role == "U1")
            .unwrap();
        assert!(bd_join.measured_j > our_join.measured_j * 3.0);
    }

    /// Closed-form Table 5 at the paper's parameters must land on the
    /// printed joules (tolerances documented in EXPERIMENTS.md).
    #[test]
    fn closed_form_table5_matches_paper_within_tolerance() {
        let config = Table5Config {
            instrument: false,
            ..Table5Config::default()
        };
        let t = generate_table5(&config);
        for row in &t.rows {
            let tol = match (row.protocol.as_str(), row.role.as_str()) {
                // The paper's own arithmetic for these rows is loose.
                ("BD Leave", _) => 0.05,
                ("BD Partition", _) => 0.05,
                ("Our Merge Protocol", "Others") => 0.05,
                ("Our Join Protocol", "Others") => 0.05,
                _ => 0.03,
            };
            assert!(
                row.rel_err() < tol,
                "{} / {}: paper {} J, measured {:.4} J (err {:.1}%)",
                row.protocol,
                row.role,
                row.paper_j,
                row.measured_j,
                row.rel_err() * 100.0
            );
        }
    }

    #[test]
    fn measured_message_counts_for_table4() {
        // n=8, m=4, ld=2: J=4 (paper prints 5), L = v + n − 2 with v=4 ⇒
        // measured 4 + 7 = 11 (paper's symbolic v+n−2 = 10), M=6, P = v+rem.
        let msgs = measured_dynamic_msgs(8, 4, 2, 7);
        assert_eq!(msgs[0], ('J', 4));
        assert_eq!(msgs[2], ('M', 6));
        // Leave: v=4 refreshers send 2 each, the other 3 remaining send 1.
        assert_eq!(msgs[1], ('L', 11));
        // Partition (ld=2 at tail, remaining 6, v=3): 3×2 + 3×1 = 9.
        assert_eq!(msgs[3], ('P', 9));
    }
}
