//! Time-to-key estimates — an extension the paper's data directly
//! supports but never reports.
//!
//! Table 2 gives per-operation **milliseconds** on the StrongARM and the
//! transceiver models carry data rates, so the same per-node counts that
//! price energy also price *latency*: how long a node is busy (compute)
//! plus how long the shared channel is busy with traffic the node must
//! receive or send. The model is deliberately simple and documented:
//!
//! ```text
//! t_node  = Σ count(op) × t_op                  (StrongARM ms, Table 2)
//! t_air   = (tx_bits + rx_bits) / data_rate     (serialized shared channel)
//! t_total = t_node + t_air
//! ```
//!
//! It ignores MAC contention and round synchronization waits, so it is a
//! *lower bound* — but it already surfaces a striking consequence the
//! energy numbers hide: BD-SOK at `n = 500` keeps a StrongARM busy for
//! **minutes** verifying pairings, while the proposed protocol stays under
//! a quarter second of compute at any size.

use egka_energy::complexity::InitialProtocol;
use egka_energy::{CompOp, CpuModel, OpCounts, Transceiver, NUM_OPS};
use serde::{Deserialize, Serialize};

/// Per-node latency split.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Compute time, milliseconds.
    pub comp_ms: f64,
    /// Airtime for this node's sent + received bits, milliseconds.
    pub airtime_ms: f64,
}

impl LatencyEstimate {
    /// Total time-to-key.
    pub fn total_ms(&self) -> f64 {
        self.comp_ms + self.airtime_ms
    }
}

/// Latency of a count vector under a CPU + radio.
pub fn node_latency(cpu: &CpuModel, radio: &Transceiver, counts: &OpCounts) -> LatencyEstimate {
    let mut comp_ms = 0.0;
    for i in 0..NUM_OPS {
        if let Some(op) = CompOp::from_index(i) {
            let c = counts.comp.get(i).copied().unwrap_or(0);
            if c > 0 {
                comp_ms += c as f64 * cpu.op_time_ms(op);
            }
        }
    }
    LatencyEstimate {
        comp_ms,
        airtime_ms: radio.airtime_ms(counts.tx_bits + counts.rx_bits),
    }
}

/// Time-to-key for an initial GKA protocol at size `n` (closed-form
/// counts; identical to instrumented counts wherever those run).
pub fn initial_gka_latency(
    protocol: InitialProtocol,
    n: u64,
    cpu: &CpuModel,
    radio: &Transceiver,
) -> LatencyEstimate {
    node_latency(cpu, radio, &protocol.per_user_counts(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strongarm() -> CpuModel {
        CpuModel::strongarm_133()
    }

    #[test]
    fn proposed_compute_time_is_constant_in_n() {
        let cpu = strongarm();
        let radio = Transceiver::wlan_spectrum24();
        let t10 = initial_gka_latency(InitialProtocol::ProposedGqBatch, 10, &cpu, &radio);
        let t500 = initial_gka_latency(InitialProtocol::ProposedGqBatch, 500, &cpu, &radio);
        assert!(
            (t10.comp_ms - t500.comp_ms).abs() < 1e-9,
            "3 exps + 1 gen + 1 batch, any n"
        );
        // ≈ 3×37.92 + 75.83 + 75.83 ≈ 265 ms
        assert!((t10.comp_ms - 265.42).abs() < 0.5, "got {}", t10.comp_ms);
    }

    #[test]
    fn sok_compute_time_explodes_at_scale() {
        let cpu = strongarm();
        let radio = Transceiver::wlan_spectrum24();
        let t = initial_gka_latency(InitialProtocol::BdSok, 500, &cpu, &radio);
        // 499 × (573.75 + 76.67) ms ≈ 5.4 minutes of verification.
        assert!(t.comp_ms > 4.0 * 60.0 * 1000.0, "got {} ms", t.comp_ms);
    }

    #[test]
    fn airtime_dominates_on_the_slow_radio() {
        let cpu = strongarm();
        let slow = Transceiver::radio_100kbps();
        let t = initial_gka_latency(InitialProtocol::ProposedGqBatch, 100, &cpu, &slow);
        assert!(t.airtime_ms > t.comp_ms, "100 kbps: channel-bound");
        let fast = Transceiver::wlan_spectrum24();
        let t2 = initial_gka_latency(InitialProtocol::ProposedGqBatch, 100, &cpu, &fast);
        assert!(t2.airtime_ms < t2.comp_ms, "WLAN: compute-bound");
    }

    #[test]
    fn latency_consistent_with_energy_ratio() {
        // Compute energy = compute time × 240 mW, by construction of the
        // paper's model; check the identity holds through our plumbing.
        let cpu = strongarm();
        let radio = Transceiver::wlan_spectrum24();
        let counts = InitialProtocol::BdEcdsa.per_user_counts(50);
        let lat = node_latency(&cpu, &radio, &counts);
        let comp_mj = egka_energy::comp_energy_mj(&cpu, &counts);
        let implied_mj = lat.comp_ms * 240.0 / 1000.0;
        // Within the paper's own rounding of Table 2 entries.
        assert!((comp_mj - implied_mj).abs() / comp_mj < 0.01);
    }
}
