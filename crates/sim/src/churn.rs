//! Churn workload driver for the `egka-service` layer.
//!
//! Generates seeded Poisson join/leave traffic over thousands of
//! concurrent groups, drives the sharded service through rekey epochs and
//! reports throughput, rekey-latency distribution, events-coalesced ratio
//! and per-epoch energy. Everything that matters is deterministic per
//! seed: the keys, the event stream, every counter — only the wall-clock
//! latencies vary run to run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_energy::{CpuModel, Transceiver};
use egka_hash::ChaChaRng;
use egka_medium::RadioProfile;
use egka_service::{
    EvictionPolicy, GroupId, KeyService, MembershipEvent, RadioConfig, Rebalancer, RecoveryReport,
    StoreConfig, SuiteId, SuitePolicy, SuiteUsage,
};
use rand::{Rng, SeedableRng};

use crate::report::RadioSummary;

/// Radio knobs for the churn scenario: run every rekey over the
/// virtual-time medium, optionally with finite batteries.
#[derive(Clone, Debug)]
pub struct RadioChurnConfig {
    /// Hardware/channel profile.
    pub profile: RadioProfile,
    /// Default per-member battery, microjoules (`f64::INFINITY` = mains).
    pub battery_uj: f64,
    /// The first `weak_nodes` user ids get `weak_battery_uj` instead —
    /// deterministic early deaths for the battery-exhaustion scenario.
    pub weak_nodes: u32,
    /// Budget of the weak nodes, microjoules.
    pub weak_battery_uj: f64,
}

impl RadioChurnConfig {
    /// The 100 kbps sensor field: 2 J batteries, two motes shipped with
    /// nearly-flat 100 mJ cells (they die mid-scenario).
    pub fn sensor_field() -> Self {
        RadioChurnConfig {
            profile: RadioProfile::sensor_100kbps(),
            battery_uj: 2_000_000.0,
            weak_nodes: 2,
            weak_battery_uj: 100_000.0,
        }
    }

    /// The equivalence configuration: 100 kbps channel, zero delay, zero
    /// loss, infinite batteries — must reproduce the instant-medium churn
    /// fingerprint bit for bit.
    pub fn ideal() -> Self {
        RadioChurnConfig {
            profile: RadioProfile::ideal(),
            battery_uj: f64::INFINITY,
            weak_nodes: 0,
            weak_battery_uj: f64::INFINITY,
        }
    }
}

/// A scripted misbehaviour the driver injects into the workload — the
/// raw material the identifiable-abort eviction engine is judged on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// `member` stops acknowledging rekeys from `from_epoch` (1-based)
    /// onwards and never comes back: the classic byzantine-silent
    /// culprit. Its group stalls until the engine evicts it.
    ByzantineSilent {
        /// Which user goes silent.
        member: u32,
        /// First epoch of silence.
        from_epoch: u64,
    },
    /// `member`'s link flaps: down for `period` epochs, up for `period`,
    /// repeating from epoch 1. Each down phase accrues a fresh stall
    /// streak, so the member is evicted, readmitted once its quarantine
    /// penalty elapses, and re-evicted with an escalated penalty.
    Flapping {
        /// Which user flaps.
        member: u32,
        /// Epochs per phase (down, then up).
        period: u64,
    },
}

/// Live resharding schedule for the churn scenario: starting at
/// `from_epoch`, the driver calls [`KeyService::add_shard`] at the top of
/// each epoch — mid-churn, with Poisson traffic already queued — until the
/// pool reaches `target_shards`. Keys are placement-independent, so a
/// resharded run must reproduce the static-pool fingerprint bit for bit;
/// the driver's tests pin exactly that.
#[derive(Clone, Copy, Debug)]
pub struct ReshardPlan {
    /// Shard-pool size to reach (the pool starts at
    /// [`ChurnConfig::shards`]).
    pub target_shards: usize,
    /// First epoch (1-based) at which shards are added.
    pub from_epoch: u64,
    /// Shards added per epoch once the schedule starts.
    pub per_epoch: usize,
    /// Also arm the service's pending-load rebalancer.
    pub rebalancer: Option<Rebalancer>,
}

impl ReshardPlan {
    /// The `reshard_churn` scenario's schedule: grow 4 → 16 shards,
    /// three per epoch from epoch 2, with the default rebalancer armed.
    pub fn four_to_sixteen() -> Self {
        ReshardPlan {
            target_shards: 16,
            from_epoch: 2,
            per_epoch: 3,
            rebalancer: Some(Rebalancer::default()),
        }
    }
}

/// Workload shape.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Concurrent groups.
    pub groups: u64,
    /// Founding group size (varied deterministically in `size..size+3`).
    pub group_size: u32,
    /// Rekey epochs to drive.
    pub epochs: u64,
    /// Poisson rate of joins per group per epoch.
    pub join_rate: f64,
    /// Poisson rate of leaves per group per epoch.
    pub leave_rate: f64,
    /// Service shards.
    pub shards: usize,
    /// Master seed (event stream + all protocol randomness).
    pub seed: u64,
    /// Per-delivery loss probability injected into every rekey medium
    /// (exercises the scheduler's timeout/retransmission path; `0.0` is
    /// the reliable baseline).
    pub loss: f64,
    /// Run every rekey over the virtual-time radio medium (`None` = the
    /// classic instant-medium scenario). Battery-dead members are evicted
    /// by the driver: it submits a `Leave` for each corpse, the way a real
    /// deployment's failure detector would.
    pub radio: Option<RadioChurnConfig>,
    /// How groups pick their GKA suite (default: every group runs the
    /// proposed scheme — the legacy scenario, golden-pinned).
    pub suite_policy: SuitePolicy,
    /// Record structured trace events (virtual-clock spans + instants)
    /// into this sink while the scenario runs. `None` (the default) keeps
    /// tracing a measured no-op. Instrumentation is purely observational,
    /// so fingerprints and counters are identical either way — and, being
    /// keyed to the virtual clock, the recorded events themselves are
    /// deterministic per seed.
    pub trace: Option<egka_trace::TraceConfig>,
    /// Fan each protocol step's per-node machine sweeps across threads
    /// (wall-clock only; every fingerprint, counter and trace event is
    /// bit-identical to the sequential pump — `trace_churn` asserts it).
    pub parallel_pump: bool,
    /// Arm the service's identifiable-abort eviction engine (`None`, the
    /// default, keeps the legacy golden-pinned behaviour: stalled groups
    /// retry forever).
    pub eviction: Option<EvictionPolicy>,
    /// Scripted faults the driver injects ([`FaultSpec`]). Evicted
    /// members are rejoined by the driver once their link is up and
    /// their quarantine penalty has elapsed, the way a real deployment's
    /// clients would retry.
    pub faults: Vec<FaultSpec>,
    /// Grow the shard pool live, mid-churn ([`ReshardPlan`]). `None` (the
    /// default) keeps the pool fixed at [`ChurnConfig::shards`].
    pub reshard: Option<ReshardPlan>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            groups: 1000,
            group_size: 4,
            epochs: 10,
            join_rate: 0.7,
            leave_rate: 0.6,
            shards: 8,
            seed: 0xc452_4e01,
            loss: 0.0,
            radio: None,
            suite_policy: SuitePolicy::default(),
            trace: None,
            parallel_pump: false,
            eviction: None,
            faults: Vec::new(),
            reshard: None,
        }
    }
}

impl ChurnConfig {
    /// The `radio_churn` bench scenario: 40 groups over the sensor-field
    /// radio (finite batteries, two nearly-flat motes). One definition,
    /// shared by the bench binary and CI, so knobs cannot drift.
    pub fn radio_bench() -> Self {
        ChurnConfig {
            groups: 40,
            epochs: 4,
            radio: Some(RadioChurnConfig::sensor_field()),
            ..ChurnConfig::default()
        }
    }

    /// The mixed-suite scenario: founding sizes 2..4 straddle the
    /// closed-form crossover on the paper's low-power profile (StrongARM +
    /// 100 kbps radio), so a `Cheapest` policy provably selects more than
    /// one protocol across the fleet.
    pub fn mixed_suite_bench() -> Self {
        ChurnConfig {
            group_size: 2,
            suite_policy: SuitePolicy::Cheapest {
                cpu: CpuModel::strongarm_133(),
                transceiver: Transceiver::radio_100kbps(),
            },
            ..ChurnConfig::default()
        }
    }

    /// Adds a byzantine-silent fault: `member` stops responding from
    /// `from_epoch` (1-based) and never recovers.
    pub fn byzantine_silent(mut self, member: u32, from_epoch: u64) -> Self {
        self.faults
            .push(FaultSpec::ByzantineSilent { member, from_epoch });
        self
    }

    /// Adds a flapping fault: `member`'s link alternates `period` epochs
    /// down, `period` epochs up, starting down at epoch 1.
    pub fn flapping(mut self, member: u32, period: u64) -> Self {
        self.faults.push(FaultSpec::Flapping { member, period });
        self
    }

    /// The `robust_churn` bench scenario: 60 groups, eviction armed with
    /// the default policy, one byzantine-silent member and one flapper
    /// whose cadence forces the full evict → readmit → re-evict arc
    /// inside the run. One definition shared by the bench binary and CI.
    pub fn robust_bench() -> Self {
        ChurnConfig {
            groups: 60,
            epochs: 12,
            eviction: Some(EvictionPolicy::default()),
            ..ChurnConfig::default()
        }
        .byzantine_silent(1, 2)
        .flapping(5, 4)
    }

    /// The `reshard_churn` scenario: 400 groups on 4 shards, grown live
    /// to 16 mid-churn under Poisson load with the rebalancer armed. One
    /// definition shared by the bench binary, CI and the tests — the
    /// acceptance gate is zero stalled epochs and a fingerprint
    /// bit-identical to the same workload on a static pool.
    pub fn reshard_bench() -> Self {
        ChurnConfig {
            groups: 400,
            epochs: 8,
            shards: 4,
            reshard: Some(ReshardPlan::four_to_sixteen()),
            ..ChurnConfig::default()
        }
    }
}

/// One epoch's aggregates.
#[derive(Clone, Debug)]
pub struct ChurnEpoch {
    /// Epoch number (1-based).
    pub epoch: u64,
    /// Events submitted for this epoch.
    pub events: u64,
    /// Rekeys executed.
    pub rekeys: u64,
    /// Events applied / rekeys executed.
    pub coalesce_ratio: f64,
    /// Priced energy of the epoch's rekeys, mJ.
    pub energy_mj: f64,
    /// `(p50, p95, max)` per-group rekey latency, if any rekeys ran.
    pub latency: Option<(Duration, Duration, Duration)>,
    /// `(p50, p95, p99)` rekey latency in **virtual radio ms** (radio
    /// scenarios only).
    pub virtual_latency: Option<(f64, f64, f64)>,
}

/// Scenario outcome.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Config echoed back.
    pub groups: u64,
    /// Total events submitted across all epochs.
    pub events_submitted: u64,
    /// Total events applied.
    pub events_applied: u64,
    /// Total §7/fallback rekeys executed.
    pub rekeys_executed: u64,
    /// Applied / rekeys — the batching win; > 1 whenever coalescing saved
    /// protocol executions.
    pub coalesce_ratio: f64,
    /// Total priced energy across all epochs, mJ.
    pub energy_mj: f64,
    /// Groups still alive at the end.
    pub groups_active: u64,
    /// Group-epochs aborted by a stalled rekey (non-zero only under
    /// loss/detachment; the events requeue and apply later).
    pub groups_stalled: u64,
    /// Loss-stalled protocol steps retried with fresh randomness.
    pub steps_retried: u64,
    /// Per-epoch breakdown.
    pub epochs: Vec<ChurnEpoch>,
    /// `(p50, p95, p99)` wall-clock rekey latency across every committed
    /// rekey of the scenario.
    pub wall_latency: Option<(Duration, Duration, Duration)>,
    /// Virtual-time summary (latency quantiles in virtual ms, battery
    /// ledger, deaths) — radio scenarios only.
    pub radio: Option<RadioSummary>,
    /// Per-suite breakdown: live groups, executed rekeys and priced
    /// energy per GKA suite. One entry under a `Fixed` policy; a
    /// `Cheapest` fleet splits across the crossover.
    pub suites: Vec<SuiteBreakdown>,
    /// Set when the scenario killed and recovered the controller
    /// mid-scenario ([`run_churn_with_crash`]): what the recovery
    /// replayed. Counters above only cover the post-recovery service life
    /// (observability resets with the process; the *keys* do not — the
    /// fingerprint must equal the uninterrupted run's).
    pub recovery: Option<CrashSummary>,
    /// Wall-clock of the whole scenario (setup + all ticks).
    pub wall: Duration,
    /// Events applied per wall-clock second.
    pub throughput_eps: f64,
    /// XOR-fold of every surviving group key — a determinism fingerprint:
    /// equal seeds must produce equal fingerprints.
    pub key_fingerprint: u64,
    /// The service's full cumulative counter set at scenario end — the
    /// bench artifacts embed it via
    /// [`egka_service::ServiceMetrics::to_json`] instead of hand-picking
    /// fields.
    pub metrics: egka_service::ServiceMetrics,
    /// Per-shard load and outcome stats at scenario end
    /// ([`egka_service::KeyService::shard_stats`]); counters sum to
    /// `metrics`.
    pub shards: Vec<egka_service::ShardStats>,
    /// The service's typed liveness verdict at scenario end.
    pub health: egka_service::HealthReport,
    /// Per-member stall attribution rows, worst offenders included —
    /// empty on a fault-free run.
    pub member_stalls: Vec<egka_service::StallRecord>,
    /// Quarantine cells `(member, until_epoch, evictions)` at scenario
    /// end — non-empty only when the eviction engine fired.
    pub quarantine: Vec<(u32, u64, u32)>,
    /// Fault-injected groups still stalled at scenario end. The
    /// robustness acceptance gate: with eviction armed this must be
    /// zero — every group with a scripted culprit completes over the
    /// survivors.
    pub stalled_faulted_groups: u64,
    /// Trace events dropped by the ring sink (`None` untraced). Any
    /// nonzero value means the trace (and its fingerprints) is
    /// incomplete — the bench gates fail on it.
    pub trace_drops: Option<u64>,
    /// Rendered metrics-registry table (`None` unless a registry was
    /// attached to [`ChurnConfig::trace`]) — the live-counter view a
    /// `--trace` run prints without needing a Perfetto export.
    pub metrics_table: Option<String>,
}

/// What a mid-scenario crash + recovery replayed
/// ([`ChurnReport::recovery`]).
#[derive(Clone, Copy, Debug)]
pub struct CrashSummary {
    /// Epoch (1-based) at which the controller was killed — after that
    /// epoch's events were submitted (and WAL-logged), before its tick.
    pub kill_epoch: u64,
    /// Epoch the restored snapshot covered, if one had been cut.
    pub snapshot_epoch: Option<u64>,
    /// WAL tail records replayed through the service entry points.
    pub records_replayed: u64,
    /// Committed epochs re-executed from the tail.
    pub epochs_replayed: u64,
    /// Live groups after recovery.
    pub groups_recovered: u64,
}

impl From<(u64, RecoveryReport)> for CrashSummary {
    fn from((kill_epoch, r): (u64, RecoveryReport)) -> Self {
        CrashSummary {
            kill_epoch,
            snapshot_epoch: r.snapshot_epoch,
            records_replayed: r.records_replayed,
            epochs_replayed: r.epochs_replayed,
            groups_recovered: r.groups_recovered,
        }
    }
}

/// One suite's share of a churn scenario.
#[derive(Clone, Debug)]
pub struct SuiteBreakdown {
    /// Which suite.
    pub suite: SuiteId,
    /// Live groups running it at scenario end.
    pub groups: u64,
    /// Rekeys (creations included) executed under it.
    pub rekeys: u64,
    /// Priced energy attributed to it, mJ.
    pub energy_mj: f64,
}

/// Knuth's Poisson sampler over the shim RNG (exact for the small rates
/// used here).
fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Runs the churn scenario.
///
/// Group membership is mirrored driver-side so every generated event is
/// valid by construction (joins use fresh identities; leaves pick live
/// members and never shrink a group below three) — the service's rejection
/// counters must therefore stay at zero, which the driver asserts.
pub fn run_churn(config: &ChurnConfig) -> ChurnReport {
    run_churn_inner(config, None)
}

/// Runs the churn scenario against a durable service and **kills the
/// controller mid-scenario**: at epoch `kill_epoch` (1-based), after that
/// epoch's events are submitted (and therefore write-ahead logged) but
/// before its tick, the service is dropped and a fresh one is recovered
/// from `store` — snapshot + WAL tail — then the scenario finishes.
///
/// The clients (the driver's membership mirror and event stream) survive
/// the controller crash, as they would in a real deployment. Determinism
/// makes the acceptance check exact: the finished run's
/// [`ChurnReport::key_fingerprint`] must be bit-for-bit equal to the
/// uninterrupted [`run_churn`] of the same config.
///
/// # Panics
/// Panics if `kill_epoch` is not within `1..=config.epochs`, or if
/// recovery fails (a damaged store).
pub fn run_churn_with_crash(
    config: &ChurnConfig,
    store: StoreConfig,
    kill_epoch: u64,
) -> ChurnReport {
    assert!(
        (1..=config.epochs).contains(&kill_epoch),
        "kill_epoch {kill_epoch} outside 1..={}",
        config.epochs
    );
    run_churn_inner(config, Some((store, kill_epoch)))
}

/// Assembles the service builder for `config` (shared by the initial
/// build and the post-crash recovery, so the two cannot drift).
fn assemble_builder(
    config: &ChurnConfig,
    store: Option<StoreConfig>,
) -> egka_service::ServiceBuilder {
    let mut builder = KeyService::builder()
        .shards(config.shards)
        .seed(config.seed)
        .suite_policy(config.suite_policy.clone())
        .parallel_pump(config.parallel_pump);
    if let Some(r) = &config.radio {
        builder = builder.radio(RadioConfig {
            profile: r.profile.clone(),
            default_battery_uj: r.battery_uj,
        });
    }
    if config.loss > 0.0 {
        builder = builder.loss(config.loss);
    }
    if let Some(policy) = config.eviction {
        builder = builder.eviction(policy);
    }
    if let Some(rb) = config.reshard.as_ref().and_then(|p| p.rebalancer) {
        builder = builder.rebalancer(rb);
    }
    if let Some(store) = store {
        builder = builder.store(store);
    }
    if let Some(trace) = &config.trace {
        builder = builder.trace(trace.clone());
    }
    builder
}

fn run_churn_inner(config: &ChurnConfig, crash: Option<(StoreConfig, u64)>) -> ChurnReport {
    let started = Instant::now();
    let mut rng = ChaChaRng::seed_from_u64(config.seed ^ 0xc4_52_4e);
    let mut setup_rng = ChaChaRng::seed_from_u64(config.seed ^ 0x5e_70);
    let pkg = Arc::new(Pkg::setup(&mut setup_rng, SecurityProfile::Toy));
    let mut svc =
        assemble_builder(config, crash.as_ref().map(|(s, _)| s.clone())).build(Arc::clone(&pkg));
    if let Some(radio) = &config.radio {
        for u in 0..radio.weak_nodes {
            svc.set_battery(UserId(u), radio.weak_battery_uj);
        }
    }

    // Founding membership: disjoint id ranges per group, sizes varied in
    // `group_size..group_size+3`.
    let mut next_user: u32 = 0;
    let mut mirror: Vec<(GroupId, Vec<UserId>)> = Vec::with_capacity(config.groups as usize);
    for g in 0..config.groups {
        let size = config.group_size + (g % 3) as u32;
        let members: Vec<UserId> = (next_user..next_user + size).map(UserId).collect();
        next_user += size;
        svc.create_group(g, &members).expect("create churn group");
        mirror.push((g, members));
    }

    let mut epochs = Vec::with_capacity(config.epochs as usize);
    let mut events_submitted = 0u64;
    let mut wall_latencies: Vec<Duration> = Vec::new();
    let mut evicted: std::collections::BTreeSet<UserId> = std::collections::BTreeSet::new();
    let mut recovery: Option<CrashSummary> = None;
    // Robustness bookkeeping: links the fault script holds down, homes of
    // members the engine evicted (so the driver can rejoin them), and the
    // groups a scripted culprit ever belonged to (the acceptance gate).
    let mut fault_down: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let scripted: std::collections::BTreeSet<u32> = config
        .faults
        .iter()
        .map(|f| match *f {
            FaultSpec::ByzantineSilent { member, .. } => member,
            FaultSpec::Flapping { member, .. } => member,
        })
        .collect();
    let mut evicted_home: std::collections::BTreeMap<u32, GroupId> =
        std::collections::BTreeMap::new();
    let mut faulted_groups: std::collections::BTreeSet<GroupId> = std::collections::BTreeSet::new();
    for epoch_idx in 0..config.epochs {
        let mut epoch_events = 0u64;
        let epoch = epoch_idx + 1;
        // The resharding schedule runs at the top of the epoch, with the
        // previous epochs' groups (and any still-queued events) live on
        // the pool — every add is a mid-churn live handoff. Guarding on
        // the service's own shard count makes the step idempotent across
        // a crash: replayed AddShard records already grew the pool.
        if let Some(plan) = &config.reshard {
            if epoch >= plan.from_epoch {
                for _ in 0..plan.per_epoch {
                    if svc.shard_count() < plan.target_shards {
                        svc.add_shard();
                    }
                }
            }
        }
        // Evictions can legitimately dissolve a group (all its members
        // died or left); stop generating traffic for the tombstone.
        if config.radio.is_some() || config.eviction.is_some() {
            let live: std::collections::BTreeSet<GroupId> = svc.group_ids().into_iter().collect();
            mirror.retain(|(g, _)| live.contains(g));
        }
        // The fault script: silence and flapping are link-level, so the
        // driver detaches/reattaches the member. Every down transition
        // also submits a fresh Join to the victim's group — guaranteed
        // traffic, so the stall streak accrues deterministically instead
        // of riding on the Poisson draw.
        for fault in &config.faults {
            let (member, goes_down) = match *fault {
                FaultSpec::ByzantineSilent { member, from_epoch } => {
                    if epoch != from_epoch {
                        continue;
                    }
                    (member, true)
                }
                FaultSpec::Flapping { member, period } => {
                    if (epoch - 1) % period != 0 {
                        continue;
                    }
                    (member, ((epoch - 1) / period) % 2 == 0)
                }
            };
            let u = UserId(member);
            if goes_down {
                svc.detach_member(u);
                fault_down.insert(member);
                if let Some(at) = mirror.iter().position(|(_, ms)| ms.contains(&u)) {
                    let (g, members) = &mut mirror[at];
                    faulted_groups.insert(*g);
                    let j = UserId(next_user);
                    next_user += 1;
                    svc.submit(*g, MembershipEvent::Join(j))
                        .expect("fault join submit");
                    members.push(j);
                    epoch_events += 1;
                }
            } else {
                svc.attach_member(u);
                fault_down.remove(&member);
            }
        }
        // The deployment's failure detector: members whose battery died
        // in an earlier epoch are evicted with an ordinary Leave — the
        // survivors' Partition (or fallback GKA) never needs the dead
        // radio, so the group recovers.
        for u in svc.dead_members() {
            if !evicted.insert(u) {
                continue;
            }
            if let Some((g, members)) = mirror.iter_mut().find(|(_, members)| members.contains(&u))
            {
                svc.submit(*g, MembershipEvent::Leave(u)).expect("evict");
                members.retain(|&m| m != u);
                epoch_events += 1;
            }
        }
        // Members the engine evicted rejoin once their link is back up
        // and their quarantine penalty has elapsed — the flapping
        // re-eviction path runs through here.
        let rejoinable: Vec<u32> = evicted_home
            .keys()
            .copied()
            .filter(|m| !fault_down.contains(m) && !svc.is_quarantined(UserId(*m)))
            .collect();
        for m in rejoinable {
            let g = evicted_home
                .remove(&m)
                .expect("rejoinable member has a home");
            if let Some(at) = mirror.iter().position(|(gg, _)| *gg == g) {
                svc.submit(g, MembershipEvent::Join(UserId(m)))
                    .expect("readmission join submit");
                mirror[at].1.push(UserId(m));
                epoch_events += 1;
            }
        }
        for (g, members) in mirror.iter_mut() {
            let joins = poisson(&mut rng, config.join_rate);
            let leaves = poisson(&mut rng, config.leave_rate);
            for _ in 0..joins {
                let u = UserId(next_user);
                next_user += 1;
                svc.submit(*g, MembershipEvent::Join(u))
                    .expect("join submit");
                members.push(u);
                epoch_events += 1;
            }
            for _ in 0..leaves {
                if members.len() <= 3 {
                    break; // keep every group rekeyable forever
                }
                let at = (rng.next_u64() % members.len() as u64) as usize;
                if scripted.contains(&members[at].0) {
                    continue; // the fault script owns its members' exits
                }
                let u = members.remove(at);
                svc.submit(*g, MembershipEvent::Leave(u))
                    .expect("leave submit");
                epoch_events += 1;
            }
        }
        events_submitted += epoch_events;
        // The crash point: this epoch's events are in the WAL but its
        // commit is not — the controller dies and a new process recovers
        // from snapshot + tail, mid-scenario.
        if let Some((store, kill_epoch)) = &crash {
            if *kill_epoch == epoch_idx + 1 {
                drop(svc);
                let (restored, rr) = assemble_builder(config, Some(store.clone()))
                    .recover(Arc::clone(&pkg))
                    .expect("recover the churn controller from its store");
                svc = restored;
                recovery = Some(CrashSummary::from((*kill_epoch, rr)));
            }
        }
        let report = svc.tick();
        assert_eq!(
            report.events_rejected, 0,
            "driver generates only valid events"
        );
        for &(g, u) in &report.evicted {
            if let Some((_, members)) = mirror.iter_mut().find(|(gg, _)| *gg == g) {
                members.retain(|&m| m != u);
            }
            evicted_home.insert(u.0, g);
        }
        wall_latencies.extend_from_slice(&report.rekey_latencies);
        epochs.push(ChurnEpoch {
            epoch: report.epoch,
            events: epoch_events,
            rekeys: report.rekeys_executed,
            coalesce_ratio: report.coalesce_ratio(),
            energy_mj: report.energy_mj,
            latency: report.latency_quantiles(),
            virtual_latency: report.latency_quantiles_virtual(),
        });
    }

    let metrics = svc.metrics().clone();
    let wall = started.elapsed();
    let wall_latency = {
        let ms: Vec<f64> = wall_latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .collect();
        egka_service::quantiles3(&ms).map(|(p50, p95, p99)| {
            let d = |ms: f64| Duration::from_secs_f64(ms / 1e3);
            (d(p50), d(p95), d(p99))
        })
    };
    let radio = config.radio.as_ref().map(|_| {
        let mut batteries = svc.battery_status();
        let total_spent_uj = batteries.iter().map(|s| s.spent_uj).sum();
        batteries.sort_by(|a, b| {
            b.spent_uj
                .partial_cmp(&a.spent_uj)
                .expect("drain is finite")
        });
        batteries.truncate(5);
        RadioSummary {
            latency_quantiles_ms: metrics.virtual_latency_quantiles(),
            nodes_died: metrics.nodes_died,
            died: svc.dead_members().iter().map(|u| u.0).collect(),
            total_spent_uj,
            top_spenders: batteries,
        }
    });
    let groups_per_suite = svc.groups_per_suite();
    let suites: Vec<SuiteBreakdown> = SuiteId::ALL
        .into_iter()
        .filter_map(|id| {
            let groups = groups_per_suite.get(&id).copied().unwrap_or(0);
            let usage: SuiteUsage = metrics.per_suite.get(&id).copied().unwrap_or_default();
            (groups > 0 || usage.rekeys > 0).then_some(SuiteBreakdown {
                suite: id,
                groups,
                rekeys: usage.rekeys,
                energy_mj: usage.energy_mj,
            })
        })
        .collect();
    let key_fingerprint = svc
        .group_ids()
        .iter()
        .map(|&g| {
            let bytes = svc.group_key(g).expect("live group").to_bytes_be();
            bytes
                .iter()
                .fold(0u64, |acc, &b| acc.rotate_left(8) ^ u64::from(b))
        })
        .fold(0u64, |acc, h| acc.rotate_left(1) ^ h);

    let quarantine = svc.quarantine_rows();
    let stalled_faulted_groups = match svc.health() {
        egka_service::HealthReport::Stalled { ref groups } => {
            groups.iter().filter(|g| faulted_groups.contains(g)).count() as u64
        }
        _ => 0,
    };
    let (trace_drops, metrics_table) = match &config.trace {
        Some(tc) => (
            Some(tc.sink.dropped()),
            tc.registry.as_ref().map(|r| r.snapshot().render_table()),
        ),
        None => (None, None),
    };
    ChurnReport {
        groups: config.groups,
        events_submitted,
        events_applied: metrics.events_applied,
        rekeys_executed: metrics.rekeys_executed,
        coalesce_ratio: metrics.coalesce_ratio(),
        energy_mj: metrics.energy_mj,
        groups_active: metrics.groups_active,
        groups_stalled: metrics.groups_stalled,
        steps_retried: metrics.steps_retried,
        epochs,
        wall_latency,
        radio,
        suites,
        recovery,
        wall,
        throughput_eps: metrics.events_applied as f64 / wall.as_secs_f64().max(1e-9),
        key_fingerprint,
        shards: svc.shard_stats(),
        health: svc.health(),
        member_stalls: svc.stall_ledger().member_records(),
        quarantine,
        stalled_faulted_groups,
        trace_drops,
        metrics_table,
        metrics,
    }
}

impl ChurnReport {
    /// Renders the per-epoch table plus summary as plain text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>9} {:>14} {:>12} {:>12} {:>12}",
            "epoch", "events", "rekeys", "coalesce", "energy (mJ)", "p50", "p95", "max"
        );
        for e in &self.epochs {
            let (p50, p95, max) = match e.latency {
                Some((a, b, c)) => (format!("{a:.1?}"), format!("{b:.1?}"), format!("{c:.1?}")),
                None => ("-".into(), "-".into(), "-".into()),
            };
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>9.2} {:>14.1} {:>12} {:>12} {:>12}",
                e.epoch, e.events, e.rekeys, e.coalesce_ratio, e.energy_mj, p50, p95, max
            );
        }
        if self.epochs.iter().any(|e| e.virtual_latency.is_some()) {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>12} {:>12}  (rekey latency, virtual radio ms)",
                "epoch", "v-p50", "v-p95", "v-p99"
            );
            for e in &self.epochs {
                let (p50, p95, p99) = match e.virtual_latency {
                    Some((a, b, c)) => (format!("{a:.1}"), format!("{b:.1}"), format!("{c:.1}")),
                    None => ("-".into(), "-".into(), "-".into()),
                };
                let _ = writeln!(out, "{:>5} {:>12} {:>12} {:>12}", e.epoch, p50, p95, p99);
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "groups: {} live / {} created   events: {} applied / {} submitted",
            self.groups_active, self.groups, self.events_applied, self.events_submitted
        );
        if let Some(radio) = &self.radio {
            let _ = write!(out, "{}", radio.render());
        }
        if self.suites.len() > 1 {
            let mix = self
                .suites
                .iter()
                .map(|s| {
                    format!(
                        "{} ({} groups, {} rekeys, {:.1} mJ)",
                        s.suite.key(),
                        s.groups,
                        s.rekeys,
                        s.energy_mj
                    )
                })
                .collect::<Vec<_>>()
                .join("   ");
            let _ = writeln!(out, "suites: {mix}");
        }
        let _ = writeln!(
            out,
            "rekeys: {}   events-coalesced ratio: {:.2}   total energy: {:.1} mJ",
            self.rekeys_executed, self.coalesce_ratio, self.energy_mj
        );
        if self.groups_stalled > 0 || self.steps_retried > 0 {
            let _ = writeln!(
                out,
                "faults: {} group-epochs stalled   {} steps retransmitted",
                self.groups_stalled, self.steps_retried
            );
        }
        if !self.shards.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "{:>5} {:>7} {:>8} {:>8} {:>7} {:>7} {:>8} {:>14} {:>10}",
                "shard",
                "groups",
                "pending",
                "applied",
                "rekeys",
                "failed",
                "retried",
                "energy (mJ)",
                "wal (B)"
            );
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "{:>5} {:>7} {:>8} {:>8} {:>7} {:>7} {:>8} {:>14.1} {:>10}",
                    s.shard,
                    s.groups,
                    s.pending_events,
                    s.events_applied,
                    s.rekeys_executed,
                    s.rekeys_failed,
                    s.steps_retried,
                    s.energy_mj,
                    s.wal_bytes
                );
            }
        }
        match &self.health {
            egka_service::HealthReport::Healthy => {
                let _ = writeln!(out, "health: healthy");
            }
            egka_service::HealthReport::Degraded { reasons } => {
                let _ = writeln!(out, "health: degraded — {}", reasons.join("; "));
            }
            egka_service::HealthReport::Stalled { groups } => {
                let _ = writeln!(
                    out,
                    "health: STALLED — groups {groups:?} making no progress"
                );
            }
        }
        if !self.member_stalls.is_empty() {
            let mut rows = self.member_stalls.clone();
            rows.sort_by_key(|r| std::cmp::Reverse(r.stall.cumulative));
            rows.truncate(5);
            let attribution = rows
                .iter()
                .map(|r| {
                    format!(
                        "g{}/u{}: {}x (streak {}, {})",
                        r.group,
                        r.member.0,
                        r.stall.cumulative,
                        r.stall.consecutive,
                        r.stall.last_cause.label()
                    )
                })
                .collect::<Vec<_>>()
                .join("   ");
            let _ = writeln!(out, "stall ledger (worst): {attribution}");
        }
        if self.metrics.members_evicted > 0 || !self.quarantine.is_empty() {
            let cells = self
                .quarantine
                .iter()
                .map(|&(m, until, n)| format!("u{m}: until e{until} ({n}x)"))
                .collect::<Vec<_>>()
                .join("   ");
            let _ = writeln!(
                out,
                "evictions: {} members, {} blame certs, {} readmitted   quarantine: {}",
                self.metrics.members_evicted,
                self.metrics.blame_certs,
                self.metrics.members_readmitted,
                if cells.is_empty() { "-".into() } else { cells }
            );
            let _ = writeln!(
                out,
                "faulted groups stalled at end: {}",
                self.stalled_faulted_groups
            );
        }
        if let Some(rec) = &self.recovery {
            let snap = match rec.snapshot_epoch {
                Some(e) => format!("snapshot@{e}"),
                None => "no snapshot".into(),
            };
            let _ = writeln!(
                out,
                "recovery: controller killed at epoch {} — {} + {} wal records \
                 ({} epochs re-run), {} groups recovered",
                rec.kill_epoch,
                snap,
                rec.records_replayed,
                rec.epochs_replayed,
                rec.groups_recovered
            );
        }
        let _ = writeln!(
            out,
            "wall: {:.2?}   throughput: {:.0} events/s   key fingerprint: {:016x}",
            self.wall, self.throughput_eps, self.key_fingerprint
        );
        // A traced run with a registry attached gets its live-counter
        // table inline — no Perfetto export needed to see the numbers.
        if let Some(table) = &self.metrics_table {
            let _ = writeln!(out);
            let _ = write!(out, "{table}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnConfig {
        ChurnConfig {
            groups: 12,
            group_size: 4,
            epochs: 3,
            join_rate: 0.8,
            leave_rate: 0.5,
            shards: 4,
            seed: 0x5eed,
            loss: 0.0,
            radio: None,
            suite_policy: SuitePolicy::default(),
            trace: None,
            parallel_pump: false,
            eviction: None,
            faults: Vec::new(),
            reshard: None,
        }
    }

    #[test]
    fn churn_scenario_runs_and_coalesces() {
        let report = run_churn(&small());
        assert_eq!(report.groups_active, 12, "leaves never shrink below three");
        assert!(report.events_applied > 0);
        assert!(report.coalesce_ratio >= 1.0);
        assert!(report.energy_mj > 0.0);
        assert_eq!(report.epochs.len(), 3);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a = run_churn(&small());
        let b = run_churn(&small());
        assert_eq!(a.key_fingerprint, b.key_fingerprint);
        assert_eq!(a.events_applied, b.events_applied);
        assert_eq!(a.rekeys_executed, b.rekeys_executed);
        let mut other = small();
        other.seed ^= 1;
        let c = run_churn(&other);
        assert_ne!(a.key_fingerprint, c.key_fingerprint);
    }

    #[test]
    fn churn_matches_blocking_driver_golden() {
        // Fingerprint + counters captured from the seed's blocking
        // lock-step drivers (commit `9f68242`): the poll-driven engine,
        // the interleaved shard scheduler and jump consistent hashing
        // must all be observationally transparent.
        let report = run_churn(&small());
        assert_eq!(report.key_fingerprint, 0x6e14_e41f_677b_0a8b);
        assert_eq!(report.events_applied, 55);
        assert_eq!(report.rekeys_executed, 36);
        assert!((report.energy_mj - 41_399.819_52).abs() < 1e-3);
    }

    #[test]
    fn parallel_pump_reproduces_the_golden_bit_for_bit() {
        // The parallel sweep buffers per-node output and dispatches it in
        // node-index order, so churn over threads must land on the exact
        // same fingerprint, counters and priced energy as the sequential
        // golden above.
        let mut config = small();
        config.parallel_pump = true;
        let report = run_churn(&config);
        assert_eq!(report.key_fingerprint, 0x6e14_e41f_677b_0a8b);
        assert_eq!(report.events_applied, 55);
        assert_eq!(report.rekeys_executed, 36);
        assert!((report.energy_mj - 41_399.819_52).abs() < 1e-3);
    }

    #[test]
    fn churn_over_ideal_radio_matches_the_instant_golden_bit_for_bit() {
        // Medium/reactor equivalence: with zero delay, zero loss and
        // infinite batteries, a churn run over `egka-medium` (airtime
        // serialization and all) reproduces the instant-medium golden
        // (`churn_matches_blocking_driver_golden`) exactly — fingerprint,
        // counters and priced energy.
        let mut config = small();
        config.radio = Some(RadioChurnConfig::ideal());
        let report = run_churn(&config);
        assert_eq!(report.key_fingerprint, 0x6e14_e41f_677b_0a8b);
        assert_eq!(report.events_applied, 55);
        assert_eq!(report.rekeys_executed, 36);
        assert!((report.energy_mj - 41_399.819_52).abs() < 1e-3);
        assert_eq!(report.groups_stalled, 0);
        // And the radio view is populated: every rekey has a virtual
        // latency (airtime is real even with zero link delay).
        let radio = report.radio.expect("radio summary");
        let (p50, _, p99) = radio.latency_quantiles_ms.expect("virtual quantiles");
        assert!(p50 > 0.0 && p99 >= p50);
        assert_eq!(radio.nodes_died, 0);
        assert!(radio.total_spent_uj > 0.0);
    }

    #[test]
    fn radio_churn_kills_weak_motes_but_preserves_liveness() {
        // The acceptance scenario: a seeded run over the 100 kbps sensor
        // medium with nonzero delay, finite batteries and two nearly-flat
        // motes. Both die mid-epoch; their groups stall for that epoch
        // (and only that epoch — the driver evicts the corpses), while
        // every other group keeps completing rekeys.
        let mut config = small();
        config.radio = Some(RadioChurnConfig::sensor_field());
        let report = run_churn(&config);
        let radio = report.radio.as_ref().expect("radio summary");
        assert!(radio.nodes_died >= 1, "a weak mote must die mid-epoch");
        assert!(radio.died.iter().all(|&u| u < 2), "only the weak die");
        assert!(
            report.groups_stalled >= 1,
            "the dying mote's group times out for its epoch"
        );
        // Liveness: the scenario as a whole keeps rekeying — stalls stay
        // a small minority, and at most the weak motes' own group is lost
        // (evicting every member a group has left legitimately dissolves
        // it; both weak motes are founders of group 0).
        assert!(report.rekeys_executed > report.groups_stalled * 4);
        assert!(report.groups_active >= config.groups - 1);
        let (p50, p95, p99) = radio.latency_quantiles_ms.expect("virtual quantiles");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 10.0, "kilobit rounds on 100 kbps take tens of vms");
        // Determinism, deaths and all.
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(radio.died, again.radio.as_ref().unwrap().died);
        assert_eq!(
            radio.latency_quantiles_ms,
            again.radio.as_ref().unwrap().latency_quantiles_ms
        );
        assert!(!report.render().is_empty());
    }

    #[test]
    fn lossy_churn_retries_and_still_terminates() {
        let mut config = small();
        config.loss = 0.01;
        let report = run_churn(&config);
        assert_eq!(report.groups_active, 12);
        assert!(report.events_applied > 0);
        // 1% loss must not wipe out the workload: most group-epochs still
        // rekey, and stalls stay bounded by the total attempted.
        assert!(report.rekeys_executed > report.groups_stalled);
        assert!(report.groups_stalled <= report.groups * report.epochs.len() as u64);
        assert!(!report.render().is_empty());
        // Determinism holds under loss too.
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(report.steps_retried, again.steps_retried);
    }

    #[test]
    fn cheapest_policy_runs_a_mixed_suite_fleet() {
        // Founding sizes 2..4 straddle the ECDSA/proposed crossover on the
        // sensor profile, so the Cheapest policy must field at least two
        // distinct suites — and the whole mixed fleet must stay
        // deterministic and keep every group rekeyable.
        let config = ChurnConfig {
            groups: 12,
            epochs: 3,
            shards: 4,
            seed: 0x5eed,
            ..ChurnConfig::mixed_suite_bench()
        };
        let report = run_churn(&config);
        assert!(
            report.suites.len() >= 2,
            "expected a mixed fleet, got {:?}",
            report.suites
        );
        assert!(report.suites.iter().any(|s| s.suite == SuiteId::Proposed));
        assert!(report.suites.iter().all(|s| s.energy_mj > 0.0));
        assert!(report.events_applied > 0);
        assert_eq!(report.groups_active, 12);
        assert!(report.render().contains("suites:"));
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        let mix = |r: &ChurnReport| {
            r.suites
                .iter()
                .map(|s| (s.suite, s.groups, s.rekeys))
                .collect::<Vec<_>>()
        };
        assert_eq!(mix(&report), mix(&again), "suite selection is seeded");
    }

    #[test]
    fn fixed_baseline_policy_churns_entirely_on_that_suite() {
        // A Fixed(BdEcdsa) fleet: every group founds and rekeys through
        // the certificate baseline (full re-runs), end to end.
        let config = ChurnConfig {
            groups: 6,
            epochs: 2,
            suite_policy: SuitePolicy::Fixed(SuiteId::BdEcdsa),
            ..small()
        };
        let report = run_churn(&config);
        assert_eq!(report.suites.len(), 1);
        assert_eq!(report.suites[0].suite, SuiteId::BdEcdsa);
        assert_eq!(report.suites[0].groups, 6);
        assert!(report.events_applied > 0);
        assert!(report.rekeys_executed > 0);
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
    }

    #[test]
    fn crash_recovery_reproduces_the_uninterrupted_fingerprint_across_seeds() {
        // The durability acceptance golden: kill the controller at a
        // seed-derived epoch, recover from snapshot + WAL tail, finish the
        // scenario — the churn fingerprint (XOR-fold of every surviving
        // group key) must be bit-for-bit the uninterrupted run's, across
        // ≥ 3 seeds and therefore ≥ 3 different kill points.
        use egka_service::{MemStore, StoreConfig};
        for seed in [0x5eed_u64, 0xfeed1, 0xabba7] {
            let mut config = small();
            config.seed = seed;
            let baseline = run_churn(&config);
            let kill_epoch = 1 + seed % config.epochs;
            let store = StoreConfig::new(std::sync::Arc::new(MemStore::new())).snapshot_every(2);
            let crashed = run_churn_with_crash(&config, store, kill_epoch);
            assert_eq!(
                crashed.key_fingerprint, baseline.key_fingerprint,
                "seed {seed:#x}, killed at epoch {kill_epoch}"
            );
            assert_eq!(crashed.groups_active, baseline.groups_active);
            let rec = crashed.recovery.expect("crash ran");
            assert_eq!(rec.kill_epoch, kill_epoch);
            assert_eq!(rec.groups_recovered, config.groups);
            if kill_epoch >= 3 {
                assert_eq!(rec.snapshot_epoch, Some(2), "compaction cadence is 2");
            }
            assert!(crashed.render().contains("recovery: controller killed"));
        }
    }

    #[test]
    fn crash_recovery_over_the_radio_restores_the_battery_ledger() {
        // Crash-recover a *radio* scenario: the battery ledger (including
        // the weak motes' partial drain, or their deaths) must restore
        // exactly, or the survivors' remaining lifetime — and with it every
        // subsequent death and eviction — would silently diverge from the
        // uninterrupted run.
        use egka_service::{MemStore, StoreConfig};
        let mut config = small();
        config.radio = Some(RadioChurnConfig::sensor_field());
        let baseline = run_churn(&config);
        let store = StoreConfig::new(std::sync::Arc::new(MemStore::new())).snapshot_every(1);
        let crashed = run_churn_with_crash(&config, store, 2);
        assert_eq!(crashed.key_fingerprint, baseline.key_fingerprint);
        let (b, c) = (
            baseline.radio.as_ref().expect("radio summary"),
            crashed.radio.as_ref().expect("radio summary"),
        );
        assert_eq!(b.died, c.died, "battery deaths must replay identically");
        // (Latency quantiles are observability, not state: the recovered
        // process only retains the window since the snapshot — the *keys*
        // and the *ledger* are what must not diverge.)
        assert!(c.total_spent_uj > 0.0);
    }

    fn traced(mut config: ChurnConfig) -> (ChurnConfig, std::sync::Arc<egka_trace::RingSink>) {
        let (tc, ring) = egka_trace::TraceConfig::ring(1 << 20);
        config.trace = Some(tc);
        (config, ring)
    }

    #[test]
    fn tracing_is_observationally_transparent() {
        // Instrumentation draws no randomness and perturbs no seeds: a
        // traced run must reproduce the untraced golden bit for bit.
        let (config, ring) = traced(small());
        let report = run_churn(&config);
        assert_eq!(report.key_fingerprint, 0x6e14_e41f_677b_0a8b);
        assert_eq!(report.events_applied, 55);
        assert_eq!(report.rekeys_executed, 36);
        assert!((report.energy_mj - 41_399.819_52).abs() < 1e-3);
        assert_eq!(
            egka_trace::TraceSink::dropped(&*ring),
            0,
            "ring must not saturate on small()"
        );
        egka_trace::export::validate(&ring.events()).expect("spans balance");
    }

    #[test]
    fn trace_export_is_byte_identical_across_runs() {
        // Same seed + same config ⇒ the *recorded events themselves* are
        // identical, down to the exported Chrome-trace bytes.
        let (config, ring_a) = traced(small());
        run_churn(&config);
        let (config, ring_b) = traced(small());
        run_churn(&config);
        let a = egka_trace::export::chrome_trace_json(&ring_a.events());
        let b = egka_trace::export::chrome_trace_json(&ring_b.events());
        assert!(
            !a.is_empty() && a == b,
            "chrome export must be bytewise stable"
        );
        assert_eq!(
            egka_trace::export::event_fingerprint(&ring_a.events()),
            egka_trace::export::event_fingerprint(&ring_b.events()),
        );
        // A different seed records a different history.
        let mut other = small();
        other.seed ^= 1;
        let (other, ring_c) = traced(other);
        run_churn(&other);
        assert_ne!(
            egka_trace::export::event_fingerprint(&ring_a.events()),
            egka_trace::export::event_fingerprint(&ring_c.events()),
        );
    }

    #[test]
    fn health_plane_reconciles_and_exposition_is_byte_stable() {
        // The health/load plane feeds only deterministic (virtual) values
        // into the registry, so a same-seed rerun renders a byte-identical
        // Prometheus exposition — and the per-shard stats partition the
        // service totals exactly.
        let run = || {
            let (mut config, _ring) = traced(small());
            let registry = std::sync::Arc::new(egka_trace::MetricsRegistry::new());
            config.trace.as_mut().expect("traced").registry =
                Some(std::sync::Arc::clone(&registry));
            let report = run_churn(&config);
            (report, registry.snapshot().prometheus_text())
        };
        let (report, text_a) = run();
        let (_, text_b) = run();
        assert!(
            !text_a.is_empty() && text_a == text_b,
            "exposition must be byte-stable per seed"
        );
        assert!(text_a.contains("# TYPE"), "typed exposition families");
        assert_eq!(report.trace_drops, Some(0));
        assert!(
            report
                .metrics_table
                .as_deref()
                .is_some_and(|t| !t.is_empty()),
            "registry table rides along in the report"
        );
        assert!(report.render().contains("health:"));
        let rekeys: u64 = report.shards.iter().map(|s| s.rekeys_executed).sum();
        assert_eq!(rekeys, report.metrics.rekeys_executed);
        let applied: u64 = report.shards.iter().map(|s| s.events_applied).sum();
        assert_eq!(applied, report.metrics.events_applied);
        let energy: f64 = report.shards.iter().map(|s| s.energy_mj).sum();
        assert!(
            (energy - report.metrics.energy_mj).abs() <= 1e-9 * report.metrics.energy_mj.max(1.0),
            "shard energy {energy} vs metrics {}",
            report.metrics.energy_mj
        );
    }

    #[test]
    fn trace_event_count_fingerprint_golden() {
        // Pins the (name, phase) → count shape of the small() trace across
        // seeds. Any change to what gets instrumented (or to how often the
        // scheduler takes each path) shows up here as a diff to explain —
        // the trace-level analogue of the key-fingerprint golden.
        for (seed, expected) in [
            (0x5eed_u64, 0x0b39_6cea_20c7_6d54_u64),
            (0xfeed1, 0x15b9_1649_ede0_6d86),
            (0xabba7, 0x6c01_5f80_813a_a401),
        ] {
            let mut config = small();
            config.seed = seed;
            let (config, ring) = traced(config);
            run_churn(&config);
            let events = ring.events();
            egka_trace::export::validate(&events).expect("spans balance");
            assert_eq!(
                egka_trace::export::event_fingerprint(&events),
                expected,
                "trace fingerprint drifted for seed {seed:#x}"
            );
        }
    }

    #[test]
    fn crash_recovery_trace_replays_the_appended_lsns() {
        // The recovered controller's `wal.replay` instants must carry
        // exactly the LSNs the pre-crash controller's `wal.append`
        // instants recorded for the replayed tail — the trace-level proof
        // that recovery re-ran the same durable history, not a lookalike.
        use egka_service::{MemStore, StoreConfig};
        use egka_trace::Payload;
        let config = small();
        let kill_epoch = 2;
        let store = StoreConfig::new(std::sync::Arc::new(MemStore::new()));
        let (config, ring) = traced(config);
        let crashed = run_churn_with_crash(&config, store, kill_epoch);
        assert!(crashed.recovery.is_some());
        let events = ring.events();
        let lsns_of = |name: &str| -> Vec<u64> {
            events
                .iter()
                .filter(|e| e.name == name)
                .filter_map(|e| match e.payload {
                    Payload::Lsn { lsn, .. } => Some(lsn),
                    _ => None,
                })
                .collect()
        };
        let appended = lsns_of("wal.append");
        let replayed = lsns_of("wal.replay");
        assert!(!replayed.is_empty(), "recovery must replay a WAL tail");
        // No snapshot was cut, so recovery replays the whole log: the
        // replayed LSN sequence is exactly the pre-crash appended prefix.
        let pre_crash: Vec<u64> = appended
            .iter()
            .copied()
            .take_while(|&l| l <= *replayed.last().unwrap())
            .collect();
        assert_eq!(replayed, pre_crash, "replay must walk the appended LSNs");
        // And the store lane saw the recovered service's appends too.
        assert!(events
            .iter()
            .any(|e| e.pid == egka_trace::STORE_PID && e.name == "store.append"));
    }

    #[test]
    fn byzantine_silence_is_evicted_and_the_group_completes() {
        let mut config = small();
        config.epochs = 8;
        config.eviction = Some(EvictionPolicy::default());
        let config = config.byzantine_silent(1, 2);
        let report = run_churn(&config);
        assert!(report.metrics.members_evicted >= 1, "culprit evicted");
        assert!(report.metrics.blame_certs >= 1, "eviction leaves a cert");
        assert_eq!(
            report.stalled_faulted_groups, 0,
            "the victim group completes over the survivors"
        );
        assert!(report.quarantine.iter().any(|&(m, _, n)| m == 1 && n == 1));
        assert_eq!(
            report.metrics.members_readmitted, 0,
            "a silent member never comes back"
        );
        assert!(report.render().contains("evictions:"));
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(report.quarantine, again.quarantine);
    }

    #[test]
    fn flapping_member_is_readmitted_then_reevicted_with_backoff() {
        let mut config = small();
        config.epochs = 12;
        config.eviction = Some(EvictionPolicy::default());
        let config = config.flapping(5, 4);
        let report = run_churn(&config);
        assert!(
            report.metrics.members_evicted >= 2,
            "down → evict → up → readmit → down → evict again, got {}",
            report.metrics.members_evicted
        );
        assert_eq!(report.metrics.members_readmitted, 1);
        let &(_, until, evictions) = report
            .quarantine
            .iter()
            .find(|&&(m, _, _)| m == 5)
            .expect("flapper is in the penalty box");
        assert_eq!(evictions, 2);
        assert!(
            until > config.epochs + 4,
            "second penalty is backoff-escalated (until e{until})"
        );
        assert_eq!(report.stalled_faulted_groups, 0);
    }

    #[test]
    fn robust_bench_preset_completes_every_faulted_group() {
        // The CI scenario, pinned here so the bench binary cannot drift
        // away from a config where both fault arcs actually fire.
        let report = run_churn(&ChurnConfig::robust_bench());
        assert!(report.metrics.members_evicted >= 2);
        assert!(report.metrics.blame_certs >= 2);
        assert!(report.metrics.members_readmitted >= 1);
        assert_eq!(report.stalled_faulted_groups, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn crash_recovery_replays_evictions_bit_for_bit(kill_epoch in 1u64..=8) {
            // Kill the controller at a random epoch of a faulted, durable
            // run: the recovered run's keys, quarantine cells and stall
            // ledger must be bit-for-bit the uninterrupted run's — the
            // WAL'd blame certificates replay the evictions exactly.
            use egka_service::{MemStore, StoreConfig};
            use std::sync::OnceLock;
            static BASELINE: OnceLock<ChurnReport> = OnceLock::new();
            let config = || {
                let mut c = small();
                c.epochs = 8;
                c.eviction = Some(EvictionPolicy::default());
                c.byzantine_silent(1, 2).flapping(5, 4)
            };
            let baseline = BASELINE.get_or_init(|| run_churn(&config()));
            let store = StoreConfig::new(std::sync::Arc::new(MemStore::new())).snapshot_every(2);
            let crashed = run_churn_with_crash(&config(), store, kill_epoch);
            proptest::prop_assert_eq!(crashed.key_fingerprint, baseline.key_fingerprint);
            proptest::prop_assert_eq!(&crashed.quarantine, &baseline.quarantine);
            proptest::prop_assert_eq!(&crashed.member_stalls, &baseline.member_stalls);
            proptest::prop_assert_eq!(crashed.groups_active, baseline.groups_active);
            proptest::prop_assert_eq!(
                crashed.stalled_faulted_groups,
                baseline.stalled_faulted_groups
            );
        }
    }

    #[test]
    fn resharding_mid_churn_reproduces_the_static_pool_golden() {
        // Keys are placement-independent: growing the pool live, with
        // queued Poisson traffic and the rebalancer shuffling hot groups,
        // must land on the exact static-pool golden — fingerprint,
        // counters, priced energy — with zero stalled epochs.
        let mut config = small();
        config.reshard = Some(ReshardPlan {
            target_shards: 9,
            from_epoch: 2,
            per_epoch: 3,
            rebalancer: Some(Rebalancer::default()),
        });
        let report = run_churn(&config);
        assert_eq!(report.key_fingerprint, 0x6e14_e41f_677b_0a8b);
        assert_eq!(report.events_applied, 55);
        assert_eq!(report.rekeys_executed, 36);
        assert!((report.energy_mj - 41_399.819_52).abs() < 1e-3);
        assert_eq!(report.groups_stalled, 0, "live handoffs stall nothing");
        assert_eq!(report.shards.len(), 9, "the pool grew to target");
        assert_eq!(report.metrics.shards_added, 5);
        assert!(report.metrics.groups_moved > 0, "growth relocated movers");
    }

    #[test]
    fn reshard_bench_preset_grows_4_to_16_without_stalls() {
        // The CI scenario, pinned here so the bench binary cannot drift:
        // 4 → 16 shards mid-churn, zero stalled epochs, deterministic
        // fingerprint, and the per-shard stats still partition the
        // service totals exactly after all that movement.
        let config = ChurnConfig {
            groups: 60, // trimmed for the unit-test tier; same shape
            ..ChurnConfig::reshard_bench()
        };
        let report = run_churn(&config);
        assert_eq!(report.shards.len(), 16);
        assert_eq!(report.metrics.shards_added, 12);
        assert_eq!(report.groups_stalled, 0);
        let applied: u64 = report.shards.iter().map(|s| s.events_applied).sum();
        assert_eq!(applied, report.metrics.events_applied);
        let rekeys: u64 = report.shards.iter().map(|s| s.rekeys_executed).sum();
        assert_eq!(rekeys, report.metrics.rekeys_executed);
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(report.metrics.groups_moved, again.metrics.groups_moved);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        #[test]
        fn add_remove_move_preserves_the_partition_invariant(seed in 0u64..1 << 48) {
            // Random add/remove/move sequences interleaved with random
            // churn: every group must stay resident on exactly the shard
            // the directory names, and the per-shard stats must keep
            // summing exactly to the service totals.
            use egka_core::{Pkg, SecurityProfile, UserId};
            use rand::SeedableRng;
            let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x9e5a);
            let mut setup = ChaChaRng::seed_from_u64(0x51ed);
            let pkg = Arc::new(Pkg::setup(&mut setup, SecurityProfile::Toy));
            let mut svc = KeyService::builder().shards(2).seed(seed).build(pkg);
            let mut next_user = 0u32;
            for g in 0..10u64 {
                let members: Vec<UserId> = (next_user..next_user + 4).map(UserId).collect();
                next_user += 4;
                svc.create_group(g, &members).expect("create group");
            }
            for _ in 0..24 {
                match rng.next_u64() % 5 {
                    0 => {
                        if svc.shard_count() < 12 {
                            svc.add_shard();
                        }
                    }
                    1 => {
                        // Removal may legitimately refuse (busy / last);
                        // refusal must leave the pool untouched.
                        let before = svc.shard_count();
                        if svc.remove_shard(before - 1).is_err() {
                            proptest::prop_assert_eq!(svc.shard_count(), before);
                        }
                    }
                    2 => {
                        let gid = rng.next_u64() % 10;
                        let to = (rng.next_u64() as usize) % svc.shard_count();
                        svc.move_group(gid, to).expect("live group, live shard");
                    }
                    3 => {
                        let gid = rng.next_u64() % 10;
                        let u = UserId(next_user);
                        next_user += 1;
                        svc.submit(gid, MembershipEvent::Join(u)).expect("join");
                    }
                    _ => {
                        svc.tick();
                    }
                }
                // Every group stays reachable through the directory at
                // every step (lookups go through `shard_of`, so a state
                // left behind — or duplicated — on the wrong shard would
                // surface here or in the gauge sum below).
                for g in 0..10u64 {
                    proptest::prop_assert!(svc.shard_of(g) < svc.shard_count());
                    proptest::prop_assert!(svc.group_key(g).is_some(), "group {} alive", g);
                }
            }
            svc.tick();
            let stats = svc.shard_stats();
            let m = svc.metrics();
            proptest::prop_assert_eq!(stats.len(), svc.shard_count());
            let applied: u64 = stats.iter().map(|s| s.events_applied).sum();
            proptest::prop_assert_eq!(applied, m.events_applied);
            let rekeys: u64 = stats.iter().map(|s| s.rekeys_executed).sum();
            proptest::prop_assert_eq!(rekeys, m.rekeys_executed);
            let groups: u64 = stats.iter().map(|s| s.groups).sum();
            proptest::prop_assert_eq!(groups, m.groups_active);
        }

        #[test]
        fn crash_mid_handoff_recovers_placement_and_keys_exactly(kill_epoch in 2u64..=4) {
            // Kill the controller in the thick of the resharding window
            // (shards were added and groups handed off this epoch; the
            // records are in the WAL, the epoch commit is not). Recovery
            // must land every group in exactly one shard, at the exact
            // placement of the uninterrupted run, with bit-identical keys.
            use egka_service::{MemStore, StoreConfig};
            use std::sync::OnceLock;
            static BASELINE: OnceLock<ChurnReport> = OnceLock::new();
            let config = || {
                let mut c = small();
                c.shards = 2;
                c.epochs = 4;
                c.reshard = Some(ReshardPlan {
                    target_shards: 7,
                    from_epoch: 2,
                    per_epoch: 2,
                    rebalancer: Some(Rebalancer {
                        max_pending: 1,
                        cooldown_epochs: 1,
                        max_moves_per_epoch: 2,
                    }),
                });
                c
            };
            let baseline = BASELINE.get_or_init(|| run_churn(&config()));
            let store = StoreConfig::new(std::sync::Arc::new(MemStore::new())).snapshot_every(2);
            let crashed = run_churn_with_crash(&config(), store, kill_epoch);
            proptest::prop_assert_eq!(crashed.key_fingerprint, baseline.key_fingerprint);
            proptest::prop_assert_eq!(crashed.shards.len(), baseline.shards.len());
            proptest::prop_assert_eq!(crashed.groups_active, baseline.groups_active);
            let place = |r: &ChurnReport| -> Vec<u64> {
                r.shards.iter().map(|s| s.groups).collect()
            };
            proptest::prop_assert_eq!(place(&crashed), place(baseline));
            let groups: u64 = crashed.shards.iter().map(|s| s.groups).sum();
            proptest::prop_assert_eq!(groups, crashed.groups_active);
        }
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let mut rng = ChaChaRng::seed_from_u64(9);
        let n = 4000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 0.7)).sum();
        let mean = total as f64 / n as f64;
        assert!((0.55..0.85).contains(&mean), "mean {mean} far from λ=0.7");
    }
}
