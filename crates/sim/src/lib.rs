//! # egka-sim
//!
//! The experiment harness: turns real, instrumented protocol runs (from
//! `egka-core` over `egka-net`) plus the paper's energy model (from
//! `egka-energy`) into the paper's evaluation artifacts:
//!
//! * [`figure1`] — total per-node energy of the five authenticated GKA
//!   protocols, `n ∈ {10, 50, 100, 500}`, both transceivers (Figure 1);
//! * [`tables`] — the dynamic-protocol energy table (Table 5, per role,
//!   paper-vs-measured) and measured message counts for Table 4;
//! * [`scenario`] — single-protocol runners that assert instrumented counts
//!   equal the closed forms before anything is priced;
//! * [`churn`] — Poisson join/leave traffic over thousands of concurrent
//!   groups, driving the `egka-service` epoch-batched rekey coordinator;
//! * [`report`] — serde-able datasets with CSV/markdown/ASCII-chart
//!   renderers.
//!
//! The `egka-bench` crate's `repro_*` binaries are thin wrappers over this
//! crate.
//!
//! ```
//! use egka_energy::InitialProtocol;
//! use egka_sim::scenario::run_initial;
//!
//! // A real 4-member run of the paper's proposal at toy parameters; the
//! // runner asserts the instrumented counts match the closed forms
//! // before returning them, and the counts are deterministic per seed.
//! let counts = run_initial(InitialProtocol::ProposedGqBatch, 4, 1);
//! assert!(counts.tx_bits > 0);
//! assert_eq!(counts, run_initial(InitialProtocol::ProposedGqBatch, 4, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod figure1;
pub mod latency;
pub mod report;
pub mod scenario;
pub mod tables;

pub use churn::{
    run_churn, run_churn_with_crash, ChurnConfig, ChurnReport, CrashSummary, FaultSpec,
    RadioChurnConfig, ReshardPlan, SuiteBreakdown,
};
pub use figure1::{check_shape, curve_letter, generate as generate_figure1, Figure1Config};
pub use latency::{initial_gka_latency, node_latency, LatencyEstimate};
pub use report::{Figure1, Figure1Point, RadioSummary, Source, Table5, Table5Row};
pub use tables::{generate_table5, measured_dynamic_msgs, Table5Config, PAPER_TABLE5};
