//! Figure 1 reproduction: total per-node energy of the five authenticated
//! GKA protocols at `n ∈ {10, 50, 100, 500}` on both transceivers.
//!
//! Points at `n ≤ max_instrumented_n` come from **instrumented protocol
//! executions** (real crypto over the simulated medium; the runner asserts
//! instrumented counts equal the closed form before using them). Larger
//! points use the validated closed form — on a 2-core box a fully
//! instrumented SOK run at `n = 500` costs ~750k Tate pairings, which is
//! paid only when explicitly requested.
//!
//! Cells of the (protocol × n) sweep run in parallel on crossbeam scoped
//! threads.

use crossbeam::channel::unbounded;
use egka_energy::complexity::InitialProtocol;
use egka_energy::{comm_energy_mj, comp_energy_mj, CpuModel, OpCounts, Transceiver};

use crate::report::{Figure1, Figure1Point, Source};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct Figure1Config {
    /// Group sizes (paper: 10, 50, 100, 500).
    pub sizes: Vec<u64>,
    /// Instrument real runs up to this `n`; closed form beyond.
    pub max_instrumented_n: u64,
    /// RNG seed for the instrumented runs.
    pub seed: u64,
}

impl Default for Figure1Config {
    fn default() -> Self {
        Figure1Config {
            sizes: vec![10, 50, 100, 500],
            max_instrumented_n: 50,
            seed: 0xf16_0001,
        }
    }
}

/// The paper's legend: (protocol, transceiver index) → curve letter a–j.
pub fn curve_letter(protocol: InitialProtocol, radio_idx: usize) -> char {
    // Figure 1 legend order: a/b ECDSA, c/d DSA, e/f SOK, g/h SSN,
    // i/j proposed; odd letters = 100 kbps, even = WLAN.
    let base = match protocol {
        InitialProtocol::BdEcdsa => 0,
        InitialProtocol::BdDsa => 2,
        InitialProtocol::BdSok => 4,
        InitialProtocol::Ssn => 6,
        InitialProtocol::ProposedGqBatch => 8,
    };
    (b'a' + base + radio_idx as u8) as char
}

/// Runs the sweep and returns the figure dataset.
pub fn generate(config: &Figure1Config) -> Figure1 {
    let cpu = CpuModel::strongarm_133();
    let radios = Transceiver::paper_pair();

    // One work item per (protocol, n): obtain per-user counts once, then
    // price them under both radios.
    let cells: Vec<(InitialProtocol, u64)> = InitialProtocol::ALL
        .iter()
        .flat_map(|&p| config.sizes.iter().map(move |&n| (p, n)))
        .collect();

    let (tx, rx) = unbounded();
    crossbeam::scope(|scope| {
        for &(protocol, n) in &cells {
            let tx = tx.clone();
            let config = config.clone();
            scope.spawn(move |_| {
                let (counts, source) = cell_counts(protocol, n, &config);
                tx.send((protocol, n, counts, source))
                    .expect("collector alive");
            });
        }
        drop(tx);
    })
    .expect("sweep worker panicked");

    let mut points = Vec::new();
    for (protocol, n, counts, source) in rx.iter() {
        for (ri, radio) in radios.iter().enumerate() {
            let comp_j = comp_energy_mj(&cpu, &counts) / 1000.0;
            let comm_j = comm_energy_mj(radio, &counts) / 1000.0;
            points.push(Figure1Point {
                protocol: protocol.key().to_string(),
                curve: curve_letter(protocol, ri),
                n,
                transceiver: radio.name.clone(),
                comp_j,
                comm_j,
                total_j: comp_j + comm_j,
                source,
            });
        }
    }
    points.sort_by_key(|a| (a.curve, a.n));
    Figure1 { points }
}

fn cell_counts(protocol: InitialProtocol, n: u64, config: &Figure1Config) -> (OpCounts, Source) {
    if n <= config.max_instrumented_n {
        (
            crate::scenario::run_initial(protocol, n as usize, config.seed ^ n),
            Source::Instrumented,
        )
    } else {
        (protocol.per_user_counts(n), Source::ClosedForm)
    }
}

/// The qualitative claims Figure 1 makes; asserted by tests and printed by
/// the repro binary.
pub fn check_shape(fig: &Figure1) -> Result<(), String> {
    let sizes: Vec<u64> = {
        let mut v: Vec<u64> = fig.points.iter().map(|p| p.n).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for n in &sizes {
        for radio in ["100kbps", "WLAN"] {
            let get = |proto: &str| {
                fig.get(proto, *n, radio)
                    .map(|p| p.total_j)
                    .ok_or_else(|| format!("missing point {proto}/{n}/{radio}"))
            };
            let proposed = get("proposed")?;
            for other in ["bd_sok", "bd_ecdsa", "bd_dsa", "ssn"] {
                let e = get(other)?;
                if proposed >= e {
                    return Err(format!(
                        "proposed ({proposed} J) not cheapest vs {other} ({e} J) at n={n}, {radio}"
                    ));
                }
            }
        }
    }
    // SOK is the most expensive protocol at scale (its verification is
    // pairing-bound), on both radios.
    if let Some(&n_max) = sizes.last() {
        for radio in ["100kbps", "WLAN"] {
            let sok = fig.get("bd_sok", n_max, radio).unwrap().total_j;
            for other in ["proposed", "bd_ecdsa", "bd_dsa", "ssn"] {
                let e = fig.get(other, n_max, radio).unwrap().total_j;
                if sok <= e {
                    return Err(format!(
                        "SOK ({sok} J) not dominant vs {other} ({e} J) at n={n_max}, {radio}"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small instrumented sweep: n ∈ {4, 8}, everything executed for real.
    #[test]
    fn small_instrumented_sweep_has_paper_shape() {
        let config = Figure1Config {
            sizes: vec![4, 8],
            max_instrumented_n: 8,
            seed: 1,
        };
        let fig = generate(&config);
        assert_eq!(fig.points.len(), 5 * 2 * 2);
        assert!(fig.points.iter().all(|p| p.source == Source::Instrumented));
        check_shape(&fig).expect("paper shape");
    }

    #[test]
    fn closed_form_extends_instrumented_consistently() {
        // The same cell computed both ways must agree exactly (the runner
        // asserts counts match; energies follow).
        let inst = generate(&Figure1Config {
            sizes: vec![10],
            max_instrumented_n: 10,
            seed: 2,
        });
        let closed = generate(&Figure1Config {
            sizes: vec![10],
            max_instrumented_n: 0,
            seed: 2,
        });
        for (a, b) in inst.points.iter().zip(closed.points.iter()) {
            assert_eq!(a.curve, b.curve);
            assert!((a.total_j - b.total_j).abs() < 1e-12, "curve {}", a.curve);
        }
    }

    #[test]
    fn curve_letters_cover_a_through_j() {
        let mut letters: Vec<char> = InitialProtocol::ALL
            .iter()
            .flat_map(|&p| [curve_letter(p, 0), curve_letter(p, 1)])
            .collect();
        letters.sort_unstable();
        assert_eq!(letters, ('a'..='j').collect::<Vec<_>>());
    }
}
