//! # egka-hash
//!
//! From-scratch hash primitives for the `egka` reproduction:
//!
//! * [`sha1::Sha1`], [`sha256::Sha256`], [`sha512::Sha512`] — FIPS 180-4
//!   digests (verified against the official test vectors);
//! * [`hmac::Hmac`] — RFC 2104, generic over any [`digest::Digest`];
//! * [`kdf`] — HKDF (RFC 5869) used to derive symmetric keys from group keys;
//! * [`chacha::ChaChaRng`] — RFC 8439 ChaCha20 as a deterministic CSPRNG
//!   (the workspace-wide randomness source);
//! * [`fdh`] — full-domain hashing into `Z_n` / `Z_n^*` plus the paper's
//!   160-bit challenge hash.
//!
//! ```
//! use egka_hash::{Digest, Sha256};
//!
//! // FIPS 180-4 test vector: SHA-256("abc") starts ba7816bf…
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[..4], [0xba, 0x78, 0x16, 0xbf]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod digest;
pub mod fdh;
pub mod hmac;
pub mod kdf;
pub mod sha1;
pub mod sha256;
pub mod sha512;

pub use chacha::{chacha20_block, chacha20_xor, ChaChaRng};
pub use digest::Digest;
pub use fdh::{challenge_hash, hash_to_below, hash_to_unit, mgf1};
pub use hmac::Hmac;
pub use kdf::{hkdf, hkdf_expand, hkdf_extract};
pub use sha1::Sha1;
pub use sha256::Sha256;
pub use sha512::Sha512;
