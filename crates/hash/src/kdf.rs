//! HKDF (RFC 5869) over HMAC-SHA256.
//!
//! The dynamic GKA protocols derive AES keys from the current group key
//! `K ∈ Z_p^*`; HKDF gives a clean bridge from group elements to cipher keys.

use crate::digest::Digest;
use crate::hmac::Hmac;
use crate::sha256::Sha256;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Vec<u8> {
    Hmac::<Sha256>::mac(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes from `prk` under `info`.
///
/// # Panics
/// Panics if `len > 255 * 32` (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * Sha256::OUTPUT_SIZE, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = Hmac::<Sha256>::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        t = h.finalize();
        let take = (len - out.len()).min(t.len());
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// One-shot HKDF: extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Appendix A test vectors.

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case3_zero_salt_info() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf_expand(&prk, b"info", len).len(), len);
        }
    }

    #[test]
    fn different_info_different_keys() {
        let prk = hkdf_extract(b"s", b"k");
        assert_ne!(hkdf_expand(&prk, b"a", 16), hkdf_expand(&prk, b"b", 16));
    }
}
