//! HMAC (RFC 2104) generic over any [`Digest`].

use crate::digest::Digest;

/// Incremental HMAC.
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = if key.len() > D::BLOCK_SIZE {
            D::digest(key)
        } else {
            key.to_vec()
        };
        k.resize(D::BLOCK_SIZE, 0);
        let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
        let opad_key: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::new();
        inner.update(&ipad);
        Hmac { inner, opad_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the tag.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot `HMAC(key, msg)`.
    pub fn mac(key: &[u8], msg: &[u8]) -> Vec<u8> {
        let mut h = Self::new(key);
        h.update(msg);
        h.finalize()
    }

    /// Constant-time-ish tag comparison (length + fold over XOR).
    pub fn verify(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
        let expect = Self::mac(key, msg);
        if expect.len() != tag.len() {
            return false;
        }
        expect
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases for HMAC-SHA256, RFC 2202 for HMAC-SHA1.

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&Hmac::<Sha1>::mac(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let tag = Hmac::<Sha256>::mac(b"key", b"msg");
        assert!(Hmac::<Sha256>::verify(b"key", b"msg", &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!Hmac::<Sha256>::verify(b"key", b"msg", &bad));
        assert!(!Hmac::<Sha256>::verify(b"key", b"msg", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Hmac::<Sha256>::new(b"split-key");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(
            h.finalize(),
            Hmac::<Sha256>::mac(b"split-key", b"part one part two")
        );
    }
}
