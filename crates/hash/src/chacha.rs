//! ChaCha20 (RFC 8439) block function and a CSPRNG built on it.
//!
//! [`ChaChaRng`] implements `rand`'s core traits so all sampling helpers in
//! `egka-bigint::rng` work with it. It is the deterministic randomness source
//! used throughout the workspace's tests and simulations.

use rand::{SeedableRng, TryCryptoRng, TryRng};

/// The ChaCha20 block function: expands (key, counter, nonce) into 64 bytes
/// of keystream.
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }

    let mut work = state;
    for _ in 0..10 {
        // column rounds
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        // diagonal rounds
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = work[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// XORs a ChaCha20 keystream into `data` (encrypt == decrypt).
///
/// Starts at block `initial_counter` per RFC 8439 §2.4.
pub fn chacha20_xor(key: &[u8; 32], nonce: &[u8; 12], initial_counter: u32, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(64).enumerate() {
        let ks = chacha20_block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// A deterministic CSPRNG: the ChaCha20 keystream under a fixed key/nonce.
#[derive(Clone, Debug)]
pub struct ChaChaRng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buffer: [u8; 64],
    /// Next unread offset into `buffer`; 64 means "refill needed".
    offset: usize,
}

impl ChaChaRng {
    /// Creates a generator from a 32-byte key (nonce zero, counter zero).
    pub fn from_key(key: [u8; 32]) -> Self {
        ChaChaRng {
            key,
            nonce: [0u8; 12],
            counter: 0,
            buffer: [0u8; 64],
            offset: 64,
        }
    }

    fn refill(&mut self) {
        self.buffer = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaChaRng exhausted 2^38 bytes");
        self.offset = 0;
    }

    fn take(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.offset == 64 {
                self.refill();
            }
            let n = (out.len() - written).min(64 - self.offset);
            out[written..written + n].copy_from_slice(&self.buffer[self.offset..self.offset + n]);
            self.offset += n;
            written += n;
        }
    }
}

impl SeedableRng for ChaChaRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaChaRng::from_key(seed)
    }
}

impl TryRng for ChaChaRng {
    type Error = core::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        let mut b = [0u8; 4];
        self.take(&mut b);
        Ok(u32::from_le_bytes(b))
    }

    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        let mut b = [0u8; 8];
        self.take(&mut b);
        Ok(u64::from_le_bytes(b))
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error> {
        self.take(dst);
        Ok(())
    }
}

impl TryCryptoRng for ChaChaRng {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2 "Ladies and Gentlemen..." plaintext.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // decrypt = encrypt
        chacha20_xor(&key, &nonce, 1, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaChaRng::from_seed([7u8; 32]);
        let mut b = ChaChaRng::from_seed([7u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_seed([1u8; 32]);
        let mut b = ChaChaRng::from_seed([2u8; 32]);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_spans_block_boundaries() {
        let mut rng = ChaChaRng::from_seed([3u8; 32]);
        let mut big = vec![0u8; 200];
        rng.fill_bytes(&mut big);
        // Reconstruct from raw blocks.
        let mut expect = Vec::new();
        for c in 0..4u32 {
            expect.extend_from_slice(&chacha20_block(&[3u8; 32], c, &[0u8; 12]));
        }
        assert_eq!(&big[..], &expect[..200]);
    }

    #[test]
    fn seed_from_u64_works() {
        let mut rng = ChaChaRng::seed_from_u64(42);
        let x = rng.next_u64();
        let mut rng2 = ChaChaRng::seed_from_u64(42);
        assert_eq!(x, rng2.next_u64());
    }
}
