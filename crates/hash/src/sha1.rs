//! SHA-1 (FIPS 180-4 §6.1).
//!
//! SHA-1 is cryptographically broken for collision resistance; it is included
//! because the reproduced 2006 paper's parameter sizes (160-bit challenges,
//! 160-bit DSA/ECDSA components) are calibrated to SHA-1-era digests.

use crate::digest::Digest;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Digest for Sha1 {
    const OUTPUT_SIZE: usize = 20;
    const BLOCK_SIZE: usize = 64;

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            } else {
                // Buffer still partial ⇒ `take` consumed all of `data`.
                return;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // update() counts padding into total_len, but bit_len was latched first.
        self.total_len = 0;
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bit_len.to_be_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = Vec::with_capacity(20);
        for w in self.state {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(data));
        }
    }
}
