//! The [`Digest`] trait shared by all hash implementations in this crate.

/// An incremental cryptographic hash function.
///
/// The associated constants expose the parameters HMAC and the KDFs need.
pub trait Digest: Clone {
    /// Digest output length in bytes.
    const OUTPUT_SIZE: usize;
    /// Internal compression-block length in bytes (HMAC ipad/opad width).
    const BLOCK_SIZE: usize;

    /// Creates a fresh hasher.
    fn new() -> Self;

    /// Absorbs `data`.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: `H(data)`.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot over multiple segments (avoids concatenation allocations).
    fn digest_parts(parts: &[&[u8]]) -> Vec<u8> {
        let mut h = Self::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }
}
