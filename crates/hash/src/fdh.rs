//! Full-domain hashing into big-integer ranges.
//!
//! The GQ scheme needs `H : {0,1}* → Z_n` (identity hashing, paper §3) and
//! an `l`-bit challenge hash (paper: `l = 160`). Both are built from
//! SHA-256 in counter mode (MGF1 style).

use egka_bigint::{gcd, Ubig};

use crate::digest::Digest;
use crate::sha256::Sha256;

/// Expands `(tag, msg)` into `len` bytes with SHA-256 in counter mode.
pub fn mgf1(tag: &[u8], msg: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let block = Sha256::digest_parts(&[tag, &counter.to_be_bytes(), msg]);
        let take = (len - out.len()).min(block.len());
        out.extend_from_slice(&block[..take]);
        counter += 1;
    }
    out
}

/// Hashes `msg` into `[0, bound)` (uniform up to the negligible mod bias).
///
/// Generates `bound.bit_length() + 64` bits before reducing, so the bias is
/// at most 2^-64.
pub fn hash_to_below(tag: &[u8], msg: &[u8], bound: &Ubig) -> Ubig {
    assert!(!bound.is_zero());
    let bytes = ((bound.bit_length() + 64).div_ceil(8)) as usize;
    let raw = mgf1(tag, msg, bytes);
    Ubig::from_bytes_be(&raw).rem_ref(bound)
}

/// Hashes `msg` into `Z_n^*` (non-zero and coprime to `n`).
///
/// Retries with an appended counter byte until the element is a unit; for
/// RSA moduli the first try succeeds except with negligible probability.
pub fn hash_to_unit(tag: &[u8], msg: &[u8], n: &Ubig) -> Ubig {
    let mut attempt = 0u8;
    loop {
        let mut m = msg.to_vec();
        m.push(attempt);
        let v = hash_to_below(tag, &m, n);
        if !v.is_zero() && gcd(&v, n).is_one() {
            return v;
        }
        attempt = attempt.checked_add(1).expect("hash_to_unit exhausted");
    }
}

/// The paper's `l`-bit challenge hash (`l = 160`): `H(...) ∈ {0,1}^160`
/// interpreted as an integer.
pub fn challenge_hash(parts: &[&[u8]]) -> Ubig {
    const L_BYTES: usize = 20; // l = 160 bits
    let mut h = Sha256::new();
    h.update(b"egka.challenge.v1");
    for p in parts {
        // length-prefix each part so concatenation is injective
        h.update(&(p.len() as u64).to_be_bytes());
        h.update(p);
    }
    let digest = h.finalize();
    Ubig::from_bytes_be(&digest[..L_BYTES])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mgf1_len_exact() {
        for len in [0usize, 1, 31, 32, 33, 100] {
            assert_eq!(mgf1(b"t", b"m", len).len(), len);
        }
    }

    #[test]
    fn mgf1_prefix_property() {
        // Counter-mode expansion: shorter output is a prefix of longer.
        let a = mgf1(b"t", b"m", 40);
        let b = mgf1(b"t", b"m", 80);
        assert_eq!(&a[..], &b[..40]);
    }

    #[test]
    fn hash_to_below_in_range_and_deterministic() {
        let bound = Ubig::from_hex("ffffffffffffffffffffffffffff17").unwrap();
        let a = hash_to_below(b"tag", b"hello", &bound);
        let b = hash_to_below(b"tag", b"hello", &bound);
        assert_eq!(a, b);
        assert!(a < bound);
        let c = hash_to_below(b"tag", b"hellp", &bound);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_to_unit_is_coprime() {
        // n = 3 * 5 * 7 * ... small smooth modulus stresses the retry path.
        let n = Ubig::from_u64(3 * 5 * 7 * 11 * 13 * 17 * 19 * 23);
        for id in 0u32..50 {
            let v = hash_to_unit(b"gq", &id.to_be_bytes(), &n);
            assert!(gcd(&v, &n).is_one());
            assert!(!v.is_zero());
        }
    }

    #[test]
    fn challenge_hash_is_160_bits_max() {
        let c = challenge_hash(&[b"a", b"b"]);
        assert!(c.bit_length() <= 160);
    }

    #[test]
    fn challenge_hash_injective_framing() {
        // ("ab", "c") must differ from ("a", "bc") thanks to length prefixes.
        assert_ne!(
            challenge_hash(&[b"ab", b"c"]),
            challenge_hash(&[b"a", b"bc"])
        );
    }
}
