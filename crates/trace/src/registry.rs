//! Named counters, gauges, epoch-windowed rate meters and fixed-bucket
//! histograms with stable snapshots and a Prometheus-style text
//! exposition.
//!
//! Everything here is deterministic by construction: `BTreeMap`-backed
//! storage means snapshots and [`MetricsSnapshot::prometheus_text`] are
//! byte-identical for identical update sequences, regardless of
//! insertion order. Only *virtual-clock* quantities belong in the
//! registry — wall-clock durations would break the byte-equality the
//! determinism smokes assert.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds, tuned for the quantities the
/// service observes (virtual milliseconds, millijoules): spans five
/// decades. Values above the last bound land in the overflow bucket.
pub const DEFAULT_BOUNDS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0,
];

/// How many closed windows an epoch-windowed rate meter retains; the
/// per-epoch rate is the mean over these.
pub const METER_WINDOWS: usize = 16;

/// A standalone fixed-bucket histogram: O(1) per observation, O(buckets)
/// per snapshot, with exact `min`/`max` tracking so single samples and
/// distribution extremes survive bucket quantization.
///
/// This is the same accumulator [`MetricsRegistry`] uses internally,
/// exported so other crates (e.g. `egka-service`'s latency metrics and
/// per-shard health stats) can share one quantile implementation.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// An empty histogram over the given bucket upper bounds (ascending);
    /// values above the last bound land in an implicit overflow bucket.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds `other` into `self`. Both histograms must share bucket
    /// bounds (they do when both were built from the same constant).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            sum: self.sum,
            count: self.count,
            min: self.min,
            max: self.max,
        }
    }
}

/// Builds a labeled metric key: `name{k="v",…}`. Label *values* are
/// escaped (`\\`, `\"`, newline); the name and label keys are emitted
/// as-is and sanitized only at exposition time.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[derive(Clone, Debug, Default)]
struct Meter {
    total: f64,
    current: f64,
    windows: Vec<f64>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    meters: BTreeMap<String, Meter>,
    histograms: BTreeMap<String, Histogram>,
    help: BTreeMap<String, String>,
}

/// A registry of named counters, gauges, epoch-windowed rate meters and
/// fixed-bucket histograms.
///
/// `BTreeMap`-backed so snapshots iterate in name order — the snapshot is
/// *stable*: same updates, same snapshot, regardless of insertion order.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Adds `delta` to rate meter `name`'s *current* window (and its
    /// lifetime total). Windows are closed by [`roll_window`], typically
    /// once per service epoch.
    ///
    /// [`roll_window`]: MetricsRegistry::roll_window
    pub fn meter(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock();
        let m = inner.meters.entry(name.to_string()).or_default();
        m.current += delta;
        m.total += delta;
    }

    /// Closes the current window of **every** meter: each window value is
    /// pushed into a ring of the last [`METER_WINDOWS`] windows and the
    /// current accumulator resets. Call once per epoch tick.
    pub fn roll_window(&self) {
        let mut inner = self.inner.lock();
        for m in inner.meters.values_mut() {
            m.windows.push(m.current);
            m.current = 0.0;
            if m.windows.len() > METER_WINDOWS {
                m.windows.remove(0);
            }
        }
    }

    /// Registers help text for metric `name` (the *base* name, without
    /// labels), used by the Prometheus exposition's `# HELP` line.
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock();
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Records `value` into histogram `name` with [`DEFAULT_BOUNDS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, DEFAULT_BOUNDS, value);
    }

    /// Records `value` into histogram `name`; `bounds` are used only on
    /// first touch (a histogram's buckets are fixed for its lifetime).
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A stable, name-ordered snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            meters: inner
                .meters
                .iter()
                .map(|(k, m)| {
                    (
                        k.clone(),
                        MeterSnapshot {
                            total: m.total,
                            current: m.current,
                            windows: m.windows.clone(),
                        },
                    )
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            help: inner
                .help
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Shorthand: renders the Prometheus exposition of a fresh snapshot.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }
}

impl core::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("meters", &inner.meters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// One histogram's frozen state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; the implicit final bucket is `+inf`.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` long (last is overflow).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// A bucket-interpolated quantile estimate (0.0..=1.0); `None` when
    /// the histogram is empty.
    ///
    /// The rank follows the nearest-rank convention
    /// (`round((count-1)·q) + 1`), then interpolates linearly inside the
    /// containing bucket; the tracked `min`/`max` clamp the result, so a
    /// single observation — and any quantile landing in the overflow
    /// bucket — reports an exact observed value rather than a bucket
    /// edge.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64 + 1;
        // The extreme ranks are tracked exactly — no bucket estimate
        // needed (this also makes every quantile of a single observation
        // exact).
        if rank <= 1 {
            return Some(self.min);
        }
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if seen + c >= rank && *c > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let pos = (rank - seen) as f64 / *c as f64;
                let v = lower + (upper - lower) * pos;
                return Some(v.clamp(self.min, self.max));
            }
            seen += c;
        }
        None
    }
}

/// One rate meter's frozen state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MeterSnapshot {
    /// Lifetime total of everything metered.
    pub total: f64,
    /// The still-open window's accumulator.
    pub current: f64,
    /// The last [`METER_WINDOWS`] closed windows, oldest first.
    pub windows: Vec<f64>,
}

impl MeterSnapshot {
    /// Mean per closed window (≈ per epoch); `0.0` before the first
    /// [`MetricsRegistry::roll_window`].
    pub fn rate_per_epoch(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.windows.iter().sum::<f64>() / self.windows.len() as f64
        }
    }
}

/// Name-ordered registry snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Rate meters, sorted by name.
    pub meters: Vec<(String, MeterSnapshot)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Registered help texts, sorted by base metric name.
    pub help: Vec<(String, String)>,
}

/// Splits a registry key into its base name and (already-rendered)
/// label body: `"e{suite=\"x\"}"` → `("e", "suite=\"x\"")`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], key[i + 1..].trim_end_matches('}')),
        None => (key, ""),
    }
}

/// Maps a metric family name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (anything else becomes `_`).
fn sanitize(family: &str) -> String {
    let mut out = String::with_capacity(family.len());
    for (i, ch) in family.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Prometheus renders floats via Go's shortest-roundtrip formatting;
/// Rust's `{}` for `f64` has the same property and is deterministic.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format:
    /// one `# HELP`/`# TYPE` pair per family, samples in stable name
    /// order, labels preserved, histogram buckets cumulative with a
    /// final `le="+Inf"`. Byte-identical across identical snapshots.
    ///
    /// Meters render as two families: `<name>_total` (counter) and
    /// `<name>_rate` (gauge: mean per closed window ≈ per epoch).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let help_for = |base: &str| -> String {
            self.help
                .iter()
                .find(|(k, _)| k == base)
                .map(|(_, h)| h.clone())
                .unwrap_or_else(|| format!("egka metric {base}"))
        };
        // family → (base name for help lookup, samples as (labels, text)).
        type Family<'a> = BTreeMap<String, (String, Vec<(String, String)>)>;
        let emit = |out: &mut String, kind: &str, fams: &Family| {
            for (fam, (base, samples)) in fams {
                out.push_str(&format!("# HELP {fam} {}\n", help_for(base)));
                out.push_str(&format!("# TYPE {fam} {kind}\n"));
                for (labels, value) in samples {
                    if labels.is_empty() {
                        out.push_str(&format!("{fam} {value}\n"));
                    } else {
                        out.push_str(&format!("{fam}{{{labels}}} {value}\n"));
                    }
                }
            }
        };
        let group = |entries: &[(String, String)]| -> Family {
            let mut fams: Family = BTreeMap::new();
            for (key, value) in entries {
                let (base, labels) = split_key(key);
                fams.entry(sanitize(base))
                    .or_insert_with(|| (base.to_string(), Vec::new()))
                    .1
                    .push((labels.to_string(), value.clone()));
            }
            fams
        };

        let counters: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), format!("{v}")))
            .collect();
        emit(&mut out, "counter", &group(&counters));

        let gauges: Vec<(String, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), fmt_f64(*v)))
            .collect();
        emit(&mut out, "gauge", &group(&gauges));

        let meter_key = |k: &str, suffix: &str| -> String {
            let (base, labels) = split_key(k);
            if labels.is_empty() {
                format!("{base}{suffix}")
            } else {
                format!("{base}{suffix}{{{labels}}}")
            }
        };
        let totals: Vec<(String, String)> = self
            .meters
            .iter()
            .map(|(k, m)| (meter_key(k, "_total"), fmt_f64(m.total)))
            .collect();
        emit(&mut out, "counter", &group(&totals));
        let rates: Vec<(String, String)> = self
            .meters
            .iter()
            .map(|(k, m)| (meter_key(k, "_rate"), fmt_f64(m.rate_per_epoch())))
            .collect();
        emit(&mut out, "gauge", &group(&rates));

        // Histograms need bucket/sum/count triples, so they bypass the
        // scalar grouping helper. Family name → (unsanitized base, series
        // of (label-set, snapshot)).
        type HistFamilies<'a> = BTreeMap<String, (String, Vec<(String, &'a HistogramSnapshot)>)>;
        let mut hist_fams: HistFamilies<'_> = BTreeMap::new();
        for (key, h) in &self.histograms {
            let (base, labels) = split_key(key);
            hist_fams
                .entry(sanitize(base))
                .or_insert_with(|| (base.to_string(), Vec::new()))
                .1
                .push((labels.to_string(), h));
        }
        for (fam, (base, series)) in &hist_fams {
            out.push_str(&format!("# HELP {fam} {}\n", help_for(base)));
            out.push_str(&format!("# TYPE {fam} histogram\n"));
            for (labels, h) in series {
                let with_le = |le: &str| {
                    if labels.is_empty() {
                        format!("le=\"{le}\"")
                    } else {
                        format!("{labels},le=\"{le}\"")
                    }
                };
                let mut cum = 0u64;
                for (i, c) in h.counts.iter().enumerate() {
                    cum += c;
                    let le = if i < h.bounds.len() {
                        fmt_f64(h.bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    out.push_str(&format!("{fam}_bucket{{{}}} {cum}\n", with_le(&le)));
                }
                let suffix = if labels.is_empty() {
                    String::new()
                } else {
                    format!("{{{labels}}}")
                };
                out.push_str(&format!("{fam}_sum{suffix} {}\n", fmt_f64(h.sum)));
                out.push_str(&format!("{fam}_count{suffix} {}\n", h.count));
            }
        }
        out
    }

    /// Renders the snapshot as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counter                                  value\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauge                                    value\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<40} {v}\n"));
            }
        }
        if !self.meters.is_empty() {
            out.push_str("meter                                    total    rate/epoch\n");
            for (name, m) in &self.meters {
                out.push_str(&format!(
                    "{name:<40} {:<8} {:.2}\n",
                    m.total,
                    m.rate_per_epoch()
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histogram                                count        sum    ~p50    ~p95    ~p99\n");
            for (name, h) in &self.histograms {
                let q = |p: f64| {
                    h.quantile(p)
                        .map(|v| format!("{v:>7.2}"))
                        .unwrap_or_else(|| "      -".to_string())
                };
                out.push_str(&format!(
                    "{name:<40} {count:>5} {sum:>10.2} {p50} {p95} {p99}\n",
                    count = h.count,
                    sum = h.sum,
                    p50 = q(0.50),
                    p95 = q(0.95),
                    p99 = q(0.99),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_order() {
        let reg = MetricsRegistry::new();
        reg.add("zeta", 2);
        reg.add("alpha", 1);
        reg.add("zeta", 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("alpha".to_string(), 1), ("zeta".to_string(), 5)]
        );
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        for v in [0.2, 0.3, 4.0, 9.0, 20_000.0] {
            reg.observe("lat", v);
        }
        let snap = reg.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 5);
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        // Overflow bucket holds the 20k observation.
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert!(h.quantile(0.5).unwrap() <= 5.0);
        assert!(h.quantile(0.0).is_some());
        // min/max clamp the interpolation: the extremes are exact.
        assert_eq!(h.quantile(0.0), Some(0.2));
        assert_eq!(h.quantile(1.0), Some(20_000.0));
        let empty = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::default();
        h.observe(7.25);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(7.25));
        }
    }

    #[test]
    fn uniform_data_interpolates_exactly() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), Some(51.0));
        assert_eq!(s.quantile(0.95), Some(95.0));
        assert_eq!(s.quantile(0.99), Some(99.0));
    }

    #[test]
    fn histogram_merge_matches_combined_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [0.3, 2.0, 40.0] {
            a.observe(v);
            both.observe(v);
        }
        for v in [7.0, 9_999.0] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = MetricsRegistry::new();
        reg.set_gauge("depth", 3.0);
        reg.set_gauge("depth", 1.5);
        assert_eq!(reg.snapshot().gauges, vec![("depth".to_string(), 1.5)]);
    }

    #[test]
    fn meters_window_and_rate() {
        let reg = MetricsRegistry::new();
        reg.meter("events", 10.0);
        reg.roll_window();
        reg.meter("events", 30.0);
        reg.roll_window();
        reg.meter("events", 5.0); // still open
        let snap = reg.snapshot();
        let (_, m) = &snap.meters[0];
        assert_eq!(m.total, 45.0);
        assert_eq!(m.current, 5.0);
        assert_eq!(m.windows, vec![10.0, 30.0]);
        assert_eq!(m.rate_per_epoch(), 20.0);
        // The ring retains only the newest METER_WINDOWS windows.
        for _ in 0..(2 * METER_WINDOWS) {
            reg.roll_window();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.meters[0].1.windows.len(), METER_WINDOWS);
    }

    #[test]
    fn labeled_builds_and_escapes() {
        assert_eq!(labeled("x", &[]), "x");
        assert_eq!(
            labeled("energy", &[("suite", "gdh2-c"), ("shard", "0")]),
            "energy{suite=\"gdh2-c\",shard=\"0\"}"
        );
        assert_eq!(labeled("x", &[("k", "a\"b\\c")]), "x{k=\"a\\\"b\\\\c\"}");
    }

    #[test]
    fn snapshot_is_stable_across_insertion_order() {
        let a = MetricsRegistry::new();
        a.add("x", 1);
        a.add("y", 2);
        a.set_gauge("g", 4.0);
        let b = MetricsRegistry::new();
        b.set_gauge("g", 4.0);
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.describe("rekeys", "rekeys executed");
        reg.add("rekeys", 7);
        reg.add(&labeled("suite_groups", &[("suite", "bd-dsa")]), 3);
        reg.set_gauge(&labeled("shard_groups", &[("shard", "0")]), 12.0);
        reg.meter("events", 4.0);
        reg.roll_window();
        reg.observe_with("lat", &[1.0, 10.0], 2.0);
        let text = reg.prometheus_text();
        assert!(text.contains("# HELP rekeys rekeys executed\n"));
        assert!(text.contains("# TYPE rekeys counter\nrekeys 7\n"));
        assert!(text.contains("suite_groups{suite=\"bd-dsa\"} 3\n"));
        assert!(text.contains("# TYPE shard_groups gauge\n"));
        assert!(text.contains("shard_groups{shard=\"0\"} 12\n"));
        assert!(text.contains("# TYPE events_total counter\nevents_total 4\n"));
        assert!(text.contains("# TYPE events_rate gauge\nevents_rate 4\n"));
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("lat_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_sum 2\n"));
        assert!(text.contains("lat_count 1\n"));
        // Legacy slash-separated names are sanitized into the charset.
        reg.observe("per/sec", 1.0);
        assert!(reg.prometheus_text().contains("per_sec_count 1\n"));
        // Stable bytes across repeated renders.
        assert_eq!(reg.prometheus_text(), reg.prometheus_text());
    }
}
