//! Named counters and fixed-bucket histograms with stable snapshots.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds, tuned for the quantities the
/// service observes (virtual milliseconds, millijoules): spans five
/// decades. Values above the last bound land in the overflow bucket.
pub const DEFAULT_BOUNDS: &[f64] = &[
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0,
    5_000.0, 10_000.0,
];

#[derive(Clone, Debug)]
struct Histo {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histo {
    fn new(bounds: &[f64]) -> Self {
        Histo {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histo>,
}

/// A registry of named counters and fixed-bucket histograms.
///
/// `BTreeMap`-backed so snapshots iterate in name order — the snapshot is
/// *stable*: same updates, same snapshot, regardless of insertion order.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records `value` into histogram `name` with [`DEFAULT_BOUNDS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, DEFAULT_BOUNDS, value);
    }

    /// Records `value` into histogram `name`; `bounds` are used only on
    /// first touch (a histogram's buckets are fixed for its lifetime).
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histo::new(bounds))
            .observe(value);
    }

    /// A stable, name-ordered snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                            count: h.count,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl core::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// One histogram's frozen state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; the implicit final bucket is `+inf`.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` long (last is overflow).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// A bucket-interpolated quantile estimate (0.0..=1.0); `None` when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: report the mean of what landed there
                    // is unknowable; fall back to the last bound.
                    *self.bounds.last().unwrap_or(&f64::INFINITY)
                });
            }
        }
        None
    }
}

/// Name-ordered registry snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counter                                  value\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histogram                                count        sum    ~p50    ~p95    ~p99\n");
            for (name, h) in &self.histograms {
                let q = |p: f64| {
                    h.quantile(p)
                        .map(|v| format!("{v:>7.2}"))
                        .unwrap_or_else(|| "      -".to_string())
                };
                out.push_str(&format!(
                    "{name:<40} {count:>5} {sum:>10.2} {p50} {p95} {p99}\n",
                    count = h.count,
                    sum = h.sum,
                    p50 = q(0.50),
                    p95 = q(0.95),
                    p99 = q(0.99),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_order() {
        let reg = MetricsRegistry::new();
        reg.add("zeta", 2);
        reg.add("alpha", 1);
        reg.add("zeta", 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("alpha".to_string(), 1), ("zeta".to_string(), 5)]
        );
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        for v in [0.2, 0.3, 4.0, 9.0, 20_000.0] {
            reg.observe("lat", v);
        }
        let snap = reg.snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 5);
        assert_eq!(h.counts.iter().sum::<u64>(), 5);
        // Overflow bucket holds the 20k observation.
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert!(h.quantile(0.5).unwrap() <= 5.0);
        assert!(h.quantile(0.0).is_some());
        let empty = HistogramSnapshot {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn snapshot_is_stable_across_insertion_order() {
        let a = MetricsRegistry::new();
        a.add("x", 1);
        a.add("y", 2);
        let b = MetricsRegistry::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn table_renders_without_panic() {
        let reg = MetricsRegistry::new();
        reg.add("wal_appends", 7);
        reg.observe("rekey_latency_vms", 3.5);
        let table = reg.snapshot().render_table();
        assert!(table.contains("wal_appends"));
        assert!(table.contains("rekey_latency_vms"));
    }
}
