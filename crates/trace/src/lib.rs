//! # egka-trace — virtual-clock structured tracing and metrics
//!
//! The paper's argument is an *accounting* argument: per-member compute,
//! communication, and energy attributed to protocol rounds. This crate is
//! the attribution layer for the reproduction — a zero-dependency (beyond
//! the vendored `parking_lot`) tracing and metrics substrate keyed to the
//! **virtual clock**, so that traces are deterministic for a given seed and
//! config, byte-identical across runs, and therefore golden-pinnable.
//!
//! ## Pieces
//!
//! * [`Event`] / [`Phase`] / [`Payload`] — the span/instant event model.
//!   Timestamps are virtual nanoseconds (epoch slots plus radio airtime or
//!   a pump-sweep pseudo-clock); no wall-clock value ever enters an event.
//! * [`TraceSink`] — where events go. [`NoopSink`] discards (the default;
//!   disabled tracing is a branch on an `Option`), [`RingSink`] records
//!   into a bounded buffer.
//! * [`Tracer`] / [`TraceConfig`] — the handle the service layer carries;
//!   cloneable, cheap, `None`-backed when tracing is off.
//! * [`StepTrace`] — a shared per-protocol-step buffer handed down through
//!   `Faults` into the sans-IO executor and the radio medium, so round
//!   transitions and airtime events surface without any protocol-code
//!   churn. The owning shard drains it back in deterministic order.
//! * [`MetricsRegistry`] — named counters and fixed-bucket histograms with
//!   a stable snapshot ordering.
//! * [`export`] — Chrome `trace_event` JSON, collapsed-stack flame format
//!   for energy attribution, a plain-text top-N table, and an event-count
//!   fingerprint for goldens.
//!
//! ## Lanes (pid/tid scheme)
//!
//! * `pid 0` — the coordinator (creation, merges, WAL, snapshots).
//! * `pid s+1` — shard `s`.
//! * `pid u32::MAX` — the store (append/snapshot spans).
//! * `tid 0` — the control lane of a pid (epoch spans, deaths).
//! * `tid 2g+1` — group `g`'s protocol lane (group-epoch → step → round).
//! * `tid 2g+2` — group `g`'s air lane (per-transmission airtime spans),
//!   kept separate so airtime never breaks the round spans' B/E nesting.
//!
//! ```
//! use egka_trace::{Event, Phase, TraceConfig, Tracer};
//!
//! // Events emitted through a Tracer land in the bounded ring, in order.
//! let (config, ring) = TraceConfig::ring(16);
//! let tracer = Tracer::from(config);
//! tracer.emit(Event::new(Phase::Instant, 0, 0, 0, "epoch"));
//! let events = ring.events();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].name, "epoch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;

mod registry;
mod sink;
mod step;

pub use registry::{
    labeled, Histogram, HistogramSnapshot, MeterSnapshot, MetricsRegistry, MetricsSnapshot,
    DEFAULT_BOUNDS, METER_WINDOWS,
};
pub use sink::{NoopSink, RingSink, TraceSink};
pub use step::StepTrace;

use std::sync::Arc;

/// Virtual nanoseconds allotted to one service epoch on the trace
/// timeline. Every event of epoch `e` has `ts_ns` in
/// `[e * EPOCH_NS, (e + 1) * EPOCH_NS)` for the scales the benches run at.
pub const EPOCH_NS: u64 = 1_000_000_000;

/// Pseudo-clock advance per executor pump sweep when a step runs without a
/// radio (the instant medium has no virtual clock of its own). Chosen so
/// off-radio round structure is visible yet stays far below [`EPOCH_NS`].
pub const SWEEP_NS: u64 = 1_000;

/// The coordinator's pid lane.
pub const COORD_PID: u32 = 0;

/// The store's pid lane.
pub const STORE_PID: u32 = u32::MAX;

/// The control tid within any pid lane.
pub const CONTROL_TID: u64 = 0;

/// The protocol lane tid for group `gid`.
pub fn group_tid(gid: u64) -> u64 {
    2 * gid + 1
}

/// The air (radio) lane tid for group `gid`.
pub fn air_tid(gid: u64) -> u64 {
    2 * gid + 2
}

/// Event kind, mirroring the Chrome `trace_event` phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`"B"`).
    Begin,
    /// Span close (`"E"`); pairs with the innermost open `Begin` on the
    /// same (pid, tid) lane.
    End,
    /// Point event (`"i"`).
    Instant,
}

/// Why a protocol step stalled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Message loss starved the step of progress.
    Loss,
    /// A detached (partitioned) member can never answer.
    Detached,
    /// A member's battery died mid-step.
    BatteryDead,
}

impl StallCause {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Loss => "loss",
            StallCause::Detached => "detached",
            StallCause::BatteryDead => "battery_dead",
        }
    }

    /// Stable persisted tag (blame-certificate and snapshot codecs).
    pub fn code(self) -> u8 {
        match self {
            StallCause::Loss => 0,
            StallCause::Detached => 1,
            StallCause::BatteryDead => 2,
        }
    }

    /// Inverse of [`StallCause::code`]; `None` on an unknown tag.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(StallCause::Loss),
            1 => Some(StallCause::Detached),
            2 => Some(StallCause::BatteryDead),
            _ => None,
        }
    }
}

/// Typed event payload. Kept `Copy` (suite names are `&'static str`) so
/// recording an event is a couple of word moves, never an allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Payload {
    /// No annotation.
    None,
    /// Energy alone, in millijoules.
    Energy {
        /// Millijoules.
        mj: f64,
    },
    /// A completed group rekey epoch (the "dynamic" level).
    Rekey {
        /// Suite key (e.g. `"gdh2-c"`).
        suite: &'static str,
        /// Rekeys executed inside this group epoch.
        rekeys: u64,
        /// Energy spent by the group this epoch, mJ.
        mj: f64,
    },
    /// One protocol step (partition / join / merge / full rekey).
    Step {
        /// Suite key.
        suite: &'static str,
        /// Step index within the epoch plan.
        step: u32,
        /// Retries consumed by this step.
        retries: u32,
        /// Virtual milliseconds the step took.
        vms: f64,
        /// Nominal bits transmitted.
        bits: u64,
        /// Energy priced for the step, mJ.
        mj: f64,
    },
    /// A protocol round (the machine's phase index).
    Round {
        /// Round index.
        round: u32,
    },
    /// One serialized transmission occupying the channel.
    Airtime {
        /// Bits on the air.
        bits: u64,
        /// Transmit energy, microjoules.
        uj: f64,
    },
    /// A battery debit against one member.
    Debit {
        /// Member id.
        user: u32,
        /// Microjoules debited.
        uj: f64,
    },
    /// A step retry.
    Retry {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// A step stall.
    Stall {
        /// Why it stalled.
        cause: StallCause,
    },
    /// A WAL / snapshot LSN annotation.
    Lsn {
        /// Log sequence number.
        lsn: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Raw byte count (store I/O without an LSN in scope).
    Io {
        /// Bytes moved.
        bytes: u64,
    },
    /// A service epoch.
    Epoch {
        /// Epoch number.
        epoch: u64,
        /// Active groups at the time.
        groups: u64,
    },
    /// An epoch plan for one group.
    Plan {
        /// Suite key.
        suite: &'static str,
        /// Steps in the plan.
        steps: u32,
    },
    /// A member death.
    Death {
        /// Member id.
        user: u32,
    },
    /// A member evicted by the robustness plane.
    Evict {
        /// The group the member is evicted from.
        group: u64,
        /// Member id.
        user: u32,
        /// Consecutive stalled epochs that triggered the eviction.
        streak: u64,
    },
}

/// One trace event on a (pid, tid) lane of the virtual timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Span/instant phase.
    pub phase: Phase,
    /// Virtual nanoseconds.
    pub ts_ns: u64,
    /// Process lane (see the module docs).
    pub pid: u32,
    /// Thread lane (see the module docs).
    pub tid: u64,
    /// Stable event name (`"epoch"`, `"step.full_rekey"`, `"air.tx"`, …).
    pub name: &'static str,
    /// Typed annotation.
    pub payload: Payload,
}

impl Event {
    /// Convenience constructor.
    pub fn new(phase: Phase, ts_ns: u64, pid: u32, tid: u64, name: &'static str) -> Self {
        Event {
            phase,
            ts_ns,
            pid,
            tid,
            name,
            payload: Payload::None,
        }
    }

    /// Attaches a payload.
    pub fn with(mut self, payload: Payload) -> Self {
        self.payload = payload;
        self
    }
}

/// Configuration handed to `ServiceBuilder::trace`: where events go and,
/// optionally, a metrics registry to update alongside them.
#[derive(Clone)]
pub struct TraceConfig {
    /// Destination for events.
    pub sink: Arc<dyn TraceSink>,
    /// Optional metrics registry the instrumented layers update.
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl TraceConfig {
    /// Tracing into an arbitrary sink, no registry.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceConfig {
            sink,
            registry: None,
        }
    }

    /// Tracing into a fresh bounded [`RingSink`]; returns the config and a
    /// handle to read the ring back out.
    pub fn ring(capacity: usize) -> (Self, Arc<RingSink>) {
        let ring = Arc::new(RingSink::with_capacity(capacity));
        (TraceConfig::new(ring.clone()), ring)
    }

    /// Attaches a metrics registry.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }
}

impl core::fmt::Debug for TraceConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TraceConfig")
            .field("registry", &self.registry.is_some())
            .finish_non_exhaustive()
    }
}

/// The handle instrumented layers carry. Cloneable and cheap; when built
/// via [`Tracer::disabled`] every emit is a single branch.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    registry: Option<Arc<MetricsRegistry>>,
}

impl Tracer {
    /// The no-op tracer (the default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn emit(&self, ev: Event) {
        if let Some(sink) = &self.sink {
            sink.record(ev);
        }
    }

    /// Records a batch in order (no-op when disabled). Used to drain the
    /// per-shard buffers back into the sink deterministically.
    pub fn emit_all<I: IntoIterator<Item = Event>>(&self, evs: I) {
        if let Some(sink) = &self.sink {
            for ev in evs {
                sink.record(ev);
            }
        }
    }

    /// The attached metrics registry, if any.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }
}

impl From<TraceConfig> for Tracer {
    fn from(cfg: TraceConfig) -> Self {
        Tracer {
            sink: Some(cfg.sink),
            registry: cfg.registry,
        }
    }
}

impl core::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(Event::new(Phase::Instant, 0, 0, 0, "x"));
        t.emit_all([Event::new(Phase::Instant, 1, 0, 0, "y")]);
        assert!(t.registry().is_none());
    }

    #[test]
    fn ring_config_records() {
        let (cfg, ring) = TraceConfig::ring(16);
        let t = Tracer::from(cfg);
        assert!(t.is_enabled());
        t.emit(Event::new(Phase::Begin, 10, 1, 3, "step.full_rekey"));
        t.emit(
            Event::new(Phase::End, 20, 1, 3, "step.full_rekey").with(Payload::Energy { mj: 1.5 }),
        );
        let evs = ring.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, Phase::Begin);
        assert_eq!(evs[1].payload, Payload::Energy { mj: 1.5 });
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn lane_helpers() {
        assert_eq!(group_tid(0), 1);
        assert_eq!(air_tid(0), 2);
        assert_eq!(group_tid(7), 15);
        assert_eq!(air_tid(7), 16);
        assert_ne!(COORD_PID, STORE_PID);
    }
}
