//! Exporters: Chrome `trace_event` JSON, collapsed-stack flame format,
//! a plain-text top-N energy table, and a golden-pinnable fingerprint.
//!
//! All exporters are pure functions of the recorded event slice; since the
//! events carry only virtual timestamps, the outputs are byte-identical
//! for a given seed + config.

use crate::{Event, Payload, Phase, CONTROL_TID, COORD_PID, STORE_PID};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Events regrouped per (pid, tid) lane — lanes in numeric order, events
/// within a lane in record order with timestamps clamped monotone (the
/// shard drains sub-buffers whose local clocks may interleave; Chrome's
/// span nesting requires per-tid monotonicity).
fn normalize(events: &[Event]) -> Vec<Event> {
    let mut lanes: BTreeMap<(u32, u64), Vec<Event>> = BTreeMap::new();
    for ev in events {
        lanes.entry((ev.pid, ev.tid)).or_default().push(*ev);
    }
    let mut out = Vec::with_capacity(events.len());
    for (_lane, mut evs) in lanes {
        let mut last = 0u64;
        for ev in &mut evs {
            if ev.ts_ns < last {
                ev.ts_ns = last;
            }
            last = ev.ts_ns;
        }
        out.extend(evs);
    }
    out
}

fn phase_code(ph: Phase) -> &'static str {
    match ph {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    }
}

fn num(out: &mut String, v: f64) {
    if v.is_finite() {
        // f64's Display is the shortest round-trip form — deterministic.
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn args_json(out: &mut String, payload: &Payload) {
    match payload {
        Payload::None => out.push_str("{}"),
        Payload::Energy { mj } => {
            out.push_str("{\"mj\":");
            num(out, *mj);
            out.push('}');
        }
        Payload::Rekey { suite, rekeys, mj } => {
            let _ = write!(out, "{{\"suite\":\"{suite}\",\"rekeys\":{rekeys},\"mj\":");
            num(out, *mj);
            out.push('}');
        }
        Payload::Step {
            suite,
            step,
            retries,
            vms,
            bits,
            mj,
        } => {
            let _ = write!(
                out,
                "{{\"suite\":\"{suite}\",\"step\":{step},\"retries\":{retries},\"bits\":{bits},\"vms\":"
            );
            num(out, *vms);
            out.push_str(",\"mj\":");
            num(out, *mj);
            out.push('}');
        }
        Payload::Round { round } => {
            let _ = write!(out, "{{\"round\":{round}}}");
        }
        Payload::Airtime { bits, uj } => {
            let _ = write!(out, "{{\"bits\":{bits},\"uj\":");
            num(out, *uj);
            out.push('}');
        }
        Payload::Debit { user, uj } => {
            let _ = write!(out, "{{\"user\":{user},\"uj\":");
            num(out, *uj);
            out.push('}');
        }
        Payload::Retry { attempt } => {
            let _ = write!(out, "{{\"attempt\":{attempt}}}");
        }
        Payload::Stall { cause } => {
            let _ = write!(out, "{{\"cause\":\"{}\"}}", cause.label());
        }
        Payload::Lsn { lsn, bytes } => {
            let _ = write!(out, "{{\"lsn\":{lsn},\"bytes\":{bytes}}}");
        }
        Payload::Io { bytes } => {
            let _ = write!(out, "{{\"bytes\":{bytes}}}");
        }
        Payload::Epoch { epoch, groups } => {
            let _ = write!(out, "{{\"epoch\":{epoch},\"groups\":{groups}}}");
        }
        Payload::Plan { suite, steps } => {
            let _ = write!(out, "{{\"suite\":\"{suite}\",\"steps\":{steps}}}");
        }
        Payload::Death { user } => {
            let _ = write!(out, "{{\"user\":{user}}}");
        }
        Payload::Evict {
            group,
            user,
            streak,
        } => {
            let _ = write!(
                out,
                "{{\"group\":{group},\"user\":{user},\"streak\":{streak}}}"
            );
        }
    }
}

fn pid_name(pid: u32) -> String {
    match pid {
        COORD_PID => "coordinator".to_string(),
        STORE_PID => "store".to_string(),
        s => format!("shard {}", s - 1),
    }
}

fn tid_name(tid: u64) -> String {
    if tid == CONTROL_TID {
        "control".to_string()
    } else if tid % 2 == 1 {
        format!("group {}", (tid - 1) / 2)
    } else {
        format!("group {} air", (tid - 2) / 2)
    }
}

/// Serializes events as Chrome `trace_event` JSON (object form), loadable
/// in `chrome://tracing` and Perfetto. One pid per shard (plus the
/// coordinator and the store), one tid per group lane; `M`etadata events
/// name them all. Timestamps are virtual microseconds.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let events = normalize(events);
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    // Metadata: name every lane that appears.
    let mut pids: Vec<u32> = Vec::new();
    let mut lanes: Vec<(u32, u64)> = Vec::new();
    for ev in &events {
        if !pids.contains(&ev.pid) {
            pids.push(ev.pid);
        }
        if !lanes.contains(&(ev.pid, ev.tid)) {
            lanes.push((ev.pid, ev.tid));
        }
    }
    pids.sort_unstable();
    lanes.sort_unstable();
    for pid in &pids {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid_name(*pid)
        );
    }
    for (pid, tid) in &lanes {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            tid_name(*tid)
        );
    }

    for ev in &events {
        sep(&mut out, &mut first);
        let us_int = ev.ts_ns / 1_000;
        let us_frac = ev.ts_ns % 1_000;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{us_int}.{us_frac:03},\"pid\":{},\"tid\":{}",
            ev.name,
            phase_code(ev.phase),
            ev.pid,
            ev.tid
        );
        if ev.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        args_json(&mut out, &ev.payload);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Energy attribution frames: one per energy-carrying event, as
/// (`lane;group;suite;leaf`, microjoules).
fn energy_frames(events: &[Event]) -> BTreeMap<String, f64> {
    let mut frames: BTreeMap<String, f64> = BTreeMap::new();
    for ev in events {
        let (stack, uj) = match (&ev.phase, &ev.payload) {
            (Phase::End, Payload::Step { suite, mj, .. }) => (
                format!(
                    "{};{};{};{}",
                    pid_name(ev.pid),
                    tid_name(ev.tid),
                    suite,
                    ev.name
                ),
                mj * 1_000.0,
            ),
            (Phase::End, Payload::Airtime { uj, .. }) => (
                format!("{};{};air;{}", pid_name(ev.pid), tid_name(ev.tid), ev.name),
                *uj,
            ),
            (Phase::Instant, Payload::Debit { uj, .. }) => (
                format!("{};{};air;{}", pid_name(ev.pid), tid_name(ev.tid), ev.name),
                *uj,
            ),
            (Phase::End, Payload::Rekey { suite, mj, .. }) if ev.name == "create" => (
                format!("{};{};{};create", pid_name(ev.pid), tid_name(ev.tid), suite),
                mj * 1_000.0,
            ),
            _ => continue,
        };
        *frames.entry(stack).or_insert(0.0) += uj;
    }
    frames
}

/// Collapsed-stack flame format for energy attribution: one line per
/// distinct `lane;group;suite;step` stack, value in whole microjoules.
/// Feed to any flamegraph renderer that takes `stack count` lines.
pub fn collapsed_energy(events: &[Event]) -> String {
    let mut out = String::new();
    for (stack, uj) in energy_frames(events) {
        let _ = writeln!(out, "{stack} {}", uj.round() as u64);
    }
    out
}

/// A plain-text table of the top-`n` energy stacks, biggest first (name
/// order breaks ties, so the table is deterministic).
pub fn top_table(events: &[Event], n: usize) -> String {
    let mut rows: Vec<(String, f64)> = energy_frames(events).into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut out = String::new();
    let _ = writeln!(out, "{:>12}  stack", "µJ");
    for (stack, uj) in rows.into_iter().take(n) {
        let _ = writeln!(out, "{:>12.1}  {stack}", uj);
    }
    out
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A fingerprint over the event *counts* per (name, phase) plus the lane
/// population — stable across refactors that only reorder equal-content
/// buffers, sensitive to any event appearing or vanishing. This is what
/// the `trace_churn` golden pins per seed.
pub fn event_fingerprint(events: &[Event]) -> u64 {
    let mut counts: BTreeMap<(&'static str, u8), u64> = BTreeMap::new();
    let mut lanes: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    for ev in events {
        let code = match ev.phase {
            Phase::Begin => 0u8,
            Phase::End => 1,
            Phase::Instant => 2,
        };
        *counts.entry((ev.name, code)).or_insert(0) += 1;
        *lanes.entry((ev.pid, ev.tid)).or_insert(0) += 1;
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for ((name, code), n) in &counts {
        h = fnv(h, name.as_bytes());
        h = fnv(h, &[*code]);
        h = fnv(h, &n.to_le_bytes());
    }
    for ((pid, tid), n) in &lanes {
        h = fnv(h, &pid.to_le_bytes());
        h = fnv(h, &tid.to_le_bytes());
        h = fnv(h, &n.to_le_bytes());
    }
    fnv(h, &(events.len() as u64).to_le_bytes())
}

/// Checks span discipline on the raw buffer: per (pid, tid) lane, every
/// `End` matches the innermost open `Begin` by name, and no span stays
/// open at the end. (Timestamp monotonicity is enforced by `normalize` at
/// export time; this checks what normalization can't fix.)
pub fn validate(events: &[Event]) -> Result<(), String> {
    let mut stacks: BTreeMap<(u32, u64), Vec<&'static str>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let stack = stacks.entry((ev.pid, ev.tid)).or_default();
        match ev.phase {
            Phase::Begin => stack.push(ev.name),
            Phase::End => match stack.pop() {
                Some(open) if open == ev.name => {}
                Some(open) => {
                    return Err(format!(
                        "event {i}: E \"{}\" closes open span \"{open}\" on lane ({}, {})",
                        ev.name, ev.pid, ev.tid
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: E \"{}\" with no open span on lane ({}, {})",
                        ev.name, ev.pid, ev.tid
                    ))
                }
            },
            Phase::Instant => {}
        }
    }
    for ((pid, tid), stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span \"{open}\" left open on lane ({pid}, {tid})"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn ev(phase: Phase, ts: u64, pid: u32, tid: u64, name: &'static str) -> Event {
        Event::new(phase, ts, pid, tid, name)
    }

    #[test]
    fn normalize_clamps_per_lane() {
        let raw = vec![
            ev(Phase::Begin, 100, 1, 1, "a"),
            ev(Phase::End, 50, 1, 1, "a"), // regressed clock
            ev(Phase::Instant, 10, 0, 0, "b"),
        ];
        let out = normalize(&raw);
        // Lane (0,0) first, then (1,1) with the End clamped to 100.
        assert_eq!(out[0].pid, 0);
        assert_eq!(out[1].ts_ns, 100);
        assert_eq!(out[2].ts_ns, 100);
    }

    #[test]
    fn chrome_json_shape() {
        let raw = vec![
            ev(Phase::Begin, 1_500, 1, 3, "step.full_rekey").with(Payload::Step {
                suite: "gdh2-c",
                step: 0,
                retries: 0,
                vms: 0.0,
                bits: 0,
                mj: 0.0,
            }),
            ev(Phase::End, 2_500, 1, 3, "step.full_rekey"),
            ev(Phase::Instant, 2_600, 0, 0, "wal.append").with(Payload::Lsn { lsn: 7, bytes: 42 }),
        ];
        let json = chrome_trace_json(&raw);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ts\":2.600"));
        assert!(json.contains("\"lsn\":7"));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"suite\":\"gdh2-c\""));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn validate_catches_unbalanced() {
        assert!(validate(&[ev(Phase::Begin, 0, 0, 1, "a")]).is_err());
        assert!(validate(&[ev(Phase::End, 0, 0, 1, "a")]).is_err());
        assert!(
            validate(&[ev(Phase::Begin, 0, 0, 1, "a"), ev(Phase::End, 1, 0, 1, "b"),]).is_err()
        );
        assert!(validate(&[
            ev(Phase::Begin, 0, 0, 1, "a"),
            ev(Phase::Begin, 1, 0, 1, "b"),
            ev(Phase::End, 2, 0, 1, "b"),
            ev(Phase::End, 3, 0, 1, "a"),
            ev(Phase::Instant, 4, 0, 2, "c"),
        ])
        .is_ok());
    }

    #[test]
    fn fingerprint_is_order_insensitive_but_count_sensitive() {
        let a = vec![ev(Phase::Begin, 0, 0, 1, "a"), ev(Phase::End, 1, 0, 1, "a")];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(event_fingerprint(&a), event_fingerprint(&b));
        let mut c = a.clone();
        c.push(ev(Phase::Instant, 2, 0, 1, "x"));
        assert_ne!(event_fingerprint(&a), event_fingerprint(&c));
        // Lane moves change it too.
        let mut d = a.clone();
        d[0].tid = 3;
        d[1].tid = 3;
        assert_ne!(event_fingerprint(&a), event_fingerprint(&d));
    }

    #[test]
    fn flame_and_table_aggregate_energy() {
        let raw = vec![
            ev(Phase::End, 10, 1, 3, "step.full_rekey").with(Payload::Step {
                suite: "gdh2-c",
                step: 0,
                retries: 0,
                vms: 1.0,
                bits: 512,
                mj: 0.002,
            }),
            ev(Phase::End, 20, 1, 3, "step.full_rekey").with(Payload::Step {
                suite: "gdh2-c",
                step: 1,
                retries: 0,
                vms: 1.0,
                bits: 512,
                mj: 0.003,
            }),
            ev(Phase::End, 30, 1, 4, "air.tx").with(Payload::Airtime { bits: 64, uj: 1.5 }),
        ];
        let flame = collapsed_energy(&raw);
        assert!(flame.contains("shard 0;group 1;gdh2-c;step.full_rekey 5"));
        assert!(flame.contains("shard 0;group 1 air;air;air.tx 2"));
        let table = top_table(&raw, 1);
        assert!(table.contains("step.full_rekey"));
        assert!(!table.contains("air.tx"), "top-1 keeps only the biggest");
    }
}
