//! Event destinations.

use crate::Event;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Destination for trace events. Implementations must be internally
/// synchronized: the coordinator emits directly while shard buffers are
/// drained through the same handle.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, ev: Event);

    /// How many events the sink refused (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything — the "tracing disabled" backstop when a sink is
/// required structurally.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: Event) {}
}

/// A bounded in-memory recorder.
///
/// Once full it drops *new* events (keeping the deterministic prefix) and
/// counts them, rather than overwriting old ones — a truncated trace that
/// admits its truncation beats a silently rewritten one. `trace_churn`
/// asserts `dropped() == 0` so the golden event-count fingerprint can
/// never be "stable" by accident of a full ring.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring bounded at `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        RingSink {
            cap,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A ring with the default bound (1 Mi events — far above what the
    /// bench presets emit, small enough to bound memory).
    pub fn new() -> Self {
        RingSink::with_capacity(1 << 20)
    }

    /// Snapshot of the recorded events, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards recorded events and resets the drop counter.
    pub fn clear(&self) {
        self.events.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new()
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: Event) {
        let mut evs = self.events.lock();
        if evs.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            evs.push(ev);
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Payload, Phase};

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = RingSink::with_capacity(2);
        for i in 0..5 {
            ring.record(Event::new(Phase::Instant, i, 0, 0, "e"));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        // The *prefix* is kept.
        assert_eq!(ring.events()[0].ts_ns, 0);
        assert_eq!(ring.events()[1].ts_ns, 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn noop_sink_discards() {
        let s = NoopSink;
        s.record(Event::new(Phase::Begin, 0, 0, 0, "x").with(Payload::Round { round: 1 }));
        assert_eq!(s.dropped(), 0);
    }
}
