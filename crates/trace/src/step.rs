//! Per-protocol-step trace buffer shared down the execution stack.

use crate::{air_tid, group_tid, Event, Payload, Phase, StallCause};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    open_round: Option<u32>,
    max_ns: u64,
}

/// A handle threaded through `Faults` into one protocol step's executor
/// (and its radio medium, when there is one).
///
/// The executor reports round transitions, the medium reports airtime and
/// battery debits; everything lands in one shared buffer that the owning
/// shard drains *after* the step, into its own deterministic event stream.
/// Timestamps are `base_ns` (where the group's lane clock stood when the
/// step began) plus the step's relative virtual clock — the radio's
/// `now_ns` when there is a radio, a pump-sweep pseudo-clock otherwise.
///
/// Cloning shares the buffer (`Arc`); the stack hands clones down freely.
#[derive(Clone, Debug)]
pub struct StepTrace {
    inner: Arc<Mutex<Inner>>,
    pid: u32,
    tid: u64,
    air: u64,
    base_ns: u64,
}

impl StepTrace {
    /// A step trace for group `gid` on process lane `pid`, starting at
    /// `base_ns` on the virtual timeline.
    pub fn new(pid: u32, gid: u64, base_ns: u64) -> Self {
        StepTrace {
            inner: Arc::new(Mutex::new(Inner::default())),
            pid,
            tid: group_tid(gid),
            air: air_tid(gid),
            base_ns,
        }
    }

    fn push(inner: &mut Inner, ev: Event) {
        inner.max_ns = inner.max_ns.max(ev.ts_ns);
        inner.events.push(ev);
    }

    /// The executor's current round (max machine phase index) changed;
    /// closes the open round span (if any) and opens the new one.
    pub fn round_transition(&self, round: u32, rel_ns: u64) {
        let ts = self.base_ns + rel_ns;
        let mut inner = self.inner.lock();
        if let Some(open) = inner.open_round.take() {
            Self::push(
                &mut inner,
                Event::new(Phase::End, ts, self.pid, self.tid, "round")
                    .with(Payload::Round { round: open }),
            );
        }
        Self::push(
            &mut inner,
            Event::new(Phase::Begin, ts, self.pid, self.tid, "round")
                .with(Payload::Round { round }),
        );
        inner.open_round = Some(round);
    }

    /// Closes the open round span at `rel_ns` (step completed).
    pub fn finish_rounds(&self, rel_ns: u64) {
        let ts = self.base_ns + rel_ns;
        let mut inner = self.inner.lock();
        if let Some(open) = inner.open_round.take() {
            Self::push(
                &mut inner,
                Event::new(Phase::End, ts, self.pid, self.tid, "round")
                    .with(Payload::Round { round: open }),
            );
        }
    }

    /// Closes any dangling round span at the last timestamp seen — called
    /// by the shard after tearing a step down (stall/abort paths), so the
    /// exported trace always balances.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        if let Some(open) = inner.open_round.take() {
            let ts = inner.max_ns.max(self.base_ns);
            Self::push(
                &mut inner,
                Event::new(Phase::End, ts, self.pid, self.tid, "round")
                    .with(Payload::Round { round: open }),
            );
        }
    }

    /// One serialized transmission on the air lane: busy from `start_rel`
    /// to `end_rel` (radio-relative ns), `bits` on the channel, `uj`
    /// microjoules debited from the sender.
    pub fn air_tx(&self, bits: u64, uj: f64, start_rel_ns: u64, end_rel_ns: u64) {
        let mut inner = self.inner.lock();
        Self::push(
            &mut inner,
            Event::new(
                Phase::Begin,
                self.base_ns + start_rel_ns,
                self.pid,
                self.air,
                "air.tx",
            )
            .with(Payload::Airtime { bits, uj }),
        );
        Self::push(
            &mut inner,
            Event::new(
                Phase::End,
                self.base_ns + end_rel_ns.max(start_rel_ns),
                self.pid,
                self.air,
                "air.tx",
            )
            .with(Payload::Airtime { bits, uj }),
        );
    }

    /// A receiver missed this transmission (loss draw).
    pub fn air_drop(&self, user: u32, rel_ns: u64) {
        let mut inner = self.inner.lock();
        Self::push(
            &mut inner,
            Event::new(
                Phase::Instant,
                self.base_ns + rel_ns,
                self.pid,
                self.air,
                "air.drop",
            )
            .with(Payload::Death { user }),
        );
    }

    /// A receive-side battery debit at delivery time.
    pub fn air_rx(&self, user: u32, uj: f64, rel_ns: u64) {
        let mut inner = self.inner.lock();
        Self::push(
            &mut inner,
            Event::new(
                Phase::Instant,
                self.base_ns + rel_ns,
                self.pid,
                self.air,
                "air.rx",
            )
            .with(Payload::Debit { user, uj }),
        );
    }

    /// A member's battery died on the air (mid-transmit, mid-receive, or
    /// from a compute debit).
    pub fn air_death(&self, user: u32, rel_ns: u64) {
        let mut inner = self.inner.lock();
        Self::push(
            &mut inner,
            Event::new(
                Phase::Instant,
                self.base_ns + rel_ns,
                self.pid,
                self.air,
                "air.death",
            )
            .with(Payload::Death { user }),
        );
    }

    /// A stall cause observed mid-step (recorded by the shard, kept here
    /// for symmetry with the air events).
    pub fn stall(&self, cause: StallCause, rel_ns: u64) {
        let mut inner = self.inner.lock();
        Self::push(
            &mut inner,
            Event::new(
                Phase::Instant,
                self.base_ns + rel_ns,
                self.pid,
                self.tid,
                "stall",
            )
            .with(Payload::Stall { cause }),
        );
    }

    /// Where the step's lane clock ended: `base_ns` plus the furthest
    /// relative timestamp any event reached.
    pub fn end_ns(&self) -> u64 {
        let inner = self.inner.lock();
        inner.max_ns.max(self.base_ns)
    }

    /// Takes the buffered events (record order). The shard calls this once
    /// after the step settles; a second call returns an empty vec.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_balance_and_nest() {
        let st = StepTrace::new(1, 3, 1_000);
        st.round_transition(0, 0);
        st.round_transition(1, 50);
        st.finish_rounds(90);
        let evs = st.drain();
        let phases: Vec<Phase> = evs.iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![Phase::Begin, Phase::End, Phase::Begin, Phase::End]
        );
        assert_eq!(evs[0].ts_ns, 1_000);
        assert_eq!(evs[1].ts_ns, 1_050);
        assert_eq!(evs[3].ts_ns, 1_090);
        assert_eq!(evs[0].tid, group_tid(3));
        assert_eq!(st.end_ns(), 1_090);
        assert!(st.drain().is_empty(), "drain takes");
    }

    #[test]
    fn close_seals_dangling_round() {
        let st = StepTrace::new(2, 0, 500);
        st.round_transition(2, 10);
        st.close();
        let evs = st.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].phase, Phase::End);
        assert_eq!(evs[1].ts_ns, 510);
        // Idempotent.
        st.close();
        assert!(st.drain().is_empty());
    }

    #[test]
    fn air_events_use_air_lane() {
        let st = StepTrace::new(1, 5, 0);
        st.air_tx(512, 7.5, 100, 300);
        st.air_rx(9, 1.25, 320);
        st.air_drop(4, 330);
        let evs = st.drain();
        assert!(evs.iter().all(|e| e.tid == air_tid(5)));
        assert_eq!(evs[0].phase, Phase::Begin);
        assert_eq!(evs[1].phase, Phase::End);
        assert_eq!(evs[0].payload, Payload::Airtime { bits: 512, uj: 7.5 });
    }
}
