//! A minimal JSON reader for the bench artifacts.
//!
//! The workspace has no JSON dependency (offline environment), and the
//! perf-regression gate (`bench_diff`) only needs to *read back* the
//! artifacts this crate's own encoder writes — objects, strings, numbers,
//! `null`. This is a small recursive-descent parser for exactly that
//! grammar (arrays and booleans included for completeness), strict enough
//! to reject damaged artifacts instead of comparing garbage.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64` — the artifacts only carry doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = bytes.get(*pos).ok_or("unterminated escape")?;
                out.push(match escaped {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape '\\{}'", *other as char)),
                });
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through byte-wise; the artifacts
                // are ASCII but copying bytes keeps the parser total.
                out.push(b as char);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let doc = r#"{
            "schema": "egka-service-churn/1",
            "wall_ms": 123.4,
            "coalesce_ratio": null,
            "nested": {"p50": 1.0, "p95": 2.5},
            "suites": {"proposed": {"groups": 10, "energy_mj": 4.25}},
            "list": [1, 2, 3],
            "flag": true
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("egka-service-churn/1")
        );
        assert_eq!(v.get("wall_ms").unwrap().as_f64(), Some(123.4));
        assert_eq!(v.get("coalesce_ratio"), Some(&Json::Null));
        assert_eq!(
            v.get("nested").unwrap().get("p95").unwrap().as_f64(),
            Some(2.5)
        );
        let suites = v.get("suites").unwrap().members().unwrap();
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].0, "proposed");
        assert_eq!(suites[0].1.get("energy_mj").unwrap().as_f64(), Some(4.25));
        assert_eq!(
            v.get("list"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
        assert_eq!(v.get("flag"), Some(&Json::Bool(true)));
    }

    #[test]
    fn real_churn_artifact_roundtrips_through_the_parser() {
        let report = egka_sim::run_churn(&egka_sim::ChurnConfig {
            groups: 4,
            epochs: 2,
            shards: 2,
            ..egka_sim::ChurnConfig::default()
        });
        let json = crate::churn_report_json(&report);
        let v = Json::parse(&json).unwrap();
        assert_eq!(
            v.get("rekeys_executed").unwrap().as_f64(),
            Some(report.rekeys_executed as f64)
        );
        assert!(v.get("suites").unwrap().members().is_some());
    }

    #[test]
    fn damage_is_rejected() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
