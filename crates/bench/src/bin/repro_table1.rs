//! Reproduces **Table 1** — complexity analysis for authenticated BD GKA.
//!
//! Prints the paper's symbolic table verbatim, evaluates every column's
//! closed form at a concrete `n`, and (unless `--no-verify`) executes each
//! protocol for real to confirm the instrumented counts equal the closed
//! forms.
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_table1 [--n 10] [--no-verify]
//! ```

use egka_bench::{arg_value, has_flag};
use egka_energy::complexity::{table1_symbolic, InitialProtocol};
use egka_energy::{CompOp, Scheme};

fn main() {
    let n: u64 = arg_value("--n")
        .map(|v| v.parse().expect("--n N"))
        .unwrap_or(10);
    println!("Table 1. Complexity Analysis for Authenticated BD GKA (per user)");
    println!("================================================================\n");

    // Symbolic table, exactly as printed in the paper.
    print!("{:<10}", "Row");
    for p in InitialProtocol::ALL {
        print!("{:<16}", p.name());
    }
    println!();
    for row in table1_symbolic() {
        print!("{:<10}", row.row);
        for e in row.entries {
            print!("{e:<16}");
        }
        println!();
    }

    // Closed forms evaluated at n.
    println!("\nEvaluated at n = {n} (closed form):");
    #[allow(clippy::type_complexity)] // a static table of labelled accessors
    let rows: [(&str, fn(&egka_energy::OpCounts) -> u64); 9] = [
        ("Exp.", |c| c.exps()),
        ("Msg Tx", |c| c.msgs_tx),
        ("Msg Rx", |c| c.msgs_rx),
        ("Cert Ver", |c| {
            Scheme::ALL
                .iter()
                .map(|&s| c.get(CompOp::CertVerify(s)))
                .sum()
        }),
        ("MapToPt", |c| c.get(CompOp::MapToPoint)),
        ("Sign Gen", |c| {
            Scheme::ALL.iter().map(|&s| c.get(CompOp::SignGen(s))).sum()
        }),
        ("Sign Ver", |c| {
            Scheme::ALL
                .iter()
                .map(|&s| c.get(CompOp::SignVerify(s)))
                .sum()
        }),
        ("Tx bits", |c| c.tx_bits),
        ("Rx bits", |c| c.rx_bits),
    ];
    print!("{:<10}", "Row");
    for p in InitialProtocol::ALL {
        print!("{:<16}", p.key());
    }
    println!();
    for (name, f) in rows {
        print!("{name:<10}");
        for p in InitialProtocol::ALL {
            print!("{:<16}", f(&p.per_user_counts(n)));
        }
        println!();
    }

    if !has_flag("--no-verify") {
        let verify_n = n.min(12) as usize; // instrumented check at modest size
        print!("\nVerifying closed forms against instrumented runs (n = {verify_n}) … ");
        for p in InitialProtocol::ALL {
            // run_initial panics on any count mismatch.
            let _ = egka_sim::scenario::run_initial(p, verify_n, 0x7ab1e1);
        }
        println!("all 5 protocols verified ✓");
    }
}
