//! Reproduces **Table 4** — complexity analysis of the dynamic protocols.
//!
//! Prints the paper's symbolic rows verbatim, then measured totals from
//! instrumented runs of the proposed dynamic protocols. Known
//! discrepancies between the paper's symbolic entries and what the
//! protocol text actually produces (e.g. Join transmits 4 messages, not 5)
//! are visible here and documented in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_table4 [--n 8]
//! ```

use egka_bench::arg_value;
use egka_energy::complexity::table4_symbolic;

fn main() {
    let n: usize = arg_value("--n")
        .map(|v| v.parse().expect("--n N"))
        .unwrap_or(8);
    let m = (n / 2).max(2);
    let ld = (n / 4).max(2);

    println!("Table 4. Complexity Analysis of Dynamic Protocols");
    println!("=================================================\n");
    println!(
        "{:<12}{:<4}{:<8}{:<12}{:<10}{:<10}{:<10}",
        "Protocol", "Ev", "Rounds", "Msgs", "Exp.", "SignGen", "SignVer"
    );
    for row in table4_symbolic() {
        println!(
            "{:<12}{:<4}{:<8}{:<12}{:<10}{:<10}{:<10}",
            row.protocol, row.event, row.rounds, row.msgs, row.exps, row.sign_gen, row.sign_ver
        );
    }

    println!("\nMeasured total messages (instrumented, n = {n}, m = {m}, ld = {ld}):");
    let measured = egka_sim::measured_dynamic_msgs(n, m, ld, 0x7ab1e4);
    for (ev, msgs) in measured {
        println!("  Prop. Sch. {ev}: {msgs} messages");
    }
    println!(
        "\nNote: the paper's symbolic 'Msgs' column and footnotes disagree with\n\
         its own protocol text in places (Join: printed 5, protocol sends 4;\n\
         Leave: printed v+n−2, protocol sends v+n−1 where the v refreshers\n\
         send two messages each). Measured values above are ground truth for\n\
         this implementation; see EXPERIMENTS.md."
    );
}
