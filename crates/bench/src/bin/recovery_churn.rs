//! Crash-recovery smoke + bench: run the churn scenario twice — once
//! uninterrupted, once with the controller **killed mid-scenario** and
//! recovered from its durable store (snapshot + WAL tail, on the real
//! file backend) — and assert the two finish with bit-for-bit identical
//! key fingerprints.
//!
//! ```text
//! cargo run --release -p egka-bench --bin recovery_churn -- \
//!     [--groups 40] [--epochs 4] [--kill-epoch 2] [--seed N] [--shards N] \
//!     [--snapshot-every 2] [--store-dir PATH] [--json PATH|-] \
//!     [--check-determinism]
//! ```
//!
//! The kill lands after epoch `--kill-epoch`'s events are write-ahead
//! logged but before the epoch commits — the richest crash point: the
//! recovered service must replay the snapshot, the tail's committed
//! epochs, *and* re-queue the uncommitted submissions. With
//! `--check-determinism` the crash run repeats (fresh store) and must
//! reproduce itself exactly.
//!
//! Scenario totals land in `BENCH_recovery_churn.json` for the CI
//! artifact trail.

use std::sync::Arc;

use egka_bench::{arg_value, has_flag, recovery_churn_json};
use egka_service::{FileStore, StoreConfig};
use egka_sim::{run_churn, run_churn_with_crash, ChurnConfig, ChurnReport};

fn crash_run(
    config: &ChurnConfig,
    store_dir: &str,
    snapshot_every: u64,
    kill_epoch: u64,
) -> ChurnReport {
    // A fresh directory per run: this simulates a *new* deployment that
    // crashes once, not a store inherited from a previous bench.
    let _ = std::fs::remove_dir_all(store_dir);
    let store = Arc::new(FileStore::open(store_dir).expect("open store dir"));
    let store = StoreConfig::new(store).snapshot_every(snapshot_every);
    run_churn_with_crash(config, store, kill_epoch)
}

fn main() {
    let mut config = ChurnConfig {
        groups: 40,
        epochs: 4,
        ..ChurnConfig::default()
    };
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    let kill_epoch: u64 = arg_value("--kill-epoch")
        .map(|v| v.parse().expect("--kill-epoch N"))
        .unwrap_or(2);
    let snapshot_every: u64 = arg_value("--snapshot-every")
        .map(|v| v.parse().expect("--snapshot-every N"))
        .unwrap_or(2);
    let store_dir =
        arg_value("--store-dir").unwrap_or_else(|| "target/recovery_churn_store".into());

    println!(
        "recovery_churn: {} groups, {} epochs, seed {:#x}, kill at epoch {}, \
         snapshot every {}, store {}\n",
        config.groups, config.epochs, config.seed, kill_epoch, snapshot_every, store_dir
    );

    println!("— uninterrupted run —");
    let uninterrupted = run_churn(&config);
    print!("{}", uninterrupted.render());

    println!("\n— crash at epoch {kill_epoch}, recover, finish —");
    let crashed = crash_run(&config, &store_dir, snapshot_every, kill_epoch);
    print!("{}", crashed.render());

    // The durability acceptance: a controller crash must be invisible in
    // the keys.
    assert_eq!(
        crashed.key_fingerprint, uninterrupted.key_fingerprint,
        "recovered fingerprint must equal the uninterrupted run's"
    );
    assert_eq!(crashed.groups_active, uninterrupted.groups_active);
    let recovery = crashed.recovery.expect("crash ran");
    assert_eq!(recovery.kill_epoch, kill_epoch);
    println!(
        "\nrecovery ✓ fingerprint {:016x} reproduced through crash at epoch {} \
         ({} wal records replayed, snapshot {:?})",
        crashed.key_fingerprint, kill_epoch, recovery.records_replayed, recovery.snapshot_epoch
    );

    if has_flag("--check-determinism") {
        println!("\nre-running the crash for determinism…");
        let again = crash_run(&config, &store_dir, snapshot_every, kill_epoch);
        assert_eq!(
            again.key_fingerprint, crashed.key_fingerprint,
            "crash + recovery must be deterministic per seed"
        );
        assert_eq!(
            again.recovery.expect("crash ran").records_replayed,
            recovery.records_replayed,
            "the replayed tail must be identical too"
        );
        println!("deterministic ✓");
    }

    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_recovery_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, recovery_churn_json(&uninterrupted, &crashed))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("\nwrote {json_path}");
    }
}
