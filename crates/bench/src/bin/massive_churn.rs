//! Elastic-resharding bench: heavy Poisson churn while the shard pool
//! grows 4 → 16 live, shipped as a reviewable artifact.
//!
//! ```text
//! cargo run --release -p egka-bench --bin massive_churn
//! cargo run --release -p egka-bench --bin massive_churn -- \
//!     [--groups N] [--epochs N] [--shards N] [--target-shards N] [--seed N] \
//!     [--check-determinism] [--json PATH]
//! ```
//!
//! Two passes of [`ChurnConfig::reshard_bench`]:
//!
//! * **static pool** — the same workload on a fixed 16-shard pool: the
//!   placement-independence control. Keys never depend on placement, so
//!   the resharded pass must land on this fingerprint bit for bit.
//! * **live resharding** — the pool starts at 4 shards and grows to 16
//!   mid-churn (three adds per epoch from epoch 2, rebalancer armed),
//!   every add a live sealed-state handoff under queued Poisson traffic.
//!
//! The acceptance, asserted here and gated by `bench_diff`:
//!
//! * the pool reaches the target (`shards_added`), with every handoff a
//!   real move (`groups_moved` > 0);
//! * **zero stalled epochs** (`groups_stalled`, gated outright-fatal) —
//!   handoffs run between epochs and never block a rekey;
//! * the resharded fingerprint equals the static-pool control's.
//!
//! The artifact (`BENCH_massive_churn.json`, schema `egka-massive-churn/1`)
//! embeds the per-shard stats and the full metrics block.

use egka_bench::{arg_value, has_flag};
use egka_sim::{run_churn, ChurnConfig, ChurnReport};

fn apply_knobs(config: &mut ChurnConfig) {
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--target-shards") {
        let plan = config.reshard.as_mut().expect("reshard preset");
        plan.target_shards = v.parse().expect("--target-shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
}

/// The resharding acceptance: the pool grew to target through real
/// handoffs, and not one epoch stalled while it did.
fn assert_elastic(report: &ChurnReport, config: &ChurnConfig) {
    let plan = config.reshard.expect("reshard preset");
    assert_eq!(
        report.shards.len(),
        plan.target_shards,
        "the pool must reach the target size"
    );
    assert_eq!(
        report.metrics.shards_added,
        (plan.target_shards - config.shards) as u64
    );
    assert!(
        report.metrics.groups_moved > 0,
        "growth must relocate movers via live handoff"
    );
    assert_eq!(
        report.groups_stalled, 0,
        "a live handoff stalled an epoch — handoffs must run between \
         epochs, never against them"
    );
    // The partition invariant after all that movement: per-shard stats
    // still sum exactly to the service totals.
    let applied: u64 = report.shards.iter().map(|s| s.events_applied).sum();
    assert_eq!(applied, report.metrics.events_applied);
    let rekeys: u64 = report.shards.iter().map(|s| s.rekeys_executed).sum();
    assert_eq!(rekeys, report.metrics.rekeys_executed);
}

fn main() {
    let mut config = ChurnConfig::reshard_bench();
    apply_knobs(&mut config);
    let plan = config.reshard.expect("reshard preset");

    println!(
        "massive_churn: {} groups, {} epochs, {} → {} shards (from epoch {}, \
         {}/epoch), seed {:#x}\n",
        config.groups,
        config.epochs,
        config.shards,
        plan.target_shards,
        plan.from_epoch,
        plan.per_epoch,
        config.seed
    );

    // Pass 1 — the placement-independence control: same workload, fixed
    // pool already at the target size, no resharding, no rebalancer.
    let mut static_config = config.clone();
    static_config.shards = plan.target_shards;
    static_config.reshard = None;
    let control = run_churn(&static_config);
    let wall_ms_static = control.wall.as_secs_f64() * 1e3;
    println!(
        "static {} shards:  {:.1} ms",
        plan.target_shards, wall_ms_static
    );

    // Pass 2 — live resharding under load.
    let report = run_churn(&config);
    let wall_ms = report.wall.as_secs_f64() * 1e3;
    println!("live 4 → {}:       {:.1} ms\n", plan.target_shards, wall_ms);
    assert_elastic(&report, &config);
    assert_eq!(
        report.key_fingerprint, control.key_fingerprint,
        "resharding perturbed the keys — placement independence broken"
    );
    assert_eq!(
        report.metrics.events_applied,
        control.metrics.events_applied
    );

    println!("{}", report.render());

    let shards_json = report
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"shard\": {}, \"groups\": {}, \"events_applied\": {}, \
                 \"rekeys_executed\": {}}}",
                s.shard, s.groups, s.events_applied, s.rekeys_executed
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let suites = report
        .suites
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"groups\": {}, \"rekeys\": {}, \"energy_mj\": {:.3}}}",
                s.suite.key(),
                s.groups,
                s.rekeys,
                s.energy_mj
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \
         \"schema\": \"egka-massive-churn/1\",\n  \
         \"groups\": {},\n  \
         \"epochs\": {},\n  \
         \"shards_initial\": {},\n  \
         \"shards_final\": {},\n  \
         \"shards_added\": {},\n  \
         \"groups_moved\": {},\n  \
         \"groups_stalled\": {},\n  \
         \"health\": \"{}\",\n  \
         \"energy_mj\": {:.3},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \
         \"wall_ms_static\": {wall_ms_static:.1},\n  \
         \"shards\": [{shards_json}],\n  \
         \"suites\": {{{suites}}},\n  \
         \"metrics\": {},\n  \
         \"key_fingerprint\": \"{:016x}\"\n}}\n",
        config.groups,
        config.epochs,
        config.shards,
        report.shards.len(),
        report.metrics.shards_added,
        report.metrics.groups_moved,
        report.groups_stalled,
        report.health.label(),
        report.energy_mj,
        report.metrics.to_json(),
        report.key_fingerprint,
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_massive_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("wrote {json_path}");
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(report.metrics.groups_moved, again.metrics.groups_moved);
        assert_eq!(report.metrics.shards_added, again.metrics.shards_added);
        println!("deterministic ✓ (keys, moves and pool growth reproduced exactly)");
    }
}
