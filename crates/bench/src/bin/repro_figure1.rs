//! Reproduces **Figure 1** — total per-node energy of the five
//! authenticated GKA protocols, `n ∈ {10, 50, 100, 500}`, on the 100 kbps
//! sensor radio and the Spectrum24 WLAN card (log scale).
//!
//! Points at `n ≤ --instrument-up-to` (default 50) come from instrumented
//! executions; larger points use the closed forms those executions
//! validate. `--instrument-all` runs everything for real (slow: the SOK
//! point at n = 500 alone is ~750k Tate pairings).
//!
//! Writes the dataset to `figure1.csv` next to the workspace root.
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_figure1 \
//!     [--instrument-up-to N] [--instrument-all]
//! ```

use egka_bench::{arg_value, has_flag};
use egka_sim::{check_shape, generate_figure1, Figure1Config};

fn main() {
    let mut config = Figure1Config::default();
    if let Some(v) = arg_value("--instrument-up-to") {
        config.max_instrumented_n = v.parse().expect("--instrument-up-to N");
    }
    if has_flag("--instrument-all") {
        config.max_instrumented_n = u64::MAX;
    }
    println!(
        "Figure 1. Energy Consumption Costs — instrumented up to n = {}",
        config.max_instrumented_n
    );
    let fig = generate_figure1(&config);
    println!("\n{}", fig.to_ascii_chart());

    println!("Per-curve totals (J):");
    println!(
        "{:<10}{:<8}{:<38}{:>10}{:>10}{:>10}  src",
        "protocol", "curve", "transceiver", "n", "comp", "total"
    );
    for p in &fig.points {
        println!(
            "{:<10}{:<8}{:<38}{:>10}{:>10.4}{:>10.4}  {}",
            p.protocol,
            p.curve,
            p.transceiver,
            p.n,
            p.comp_j,
            p.total_j,
            p.source.tag()
        );
    }

    match check_shape(&fig) {
        Ok(()) => println!(
            "\nshape check ✓ — proposed scheme (curves i, j) cheapest everywhere; \
             SOK (e, f) dominant at n = 500"
        ),
        Err(e) => {
            eprintln!("\nSHAPE CHECK FAILED: {e}");
            std::process::exit(1);
        }
    }

    let csv = fig.to_csv();
    std::fs::write("figure1.csv", &csv).expect("write figure1.csv");
    println!("wrote figure1.csv ({} rows)", csv.lines().count() - 1);

    // Extension: time-to-key (the paper's Table 2 timings + data rates
    // imply latency, which its evaluation never reports).
    use egka_energy::complexity::InitialProtocol;
    use egka_energy::{CpuModel, Transceiver};
    println!("\nTime-to-key estimate (per node; compute + serialized airtime):");
    let cpu = CpuModel::strongarm_133();
    println!(
        "{:<10}{:>12}{:>18}{:>18}",
        "protocol", "n", "100kbps (s)", "WLAN (s)"
    );
    for proto in InitialProtocol::ALL {
        for n in &config.sizes {
            let slow =
                egka_sim::initial_gka_latency(proto, *n, &cpu, &Transceiver::radio_100kbps());
            let fast =
                egka_sim::initial_gka_latency(proto, *n, &cpu, &Transceiver::wlan_spectrum24());
            println!(
                "{:<10}{:>12}{:>18.2}{:>18.2}",
                proto.key(),
                n,
                slow.total_ms() / 1000.0,
                fast.total_ms() / 1000.0
            );
        }
    }
}
