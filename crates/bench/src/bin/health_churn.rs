//! Health-plane bench: runs a churn scenario twice — telemetry **off**,
//! then **on** (bounded ring + metrics registry) — and ships the live
//! health/load view as a reviewable artifact.
//!
//! ```text
//! cargo run --release -p egka-bench --bin health_churn
//! cargo run --release -p egka-bench --bin health_churn -- \
//!     [--preset mixed-suite|radio] [--groups N] [--epochs N] \
//!     [--shards N] [--seed N] [--check-determinism] [--json PATH]
//! ```
//!
//! The untraced pass is the overhead guard's subject (`wall_ms_untraced`,
//! gated by `bench_diff` like `trace_churn`'s). The telemetry pass must
//! reproduce it bit for bit — the health plane is passive accounting —
//! and is then audited three ways:
//!
//! * the per-shard [`egka_service::ShardStats`] must sum **exactly** to
//!   the `ServiceMetrics` totals (integer counters) and to f64
//!   association order (energy) — the same partition property the
//!   service-level proptest pins;
//! * the registry's Prometheus exposition must parse line by line
//!   (`# HELP`/`# TYPE` discipline, label syntax, finite sample values)
//!   and, under `--check-determinism`, render **byte-identically** on a
//!   same-seed rerun — only virtual/deterministic values may feed it;
//! * the ring must record zero drops (`trace_drops`, gated nonzero-fatal
//!   by `bench_diff`).
//!
//! The artifact (`BENCH_health_churn.json`, schema `egka-health-churn/1`)
//! embeds the per-shard table, the typed health verdict, the stall
//! ledger's worst offenders and the exposition size.

use std::sync::Arc;

use egka_bench::{arg_value, has_flag};
use egka_sim::{run_churn, ChurnConfig, ChurnReport};
use egka_trace::{MetricsRegistry, TraceConfig};

fn apply_knobs(config: &mut ChurnConfig) {
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
}

/// Minimal line-level Prometheus text-format check: `# HELP` and `# TYPE`
/// precede their family's samples, `# TYPE` kinds are known, sample lines
/// are `name[{labels}] value` with a finite value, and every sample's
/// family was typed. Enough for any scraper to ingest the page.
fn validate_exposition(text: &str) {
    use std::collections::BTreeSet;
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0u64;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let fam = it.next().expect("family").to_string();
            let kind = it.next().expect("kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind {kind:?}"
            );
            typed.insert(fam);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (name_part, value) = line.rsplit_once(' ').expect("sample is `name value`");
        let family = name_part.split('{').next().expect("sample name");
        assert!(
            !family.is_empty()
                && family
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {family:?}"
        );
        if let Some(open) = name_part.find('{') {
            assert!(name_part.ends_with('}'), "unterminated labels {line:?}");
            let labels = &name_part[open + 1..name_part.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label is k=\"v\"");
                assert!(!k.is_empty() && v.starts_with('"') && v.ends_with('"'));
            }
        }
        assert!(
            value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value {value:?}"
        );
        // Histogram series suffix back to their typed family name.
        let base = ["_bucket", "_sum", "_count", "_total", "_rate"]
            .iter()
            .find_map(|s| family.strip_suffix(s))
            .unwrap_or(family);
        assert!(
            typed.contains(family) || typed.contains(base),
            "sample {family} has no # TYPE"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition cannot be empty");
}

/// Σ-shards == metrics, exactly for the integer counters, to f64
/// association order for energy.
fn assert_reconciles(report: &ChurnReport) {
    let m = &report.metrics;
    let sum =
        |f: &dyn Fn(&egka_service::ShardStats) -> u64| report.shards.iter().map(f).sum::<u64>();
    assert_eq!(
        sum(&|s| s.events_applied),
        m.events_applied,
        "events_applied"
    );
    assert_eq!(
        sum(&|s| s.events_rejected),
        m.events_rejected,
        "events_rejected"
    );
    assert_eq!(
        sum(&|s| s.events_cancelled),
        m.events_cancelled,
        "events_cancelled"
    );
    assert_eq!(
        sum(&|s| s.rekeys_executed),
        m.rekeys_executed,
        "rekeys_executed"
    );
    assert_eq!(sum(&|s| s.rekeys_failed), m.rekeys_failed, "rekeys_failed");
    assert_eq!(
        sum(&|s| s.groups_stalled),
        m.groups_stalled,
        "groups_stalled"
    );
    assert_eq!(sum(&|s| s.steps_retried), m.steps_retried, "steps_retried");
    assert_eq!(sum(&|s| s.groups), m.groups_active, "groups_active");
    let lat: u64 = report
        .shards
        .iter()
        .map(|s| s.latency_virtual.count())
        .sum();
    assert_eq!(lat, m.latency_virtual.count(), "latency samples");
    let energy: f64 = report.shards.iter().map(|s| s.energy_mj).sum();
    assert!(
        (energy - m.energy_mj).abs() <= 1e-9 * m.energy_mj.abs().max(1.0),
        "shard energy {energy} != metrics {}",
        m.energy_mj
    );
}

fn health_label(report: &ChurnReport) -> &'static str {
    report.health.label()
}

fn run_telemetry_pass(config: &mut ChurnConfig) -> (ChurnReport, String) {
    let registry = Arc::new(MetricsRegistry::new());
    let (tc, _ring) = TraceConfig::ring(1 << 22);
    config.trace = Some(tc.with_registry(Arc::clone(&registry)));
    let report = run_churn(config);
    let exposition = registry.snapshot().prometheus_text();
    (report, exposition)
}

fn main() {
    let preset = arg_value("--preset").unwrap_or_else(|| "mixed-suite".into());
    let mut config = match preset.as_str() {
        "mixed-suite" => ChurnConfig::mixed_suite_bench(),
        "radio" => ChurnConfig::radio_bench(),
        other => panic!("unknown --preset {other} (try: mixed-suite, radio)"),
    };
    apply_knobs(&mut config);

    println!(
        "health_churn: preset {preset}, {} groups, {} epochs, {} shards, seed {:#x}\n",
        config.groups, config.epochs, config.shards, config.seed
    );

    // Pass 1 — telemetry off: the no-op overhead guard's subject.
    let untraced = run_churn(&config);
    let wall_ms_untraced = untraced.wall.as_secs_f64() * 1e3;
    println!("untraced:  {:.1} ms", wall_ms_untraced);

    // Pass 2 — telemetry on.
    let (report, exposition) = run_telemetry_pass(&mut config);
    let wall_ms = report.wall.as_secs_f64() * 1e3;
    println!("telemetry: {:.1} ms", wall_ms);

    // The health plane is passive accounting: nothing observable moves.
    assert_eq!(
        untraced.key_fingerprint, report.key_fingerprint,
        "telemetry perturbed the keys"
    );
    assert_eq!(untraced.events_applied, report.events_applied);
    assert_eq!(untraced.rekeys_executed, report.rekeys_executed);
    assert!((untraced.energy_mj - report.energy_mj).abs() < 1e-9);
    let trace_drops = report.trace_drops.unwrap_or(0);
    assert_eq!(trace_drops, 0, "the ring saturated");

    assert_reconciles(&report);
    println!("per-shard stats reconcile with service totals ✓");
    validate_exposition(&exposition);
    println!(
        "exposition parses ({} bytes, {} lines) ✓\n",
        exposition.len(),
        exposition.lines().count()
    );
    println!("{}", report.render());

    // Machine-readable artifact for the perf/health gate.
    let shards_json = report
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"shard\": {}, \"groups\": {}, \"pending_events\": {}, \
                 \"events_applied\": {}, \"rekeys_executed\": {}, \
                 \"rekeys_failed\": {}, \"groups_stalled\": {}, \
                 \"steps_retried\": {}, \"energy_mj\": {:.3}, \"wal_bytes\": {}}}",
                s.shard,
                s.groups,
                s.pending_events,
                s.events_applied,
                s.rekeys_executed,
                s.rekeys_failed,
                s.groups_stalled,
                s.steps_retried,
                s.energy_mj,
                s.wal_bytes
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let stalls_json = {
        let mut rows = report.member_stalls.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.stall.cumulative));
        rows.truncate(10);
        rows.iter()
            .map(|r| {
                format!(
                    "{{\"group\": {}, \"member\": {}, \"consecutive\": {}, \
                     \"cumulative\": {}, \"cause\": \"{}\"}}",
                    r.group,
                    r.member.0,
                    r.stall.consecutive,
                    r.stall.cumulative,
                    r.stall.last_cause.label()
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let suites = report
        .suites
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"groups\": {}, \"rekeys\": {}, \"energy_mj\": {:.3}}}",
                s.suite.key(),
                s.groups,
                s.rekeys,
                s.energy_mj
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \
         \"schema\": \"egka-health-churn/1\",\n  \
         \"preset\": \"{preset}\",\n  \
         \"groups\": {},\n  \
         \"epochs\": {},\n  \
         \"health\": \"{}\",\n  \
         \"trace_drops\": {trace_drops},\n  \
         \"exposition_bytes\": {},\n  \
         \"energy_mj\": {:.3},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \
         \"wall_ms_untraced\": {wall_ms_untraced:.1},\n  \
         \"shards\": [{shards_json}],\n  \
         \"member_stalls\": [{stalls_json}],\n  \
         \"suites\": {{{suites}}},\n  \
         \"metrics\": {},\n  \
         \"key_fingerprint\": \"{:016x}\"\n}}\n",
        config.groups,
        config.epochs,
        health_label(&report),
        exposition.len(),
        report.energy_mj,
        report.metrics.to_json(),
        report.key_fingerprint,
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_health_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("wrote {json_path}");
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let (again, exposition2) = run_telemetry_pass(&mut config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert!(
            exposition == exposition2,
            "same seed + config must render a byte-identical exposition"
        );
        println!(
            "deterministic ✓ ({} bytes of exposition reproduced exactly)",
            exposition2.len()
        );
    }
}
