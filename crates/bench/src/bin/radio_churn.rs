//! Radio-time churn bench: Poisson churn over many groups where every
//! rekey runs on the **virtual-time 100 kbps sensor medium** — per-link
//! delay, airtime contention, seeded loss, and finite batteries whose
//! exhaustion powers motes off mid-protocol.
//!
//! ```text
//! cargo run --release -p egka-bench --bin radio_churn
//! cargo run --release -p egka-bench --bin radio_churn -- \
//!     --groups 40 --epochs 4 --loss 0.01 --delay-ms 2 --jitter-ms 1 \
//!     --battery-uj 2000000 --weak 2 --weak-battery-uj 100000 \
//!     [--wlan] [--seed N] [--check-determinism]
//! ```
//!
//! Reports everything `service_churn` does plus the radio view: p50/p95/
//! p99 rekey latency in virtual milliseconds, per-node battery drain
//! (µJ), and which motes died. The driver evicts dead motes with a
//! `Leave`, so one battery death stalls one group for one epoch — every
//! other group keeps completing (the liveness acceptance criterion, which
//! this binary asserts).
//!
//! The scenario totals are also written as machine-readable JSON to
//! `BENCH_radio_churn.json` (same shape as `BENCH_service_churn.json`;
//! override with `--json PATH`, disable with `--json -`), so radio-path
//! perf is tracked across PRs too.

use egka_bench::{arg_value, churn_report_json, has_flag, parse_suite_policy};
use egka_sim::{run_churn, ChurnConfig};

fn main() {
    // The canonical radio scenario lives on ChurnConfig so this binary,
    // the tests and CI all drive the same knobs.
    let mut config = ChurnConfig::radio_bench();
    let mut radio = config.radio.take().expect("radio_bench has a radio");
    if let Some(v) = arg_value("--policy") {
        config.suite_policy = parse_suite_policy(&v);
    }
    if has_flag("--wlan") {
        radio.profile = egka_medium::RadioProfile::wlan_spectrum24();
    }
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--group-size") {
        config.group_size = v.parse().expect("--group-size N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--join-rate") {
        config.join_rate = v.parse().expect("--join-rate F");
    }
    if let Some(v) = arg_value("--leave-rate") {
        config.leave_rate = v.parse().expect("--leave-rate F");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
    if let Some(v) = arg_value("--loss") {
        config.loss = v.parse().expect("--loss F");
    }
    if let Some(v) = arg_value("--delay-ms") {
        radio.profile.delay.base_ms = v.parse().expect("--delay-ms F");
    }
    if let Some(v) = arg_value("--jitter-ms") {
        radio.profile.delay.jitter_ms = v.parse().expect("--jitter-ms F");
    }
    if let Some(v) = arg_value("--battery-uj") {
        radio.battery_uj = v.parse().expect("--battery-uj F");
    }
    if let Some(v) = arg_value("--weak") {
        radio.weak_nodes = v.parse().expect("--weak N");
    }
    if let Some(v) = arg_value("--weak-battery-uj") {
        radio.weak_battery_uj = v.parse().expect("--weak-battery-uj F");
    }

    println!(
        "radio_churn: {} groups over '{}' ({} bps, delay {}+U[0,{}) ms, loss {}), \
         {} epochs, batteries {} µJ ({} weak motes at {} µJ), seed {:#x}\n",
        config.groups,
        radio.profile.transceiver.name,
        radio.profile.transceiver.data_rate_bps,
        radio.profile.delay.base_ms,
        radio.profile.delay.jitter_ms,
        config.loss,
        config.epochs,
        radio.battery_uj,
        radio.weak_nodes,
        radio.weak_battery_uj,
        config.seed
    );
    config.radio = Some(radio.clone());

    let report = run_churn(&config);
    print!("{}", report.render());

    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_radio_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, churn_report_json(&report))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("\nwrote {json_path}");
    }

    let summary = report.radio.as_ref().expect("radio scenario");
    // Acceptance asserts: rekey latency is measured in virtual radio time,
    // finite batteries actually kill, and one death never takes the
    // service down with it.
    assert!(
        summary.latency_quantiles_ms.is_some(),
        "rekeys must report virtual-ms latency"
    );
    if radio.weak_nodes > 0 && radio.weak_battery_uj < 500_000.0 {
        assert!(
            summary.nodes_died >= 1,
            "a nearly-flat mote must die mid-scenario"
        );
        assert!(
            report.rekeys_executed > report.groups_stalled,
            "liveness: the fleet keeps rekeying around the corpses"
        );
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let again = run_churn(&config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(
            summary.died,
            again.radio.as_ref().expect("radio scenario").died,
            "battery deaths must be deterministic"
        );
        assert_eq!(
            summary.latency_quantiles_ms,
            again
                .radio
                .as_ref()
                .expect("radio scenario")
                .latency_quantiles_ms,
            "virtual time must be deterministic"
        );
        println!(
            "deterministic ✓ (fingerprint {:016x}, {} death(s) reproduced)",
            again.key_fingerprint,
            again.radio.as_ref().expect("radio scenario").nodes_died
        );
    }
}
