//! Robustness bench: churn with scripted faults — one byzantine-silent
//! member and one flapper — against the identifiable-abort eviction
//! engine, shipped as a reviewable artifact.
//!
//! ```text
//! cargo run --release -p egka-bench --bin robust_churn
//! cargo run --release -p egka-bench --bin robust_churn -- \
//!     [--groups N] [--epochs N] [--shards N] [--seed N] \
//!     [--check-determinism] [--json PATH]
//! ```
//!
//! Two passes of [`ChurnConfig::robust_bench`] — telemetry off (the
//! overhead guard's subject), then on — with the robustness acceptance
//! asserted on both:
//!
//! * the silent member and the flapper are both evicted, each leaving a
//!   signed blame certificate in the WAL (`members_evicted`,
//!   `blame_certs`);
//! * the flapper is readmitted once its quarantine penalty elapses and
//!   re-evicted with an escalated penalty (`members_readmitted`,
//!   quarantine eviction count ≥ 2);
//! * **no fault-injected group finishes stalled** — every victim group
//!   completes its epochs over the survivors (`stalled_faulted_groups`,
//!   gated outright-fatal by `bench_diff`).
//!
//! The artifact (`BENCH_robust_churn.json`, schema `egka-robust-churn/1`)
//! embeds the quarantine table and the full metrics block.

use std::sync::Arc;

use egka_bench::{arg_value, has_flag};
use egka_sim::{run_churn, ChurnConfig, ChurnReport};
use egka_trace::{MetricsRegistry, TraceConfig};

fn apply_knobs(config: &mut ChurnConfig) {
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
}

/// The robustness acceptance: both scripted culprits evicted with certs,
/// the flapper readmitted and re-evicted, and no victim group stalled.
fn assert_robust(report: &ChurnReport) {
    let m = &report.metrics;
    assert!(
        m.members_evicted >= 2,
        "expected both scripted culprits evicted, got {}",
        m.members_evicted
    );
    assert!(
        m.blame_certs >= 2,
        "every eviction must leave a signed blame certificate"
    );
    assert!(
        m.members_readmitted >= 1,
        "the flapper must be readmitted once its penalty elapses"
    );
    assert!(
        report.quarantine.iter().any(|&(_, _, n)| n >= 2),
        "the flapper must be re-evicted with an escalated penalty"
    );
    assert_eq!(
        report.stalled_faulted_groups, 0,
        "a fault-injected group finished stalled — the engine failed to \
         complete the epoch over the survivors"
    );
}

fn run_telemetry_pass(config: &mut ChurnConfig) -> ChurnReport {
    let registry = Arc::new(MetricsRegistry::new());
    let (tc, _ring) = TraceConfig::ring(1 << 22);
    config.trace = Some(tc.with_registry(Arc::clone(&registry)));
    run_churn(config)
}

fn main() {
    let mut config = ChurnConfig::robust_bench();
    apply_knobs(&mut config);

    println!(
        "robust_churn: {} groups, {} epochs, {} shards, seed {:#x}, \
         faults {:?}\n",
        config.groups, config.epochs, config.shards, config.seed, config.faults
    );

    // Pass 1 — telemetry off: the no-op overhead guard's subject.
    let untraced = run_churn(&config);
    let wall_ms_untraced = untraced.wall.as_secs_f64() * 1e3;
    println!("untraced:  {:.1} ms", wall_ms_untraced);
    assert_robust(&untraced);

    // Pass 2 — telemetry on: eviction instants and counters ride along
    // without perturbing anything observable.
    let report = run_telemetry_pass(&mut config);
    let wall_ms = report.wall.as_secs_f64() * 1e3;
    println!("telemetry: {:.1} ms\n", wall_ms);
    assert_robust(&report);
    assert_eq!(
        untraced.key_fingerprint, report.key_fingerprint,
        "telemetry perturbed the keys"
    );
    assert_eq!(untraced.quarantine, report.quarantine);
    assert_eq!(
        untraced.metrics.members_evicted,
        report.metrics.members_evicted
    );
    let trace_drops = report.trace_drops.unwrap_or(0);
    assert_eq!(trace_drops, 0, "the ring saturated");

    println!("{}", report.render());

    let quarantine_json = report
        .quarantine
        .iter()
        .map(|&(member, until_epoch, evictions)| {
            format!(
                "{{\"member\": {member}, \"until_epoch\": {until_epoch}, \
                 \"evictions\": {evictions}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let suites = report
        .suites
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"groups\": {}, \"rekeys\": {}, \"energy_mj\": {:.3}}}",
                s.suite.key(),
                s.groups,
                s.rekeys,
                s.energy_mj
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \
         \"schema\": \"egka-robust-churn/1\",\n  \
         \"groups\": {},\n  \
         \"epochs\": {},\n  \
         \"health\": \"{}\",\n  \
         \"members_evicted\": {},\n  \
         \"blame_certs\": {},\n  \
         \"members_readmitted\": {},\n  \
         \"stalled_faulted_groups\": {},\n  \
         \"quarantine\": [{quarantine_json}],\n  \
         \"trace_drops\": {trace_drops},\n  \
         \"energy_mj\": {:.3},\n  \
         \"wall_ms\": {wall_ms:.1},\n  \
         \"wall_ms_untraced\": {wall_ms_untraced:.1},\n  \
         \"suites\": {{{suites}}},\n  \
         \"metrics\": {},\n  \
         \"key_fingerprint\": \"{:016x}\"\n}}\n",
        config.groups,
        config.epochs,
        report.health.label(),
        report.metrics.members_evicted,
        report.metrics.blame_certs,
        report.metrics.members_readmitted,
        report.stalled_faulted_groups,
        report.energy_mj,
        report.metrics.to_json(),
        report.key_fingerprint,
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_robust_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("wrote {json_path}");
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let again = run_telemetry_pass(&mut config);
        assert_eq!(report.key_fingerprint, again.key_fingerprint);
        assert_eq!(report.quarantine, again.quarantine);
        assert_eq!(
            report.metrics.members_evicted,
            again.metrics.members_evicted
        );
        println!("deterministic ✓ (keys, quarantine and evictions reproduced exactly)");
    }
}
