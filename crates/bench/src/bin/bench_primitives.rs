//! Primitive micro-bench: old-vs-new timings for the fixed-base and batch
//! accelerations, measured **in one binary** so the ratios cannot drift
//! with toolchains or machines.
//!
//! ```text
//! cargo run --release -p egka-bench --bin bench_primitives
//! cargo run --release -p egka-bench --bin bench_primitives -- \
//!     [--seed N] [--p-bits N] [--q-bits N] [--check-determinism] \
//!     [--json PATH]
//! ```
//!
//! Each pair times the *pre-acceleration* shape against the shipped one on
//! the identical deterministic workload, asserting bit-equal results first:
//!
//! * **Fixed-base EC scalar mult** — generic wNAF `curve.mul(k, G)` vs the
//!   comb-backed [`Curve::mul_gen`].
//! * **Fixed-base modexp** — per-call `Montgomery::new(p)` + windowed `pow`
//!   vs [`mod_pow_fixed`] (interned context + exponent-sized comb), on
//!   q-sized exponents under a Schnorr modulus — the BD/DSA shape.
//! * **Fixed-argument pairing** — full Miller loop vs
//!   [`PairingGroup::pairing_fixed`] over a cached [`egka_ec::MillerPrecomp`].
//! * **Epoch batch verification** — per-item `verify` loops vs the
//!   `egka-sig` batch entry points (ECDSA RLC chunks, DSA amortized loop,
//!   GQ split-form RLC).
//!
//! The artifact (`BENCH_primitives.json`, schema `egka-primitives/1`)
//! carries each pair as `*_ns` plus a `*_speedup` ratio; `bench_diff`
//! holds `fixed_base_mul_speedup` and `fixed_base_modexp_speedup` above an
//! absolute floor (2×) in CI. `--check-determinism` regenerates every
//! workload from the seed and asserts the result fingerprint reproduces.

use std::time::Instant;

use egka_bench::{arg_value, has_flag};
use egka_bigint::{
    gen_schnorr_group, mod_mul, mod_pow, mod_pow_fixed, random_below, Montgomery, SchnorrGroup,
    Ubig,
};
use egka_ec::{secp160r1, Curve, PairingGroup, Point};
use egka_hash::ChaChaRng;
use egka_sig::{
    dsa_batch_verify, ecdsa_batch_verify, gq_batch_verify_split, Dsa, DsaBatchItem, DsaSignature,
    Ecdsa, EcdsaBatchItem, EcdsaSignature, GqPkg, GqSplitItem,
};
use rand::SeedableRng;

/// FNV-1a over every workload result — the determinism witness.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Nanoseconds per call of `f` over `iters` calls.
fn per_op_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / f64::from(iters)
}

struct Pair {
    old_ns: f64,
    new_ns: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.old_ns / self.new_ns
    }
    fn print(&self, name: &str) {
        println!(
            "{name:24} old {:>12.0} ns   new {:>12.0} ns   {:>5.2}x",
            self.old_ns,
            self.new_ns,
            self.speedup()
        );
    }
}

// ------------------------------------------------------- fixed-base EC mul

fn ec_workload(seed: u64, curve: &Curve, fp: &mut Fnv) -> Vec<Ubig> {
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0xec);
    let scalars: Vec<Ubig> = (0..64).map(|_| curve.random_scalar(&mut rng)).collect();
    for k in &scalars {
        let new = curve.mul_gen(k);
        assert_eq!(new, curve.mul(k, curve.generator()), "mul_gen disagrees");
        fp.push(&curve.compress(&new));
    }
    scalars
}

fn bench_ec(seed: u64, fp: &mut Fnv) -> Pair {
    let curve = secp160r1();
    let scalars = ec_workload(seed, &curve, fp); // also warms the comb
    let g = curve.generator().clone();
    let mut i = 0usize;
    let old_ns = per_op_ns(256, || {
        std::hint::black_box(curve.mul(&scalars[i % scalars.len()], &g));
        i += 1;
    });
    let new_ns = per_op_ns(256, || {
        std::hint::black_box(curve.mul_gen(&scalars[i % scalars.len()]));
        i += 1;
    });
    Pair { old_ns, new_ns }
}

// --------------------------------------------------------- fixed-base modexp

fn modexp_workload(seed: u64, group: &SchnorrGroup, fp: &mut Fnv) -> Vec<Ubig> {
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x90d);
    let exps: Vec<Ubig> = (0..64).map(|_| random_below(&mut rng, &group.q)).collect();
    for e in &exps {
        let new = mod_pow_fixed(&group.g, e, &group.p);
        let ctx = Montgomery::new(group.p.clone());
        assert_eq!(new, ctx.pow(&group.g, e), "mod_pow_fixed disagrees");
        fp.push(&new.to_bytes_be());
    }
    exps
}

fn bench_modexp(seed: u64, group: &SchnorrGroup, fp: &mut Fnv) -> Pair {
    let exps = modexp_workload(seed, group, fp); // also warms ctx + comb
    let mut i = 0usize;
    // The pre-acceleration shape: every call pays Montgomery setup and a
    // generic modulus-length window walk.
    let old_ns = per_op_ns(128, || {
        let ctx = Montgomery::new(group.p.clone());
        std::hint::black_box(ctx.pow(&group.g, &exps[i % exps.len()]));
        i += 1;
    });
    let new_ns = per_op_ns(128, || {
        std::hint::black_box(mod_pow_fixed(&group.g, &exps[i % exps.len()], &group.p));
        i += 1;
    });
    Pair { old_ns, new_ns }
}

// ---------------------------------------------------------- fixed pairing

fn bench_pairing(seed: u64, fp: &mut Fnv) -> Pair {
    let group = PairingGroup::paper_fixture();
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x9a1);
    let points: Vec<Point> = (0..8).map(|_| group.random_point(&mut rng)).collect();
    let gen = group.curve().generator().clone();
    let pre = group.precompute(&gen);
    for q in &points {
        let new = group.pairing_fixed(&pre, q);
        assert_eq!(new, group.pairing(&gen, q), "pairing_fixed disagrees");
        fp.push(&new.c0.to_bytes_be());
        fp.push(&new.c1.to_bytes_be());
    }
    let mut i = 0usize;
    let old_ns = per_op_ns(32, || {
        std::hint::black_box(group.pairing(&gen, &points[i % points.len()]));
        i += 1;
    });
    let new_ns = per_op_ns(32, || {
        std::hint::black_box(group.pairing_fixed(&pre, &points[i % points.len()]));
        i += 1;
    });
    Pair { old_ns, new_ns }
}

// ------------------------------------------------------------ batch verify

fn bench_ecdsa_batch(seed: u64, fp: &mut Fnv) -> Pair {
    let scheme = Ecdsa::new(secp160r1());
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0xba7c);
    let triples: Vec<(Point, Vec<u8>, EcdsaSignature)> = (0..16)
        .map(|i| {
            let kp = scheme.keygen(&mut rng);
            let msg = format!("epoch share {i}").into_bytes();
            let sig = scheme.sign(&mut rng, &kp, &msg);
            (kp.q, msg, sig)
        })
        .collect();
    let items: Vec<EcdsaBatchItem<'_>> = triples
        .iter()
        .map(|(q, msg, sig)| EcdsaBatchItem { q, msg, sig })
        .collect();
    assert_eq!(ecdsa_batch_verify(&scheme, &items), Ok(()));
    for (_, _, sig) in &triples {
        fp.push(&sig.r.to_bytes_be());
    }
    let n = items.len() as f64;
    let old_ns = per_op_ns(8, || {
        for it in &items {
            assert!(scheme.verify(it.q, it.msg, it.sig));
        }
    }) / n;
    let new_ns = per_op_ns(8, || {
        ecdsa_batch_verify(&scheme, &items).unwrap();
    }) / n;
    Pair { old_ns, new_ns }
}

fn bench_dsa_batch(seed: u64, group: &SchnorrGroup, fp: &mut Fnv) -> Pair {
    let scheme = Dsa::new(group.clone());
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0xd5a);
    let triples: Vec<(Ubig, Vec<u8>, DsaSignature)> = (0..8)
        .map(|i| {
            let kp = scheme.keygen(&mut rng);
            let msg = format!("epoch share {i}").into_bytes();
            let sig = scheme.sign(&mut rng, &kp, &msg);
            (kp.y, msg, sig)
        })
        .collect();
    let items: Vec<DsaBatchItem<'_>> = triples
        .iter()
        .map(|(y, msg, sig)| DsaBatchItem { y, msg, sig })
        .collect();
    assert_eq!(dsa_batch_verify(&scheme, &items), Ok(()));
    for (_, _, sig) in &triples {
        fp.push(&sig.s.to_bytes_be());
    }
    let n = items.len() as f64;
    let old_ns = per_op_ns(8, || {
        for it in &items {
            assert!(scheme.verify(it.y, it.msg, it.sig));
        }
    }) / n;
    let new_ns = per_op_ns(8, || {
        dsa_batch_verify(&scheme, &items).unwrap();
    }) / n;
    Pair { old_ns, new_ns }
}

fn bench_gq_batch(seed: u64, fp: &mut Fnv) -> Pair {
    let mut rng = ChaChaRng::seed_from_u64(seed ^ 0x60);
    let pkg = GqPkg::setup_with_e_bits(&mut rng, 128, 41);
    let p = &pkg.params;
    let n = 16usize;
    let ids: Vec<Vec<u8>> = (0..n).map(|i| format!("member-{i}").into_bytes()).collect();
    let keys: Vec<_> = ids.iter().map(|id| pkg.extract(id)).collect();
    let commits: Vec<(Ubig, Ubig)> = (0..n).map(|_| p.commit(&mut rng)).collect();
    let t_agg =
        p.aggregate_commitments(&commits.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>());
    let c = p.shared_challenge(&t_agg, b"bench epoch");
    let values: Vec<(Vec<u8>, Ubig, Ubig)> = (0..n)
        .map(|i| {
            let s = p.respond(&keys[i], &commits[i].0, &c);
            (ids[i].clone(), commits[i].1.clone(), s)
        })
        .collect();
    let items: Vec<GqSplitItem<'_>> = values
        .iter()
        .map(|(id, t, s)| GqSplitItem { id, t, s })
        .collect();
    assert_eq!(gq_batch_verify_split(p, &c, &items), Ok(()));
    for (_, _, s) in &values {
        fp.push(&s.to_bytes_be());
    }
    let hs: Vec<Ubig> = items.iter().map(|it| p.hash_id(it.id)).collect();
    let nf = items.len() as f64;
    // The pre-batch shape: one full-size exponentiation pair per member.
    let old_ns = per_op_ns(8, || {
        for (it, h) in items.iter().zip(&hs) {
            let lhs = mod_pow(it.s, &p.e, &p.n);
            let rhs = mod_mul(it.t, &mod_pow(h, &c, &p.n), &p.n);
            assert_eq!(lhs, rhs);
        }
    }) / nf;
    let new_ns = per_op_ns(8, || {
        gq_batch_verify_split(p, &c, &items).unwrap();
    }) / nf;
    Pair { old_ns, new_ns }
}

fn main() {
    let start = Instant::now();
    let seed: u64 = arg_value("--seed").map_or(0x9121, |v| v.parse().expect("--seed N"));
    let p_bits: u32 = arg_value("--p-bits").map_or(512, |v| v.parse().expect("--p-bits N"));
    let q_bits: u32 = arg_value("--q-bits").map_or(160, |v| v.parse().expect("--q-bits N"));
    println!("bench_primitives: seed {seed:#x}, Schnorr {p_bits}/{q_bits} bits\n");

    let mut group_rng = ChaChaRng::seed_from_u64(seed ^ 0x5c0);
    let group = gen_schnorr_group(&mut group_rng, p_bits, q_bits);

    let mut fp = Fnv::new();
    let ec = bench_ec(seed, &mut fp);
    ec.print("fixed_base_mul");
    let modexp = bench_modexp(seed, &group, &mut fp);
    modexp.print("fixed_base_modexp");
    let pairing = bench_pairing(seed, &mut fp);
    pairing.print("pairing_fixed");
    let ecdsa = bench_ecdsa_batch(seed, &mut fp);
    ecdsa.print("ecdsa_batch (per item)");
    let dsa = bench_dsa_batch(seed, &group, &mut fp);
    dsa.print("dsa_batch (per item)");
    let gq = bench_gq_batch(seed, &mut fp);
    gq.print("gq_batch (per item)");
    let fingerprint = fp.0;
    println!("\nworkload fingerprint {fingerprint:016x}");

    if has_flag("--check-determinism") {
        println!("re-deriving every workload for the determinism check…");
        let mut again = Fnv::new();
        let curve = secp160r1();
        ec_workload(seed, &curve, &mut again);
        modexp_workload(seed, &group, &mut again);
        bench_pairing(seed, &mut again);
        bench_ecdsa_batch(seed, &mut again);
        bench_dsa_batch(seed, &group, &mut again);
        bench_gq_batch(seed, &mut again);
        assert_eq!(
            fingerprint, again.0,
            "same seed must reproduce every workload result bit for bit"
        );
        println!("deterministic ✓");
    }

    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let json = format!(
        "{{\n  \
         \"schema\": \"egka-primitives/1\",\n  \
         \"seed\": {seed},\n  \
         \"p_bits\": {p_bits},\n  \
         \"q_bits\": {q_bits},\n  \
         \"workload_fingerprint\": \"{fingerprint:016x}\",\n  \
         \"variable_base_mul_ns\": {:.0},\n  \
         \"fixed_base_mul_ns\": {:.0},\n  \
         \"fixed_base_mul_speedup\": {:.3},\n  \
         \"plain_modexp_ns\": {:.0},\n  \
         \"fixed_base_modexp_ns\": {:.0},\n  \
         \"fixed_base_modexp_speedup\": {:.3},\n  \
         \"pairing_ns\": {:.0},\n  \
         \"pairing_fixed_ns\": {:.0},\n  \
         \"pairing_fixed_speedup\": {:.3},\n  \
         \"ecdsa_verify_ns\": {:.0},\n  \
         \"ecdsa_batch_item_ns\": {:.0},\n  \
         \"ecdsa_batch_speedup\": {:.3},\n  \
         \"dsa_verify_ns\": {:.0},\n  \
         \"dsa_batch_item_ns\": {:.0},\n  \
         \"gq_verify_ns\": {:.0},\n  \
         \"gq_batch_item_ns\": {:.0},\n  \
         \"gq_batch_speedup\": {:.3},\n  \
         \"wall_ms\": {wall_ms:.1}\n}}\n",
        ec.old_ns,
        ec.new_ns,
        ec.speedup(),
        modexp.old_ns,
        modexp.new_ns,
        modexp.speedup(),
        pairing.old_ns,
        pairing.new_ns,
        pairing.speedup(),
        ecdsa.old_ns,
        ecdsa.new_ns,
        ecdsa.speedup(),
        dsa.old_ns,
        dsa.new_ns,
        gq.old_ns,
        gq.new_ns,
        gq.speedup(),
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_primitives.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("wrote {json_path}");
    } else {
        print!("{json}");
    }
}
