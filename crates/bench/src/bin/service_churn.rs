//! Service-layer throughput bench: Poisson churn over thousands of
//! concurrent groups through the `egka-service` epoch-batched rekey
//! coordinator.
//!
//! ```text
//! cargo run --release -p egka-bench --bin service_churn
//! cargo run --release -p egka-bench --bin service_churn -- \
//!     --groups 1000 --epochs 10 --join-rate 0.7 --leave-rate 0.6 \
//!     --shards 8 --seed 7 [--loss 0.01] [--policy cheapest|<suite key>] \
//!     [--preset mixed-suite] [--check-determinism]
//! ```
//!
//! `--policy` selects the suite policy: `cheapest` prices all five
//! Table 1 protocols with the paper's low-power profile (StrongARM +
//! 100 kbps radio) and runs each group on its argmin; `cheapest-wlan`
//! prices with the WLAN card; any suite key (`proposed`, `bd_ecdsa`, …)
//! fixes the whole fleet on that protocol. `--preset mixed-suite` starts
//! from `ChurnConfig::mixed_suite_bench()` (founding sizes 2..4 under the
//! cheapest policy — a provably mixed fleet) and asserts that at least two
//! distinct suites were actually selected.
//!
//! Reports per-epoch events/rekeys/coalesce-ratio/energy and rekey-latency
//! quantiles, plus scenario totals (throughput, events-coalesced ratio,
//! total energy) and a key fingerprint that is identical for identical
//! seeds. `--loss` injects per-delivery drop probability into every rekey
//! medium, exercising the shard scheduler's stall-detection and
//! retransmission path. With `--check-determinism` the scenario runs
//! twice and the two fingerprints are compared.
//!
//! The scenario totals are also written as machine-readable JSON to
//! `BENCH_service_churn.json` (override with `--json PATH`, disable with
//! `--json -`), so the perf trajectory is tracked across PRs.

use egka_bench::{arg_value, churn_report_json, has_flag, parse_suite_policy};
use egka_sim::{run_churn, ChurnConfig};

fn main() {
    let mut config = match arg_value("--preset").as_deref() {
        None => ChurnConfig::default(),
        Some("mixed-suite") => ChurnConfig::mixed_suite_bench(),
        Some(other) => panic!("unknown --preset {other} (try: mixed-suite)"),
    };
    let mixed_preset = arg_value("--preset").as_deref() == Some("mixed-suite");
    if let Some(v) = arg_value("--policy") {
        config.suite_policy = parse_suite_policy(&v);
    }
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--group-size") {
        config.group_size = v.parse().expect("--group-size N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--join-rate") {
        config.join_rate = v.parse().expect("--join-rate F");
    }
    if let Some(v) = arg_value("--leave-rate") {
        config.leave_rate = v.parse().expect("--leave-rate F");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
    if let Some(v) = arg_value("--loss") {
        config.loss = v.parse().expect("--loss F");
    }

    println!(
        "service_churn: {} groups (size {}..{}), {} epochs, λ_join {}, λ_leave {}, \
         {} shards, seed {:#x}, loss {}, policy {:?}\n",
        config.groups,
        config.group_size,
        config.group_size + 2,
        config.epochs,
        config.join_rate,
        config.leave_rate,
        config.shards,
        config.seed,
        config.loss,
        config.suite_policy
    );

    let report = run_churn(&config);
    print!("{}", report.render());

    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_service_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, churn_report_json(&report))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("\nwrote {json_path}");
    }

    // Acceptance assert: batching must actually save protocol executions.
    // Only binding at meaningful workload sizes — a tiny or idle run can
    // legitimately see one rekey per event (ratio exactly 1).
    if report.events_applied >= 50 {
        assert!(
            report.coalesce_ratio > 1.0,
            "epoch batching must coalesce events (ratio {:.2} <= 1)",
            report.coalesce_ratio
        );
    } else {
        println!("\n(workload too small for the coalesce-ratio acceptance assert)");
    }

    // Acceptance assert for the mixed-suite preset: the cheapest policy
    // must actually field more than one protocol across the fleet.
    if mixed_preset {
        assert!(
            report.suites.len() >= 2,
            "mixed-suite preset selected only {:?}",
            report.suites
        );
        println!(
            "\nmixed fleet ✓ ({})",
            report
                .suites
                .iter()
                .map(|s| format!("{} × {}", s.suite.key(), s.groups))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let again = run_churn(&config);
        assert_eq!(
            report.key_fingerprint, again.key_fingerprint,
            "same seed must reproduce identical keys"
        );
        assert_eq!(report.rekeys_executed, again.rekeys_executed);
        assert_eq!(
            report.steps_retried, again.steps_retried,
            "retransmission schedule must be deterministic too"
        );
        if mixed_preset {
            let mix = |r: &egka_sim::ChurnReport| {
                r.suites
                    .iter()
                    .map(|s| (s.suite, s.groups, s.rekeys))
                    .collect::<Vec<_>>()
            };
            assert_eq!(mix(&report), mix(&again), "suite selection is seeded");
        }
        println!(
            "deterministic ✓ (fingerprint {:016x} reproduced)",
            again.key_fingerprint
        );
    }
}
