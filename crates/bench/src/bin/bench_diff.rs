//! Perf-regression gate: compare a freshly generated bench artifact
//! (`BENCH_service_churn.json` / `BENCH_radio_churn.json` /
//! `BENCH_trace_churn.json` / `BENCH_health_churn.json` /
//! `BENCH_robust_churn.json` / `BENCH_massive_churn.json` /
//! `BENCH_primitives.json`) against the committed baseline and fail on
//! regression. Artifacts that carry a `trace_drops` count additionally
//! fail outright when the fresh run's bounded ring dropped any event.
//!
//! ```text
//! cargo run --release -p egka-bench --bin bench_diff -- \
//!     --baseline baselines/BENCH_service_churn.json \
//!     --fresh BENCH_service_churn.json \
//!     [--max-regress 0.25] [--wall-floor-ms 500] [--speedup-floor 2.0]
//! ```
//!
//! Three families of gates:
//!
//! * **Energy** (`energy_mj`, total and per suite): fully deterministic
//!   per seed, so *any* drift means the code changed behavior; the gate
//!   fails when fresh exceeds baseline by more than `--max-regress`
//!   (default 25%), and also when a suite present in the baseline vanished
//!   — a disappeared protocol is a behavior change, not a speedup.
//! * **Wall clock** (`wall_ms`): inherently noisy across machines, so the
//!   relative threshold only applies once the absolute slowdown also
//!   clears `--wall-floor-ms` (default 500 ms) — a 3 ms scenario jumping
//!   to 4 ms is noise, a 2 s scenario jumping to 3 s is a regression.
//! * **Speedup ratios** (`egka-primitives/1` only): the artifact's
//!   `*_speedup` fields are old-vs-new ratios measured inside one binary,
//!   so they are machine-independent; the gated pair
//!   (`fixed_base_mul_speedup`, `fixed_base_modexp_speedup`) must stay
//!   above the absolute `--speedup-floor` (default 2×).
//!
//! Improvements (fresh below baseline) never fail; they print as a
//! reminder to refresh the committed baseline. Exit code 1 on any failed
//! gate, with every finding listed.

use egka_bench::arg_value;
use egka_bench::json::Json;

struct Gate {
    max_regress: f64,
    wall_floor_ms: f64,
    failures: Vec<String>,
    notes: Vec<String>,
}

impl Gate {
    fn ratio_line(name: &str, baseline: f64, fresh: f64) -> String {
        let pct = if baseline > 0.0 {
            format!("{:+.1}%", (fresh / baseline - 1.0) * 100.0)
        } else {
            "n/a".into()
        };
        format!("{name}: baseline {baseline:.3} → fresh {fresh:.3} ({pct})")
    }

    /// Deterministic quantities: relative threshold only.
    fn check_energy(&mut self, name: &str, baseline: f64, fresh: f64) {
        let line = Self::ratio_line(name, baseline, fresh);
        if fresh > baseline * (1.0 + self.max_regress) {
            self.failures.push(line);
        } else {
            self.notes.push(line);
        }
    }

    /// Noisy quantities: relative threshold gated by an absolute floor.
    fn check_wall(&mut self, name: &str, baseline: f64, fresh: f64) {
        let line = Self::ratio_line(name, baseline, fresh);
        if fresh > baseline * (1.0 + self.max_regress) && fresh - baseline > self.wall_floor_ms {
            self.failures.push(line);
        } else {
            self.notes.push(line);
        }
    }

    /// In-binary old/new ratios: machine-independent, so an absolute floor
    /// applies (and the baseline value is shown for context only).
    fn check_speedup(&mut self, name: &str, floor: f64, baseline: f64, fresh: f64) {
        let line = format!("{name}: baseline {baseline:.2}x → fresh {fresh:.2}x (floor {floor}x)");
        if fresh < floor {
            self.failures.push(line);
        } else {
            self.notes.push(line);
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {path}: {e} (run the churn bench first?)"));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn num(doc: &Json, path: &str, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{path} has no numeric \"{key}\""))
}

fn main() {
    let baseline_path = arg_value("--baseline").expect("--baseline PATH");
    let fresh_path = arg_value("--fresh").expect("--fresh PATH");
    let max_regress: f64 = arg_value("--max-regress")
        .map(|v| v.parse().expect("--max-regress F"))
        .unwrap_or(0.25);
    let wall_floor_ms: f64 = arg_value("--wall-floor-ms")
        .map(|v| v.parse().expect("--wall-floor-ms F"))
        .unwrap_or(500.0);
    let speedup_floor: f64 = arg_value("--speedup-floor")
        .map(|v| v.parse().expect("--speedup-floor F"))
        .unwrap_or(2.0);

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    const SCHEMAS: [&str; 6] = [
        "egka-service-churn/1",
        "egka-trace-churn/1",
        "egka-health-churn/1",
        "egka-robust-churn/1",
        "egka-massive-churn/1",
        "egka-primitives/1",
    ];
    for (doc, path) in [(&baseline, &baseline_path), (&fresh, &fresh_path)] {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
        assert!(
            SCHEMAS.contains(&schema),
            "{path}: unexpected schema {schema}"
        );
    }
    // Comparing a trace artifact against a service artifact (or vice
    // versa) silently gates the wrong numbers — require the same schema.
    assert_eq!(
        baseline.get("schema").and_then(Json::as_str),
        fresh.get("schema").and_then(Json::as_str),
        "baseline and fresh artifacts carry different schemas"
    );

    let mut gate = Gate {
        max_regress,
        wall_floor_ms,
        failures: Vec::new(),
        notes: Vec::new(),
    };

    let schema = baseline
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let primitives = schema == "egka-primitives/1";

    gate.check_wall(
        "wall_ms",
        num(&baseline, &baseline_path, "wall_ms"),
        num(&fresh, &fresh_path, "wall_ms"),
    );
    // The trace artifact also carries the same scenario's wall clock with
    // tracing *disabled* (the traced-off overhead guard: a disabled tracer
    // must stay a no-op) and with the *parallel pump* on (threading must
    // not cost wall time). Both obey the ordinary wall gate (relative
    // threshold + absolute noise floor), nothing tighter.
    for key in ["wall_ms_untraced", "wall_ms_par", "wall_ms_static"] {
        if baseline.get(key).is_some() && fresh.get(key).is_some() {
            gate.check_wall(
                key,
                num(&baseline, &baseline_path, key),
                num(&fresh, &fresh_path, key),
            );
        }
    }
    // Trace/telemetry artifacts record how many events the bounded ring
    // had to drop. A lossy trace is not a slower trace — it is a broken
    // one (fingerprints and metrics silently under-count) — so any
    // nonzero drop count in the fresh run is an outright failure, not a
    // relative-threshold question.
    if let Some(drops) = fresh.get("trace_drops").and_then(Json::as_f64) {
        if drops > 0.0 {
            gate.failures.push(format!(
                "trace_drops: fresh run dropped {drops:.0} event(s)"
            ));
        } else {
            gate.notes.push("trace_drops: 0".into());
        }
    }
    // The robustness artifact counts fault-injected groups that finished
    // the scenario stalled. With the eviction engine armed that number is
    // a liveness violation, not a perf question — any nonzero value in
    // the fresh run fails outright.
    if let Some(stalled) = fresh.get("stalled_faulted_groups").and_then(Json::as_f64) {
        if stalled > 0.0 {
            gate.failures.push(format!(
                "stalled_faulted_groups: {stalled:.0} fault-injected group(s) \
                 never completed — the eviction engine failed them"
            ));
        } else {
            gate.notes.push("stalled_faulted_groups: 0".into());
        }
    }
    // The resharding artifact counts group-epochs stalled while the pool
    // was growing live. Handoffs run between epochs by construction, so
    // any stall is a liveness violation — outright failure.
    if let Some(stalled) = fresh.get("groups_stalled").and_then(Json::as_f64) {
        if stalled > 0.0 {
            gate.failures.push(format!(
                "groups_stalled: {stalled:.0} group-epoch(s) stalled during \
                 live resharding — handoffs must never block an epoch"
            ));
        } else {
            gate.notes.push("groups_stalled: 0".into());
        }
    }

    if primitives {
        // The primitives artifact carries no energy model — its subject is
        // the in-binary old/new ratios. The two fixed-base accelerations
        // are the headline claims and must hold the absolute floor; the
        // remaining ratios are informational (batch verification trades
        // point additions for attribution guarantees and hovers near 1x).
        for key in ["fixed_base_mul_speedup", "fixed_base_modexp_speedup"] {
            gate.check_speedup(
                key,
                speedup_floor,
                num(&baseline, &baseline_path, key),
                num(&fresh, &fresh_path, key),
            );
        }
        for key in [
            "pairing_fixed_speedup",
            "ecdsa_batch_speedup",
            "gq_batch_speedup",
        ] {
            if baseline.get(key).is_some() && fresh.get(key).is_some() {
                gate.notes.push(format!(
                    "{key}: baseline {:.2}x → fresh {:.2}x (informational)",
                    num(&baseline, &baseline_path, key),
                    num(&fresh, &fresh_path, key),
                ));
            }
        }
    } else {
        gate.check_energy(
            "energy_mj",
            num(&baseline, &baseline_path, "energy_mj"),
            num(&fresh, &fresh_path, "energy_mj"),
        );
    }

    // Per-suite energy: every suite the baseline fielded must still exist
    // and stay within the threshold.
    let empty: Vec<(String, Json)> = Vec::new();
    let base_suites = baseline
        .get("suites")
        .and_then(Json::members)
        .unwrap_or(&empty);
    let fresh_suites = fresh
        .get("suites")
        .and_then(Json::members)
        .unwrap_or(&empty);
    for (suite, base_usage) in base_suites {
        let name = format!("suites.{suite}.energy_mj");
        let base_mj = base_usage
            .get("energy_mj")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        match fresh_suites.iter().find(|(k, _)| k == suite) {
            Some((_, fresh_usage)) => {
                let fresh_mj = fresh_usage
                    .get("energy_mj")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                gate.check_energy(&name, base_mj, fresh_mj);
            }
            None => gate
                .failures
                .push(format!("{name}: suite vanished from the fresh run")),
        }
    }
    for (suite, _) in fresh_suites {
        if !base_suites.iter().any(|(k, _)| k == suite) {
            gate.notes.push(format!(
                "suites.{suite}: new in the fresh run (not in baseline)"
            ));
        }
    }

    // Determinism cross-checks, informational: a fingerprint change with
    // unchanged config means intended behavior drift — refresh baselines.
    // (`event_fingerprint` is the trace artifact's analogue: the
    // (name, phase) → count shape of the recorded events.)
    for key in [
        "key_fingerprint",
        "event_fingerprint",
        "workload_fingerprint",
    ] {
        let base_fp = baseline.get(key).and_then(Json::as_str);
        let fresh_fp = fresh.get(key).and_then(Json::as_str);
        if let (Some(b), Some(f)) = (base_fp, fresh_fp) {
            if b != f {
                gate.notes.push(format!(
                    "{key} changed ({b} → {f}): behavior drift — \
                     refresh the baseline if intended"
                ));
            }
        }
    }

    println!(
        "bench_diff: {fresh_path} vs {baseline_path} \
         (max regress {:.0}%, wall floor {wall_floor_ms} ms)\n",
        max_regress * 100.0
    );
    for note in &gate.notes {
        println!("  ok   {note}");
    }
    for failure in &gate.failures {
        println!("  FAIL {failure}");
    }
    if gate.failures.is_empty() {
        println!("\nno perf regression ✓");
    } else {
        println!(
            "\n{} perf regression(s) beyond {:.0}% — investigate, or refresh \
             the committed baseline if the cost is intended",
            gate.failures.len(),
            max_regress * 100.0
        );
        std::process::exit(1);
    }
}
