//! Reproduces **Table 3** — communication energy cost model.
//!
//! Every derived row is exactly `size_bits × per-bit cost`; the printed
//! paper values are recovered from the transceiver models and the paper's
//! wire sizes (263-byte DSA / 86-byte ECDSA certificates, 320/388/1184-bit
//! signatures).
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_table3
//! ```

use egka_energy::{wire, Transceiver};

fn main() {
    println!("Table 3. Communication Energy Cost");
    println!("==================================\n");
    let radios = Transceiver::paper_pair();
    println!("{:<34}{:>18}{:>14}", "Item", radios[0].name, "WLAN Card");
    println!(
        "{:<34}{:>14.2} µJ{:>12.2} µJ",
        "Tx per bit", radios[0].tx_uj_per_bit, radios[1].tx_uj_per_bit
    );
    println!(
        "{:<34}{:>14.2} µJ{:>12.2} µJ",
        "Rx per bit", radios[0].rx_uj_per_bit, radios[1].rx_uj_per_bit
    );
    let items: [(&str, u64); 6] = [
        ("263-Bytes DSA cert", wire::DSA_CERT_BITS),
        ("86-Bytes ECDSA cert", wire::ECDSA_CERT_BITS),
        ("DSA/ECDSA sign. (2x160 b)", wire::DSA_SIG_BITS),
        ("SOK sign. (2x194 b)", wire::SOK_SIG_BITS),
        ("GQ sign. (1024+160 b)", wire::GQ_SIG_BITS),
        ("BD share z_i (1024 b)", wire::Z_BITS),
    ];
    for (name, bits) in items {
        println!(
            "Tx. {:<30}{:>14.2} mJ{:>12.2} mJ",
            name,
            radios[0].tx_energy_mj(bits),
            radios[1].tx_energy_mj(bits)
        );
        println!(
            "Rx. {:<30}{:>14.2} mJ{:>12.2} mJ",
            name,
            radios[0].rx_energy_mj(bits),
            radios[1].rx_energy_mj(bits)
        );
    }
}
