//! Tracing bench: runs a churn scenario three times — tracing **off**,
//! tracing **on** into a bounded ring, then tracing on with the
//! **parallel pump** — and ships the recorded virtual-clock trace as
//! reviewable artifacts. The parallel pass must reproduce the sequential
//! traced pass bit for bit (keys, counters, event fingerprint); its wall
//! clock is exported as `wall_ms_par`.
//!
//! ```text
//! cargo run --release -p egka-bench --bin trace_churn
//! cargo run --release -p egka-bench --bin trace_churn -- \
//!     [--preset mixed-suite|radio] [--groups N] [--epochs N] \
//!     [--shards N] [--seed N] [--top N] [--check-determinism] \
//!     [--json PATH] [--trace-json PATH] [--flame PATH]
//! ```
//!
//! The untraced pass is the **overhead guard's** subject: a disabled
//! tracer must stay a measured no-op, so its wall clock is exported as
//! `wall_ms_untraced` and gated by `bench_diff` under the ordinary wall
//! thresholds. The traced pass must reproduce the untraced pass bit for
//! bit (key fingerprint, counters, energy — instrumentation is purely
//! observational), and its event stream is:
//!
//! * validated in-process (span stack discipline per lane, Chrome JSON
//!   parseable by `egka_bench::json`, every `B` closed by an `E`,
//!   timestamps monotone per `(pid, tid)`, zero ring drops);
//! * exported as a Chrome `trace_event` file (`--trace-json`, default
//!   `BENCH_trace_churn.trace.json`) — load it in Perfetto or
//!   `chrome://tracing`: one process per shard, one thread lane per group
//!   (plus an air lane under a radio preset), spans for epoch → dynamic
//!   step → protocol round carrying energy/airtime/LSN annotations;
//! * exported as a collapsed-stack energy flame file (`--flame`, default
//!   `BENCH_trace_churn.flame.txt`) and printed as a top-N energy table;
//! * fingerprinted: the `(name, phase) → count` shape of the trace is
//!   deterministic per seed and tracked in `BENCH_trace_churn.json`
//!   (schema `egka-trace-churn/1`) against the committed baseline.

use std::sync::Arc;

use egka_bench::json::Json;
use egka_bench::{arg_value, has_flag};
use egka_sim::{run_churn, ChurnConfig, ChurnReport};
use egka_trace::{export, MetricsRegistry, TraceConfig, TraceSink};

/// Chrome-level validation: the exported JSON must parse with the same
/// minimal reader `bench_diff` uses, every `B` must be closed by a
/// matching `E` on its lane, and timestamps must be monotone per
/// `(pid, tid)` — the properties a trace viewer needs to render sanely.
fn validate_chrome_json(text: &str) {
    let doc = Json::parse(text).expect("chrome trace JSON must parse");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        _ => panic!("chrome trace has no traceEvents array"),
    };
    let mut lanes: std::collections::BTreeMap<(u64, u64), (f64, Vec<String>)> =
        std::collections::BTreeMap::new();
    let mut spans = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("?");
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        let pid = ev.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        let (last_ts, stack) = lanes.entry((pid, tid)).or_insert((f64::MIN, Vec::new()));
        assert!(
            ts >= *last_ts,
            "lane ({pid},{tid}): ts {ts} after {last_ts} — not monotone"
        );
        *last_ts = ts;
        match ph {
            "B" => {
                stack.push(name.to_string());
                spans += 1;
            }
            "E" => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("lane ({pid},{tid}): E \"{name}\" with no open B"));
                assert_eq!(open, name, "lane ({pid},{tid}): mismatched span close");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), (_, stack)) in &lanes {
        assert!(
            stack.is_empty(),
            "lane ({pid},{tid}): {} span(s) left open: {stack:?}",
            stack.len()
        );
    }
    assert!(spans > 0, "a churn trace cannot be span-free");
}

fn apply_knobs(config: &mut ChurnConfig) {
    if let Some(v) = arg_value("--groups") {
        config.groups = v.parse().expect("--groups N");
    }
    if let Some(v) = arg_value("--epochs") {
        config.epochs = v.parse().expect("--epochs N");
    }
    if let Some(v) = arg_value("--shards") {
        config.shards = v.parse().expect("--shards N");
    }
    if let Some(v) = arg_value("--seed") {
        config.seed = v.parse().expect("--seed N");
    }
}

/// The observational-transparency assertion: tracing must change nothing
/// the untraced run can see.
fn assert_transparent(untraced: &ChurnReport, traced: &ChurnReport) {
    assert_eq!(
        untraced.key_fingerprint, traced.key_fingerprint,
        "tracing perturbed the keys"
    );
    assert_eq!(untraced.events_applied, traced.events_applied);
    assert_eq!(untraced.rekeys_executed, traced.rekeys_executed);
    assert_eq!(untraced.steps_retried, traced.steps_retried);
    assert!((untraced.energy_mj - traced.energy_mj).abs() < 1e-9);
}

fn main() {
    let preset = arg_value("--preset").unwrap_or_else(|| "mixed-suite".into());
    let mut config = match preset.as_str() {
        "mixed-suite" => ChurnConfig::mixed_suite_bench(),
        "radio" => ChurnConfig::radio_bench(),
        other => panic!("unknown --preset {other} (try: mixed-suite, radio)"),
    };
    apply_knobs(&mut config);

    println!(
        "trace_churn: preset {preset}, {} groups, {} epochs, {} shards, seed {:#x}\n",
        config.groups, config.epochs, config.shards, config.seed
    );

    // Pass 1 — tracing off. This wall clock is the no-op overhead guard.
    let untraced = run_churn(&config);
    let wall_ms_untraced = untraced.wall.as_secs_f64() * 1e3;
    println!("untraced: {:.1} ms", wall_ms_untraced);

    // Pass 2 — tracing on, bounded ring + metrics registry.
    let registry = Arc::new(MetricsRegistry::new());
    let (tc, ring) = TraceConfig::ring(1 << 22);
    config.trace = Some(tc.with_registry(Arc::clone(&registry)));
    let traced = run_churn(&config);
    let wall_ms_traced = traced.wall.as_secs_f64() * 1e3;
    println!("traced:   {:.1} ms", wall_ms_traced);

    assert_transparent(&untraced, &traced);
    assert_eq!(
        TraceSink::dropped(&*ring),
        0,
        "the ring saturated — raise its capacity or shrink the scenario"
    );
    let events = ring.events();
    export::validate(&events).expect("recorded spans must balance per lane");
    let fingerprint = export::event_fingerprint(&events);
    println!(
        "\n{} events recorded, fingerprint {fingerprint:016x}",
        events.len()
    );

    // Pass 3 — tracing on AND the parallel pump on. The per-node sweep
    // buffers are merged in node-index order, so the threaded run must
    // reproduce the sequential traced pass bit for bit — same keys, same
    // counters, same *event stream* — while (on multi-core hosts) beating
    // its wall clock. This is the determinism proof the `parallel_pump`
    // knob ships with.
    let (tc_par, ring_par) = TraceConfig::ring(1 << 22);
    config.trace = Some(tc_par);
    config.parallel_pump = true;
    let par = run_churn(&config);
    config.parallel_pump = false;
    let wall_ms_par = par.wall.as_secs_f64() * 1e3;
    println!("parallel: {:.1} ms", wall_ms_par);
    assert_transparent(&traced, &par);
    assert_eq!(
        TraceSink::dropped(&*ring_par),
        0,
        "the parallel ring saturated — raise its capacity"
    );
    let par_fingerprint = export::event_fingerprint(&ring_par.events());
    assert_eq!(
        fingerprint, par_fingerprint,
        "parallel pumping perturbed the trace event stream"
    );
    println!("parallel trace fingerprint matches sequential ✓");

    // Chrome export + in-process validation.
    let chrome = export::chrome_trace_json(&events);
    validate_chrome_json(&chrome);
    let trace_path =
        arg_value("--trace-json").unwrap_or_else(|| "BENCH_trace_churn.trace.json".into());
    if trace_path != "-" {
        std::fs::write(&trace_path, &chrome)
            .unwrap_or_else(|e| panic!("writing {trace_path}: {e}"));
        println!(
            "wrote {trace_path} ({} bytes) — load it in Perfetto",
            chrome.len()
        );
    }

    // Energy flame + top table.
    let flame_path = arg_value("--flame").unwrap_or_else(|| "BENCH_trace_churn.flame.txt".into());
    if flame_path != "-" {
        let flame = export::collapsed_energy(&events);
        std::fs::write(&flame_path, &flame).unwrap_or_else(|e| panic!("writing {flame_path}: {e}"));
        println!("wrote {flame_path} ({} stacks)", flame.lines().count());
    }
    let top: usize = arg_value("--top").map_or(10, |v| v.parse().expect("--top N"));
    println!(
        "\ntop {top} energy sinks:\n{}",
        export::top_table(&events, top)
    );
    println!("metrics registry:\n{}", registry.snapshot().render_table());

    // Machine-readable artifact for the perf/determinism gate.
    let suites = traced
        .suites
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"groups\": {}, \"rekeys\": {}, \"energy_mj\": {:.3}}}",
                s.suite.key(),
                s.groups,
                s.rekeys,
                s.energy_mj
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \
         \"schema\": \"egka-trace-churn/1\",\n  \
         \"preset\": \"{preset}\",\n  \
         \"groups\": {},\n  \
         \"epochs\": {},\n  \
         \"events_total\": {},\n  \
         \"event_fingerprint\": \"{fingerprint:016x}\",\n  \
         \"trace_bytes\": {},\n  \
         \"energy_mj\": {:.3},\n  \
         \"wall_ms\": {wall_ms_traced:.1},\n  \
         \"wall_ms_untraced\": {wall_ms_untraced:.1},\n  \
         \"wall_ms_par\": {wall_ms_par:.1},\n  \
         \"trace_drops\": {},\n  \
         \"suites\": {{{suites}}},\n  \
         \"metrics\": {},\n  \
         \"key_fingerprint\": \"{:016x}\"\n}}\n",
        config.groups,
        config.epochs,
        events.len(),
        chrome.len(),
        traced.energy_mj,
        traced.trace_drops.unwrap_or(0),
        traced.metrics.to_json(),
        traced.key_fingerprint,
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_trace_churn.json".into());
    if json_path != "-" {
        std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        println!("wrote {json_path}");
    }

    if has_flag("--check-determinism") {
        println!("\nre-running for determinism check…");
        let (tc, ring2) = TraceConfig::ring(1 << 22);
        config.trace = Some(tc);
        let again = run_churn(&config);
        assert_eq!(traced.key_fingerprint, again.key_fingerprint);
        let chrome2 = export::chrome_trace_json(&ring2.events());
        assert!(
            chrome == chrome2,
            "same seed + config must export byte-identical traces"
        );
        println!(
            "deterministic ✓ ({} bytes of trace reproduced exactly)",
            chrome2.len()
        );
    }
}
