//! Reproduces **Table 5** — energy cost of the dynamic protocols
//! (`n = 100`, `m = 20`, `ℓd = 20`, StrongARM + Spectrum24 WLAN).
//!
//! By default every row comes from an **instrumented run** (real crypto at
//! toy algebra sizes; counts cross-checked against the closed forms before
//! pricing). `--closed-form` skips the runs and prices the closed forms
//! directly (fast path).
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_table5 [--closed-form]
//! ```

use egka_bench::{fmt_joules, has_flag};
use egka_sim::{generate_table5, Table5Config};

fn main() {
    let config = Table5Config {
        instrument: !has_flag("--closed-form"),
        ..Table5Config::default()
    };
    println!(
        "Table 5. Energy Cost for Dynamic Protocols (n = {}, m = {}, ld = {})",
        config.n, config.m, config.ld
    );
    println!(
        "source: {}\n",
        if config.instrument {
            "instrumented runs"
        } else {
            "closed forms"
        }
    );
    let t = generate_table5(&config);
    println!("{}", t.to_markdown());
    println!(
        "max relative deviation from the paper's printed joules: {:.2}%",
        t.max_rel_err() * 100.0
    );
    let speedups: Vec<(&str, &str)> = vec![
        ("BD Join", "Our Join Protocol"),
        ("BD Leave", "Our Leave Protocol"),
        ("BD Merge", "Our Merge Protocol"),
        ("BD Partition", "Our Partition Protocol"),
    ];
    println!("\nHeadline result — energy advantage of the proposed dynamics:");
    for (bd, ours) in speedups {
        let bd_max = t
            .rows
            .iter()
            .filter(|r| r.protocol == bd)
            .map(|r| r.measured_j)
            .fold(0.0f64, f64::max);
        let ours_max = t
            .rows
            .iter()
            .filter(|r| r.protocol == ours && r.role != "Others")
            .map(|r| r.measured_j)
            .fold(0.0f64, f64::max);
        println!(
            "  {:<14} {:>10}  vs  ours {:>10}   ({:.0}× less energy at the busiest role)",
            bd,
            fmt_joules(bd_max),
            fmt_joules(ours_max),
            bd_max / ours_max
        );
    }
}
