//! Reproduces **Table 2** — computational energy cost model.
//!
//! Prints the paper's printed values alongside the values *re-derived*
//! through the paper's own extrapolation rule (eq. (4)):
//! `α = γ/8.8 × 37.92 ms`, `β = 240 mW × α`, flagging the one row where the
//! paper's arithmetic is internally inconsistent (Tate pairing).
//!
//! ```text
//! cargo run --release -p egka-bench --bin repro_table2
//! ```

use egka_energy::cpu::{table2_row, CpuModel};
use egka_energy::{CompOp, Scheme};

fn main() {
    println!("Table 2. Computational Energy Cost (133MHz StrongARM / 450MHz P-III)");
    println!("=====================================================================\n");
    println!(
        "{:<22}{:>12}{:>14}{:>12}  |{:>14}{:>12}",
        "Operation", "paper mJ", "paper ms(SA)", "ms(P3-450)", "derived ms", "derived mJ"
    );
    let ops: [(&str, CompOp); 12] = [
        ("Mod. Exp.", CompOp::ModExp),
        ("MapToPoint", CompOp::MapToPoint),
        ("Tate Pairing", CompOp::TatePairing),
        ("Scalar Mul.", CompOp::EcScalarMul),
        ("Sign Gen DSA", CompOp::SignGen(Scheme::Dsa)),
        ("Sign Gen ECDSA", CompOp::SignGen(Scheme::Ecdsa)),
        ("Sign Gen SOK", CompOp::SignGen(Scheme::Sok)),
        ("Sign Gen GQ", CompOp::SignGen(Scheme::Gq)),
        ("Sign Ver DSA", CompOp::SignVerify(Scheme::Dsa)),
        ("Sign Ver ECDSA", CompOp::SignVerify(Scheme::Ecdsa)),
        ("Sign Ver SOK", CompOp::SignVerify(Scheme::Sok)),
        ("Sign Ver GQ", CompOp::SignVerify(Scheme::Gq)),
    ];
    for (name, op) in ops {
        let row = table2_row(op).expect("priced op");
        let (alpha_ms, beta_mj) = CpuModel::derive_strongarm(row.p3_450_ms);
        let consistent = ((beta_mj - row.strongarm_mj) / row.strongarm_mj).abs() < 0.01;
        println!(
            "{:<22}{:>12.1}{:>14.2}{:>12.2}  |{:>14.2}{:>12.2}{}",
            name,
            row.strongarm_mj,
            row.strongarm_ms,
            row.p3_450_ms,
            alpha_ms,
            beta_mj,
            if consistent {
                ""
            } else {
                "   <- paper's printed mJ deviates (documented)"
            }
        );
    }
    println!("\nDerivation chain (paper §6):");
    println!(
        "  modexp 9.1 mJ / 240 mW = {:.2} ms on the StrongARM",
        9.1 / 240.0 * 1000.0
    );
    println!(
        "  Tate on P3-1GHz: 20 ms × {:.2} = {:.1} ms on P3-450",
        CpuModel::p3_1ghz_to_450(1.0),
        CpuModel::p3_1ghz_to_450(20.0)
    );
    println!(
        "  MapToPoint = IBE-enc − IBE-dec = 35 − 27 = 8 ms × {:.2} = {:.2} ms on P3-450",
        CpuModel::p3_1ghz_to_450(1.0),
        CpuModel::p3_1ghz_to_450(8.0)
    );
}
