//! # egka-bench
//!
//! Reproduction harness binaries and Criterion micro-benchmarks.
//!
//! ## `repro_*` binaries — one per paper artifact
//!
//! | Binary | Artifact | What it does |
//! |---|---|---|
//! | `repro_table1` | Table 1 | symbolic complexity table + closed forms evaluated at `n`, verified against instrumented runs |
//! | `repro_table2` | Table 2 | computational energy model, re-derived via the paper's extrapolation rule |
//! | `repro_table3` | Table 3 | communication energy model from per-bit costs × wire sizes |
//! | `repro_table4` | Table 4 | symbolic dynamic-protocol complexity + measured message counts |
//! | `repro_table5` | Table 5 | instrumented dynamic-protocol energies vs the paper's joules |
//! | `repro_figure1` | Figure 1 | the energy sweep, ASCII log-scale chart + CSV |
//!
//! Run e.g. `cargo run --release -p egka-bench --bin repro_figure1`.
//!
//! ## Criterion benches
//!
//! * `substrates` — bigint/Montgomery, SHA-256, AES, curve and pairing ops;
//! * `signatures` — sign/verify for GQ, DSA, ECDSA, SOK, plus the paper's
//!   central ablation: **batch vs individual GQ verification**;
//! * `protocols` — full GKA rounds and dynamic events at small `n`;
//! * `tables` — the table/figure generators (closed-form path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a joule value with engineering-friendly precision.
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else {
        format!("{:.3} µJ", j * 1e6)
    }
}

/// Parses `--flag value`-style options from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// True when `--flag` is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joule_formatting() {
        assert_eq!(fmt_joules(1.234), "1.234 J");
        assert_eq!(fmt_joules(0.039), "39.000 mJ");
        assert_eq!(fmt_joules(0.00000134 * 1000.0), "1.340 mJ");
        assert_eq!(fmt_joules(0.0000005), "0.500 µJ");
    }
}
