//! # egka-bench
//!
//! Reproduction harness binaries and Criterion micro-benchmarks.
//!
//! ## `repro_*` binaries — one per paper artifact
//!
//! | Binary | Artifact | What it does |
//! |---|---|---|
//! | `repro_table1` | Table 1 | symbolic complexity table + closed forms evaluated at `n`, verified against instrumented runs |
//! | `repro_table2` | Table 2 | computational energy model, re-derived via the paper's extrapolation rule |
//! | `repro_table3` | Table 3 | communication energy model from per-bit costs × wire sizes |
//! | `repro_table4` | Table 4 | symbolic dynamic-protocol complexity + measured message counts |
//! | `repro_table5` | Table 5 | instrumented dynamic-protocol energies vs the paper's joules |
//! | `repro_figure1` | Figure 1 | the energy sweep, ASCII log-scale chart + CSV |
//!
//! Run e.g. `cargo run --release -p egka-bench --bin repro_figure1`.
//!
//! ## Criterion benches
//!
//! * `substrates` — bigint/Montgomery, SHA-256, AES, curve and pairing ops;
//! * `signatures` — sign/verify for GQ, DSA, ECDSA, SOK, plus the paper's
//!   central ablation: **batch vs individual GQ verification**;
//! * `protocols` — full GKA rounds and dynamic events at small `n`;
//! * `tables` — the table/figure generators (closed-form path).
//!
//! ```
//! use egka_bench::fmt_joules;
//!
//! // Engineering-friendly energy formatting, as printed by the binaries.
//! assert_eq!(fmt_joules(2.5), "2.500 J");
//! assert_eq!(fmt_joules(0.0413), "41.300 mJ");
//! assert_eq!(fmt_joules(42e-6), "42.000 µJ");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

/// Formats a joule value with engineering-friendly precision.
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else {
        format!("{:.3} µJ", j * 1e6)
    }
}

/// Parses `--flag value`-style options from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// True when `--flag` is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses a `--policy` value: `cheapest` (StrongARM + 100 kbps radio),
/// `cheapest-wlan` (StrongARM + WLAN card), or a suite key (`proposed`,
/// `bd_sok`, `bd_ecdsa`, `bd_dsa`, `ssn`) for a fixed fleet.
///
/// # Panics
/// Panics on an unrecognized value.
pub fn parse_suite_policy(value: &str) -> egka_service::SuitePolicy {
    use egka_energy::{CpuModel, Transceiver};
    use egka_service::{SuiteId, SuitePolicy};
    match value {
        "cheapest" => SuitePolicy::Cheapest {
            cpu: CpuModel::strongarm_133(),
            transceiver: Transceiver::radio_100kbps(),
        },
        "cheapest-wlan" => SuitePolicy::Cheapest {
            cpu: CpuModel::strongarm_133(),
            transceiver: Transceiver::wlan_spectrum24(),
        },
        key => match SuiteId::from_key(key) {
            Some(id) => SuitePolicy::Fixed(id),
            None => panic!("unknown --policy {key} (try: cheapest, cheapest-wlan, or a suite key)"),
        },
    }
}

/// Renders a churn report as a flat JSON object — the machine-readable
/// artifact (`BENCH_service_churn.json`) that tracks the perf trajectory
/// across PRs. Hand-rolled (no JSON dependency in this environment): every
/// value is a number, a hex string, or a `{p50,p95,p99}` object — plus a
/// nested `"metrics"` object carrying the service's *complete* counter
/// set via [`egka_service::ServiceMetrics::to_json`] (the legacy flat
/// keys stay, so committed baselines keep parsing).
pub fn churn_report_json(report: &egka_sim::ChurnReport) -> String {
    fn quantiles_ms(q: Option<(f64, f64, f64)>) -> String {
        match q {
            Some((p50, p95, p99)) => {
                format!("{{\"p50\": {p50:.3}, \"p95\": {p95:.3}, \"p99\": {p99:.3}}}")
            }
            None => "null".to_string(),
        }
    }
    // An idle run has rekeys == 0 and a coalesce ratio of ∞, which is not
    // representable in JSON; `null` keeps the artifact parseable.
    let coalesce = if report.coalesce_ratio.is_finite() {
        format!("{:.4}", report.coalesce_ratio)
    } else {
        "null".to_string()
    };
    let wall_q = report.wall_latency.map(|(a, b, c)| {
        (
            a.as_secs_f64() * 1e3,
            b.as_secs_f64() * 1e3,
            c.as_secs_f64() * 1e3,
        )
    });
    let (virtual_q, nodes_died, battery_spent_uj) = match &report.radio {
        Some(r) => (r.latency_quantiles_ms, r.nodes_died, r.total_spent_uj),
        None => (None, 0, 0.0),
    };
    let suites = report
        .suites
        .iter()
        .map(|s| {
            format!(
                "\"{}\": {{\"groups\": {}, \"rekeys\": {}, \"energy_mj\": {:.3}}}",
                s.suite.key(),
                s.groups,
                s.rekeys,
                s.energy_mj
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \
         \"schema\": \"egka-service-churn/1\",\n  \
         \"groups\": {},\n  \
         \"groups_active\": {},\n  \
         \"events_submitted\": {},\n  \
         \"events_applied\": {},\n  \
         \"rekeys_executed\": {},\n  \
         \"coalesce_ratio\": {},\n  \
         \"energy_mj\": {:.3},\n  \
         \"throughput_eps\": {:.1},\n  \
         \"wall_ms\": {:.1},\n  \
         \"groups_stalled\": {},\n  \
         \"steps_retried\": {},\n  \
         \"nodes_died\": {},\n  \
         \"battery_spent_uj\": {:.1},\n  \
         \"latency_wall_ms\": {},\n  \
         \"latency_virtual_ms\": {},\n  \
         \"suites\": {{{}}},\n  \
         \"metrics\": {},\n  \
         \"key_fingerprint\": \"{:016x}\"\n}}\n",
        report.groups,
        report.groups_active,
        report.events_submitted,
        report.events_applied,
        report.rekeys_executed,
        coalesce,
        report.energy_mj,
        report.throughput_eps,
        report.wall.as_secs_f64() * 1e3,
        report.groups_stalled,
        report.steps_retried,
        nodes_died,
        battery_spent_uj,
        quantiles_ms(wall_q),
        quantiles_ms(virtual_q),
        suites,
        report.metrics.to_json(),
        report.key_fingerprint,
    )
}

/// Renders the crash-recovery scenario's artifact
/// (`BENCH_recovery_churn.json`): the uninterrupted and recovered runs'
/// fingerprints (the acceptance equality), what recovery replayed, and
/// both wall clocks.
pub fn recovery_churn_json(
    uninterrupted: &egka_sim::ChurnReport,
    crashed: &egka_sim::ChurnReport,
) -> String {
    let rec = crashed
        .recovery
        .expect("the crashed run carries a recovery summary");
    let snapshot_epoch = match rec.snapshot_epoch {
        Some(e) => e.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \
         \"schema\": \"egka-recovery-churn/1\",\n  \
         \"groups\": {},\n  \
         \"epochs\": {},\n  \
         \"kill_epoch\": {},\n  \
         \"snapshot_epoch\": {},\n  \
         \"records_replayed\": {},\n  \
         \"epochs_replayed\": {},\n  \
         \"groups_recovered\": {},\n  \
         \"uninterrupted_fingerprint\": \"{:016x}\",\n  \
         \"recovered_fingerprint\": \"{:016x}\",\n  \
         \"fingerprints_equal\": {},\n  \
         \"uninterrupted_wall_ms\": {:.1},\n  \
         \"recovered_wall_ms\": {:.1}\n}}\n",
        uninterrupted.groups,
        uninterrupted.epochs.len(),
        rec.kill_epoch,
        snapshot_epoch,
        rec.records_replayed,
        rec.epochs_replayed,
        rec.groups_recovered,
        uninterrupted.key_fingerprint,
        crashed.key_fingerprint,
        uninterrupted.key_fingerprint == crashed.key_fingerprint,
        uninterrupted.wall.as_secs_f64() * 1e3,
        crashed.wall.as_secs_f64() * 1e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joule_formatting() {
        assert_eq!(fmt_joules(1.234), "1.234 J");
        assert_eq!(fmt_joules(0.039), "39.000 mJ");
        assert_eq!(fmt_joules(0.00000134 * 1000.0), "1.340 mJ");
        assert_eq!(fmt_joules(0.0000005), "0.500 µJ");
    }

    #[test]
    fn churn_json_has_the_tracked_fields() {
        let report = egka_sim::run_churn(&egka_sim::ChurnConfig {
            groups: 4,
            epochs: 2,
            shards: 2,
            radio: Some(egka_sim::RadioChurnConfig::ideal()),
            ..egka_sim::ChurnConfig::default()
        });
        let json = churn_report_json(&report);
        for key in [
            "\"schema\"",
            "\"events_applied\"",
            "\"rekeys_executed\"",
            "\"coalesce_ratio\"",
            "\"throughput_eps\"",
            "\"latency_wall_ms\"",
            "\"latency_virtual_ms\"",
            "\"p99\"",
            "\"key_fingerprint\"",
            "\"metrics\"",
            "\"wal_appends\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces — cheap structural sanity for the hand-rolled
        // encoder.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
