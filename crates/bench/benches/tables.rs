//! Criterion benchmarks for the table/figure generators themselves (the
//! closed-form paths used by the repro binaries), plus the
//! nominal-vs-actual envelope framing ablation behind the paper's
//! "envelopes cost their plaintext size" accounting convention.

use criterion::{criterion_group, criterion_main, Criterion};
use egka_hash::ChaChaRng;
use egka_sim::{generate_figure1, generate_table5, Figure1Config, Table5Config};
use egka_symmetric::Envelope;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("figure1_closed_form", |b| {
        let config = Figure1Config {
            sizes: vec![10, 50, 100, 500],
            max_instrumented_n: 0,
            seed: 1,
        };
        b.iter(|| generate_figure1(black_box(&config)));
    });
    group.bench_function("table5_closed_form", |b| {
        let config = Table5Config {
            instrument: false,
            ..Table5Config::default()
        };
        b.iter(|| generate_table5(black_box(&config)));
    });
    group.finish();
}

fn bench_envelope_framing(c: &mut Criterion) {
    // Ablation data point: the real envelope (IV + padding + tag) on a
    // 1024-bit key payload vs the paper's idealized plaintext-sized
    // accounting. The *throughput* here complements the size delta that
    // EXPERIMENTS.md reports (1056 bits nominal vs 1696 actual).
    let env = Envelope::from_key_material(b"group key material");
    let mut rng = ChaChaRng::seed_from_u64(2);
    let payload = vec![0x5au8; 132]; // 1024-bit key + 32-bit id, in bytes
    c.bench_function("envelope_seal_1056bit_payload", |b| {
        b.iter(|| env.seal(&mut rng, black_box(&payload)));
    });
    let sealed = env.seal(&mut rng, &payload);
    c.bench_function("envelope_open_1056bit_payload", |b| {
        b.iter(|| env.open(black_box(&sealed)).unwrap());
    });
}

criterion_group!(benches, bench_generators, bench_envelope_framing);
criterion_main!(benches);
