//! Criterion benchmarks for the `egka-service` layer: epoch ticks under
//! batched churn, and the coalescing planner's two join realizations at
//! the same workload (k sequential Joins vs newcomer GKA + Merge).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egka_core::{dynamics, proposed, Pkg, RunConfig, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_service::{KeyService, MembershipEvent};
use rand::SeedableRng;
use std::hint::black_box;

fn pkg() -> Arc<Pkg> {
    let mut rng = ChaChaRng::seed_from_u64(0x5e6b);
    Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy))
}

/// One epoch tick over `groups` groups, each with one queued join and one
/// queued leave — the service's steady-state unit of work.
fn bench_epoch_tick(c: &mut Criterion) {
    let pkg = pkg();
    let mut group = c.benchmark_group("service_epoch_tick");
    group.sample_size(10);
    for groups in [8u64, 32] {
        group.bench_with_input(BenchmarkId::new("churn", groups), &groups, |b, &groups| {
            b.iter(|| {
                let mut svc = KeyService::builder().build(Arc::clone(&pkg));
                for g in 0..groups {
                    let base = g as u32 * 16;
                    let members: Vec<UserId> = (base..base + 5).map(UserId).collect();
                    svc.create_group(g, &members).unwrap();
                    svc.submit(g, MembershipEvent::Join(UserId(base + 9)))
                        .unwrap();
                    svc.submit(g, MembershipEvent::Leave(UserId(base + 1)))
                        .unwrap();
                }
                black_box(svc.tick())
            });
        });
    }
    group.finish();
}

/// The coalescing ablation: k joins served sequentially vs batched
/// (newcomer GKA + one Merge), on the same starting ring.
fn bench_join_realizations(c: &mut Criterion) {
    let pkg = pkg();
    let keys = pkg.extract_group(8);
    let (_, session) = proposed::run(pkg.params(), &keys, 1, RunConfig::default());
    let mut group = c.benchmark_group("join_realizations_n8");
    group.sample_size(10);
    for k in [2u32, 4] {
        group.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, &k| {
            b.iter(|| {
                let mut s = session.clone();
                for j in 0..k {
                    let id = UserId(100 + j);
                    let key = pkg.extract(id);
                    s = dynamics::join(&s, id, &key, u64::from(j), false).session;
                }
                black_box(s)
            });
        });
        group.bench_with_input(BenchmarkId::new("batched_merge", k), &k, |b, &k| {
            b.iter(|| {
                let newcomer_keys: Vec<_> = (0..k).map(|j| pkg.extract(UserId(100 + j))).collect();
                let (_, ng) = proposed::run(pkg.params(), &newcomer_keys, 2, RunConfig::default());
                black_box(dynamics::merge(&session, &ng, 3).session)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_tick, bench_join_realizations);
criterion_main!(benches);
