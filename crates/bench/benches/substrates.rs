//! Criterion micro-benchmarks for the from-scratch substrates: big-integer
//! arithmetic (the paper's "modular exponentiation" cost unit), hashing,
//! AES, elliptic-curve scalar multiplication and the Tate pairing.
//!
//! These are the Rust-measured analogues of Table 2's primitive rows; the
//! `tables` bench and EXPERIMENTS.md relate their ratios to the paper's
//! (e.g. pairing ≈ 5× a 1024-bit modexp on the paper's hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egka_bigint::{mod_pow, Montgomery, Ubig};
use egka_ec::PairingGroup;
use egka_hash::{ChaChaRng, Digest, Sha256};
use egka_symmetric::Aes;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_modexp(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(1);
    let mut group = c.benchmark_group("modexp");
    group.sample_size(20);
    for bits in [256u32, 512, 1024] {
        let p = egka_bigint::gen_prime(&mut rng, bits);
        let base = egka_bigint::random_below(&mut rng, &p);
        let exp = egka_bigint::random_bits(&mut rng, 160); // paper: 160-bit exponents
        group.bench_with_input(BenchmarkId::new("mont_160bit_exp", bits), &bits, |b, _| {
            b.iter(|| mod_pow(black_box(&base), black_box(&exp), black_box(&p)));
        });
        let mont = Montgomery::new(p.clone());
        group.bench_with_input(BenchmarkId::new("mont_reuse_ctx", bits), &bits, |b, _| {
            b.iter(|| mont.pow(black_box(&base), black_box(&exp)));
        });
    }
    group.finish();
}

fn bench_mul(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(2);
    let mut group = c.benchmark_group("bigint_mul");
    for limbs in [16usize, 32, 64, 128] {
        let a = Ubig::from_limbs((0..limbs).map(|_| rng.next_u64()).collect());
        let b = Ubig::from_limbs((0..limbs).map(|_| rng.next_u64()).collect());
        group.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a).mul_ref(black_box(&b)));
        });
    }
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    c.bench_function("sha256_4k", |b| {
        b.iter(|| Sha256::digest(black_box(&data)));
    });
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new(&[0x42u8; 16]);
    let iv = [0u8; 16];
    let data = vec![0x5au8; 1024];
    c.bench_function("aes128_cbc_1k", |b| {
        b.iter(|| egka_symmetric::cbc_encrypt(black_box(&aes), black_box(&iv), black_box(&data)));
    });
}

fn bench_curve(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(3);
    let curve = egka_ec::secp160r1();
    let k = curve.random_scalar(&mut rng);
    c.bench_function("secp160r1_scalar_mul", |b| {
        b.iter(|| curve.mul_gen(black_box(&k)));
    });
}

fn bench_pairing(c: &mut Criterion) {
    let g = PairingGroup::paper_fixture();
    let mut rng = ChaChaRng::seed_from_u64(4);
    let p = g.random_point(&mut rng);
    let q = g.random_point(&mut rng);
    let mut group = c.benchmark_group("pairing");
    group.sample_size(10);
    group.bench_function("tate_194bit", |b| {
        b.iter(|| g.pairing(black_box(&p), black_box(&q)));
    });
    group.bench_function("map_to_point", |b| {
        let mut ctr = 0u64;
        b.iter(|| {
            ctr += 1;
            g.map_to_point(black_box(&ctr.to_be_bytes()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_modexp,
    bench_mul,
    bench_hash,
    bench_aes,
    bench_curve,
    bench_pairing
);
criterion_main!(benches);
