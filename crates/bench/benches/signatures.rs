//! Criterion benchmarks for the four signature schemes, including the
//! paper's central ablation: **GQ batch verification vs `n` individual
//! verifications** — the mechanism behind the proposed protocol's constant
//! "Sign Ver" column in Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egka_bigint::Ubig;
use egka_hash::ChaChaRng;
use egka_sig::{Dsa, Ecdsa, GqPkg, SokPkg};
use rand::SeedableRng;
use std::hint::black_box;

/// Mid-size GQ so the benches finish quickly but exercise real arithmetic.
fn gq() -> GqPkg {
    let mut rng = ChaChaRng::seed_from_u64(0x6271);
    GqPkg::setup_with_e_bits(&mut rng, 256, 161)
}

fn bench_gq(c: &mut Criterion) {
    let pkg = gq();
    let mut rng = ChaChaRng::seed_from_u64(1);
    let key = pkg.extract(b"alice");
    let sig = pkg.params.sign(&mut rng, &key, b"msg");
    c.bench_function("gq_sign", |b| {
        b.iter(|| pkg.params.sign(&mut rng, &key, black_box(b"msg")));
    });
    c.bench_function("gq_verify", |b| {
        b.iter(|| pkg.params.verify(black_box(b"alice"), b"msg", &sig));
    });
}

/// The ablation: one aggregate check vs n individual GQ verifications.
fn bench_gq_batch(c: &mut Criterion) {
    let pkg = gq();
    let mut rng = ChaChaRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gq_batch_vs_individual");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let ids: Vec<Vec<u8>> = (0..n).map(|i| format!("user-{i}").into_bytes()).collect();
        let keys: Vec<_> = ids.iter().map(|id| pkg.extract(id)).collect();
        let bind = b"Z";
        let mut taus = Vec::new();
        let mut ts = Vec::new();
        for _ in 0..n {
            let (tau, t) = pkg.params.commit(&mut rng);
            taus.push(tau);
            ts.push(t);
        }
        let c_shared = pkg
            .params
            .shared_challenge(&pkg.params.aggregate_commitments(&ts), bind);
        let responses: Vec<Ubig> = keys
            .iter()
            .zip(&taus)
            .map(|(k, tau)| pkg.params.respond(k, tau, &c_shared))
            .collect();
        let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| {
                assert!(pkg.params.aggregate_verify(
                    black_box(&id_refs),
                    black_box(&responses),
                    &c_shared,
                    bind
                ))
            });
        });
        // Individual verification of n per-member tags (what SSN-style
        // per-sender checks cost): t_j == s_j^e · H(U_j)^{−c}.
        group.bench_with_input(BenchmarkId::new("individual", n), &n, |b, _| {
            b.iter(|| {
                for j in 0..n {
                    let se = egka_bigint::mod_pow(&responses[j], &pkg.params.e, &pkg.params.n);
                    let h = pkg.params.hash_id(&ids[j]);
                    let h_inv = egka_bigint::mod_inverse(&h, &pkg.params.n).unwrap();
                    let hc = egka_bigint::mod_pow(&h_inv, &c_shared, &pkg.params.n);
                    let t = egka_bigint::mod_mul(&se, &hc, &pkg.params.n);
                    assert_eq!(t, ts[j]);
                }
            });
        });
    }
    group.finish();
}

fn bench_dsa_ecdsa(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(3);
    let dsa = Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 512, 160));
    let kp = dsa.keygen(&mut rng);
    let sig = dsa.sign(&mut rng, &kp, b"m");
    c.bench_function("dsa512_sign", |b| {
        b.iter(|| dsa.sign(&mut rng, &kp, black_box(b"m")))
    });
    c.bench_function("dsa512_verify", |b| {
        b.iter(|| dsa.verify(&kp.y, b"m", black_box(&sig)))
    });

    let ecdsa = Ecdsa::new(egka_ec::secp160r1());
    let ekp = ecdsa.keygen(&mut rng);
    let esig = ecdsa.sign(&mut rng, &ekp, b"m");
    c.bench_function("ecdsa160_sign", |b| {
        b.iter(|| ecdsa.sign(&mut rng, &ekp, black_box(b"m")))
    });
    c.bench_function("ecdsa160_verify", |b| {
        b.iter(|| ecdsa.verify(&ekp.q, b"m", black_box(&esig)))
    });
}

fn bench_sok(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(4);
    let group = egka_ec::PairingGroup::paper_fixture();
    let pkg = SokPkg::setup(&mut rng, group);
    let key = pkg.extract(b"alice");
    let sig = pkg.params.sign(&mut rng, &key, b"m");
    let mut g = c.benchmark_group("sok_194bit");
    g.sample_size(10);
    g.bench_function("sign", |b| {
        b.iter(|| pkg.params.sign(&mut rng, &key, black_box(b"m")))
    });
    g.bench_function("verify_3_pairings", |b| {
        b.iter(|| assert!(pkg.params.verify(b"alice", b"m", black_box(&sig))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gq,
    bench_gq_batch,
    bench_dsa_ecdsa,
    bench_sok
);
criterion_main!(benches);
