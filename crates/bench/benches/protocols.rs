//! Criterion benchmarks for full protocol executions: the initial GKA
//! under all five authentication schemes, and the four dynamic protocols.
//! Wall-clock here measures the *whole simulated group* (all `n` nodes'
//! crypto plus the medium), i.e. `n ×` the per-node work Figure 1 prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use egka_core::{
    authbd, dynamics, proposed, ssn, AuthKit, Pkg, RunConfig, SecurityProfile, UserId,
};
use egka_hash::ChaChaRng;
use egka_sig::Ecdsa;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_initial(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(0x6b61);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let mut group = c.benchmark_group("initial_gka");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let keys = pkg.extract_group(n as u32);
        group.bench_with_input(BenchmarkId::new("proposed", n), &n, |b, _| {
            b.iter(|| proposed::run(pkg.params(), black_box(&keys), 1, RunConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("ssn", n), &n, |b, _| {
            b.iter(|| ssn::run(pkg.params(), black_box(&keys), 1));
        });
    }
    // Certificate-based baseline at one size (per-verify cost dominates).
    let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
    let kit = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), 8);
    group.bench_function("bd_ecdsa/8", |b| {
        b.iter(|| authbd::run(black_box(&bd), &kit, 1));
    });
    group.finish();
}

fn bench_dynamics(c: &mut Criterion) {
    let mut rng = ChaChaRng::seed_from_u64(0x6b62);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let n = 12;
    let keys = pkg.extract_group(n);
    let (_, session) = proposed::run(pkg.params(), &keys, 5, RunConfig::default());
    let newcomer_key = pkg.extract(UserId(100));
    let keys_b = (n..n + 4)
        .map(|i| pkg.extract(UserId(i)))
        .collect::<Vec<_>>();
    let (_, session_b) = proposed::run(pkg.params(), &keys_b, 6, RunConfig::default());

    let mut group = c.benchmark_group("dynamics_n12");
    group.sample_size(10);
    group.bench_function("join", |b| {
        b.iter(|| dynamics::join(black_box(&session), UserId(100), &newcomer_key, 7, false));
    });
    group.bench_function("leave", |b| {
        b.iter(|| dynamics::leave(black_box(&session), 3, 8));
    });
    group.bench_function("merge_12_plus_4", |b| {
        b.iter(|| dynamics::merge(black_box(&session), &session_b, 9));
    });
    group.bench_function("partition_drop4", |b| {
        b.iter(|| dynamics::partition(black_box(&session), &[8, 9, 10, 11], 10));
    });
    // The paper's baseline for the same event: re-run authenticated BD.
    let bd = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
    let kit = AuthKit::setup_ecdsa(&mut rng, Ecdsa::new(egka_ec::secp160r1()), n as usize + 1);
    group.bench_function("bd_reexec_join_n12", |b| {
        b.iter(|| authbd::run_with_trust(black_box(&bd), &kit, 11, |i, j| i < 12 && j < 12));
    });
    group.finish();
}

fn bench_retransmission(c: &mut Criterion) {
    // Fault-free vs one-retransmission runs: the cost of the paper's
    // "all members retransmit" recovery.
    let mut rng = ChaChaRng::seed_from_u64(0x6b63);
    let pkg = Pkg::setup(&mut rng, SecurityProfile::Toy);
    let keys = pkg.extract_group(6);
    let mut group = c.benchmark_group("retransmission");
    group.sample_size(10);
    group.bench_function("clean", |b| {
        b.iter(|| proposed::run(pkg.params(), &keys, 1, RunConfig::default()));
    });
    group.bench_function("one_corrupt_x", |b| {
        b.iter(|| {
            proposed::run(
                pkg.params(),
                &keys,
                1,
                RunConfig {
                    max_attempts: 3,
                    fault: Some(egka_core::Fault::CorruptX {
                        node: 2,
                        on_attempt: 0,
                    }),
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_initial, bench_dynamics, bench_retransmission);
criterion_main!(benches);
