//! Radio hardware/channel profiles.
//!
//! A [`RadioProfile`] bundles everything the virtual medium needs to turn
//! a transmission into physics: the paper's transceiver model (per-bit
//! energy *and* `data_rate_bps`, Table 3), the CPU model that prices
//! compute debits (Table 2), the per-link propagation delay, and a
//! per-delivery loss probability.

use egka_energy::{CpuModel, Transceiver};
use serde::{Deserialize, Serialize};

/// Per-link propagation delay: a fixed base plus seeded uniform jitter in
/// `[0, jitter_ms)`, drawn independently per delivery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelaySpec {
    /// Fixed one-way propagation/processing delay, milliseconds.
    pub base_ms: f64,
    /// Upper bound of the uniform jitter added per delivery, milliseconds.
    pub jitter_ms: f64,
}

impl DelaySpec {
    /// No propagation delay at all (airtime still applies).
    pub fn zero() -> Self {
        DelaySpec {
            base_ms: 0.0,
            jitter_ms: 0.0,
        }
    }
}

/// Everything the virtual radio needs to price and pace one deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RadioProfile {
    /// Transceiver: per-bit tx/rx energy and the channel's data rate.
    pub transceiver: Transceiver,
    /// CPU model pricing compute-op battery debits.
    pub cpu: CpuModel,
    /// Per-link delay distribution.
    pub delay: DelaySpec,
    /// Per-delivery drop probability in `[0, 1)`, drawn from the medium's
    /// seeded stream.
    pub loss: f64,
}

impl RadioProfile {
    /// The paper's low-power tier: 100 kbps sensor radio + 133 MHz
    /// StrongARM, with a couple of milliseconds of link delay.
    pub fn sensor_100kbps() -> Self {
        RadioProfile {
            transceiver: Transceiver::radio_100kbps(),
            cpu: CpuModel::strongarm_133(),
            delay: DelaySpec {
                base_ms: 2.0,
                jitter_ms: 1.0,
            },
            loss: 0.0,
        }
    }

    /// The paper's WLAN tier: Spectrum24 card at 11 Mbps.
    pub fn wlan_spectrum24() -> Self {
        RadioProfile {
            transceiver: Transceiver::wlan_spectrum24(),
            cpu: CpuModel::strongarm_133(),
            delay: DelaySpec {
                base_ms: 0.5,
                jitter_ms: 0.2,
            },
            loss: 0.0,
        }
    }

    /// The equivalence profile: the 100 kbps channel with zero delay, zero
    /// jitter and zero loss. Airtime still serializes the channel, but
    /// arrival *order* matches the instant medium exactly — a run over
    /// this profile must reproduce an instant-medium run bit for bit.
    pub fn ideal() -> Self {
        RadioProfile {
            transceiver: Transceiver::radio_100kbps(),
            cpu: CpuModel::strongarm_133(),
            delay: DelaySpec::zero(),
            loss: 0.0,
        }
    }

    /// Airtime of `bits` on this channel, nanoseconds.
    pub fn airtime_ns(&self, bits: u64) -> u64 {
        (bits as f64 / self.transceiver.data_rate_bps as f64 * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_matches_the_transceiver_model() {
        let p = RadioProfile::sensor_100kbps();
        assert_eq!(p.airtime_ns(3000), 30_000_000, "3000 bits = 30 ms");
        let w = RadioProfile::wlan_spectrum24();
        assert_eq!(w.airtime_ns(11_000), 1_000_000, "11 kbit at 11 Mbps = 1 ms");
    }

    #[test]
    fn ideal_profile_has_no_delay_or_loss() {
        let p = RadioProfile::ideal();
        assert_eq!(p.delay, DelaySpec::zero());
        assert_eq!(p.loss, 0.0);
    }
}
