//! Per-node energy budgets that persist across protocol runs.
//!
//! A protocol execution lives for one rekey step; a sensor node's battery
//! lives for the deployment. The [`BatteryBank`] is the bridge: a shared
//! registry of per-user budgets (microjoules) that every
//! [`crate::RadioMedium`] debits as its nodes transmit, receive and
//! compute. When a cell's budget is exhausted the node is **dead** — the
//! medium powers it off mid-protocol and the bank remembers, so the next
//! step's medium never hears from it again.
//!
//! Cells are keyed by the raw 32-bit user identity (`UserId.0` upstream);
//! this crate sits below `egka-core` and cannot name the typed id.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One node's budget snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatteryStatus {
    /// Raw 32-bit user identity.
    pub user: u32,
    /// Installed capacity in microjoules (`f64::INFINITY` = mains power).
    pub capacity_uj: f64,
    /// Total energy debited so far, microjoules.
    pub spent_uj: f64,
    /// True once `spent_uj >= capacity_uj`: the node is powered off.
    pub dead: bool,
}

impl BatteryStatus {
    /// Remaining charge, microjoules (never negative).
    pub fn remaining_uj(&self) -> f64 {
        (self.capacity_uj - self.spent_uj).max(0.0)
    }
}

#[derive(Clone, Debug)]
struct Cell {
    capacity_uj: f64,
    spent_uj: f64,
}

#[derive(Debug, Default)]
struct BankState {
    cells: BTreeMap<u32, Cell>,
    default_capacity_uj: f64,
}

/// Shared per-user energy budgets. Cloning is cheap (`Arc`); all clones
/// observe the same cells, so a service hands one bank to every epoch's
/// protocol executions and the drain accumulates.
#[derive(Clone, Debug)]
pub struct BatteryBank {
    inner: Arc<Mutex<BankState>>,
}

impl Default for BatteryBank {
    fn default() -> Self {
        Self::infinite()
    }
}

impl BatteryBank {
    /// A bank whose users get `default_capacity_uj` microjoules when first
    /// seen. Individual users can be re-celled with
    /// [`BatteryBank::set_capacity`].
    pub fn new(default_capacity_uj: f64) -> Self {
        BatteryBank {
            inner: Arc::new(Mutex::new(BankState {
                cells: BTreeMap::new(),
                default_capacity_uj,
            })),
        }
    }

    /// A bank of mains-powered nodes: debits accumulate (for reporting)
    /// but nobody ever dies.
    pub fn infinite() -> Self {
        Self::new(f64::INFINITY)
    }

    /// Installs (or replaces) `user`'s cell with `capacity_uj`. Spent
    /// energy is preserved, so shrinking a budget below what is already
    /// spent kills the node at its next debit check.
    pub fn set_capacity(&self, user: u32, capacity_uj: f64) {
        let mut bank = self.inner.lock();
        let default = bank.default_capacity_uj;
        bank.cells
            .entry(user)
            .or_insert(Cell {
                capacity_uj: default,
                spent_uj: 0.0,
            })
            .capacity_uj = capacity_uj;
    }

    /// Debits `uj` from `user`'s cell and reports whether the node is
    /// still alive afterwards. Dead nodes keep accepting debits (their
    /// radio may be mid-packet when the battery browns out) but stay dead.
    pub fn debit(&self, user: u32, uj: f64) -> bool {
        let mut bank = self.inner.lock();
        let default = bank.default_capacity_uj;
        let cell = bank.cells.entry(user).or_insert(Cell {
            capacity_uj: default,
            spent_uj: 0.0,
        });
        cell.spent_uj += uj;
        cell.spent_uj < cell.capacity_uj
    }

    /// Whether `user` has exhausted its budget.
    pub fn is_dead(&self, user: u32) -> bool {
        let bank = self.inner.lock();
        match bank.cells.get(&user) {
            Some(c) => c.spent_uj >= c.capacity_uj,
            None => bank.default_capacity_uj <= 0.0,
        }
    }

    /// Energy `user` has spent so far, microjoules (0 if never seen).
    pub fn spent_uj(&self, user: u32) -> f64 {
        self.inner
            .lock()
            .cells
            .get(&user)
            .map_or(0.0, |c| c.spent_uj)
    }

    /// All users whose budget is exhausted, ascending by id.
    pub fn dead(&self) -> Vec<u32> {
        self.inner
            .lock()
            .cells
            .iter()
            .filter(|(_, c)| c.spent_uj >= c.capacity_uj)
            .map(|(&u, _)| u)
            .collect()
    }

    /// Snapshot of every cell the bank has seen, ascending by id.
    pub fn snapshot(&self) -> Vec<BatteryStatus> {
        self.inner
            .lock()
            .cells
            .iter()
            .map(|(&user, c)| BatteryStatus {
                user,
                capacity_uj: c.capacity_uj,
                spent_uj: c.spent_uj,
                dead: c.spent_uj >= c.capacity_uj,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debit_drains_and_kills() {
        let bank = BatteryBank::new(100.0);
        assert!(bank.debit(7, 40.0));
        assert!(bank.debit(7, 40.0));
        assert!(!bank.is_dead(7));
        assert!(!bank.debit(7, 40.0), "120 µJ spent of 100 µJ: dead");
        assert!(bank.is_dead(7));
        assert_eq!(bank.dead(), vec![7]);
        let snap = bank.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].dead);
        assert_eq!(snap[0].remaining_uj(), 0.0);
        assert!((bank.spent_uj(7) - 120.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_bank_accounts_but_never_kills() {
        let bank = BatteryBank::infinite();
        assert!(bank.debit(1, 1e18));
        assert!(!bank.is_dead(1));
        assert!(bank.dead().is_empty());
        assert!((bank.spent_uj(1) - 1e18).abs() < 1e6);
    }

    #[test]
    fn clones_share_cells() {
        let bank = BatteryBank::new(10.0);
        let other = bank.clone();
        other.debit(3, 15.0);
        assert!(bank.is_dead(3));
    }

    #[test]
    fn per_user_capacity_overrides_default() {
        let bank = BatteryBank::new(1000.0);
        bank.set_capacity(5, 1.0);
        assert!(!bank.debit(5, 2.0));
        assert!(bank.debit(6, 2.0), "other users keep the default");
    }
}
