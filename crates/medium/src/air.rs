//! The discrete-event radio: a virtual clock, a serialized channel, and a
//! delivery queue.
//!
//! A [`RadioMedium`] wraps a *deferred* [`egka_net::Medium`]: protocol
//! code sends through ordinary [`Endpoint`]s, but instead of instant
//! fan-out each transmission parks in the outbox until [`RadioMedium::
//! pump_air`] schedules it — serializing airtime on the shared channel,
//! drawing per-link jitter, applying seeded loss, and debiting the
//! transmitter's battery. [`RadioMedium::advance`] then moves the virtual
//! clock to the next scheduled delivery and hands the packet to its
//! receiver (debiting *its* battery), so a driver alternates "pump the
//! machines" / "advance the air" and reads the rekey's latency straight
//! off [`RadioMedium::now_ms`].
//!
//! Everything is deterministic per seed: the jitter and loss draws come
//! from one xorshift64* stream advanced in transmission order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use egka_net::{Endpoint, Medium, NodeId, Packet};
use parking_lot::Mutex;

use crate::battery::BatteryBank;
use crate::profile::RadioProfile;

/// One scheduled hand-off to a receiver. Ordered by `(at_ns, seq)` so a
/// min-heap pops deliveries in virtual-time order with FIFO tie-breaking —
/// zero-delay configurations reproduce the instant medium's arrival order
/// exactly.
#[derive(Clone, Debug)]
struct Delivery {
    at_ns: u64,
    seq: u64,
    to: NodeId,
    packet: Packet,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

struct AirState {
    /// Node index → raw user id (battery cell key).
    users: Vec<u32>,
    now_ns: u64,
    /// The shared channel is busy until this instant; the next
    /// transmission starts no earlier.
    channel_free_ns: u64,
    /// xorshift64* stream for jitter and loss draws.
    rng: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Delivery>>,
    /// Users whose battery died on this medium, in death order.
    newly_dead: Vec<u32>,
    /// Observational trace hook: airtime spans, loss drops and battery
    /// debits are reported here when attached. Never read back, so it
    /// cannot perturb the schedule or the RNG stream.
    trace: Option<egka_trace::StepTrace>,
}

impl AirState {
    /// Uniform draw in `[0, 1)` (xorshift64*, same generator as the
    /// instant medium's loss state).
    fn unit(&mut self) -> f64 {
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        let x = self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A virtual-time wireless medium: per-link delay, airtime contention on
/// one shared channel, seeded loss, and battery-driven node death.
pub struct RadioMedium {
    net: Medium,
    profile: RadioProfile,
    bank: BatteryBank,
    state: Mutex<AirState>,
}

impl RadioMedium {
    /// A radio with mains-powered nodes (energy is accounted but nobody
    /// dies).
    pub fn new(profile: RadioProfile, seed: u64) -> Self {
        Self::with_bank(profile, seed, BatteryBank::infinite())
    }

    /// A radio whose nodes draw from `bank` — the bank outlives the
    /// medium, so drain accumulates across protocol runs.
    pub fn with_bank(profile: RadioProfile, seed: u64, bank: BatteryBank) -> Self {
        RadioMedium {
            net: Medium::deferred(),
            profile,
            bank,
            state: Mutex::new(AirState {
                users: Vec::new(),
                now_ns: 0,
                channel_free_ns: 0,
                // xorshift64* needs a non-zero state.
                rng: seed | 1,
                seq: 0,
                queue: BinaryHeap::new(),
                newly_dead: Vec::new(),
                trace: None,
            }),
        }
    }

    /// Attaches an observational trace: subsequent transmissions report
    /// airtime spans, drops, and battery debits into it.
    pub fn set_trace(&self, trace: egka_trace::StepTrace) {
        self.state.lock().trace = Some(trace);
    }

    /// The wrapped (deferred) packet medium — endpoints, partitions and
    /// traffic counters live there.
    pub fn net(&self) -> &Medium {
        &self.net
    }

    /// The radio's hardware/channel profile.
    pub fn profile(&self) -> &RadioProfile {
        &self.profile
    }

    /// The battery bank nodes draw from.
    pub fn bank(&self) -> &BatteryBank {
        &self.bank
    }

    /// Registers a node for `user`. A user whose battery is already dead
    /// joins powered off (its endpoint is detached immediately).
    pub fn join(&self, user: u32) -> Endpoint {
        let ep = self.net.join();
        self.state.lock().users.push(user);
        if self.bank.is_dead(user) {
            self.net.detach(ep.id());
        }
        ep
    }

    /// Drains the net outbox and puts every parked transmission on the
    /// air: debits the transmitter's battery, serializes the shared
    /// channel, draws loss and per-link jitter, and schedules each
    /// surviving copy's delivery. Returns how many transmissions were
    /// scheduled.
    pub fn pump_air(&self) -> usize {
        let txs = self.net.take_outbox();
        if txs.is_empty() {
            return 0;
        }
        let mut st = self.state.lock();
        let trace = st.trace.clone();
        let scheduled = txs.len();
        for tx in txs {
            let bits = tx.packet.nominal_bits;
            let user = st.users[tx.from as usize];
            let tx_uj = bits as f64 * self.profile.transceiver.tx_uj_per_bit;
            if !self.bank.debit(user, tx_uj) && !self.net.is_detached(tx.from) {
                // The battery browned out radiating this packet: it still
                // leaves the antenna, but the node is off from here on.
                self.net.detach(tx.from);
                st.newly_dead.push(user);
                if let Some(t) = &trace {
                    t.air_death(user, st.now_ns);
                }
            }
            let start = st.now_ns.max(st.channel_free_ns);
            let end = start + self.profile.airtime_ns(bits);
            st.channel_free_ns = end;
            if let Some(t) = &trace {
                t.air_tx(bits, tx_uj, start, end);
            }
            for &to in &tx.targets {
                if self.profile.loss > 0.0 && st.unit() < self.profile.loss {
                    if let Some(t) = &trace {
                        t.air_drop(st.users[to as usize], end);
                    }
                    continue;
                }
                let jitter_ns = if self.profile.delay.jitter_ms > 0.0 {
                    (st.unit() * self.profile.delay.jitter_ms * 1e6) as u64
                } else {
                    0
                };
                let at_ns = end + (self.profile.delay.base_ms * 1e6) as u64 + jitter_ns;
                let seq = st.seq;
                st.seq += 1;
                st.queue.push(Reverse(Delivery {
                    at_ns,
                    seq,
                    to,
                    packet: tx.packet.clone(),
                }));
            }
        }
        scheduled
    }

    /// Advances the virtual clock to the next scheduled delivery and hands
    /// over every packet due at that instant, debiting each receiver's
    /// battery (a receiver that dies mid-reception hears nothing). Returns
    /// the new virtual now in nanoseconds, or `None` if nothing is in
    /// flight.
    pub fn advance(&self) -> Option<u64> {
        let mut st = self.state.lock();
        let Reverse(first) = st.queue.pop()?;
        st.now_ns = st.now_ns.max(first.at_ns);
        let due_at = first.at_ns;
        let mut due = vec![first];
        while let Some(Reverse(d)) = st.queue.peek() {
            if d.at_ns != due_at {
                break;
            }
            let Reverse(d) = st.queue.pop().expect("peeked");
            due.push(d);
        }
        let trace = st.trace.clone();
        for d in due {
            if self.net.is_detached(d.to) {
                continue; // powered off since the packet went on the air
            }
            let user = st.users[d.to as usize];
            let rx_uj = d.packet.nominal_bits as f64 * self.profile.transceiver.rx_uj_per_bit;
            if !self.bank.debit(user, rx_uj) {
                self.net.detach(d.to);
                st.newly_dead.push(user);
                if let Some(t) = &trace {
                    t.air_death(user, st.now_ns);
                }
                continue;
            }
            if let Some(t) = &trace {
                t.air_rx(user, rx_uj, st.now_ns);
            }
            self.net.deliver_to(d.to, &d.packet);
        }
        Some(st.now_ns)
    }

    /// Debits compute energy (millijoules, the unit the CPU model prices
    /// in) from `user`'s battery; a drained battery powers the node off.
    /// Returns whether the node is still alive.
    pub fn debit_compute_mj(&self, user: u32, mj: f64) -> bool {
        if mj <= 0.0 {
            return !self.bank.is_dead(user);
        }
        if self.bank.debit(user, mj * 1000.0) {
            return true;
        }
        let mut st = self.state.lock();
        if let Some(idx) = st.users.iter().position(|&u| u == user) {
            let node = idx as NodeId;
            if !self.net.is_detached(node) {
                self.net.detach(node);
                st.newly_dead.push(user);
                if let Some(t) = &st.trace {
                    t.air_death(user, st.now_ns);
                }
            }
        }
        false
    }

    /// Jumps the clock forward to `at_ns` (never backward) — how a driver
    /// realizes a *timer* event (e.g. a silence deadline) when nothing is
    /// on the air. With deliveries pending, use [`RadioMedium::advance`]
    /// instead so the timer cannot leapfrog traffic.
    pub fn advance_to(&self, at_ns: u64) {
        let mut st = self.state.lock();
        st.now_ns = st.now_ns.max(at_ns);
    }

    /// Virtual now, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.state.lock().now_ns
    }

    /// Virtual now, milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ns() as f64 / 1e6
    }

    /// True iff deliveries are scheduled (callers should [`RadioMedium::
    /// pump_air`] first so parked sends are counted).
    pub fn has_pending(&self) -> bool {
        !self.state.lock().queue.is_empty()
    }

    /// Users whose battery died on this medium so far, in death order.
    pub fn newly_dead(&self) -> Vec<u32> {
        self.state.lock().newly_dead.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DelaySpec;
    use bytes::Bytes;
    use egka_energy::Transceiver;

    fn quiet() -> RadioProfile {
        RadioProfile {
            transceiver: Transceiver::radio_100kbps(),
            cpu: egka_energy::CpuModel::strongarm_133(),
            delay: DelaySpec {
                base_ms: 0.0,
                jitter_ms: 0.0,
            },
            loss: 0.0,
        }
    }

    #[test]
    fn airtime_serializes_the_shared_channel() {
        // The ISSUE's example: a 3000-bit broadcast at 100 kbps occupies
        // the channel for 30 virtual ms; two back-to-back broadcasts end
        // at 30 and 60 ms.
        let radio = RadioMedium::new(quiet(), 1);
        let a = radio.join(10);
        let b = radio.join(11);
        a.broadcast(1, Bytes::new(), 3000);
        a.broadcast(2, Bytes::new(), 3000);
        assert_eq!(radio.pump_air(), 2);
        radio.advance().unwrap();
        assert!((radio.now_ms() - 30.0).abs() < 1e-9, "{}", radio.now_ms());
        assert_eq!(b.try_recv().unwrap().kind, 1);
        assert!(b.try_recv().is_none(), "second packet still on the air");
        radio.advance().unwrap();
        assert!((radio.now_ms() - 60.0).abs() < 1e-9);
        assert_eq!(b.try_recv().unwrap().kind, 2);
        assert!(radio.advance().is_none(), "air is quiet again");
    }

    #[test]
    fn per_link_delay_adds_base_and_seeded_jitter() {
        let mut profile = quiet();
        profile.delay = DelaySpec {
            base_ms: 5.0,
            jitter_ms: 2.0,
        };
        let arrival = |seed: u64| {
            let radio = RadioMedium::new(profile.clone(), seed);
            let a = radio.join(0);
            let _b = radio.join(1);
            a.broadcast(1, Bytes::new(), 1000); // 10 ms airtime
            radio.pump_air();
            radio.advance().unwrap()
        };
        let t = arrival(7);
        // 10 ms airtime + 5 ms base + jitter ∈ [0, 2) ms.
        assert!((15_000_000..17_000_000).contains(&t), "{t}");
        assert_eq!(arrival(7), t, "same seed, same jitter");
        assert_ne!(arrival(8), t, "different seed, different jitter");
    }

    #[test]
    fn seeded_loss_drops_deterministically() {
        let mut profile = quiet();
        profile.loss = 0.5;
        let delivered = |seed: u64| {
            let radio = RadioMedium::new(profile.clone(), seed);
            let a = radio.join(0);
            let b = radio.join(1);
            for _ in 0..200 {
                a.broadcast(1, Bytes::new(), 8);
            }
            radio.pump_air();
            while radio.advance().is_some() {}
            let mut n = 0;
            while b.try_recv().is_some() {
                n += 1;
            }
            n
        };
        let n = delivered(3);
        assert!((60..140).contains(&n), "50% loss delivered {n}/200");
        assert_eq!(delivered(3), n);
    }

    #[test]
    fn battery_death_powers_a_node_off_mid_air() {
        let bank = BatteryBank::new(40_000.0); // 40 mJ
        bank.set_capacity(0, f64::INFINITY); // the transmitter is mains-powered
        let radio = RadioMedium::with_bank(quiet(), 1, bank.clone());
        let a = radio.join(0);
        let b = radio.join(1);
        // Receiving 1000 bits costs 7510 µJ on the sensor radio; node 1
        // can afford five receptions, then dies mid-reception of the sixth.
        for _ in 0..8 {
            a.broadcast(1, Bytes::new(), 1000);
        }
        radio.pump_air();
        while radio.advance().is_some() {}
        let mut heard = 0;
        while b.try_recv().is_some() {
            heard += 1;
        }
        assert_eq!(heard, 5, "the sixth reception browned out the battery");
        assert!(bank.is_dead(1));
        assert_eq!(radio.newly_dead(), vec![1]);
        assert!(radio.net().is_detached(b.id()));
        // Node 0 paid 8 × 1000 × 10.8 µJ of transmit energy.
        assert!((bank.spent_uj(0) - 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn dead_user_joins_powered_off() {
        let bank = BatteryBank::new(1.0);
        bank.debit(9, 2.0);
        let radio = RadioMedium::with_bank(quiet(), 1, bank);
        let ep = radio.join(9);
        assert!(radio.net().is_detached(ep.id()));
    }

    #[test]
    fn compute_debit_can_kill_too() {
        let bank = BatteryBank::new(10_000.0); // 10 mJ
        let radio = RadioMedium::with_bank(quiet(), 1, bank);
        let ep = radio.join(4);
        assert!(radio.debit_compute_mj(4, 9.0));
        assert!(!radio.debit_compute_mj(4, 2.0), "11 mJ of compute: dead");
        assert!(radio.net().is_detached(ep.id()));
        assert_eq!(radio.newly_dead(), vec![4]);
    }
}
