//! # egka-medium
//!
//! A discrete-event, **virtual-clock** wireless medium for the `egka`
//! reproduction — the layer that turns the paper's Table 2/3 hardware
//! models into *simulated radio time* and *battery drain* instead of
//! leaving them as after-the-fact pricing.
//!
//! The instant [`egka_net::Medium`] delivers every packet in zero time on
//! the host clock; good enough for counting bits, useless for answering
//! "how long does a rekey take on a 100 kbps sensor radio, and which mote
//! dies first?". This crate answers both:
//!
//! * [`RadioMedium`] wraps a *deferred* net medium: sends park in an
//!   outbox, [`RadioMedium::pump_air`] puts them on the air and
//!   [`RadioMedium::advance`] moves a virtual clock from delivery to
//!   delivery;
//! * **airtime contention** — one shared channel, serialized at the
//!   transceiver's `data_rate_bps` (a 3000-bit broadcast on the 100 kbps
//!   radio occupies the channel for 30 virtual ms);
//! * **per-link delay** — fixed base + seeded uniform jitter per delivery
//!   ([`DelaySpec`]);
//! * **seeded loss** — the same xorshift64* family as the instant medium,
//!   applied per delivery at schedule time;
//! * **battery-driven death** — every tx/rx bit and compute millijoule is
//!   debited from a shared [`BatteryBank`]; a drained node is powered off
//!   *mid-protocol* (detached on the net medium), which is exactly the
//!   fault the scheduler layers above already know how to survive.
//!
//! Everything is deterministic per seed, and the
//! [`RadioProfile::ideal()`] configuration (zero delay, zero jitter, zero
//! loss) preserves the instant medium's arrival order exactly — upstream
//! goldens pin that equivalence bit for bit.
//!
//! ```
//! use egka_medium::BatteryBank;
//!
//! // Finite per-mote batteries: debits succeed until the capacity is
//! // spent, then the mote is dead and stays dead.
//! let bank = BatteryBank::new(1_000.0); // default capacity, µJ
//! bank.set_capacity(7, 5.0);
//! assert!(bank.debit(7, 4.0));
//! assert!(!bank.debit(7, 4.0)); // overdraw: mote 7 dies here
//! assert!(bank.is_dead(7));
//! assert_eq!(bank.dead(), vec![7]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod air;
mod battery;
mod profile;

pub use air::RadioMedium;
pub use battery::{BatteryBank, BatteryStatus};
pub use profile::{DelaySpec, RadioProfile};
