//! # egka-robust
//!
//! The identifiable-abort eviction engine: the acting half of the
//! robustness plane whose detecting half is `egka-service`'s
//! [`StallLedger`](../egka_service/health/struct.StallLedger.html).
//!
//! The paper's §7 dynamics assume every member answers; a single silent
//! or battery-dead mote stalls its group forever. This crate decides
//! *who to evict* once a group's stall streak crosses the policy
//! threshold ([`EvictionPolicy::plan`]), records *why* in a signed,
//! WAL-persisted [`BlameCert`] so crash recovery replays the eviction
//! bit for bit, and keeps evicted members in a [`Quarantine`] penalty
//! box with escalating backoff so flapping links cannot churn a group's
//! membership every epoch.
//!
//! The crate is deliberately policy-only: it speaks raw `u64` group ids
//! and `u32` member ids and never touches sessions, shards, or the WAL
//! itself — `egka-service` owns the wiring.
//!
//! ```
//! use egka_robust::{EvictionPolicy, MemberEvidence};
//! use egka_trace::StallCause;
//!
//! // Group 7 has stalled for 3 consecutive epochs, all blamed on member
//! // 9 — that reaches the default streak threshold, so the plan evicts.
//! let policy = EvictionPolicy::default();
//! let evidence = MemberEvidence {
//!     member: 9,
//!     streak: 3,
//!     cumulative: 3,
//!     cause: StallCause::Loss,
//! };
//! let plan = policy.plan(&[(7, 3)], &[(7, evidence.clone())]);
//! assert_eq!(plan.len(), 1);
//! assert_eq!(plan[0].group, 7);
//! assert_eq!(plan[0].evicted, vec![evidence]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use egka_bigint::Ubig;
use egka_sig::blame::{BlamePublic, CoordinatorKey};
use egka_sig::EcdsaSignature;
use egka_trace::StallCause;

/// Domain-separation tag for the blame-certificate to-be-signed bytes.
const BLAME_DOMAIN: &[u8] = b"egka.blame.v1";

/// When and how hard the eviction engine acts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionPolicy {
    /// Consecutive stalled epochs before a group's culprits are evicted.
    pub streak_threshold: u64,
    /// Baseline quarantine span, in epochs, for a first eviction.
    pub base_quarantine_epochs: u64,
    /// Cap on the backoff doubling exponent for repeat offenders.
    pub backoff_cap: u32,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        EvictionPolicy {
            streak_threshold: 3,
            base_quarantine_epochs: 2,
            backoff_cap: 4,
        }
    }
}

/// The typed evidence held against one evicted member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemberEvidence {
    /// The member being blamed.
    pub member: u32,
    /// Consecutive stalled epochs attributed to the member.
    pub streak: u64,
    /// Lifetime stalled epochs attributed to the member.
    pub cumulative: u64,
    /// The most recent stall classification.
    pub cause: StallCause,
}

/// One group's eviction verdict for the epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictionDecision {
    /// The stalled group.
    pub group: u64,
    /// The members to evict, ascending by member id.
    pub evicted: Vec<MemberEvidence>,
}

impl EvictionPolicy {
    /// Plans this epoch's evictions.
    ///
    /// `group_streaks` carries each group's consecutive stalled-epoch
    /// count; `members` maps groups to per-member evidence. A group is
    /// ripe once its streak reaches [`streak_threshold`]; within a ripe
    /// group, every member whose own streak reaches the threshold is
    /// evicted. Output is deterministic: decisions ascend by group id
    /// and evidence ascends by member id.
    ///
    /// [`streak_threshold`]: EvictionPolicy::streak_threshold
    pub fn plan(
        &self,
        group_streaks: &[(u64, u64)],
        members: &[(u64, MemberEvidence)],
    ) -> Vec<EvictionDecision> {
        let ripe: BTreeMap<u64, u64> = group_streaks
            .iter()
            .filter(|(_, streak)| *streak >= self.streak_threshold)
            .copied()
            .collect();
        let mut by_group: BTreeMap<u64, Vec<MemberEvidence>> = BTreeMap::new();
        for (group, ev) in members {
            if ripe.contains_key(group) && ev.streak >= self.streak_threshold {
                by_group.entry(*group).or_default().push(ev.clone());
            }
        }
        by_group
            .into_iter()
            .map(|(group, mut evicted)| {
                evicted.sort_by_key(|e| e.member);
                evicted.dedup_by_key(|e| e.member);
                EvictionDecision { group, evicted }
            })
            .filter(|d| !d.evicted.is_empty())
            .collect()
    }
}

/// One member's penalty-box entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct QuarantineCell {
    /// First epoch at which a Join readmits the member.
    until_epoch: u64,
    /// Lifetime eviction count — drives the backoff exponent.
    evictions: u32,
}

/// The penalty box: evicted members serve an accrual-keyed span before a
/// Join may readmit them, and repeat offenders serve exponentially
/// longer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    cells: BTreeMap<u32, QuarantineCell>,
}

impl Quarantine {
    /// Books `member` into the penalty box at `epoch` with the given
    /// lifetime stall accrual, returning the epoch at which readmission
    /// unlocks. The span grows with cumulative accrual and doubles per
    /// prior eviction up to [`EvictionPolicy::backoff_cap`].
    pub fn quarantine(
        &mut self,
        policy: &EvictionPolicy,
        member: u32,
        epoch: u64,
        cumulative: u64,
    ) -> u64 {
        let cell = self.cells.entry(member).or_insert(QuarantineCell {
            until_epoch: 0,
            evictions: 0,
        });
        let span = (policy.base_quarantine_epochs + cumulative / 2)
            << cell.evictions.min(policy.backoff_cap);
        cell.until_epoch = epoch + span;
        cell.evictions += 1;
        cell.until_epoch
    }

    /// Whether `member` is still serving a penalty at `epoch`.
    pub fn is_quarantined(&self, member: u32, epoch: u64) -> bool {
        self.cells
            .get(&member)
            .is_some_and(|cell| epoch < cell.until_epoch)
    }

    /// The epoch `member`'s pending penalty elapses at, if one is still
    /// booked (readmission clears it).
    pub fn pending_until(&self, member: u32) -> Option<u64> {
        self.cells
            .get(&member)
            .map(|cell| cell.until_epoch)
            .filter(|&e| e != 0)
    }

    /// Readmits `member`: clears any pending penalty but keeps the
    /// eviction count so a re-eviction backs off harder. Returns `true`
    /// if the member had a quarantine record to clear.
    pub fn readmit(&mut self, member: u32) -> bool {
        match self.cells.get_mut(&member) {
            Some(cell) => {
                let had_penalty = cell.until_epoch != 0;
                cell.until_epoch = 0;
                had_penalty
            }
            None => false,
        }
    }

    /// How many times `member` has been evicted so far.
    pub fn evictions(&self, member: u32) -> u32 {
        self.cells.get(&member).map_or(0, |cell| cell.evictions)
    }

    /// Flattens the penalty box to `(member, until_epoch, evictions)`
    /// rows, ascending by member — the snapshot codec's wire form.
    pub fn rows(&self) -> Vec<(u32, u64, u32)> {
        self.cells
            .iter()
            .map(|(m, c)| (*m, c.until_epoch, c.evictions))
            .collect()
    }

    /// Rebuilds the penalty box from [`rows`](Quarantine::rows) output.
    pub fn from_rows(rows: &[(u32, u64, u32)]) -> Self {
        Quarantine {
            cells: rows
                .iter()
                .map(|&(m, until_epoch, evictions)| {
                    (
                        m,
                        QuarantineCell {
                            until_epoch,
                            evictions,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A signed record of one group's eviction: who was removed, at which
/// epoch, and the typed stall evidence justifying it. Appended to the
/// WAL so recovery replays the eviction bit for bit, and verifiable by
/// any holder of the coordinator's [`BlamePublic`] key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameCert {
    /// The group the members were evicted from.
    pub group: u64,
    /// The epoch whose synthesis produced the eviction.
    pub epoch: u64,
    /// The evicted members with their evidence, ascending by member id.
    pub evicted: Vec<MemberEvidence>,
    /// The coordinator's ECDSA signature over [`tbs_bytes`](BlameCert::tbs_bytes).
    pub signature: EcdsaSignature,
}

/// Appends a big-endian `u16` length prefix followed by `bytes`.
fn put(out: &mut Vec<u8>, bytes: &[u8]) {
    let len = u16::try_from(bytes.len()).expect("blame field fits in u16");
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Bounds-checked cursor over a decode buffer.
struct Cur<'a>(&'a [u8], usize);

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.1.checked_add(n)?;
        let slice = self.0.get(self.1..end)?;
        self.1 = end;
        Some(slice)
    }

    fn get(&mut self) -> Option<&'a [u8]> {
        let len = u16::from_be_bytes(self.take(2)?.try_into().ok()?);
        self.take(usize::from(len))
    }

    fn byte(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
}

impl BlameCert {
    /// The to-be-signed byte string: domain tag, then every field in
    /// big-endian wire order.
    pub fn tbs_bytes(group: u64, epoch: u64, evicted: &[MemberEvidence]) -> Vec<u8> {
        let mut out = Vec::new();
        put(&mut out, BLAME_DOMAIN);
        out.extend_from_slice(&group.to_be_bytes());
        out.extend_from_slice(&epoch.to_be_bytes());
        let count = u16::try_from(evicted.len()).expect("eviction count fits in u16");
        out.extend_from_slice(&count.to_be_bytes());
        for ev in evicted {
            out.extend_from_slice(&ev.member.to_be_bytes());
            out.extend_from_slice(&ev.streak.to_be_bytes());
            out.extend_from_slice(&ev.cumulative.to_be_bytes());
            out.push(ev.cause.code());
        }
        out
    }

    /// Builds and signs a certificate with the coordinator's
    /// deterministic key: equal inputs always produce bit-identical
    /// certificates.
    pub fn sign(
        key: &CoordinatorKey,
        group: u64,
        epoch: u64,
        evicted: Vec<MemberEvidence>,
    ) -> Self {
        let signature = key.sign(&Self::tbs_bytes(group, epoch, &evicted));
        BlameCert {
            group,
            epoch,
            evicted,
            signature,
        }
    }

    /// Verifies the coordinator signature against the certificate body.
    pub fn verify(&self, public: &BlamePublic) -> bool {
        let tbs = Self::tbs_bytes(self.group, self.epoch, &self.evicted);
        public.verify(&tbs, &self.signature)
    }

    /// Serializes the certificate (body + signature) for the WAL.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Self::tbs_bytes(self.group, self.epoch, &self.evicted);
        put(&mut out, &self.signature.r.to_bytes_be());
        put(&mut out, &self.signature.s.to_bytes_be());
        out
    }

    /// Inverse of [`encode`](BlameCert::encode). Rejects truncation,
    /// trailing bytes, a wrong domain tag, and unknown cause codes.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut c = Cur(buf, 0);
        if c.get()? != BLAME_DOMAIN {
            return None;
        }
        let group = c.u64()?;
        let epoch = c.u64()?;
        let count = u16::from_be_bytes(c.take(2)?.try_into().ok()?);
        let mut evicted = Vec::with_capacity(usize::from(count));
        for _ in 0..count {
            let member = c.u32()?;
            let streak = c.u64()?;
            let cumulative = c.u64()?;
            let cause = StallCause::from_code(c.byte()?)?;
            evicted.push(MemberEvidence {
                member,
                streak,
                cumulative,
                cause,
            });
        }
        let signature = EcdsaSignature {
            r: Ubig::from_bytes_be(c.get()?),
            s: Ubig::from_bytes_be(c.get()?),
        };
        if c.1 != buf.len() {
            return None;
        }
        Some(BlameCert {
            group,
            epoch,
            evicted,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(member: u32, streak: u64, cumulative: u64) -> MemberEvidence {
        MemberEvidence {
            member,
            streak,
            cumulative,
            cause: StallCause::Detached,
        }
    }

    #[test]
    fn plan_evicts_only_ripe_groups_and_ripe_members() {
        let policy = EvictionPolicy::default();
        let streaks = [(7u64, 3u64), (9, 2)];
        let members = [
            (7u64, evidence(3, 3, 3)),
            (7, evidence(1, 1, 1)), // below threshold: spared
            (9, evidence(5, 3, 3)), // group not ripe: spared
            (7, evidence(2, 4, 6)),
        ];
        let decisions = policy.plan(&streaks, &members);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].group, 7);
        let ids: Vec<u32> = decisions[0].evicted.iter().map(|e| e.member).collect();
        assert_eq!(ids, vec![2, 3], "evidence must ascend by member id");
    }

    #[test]
    fn plan_is_order_independent() {
        let policy = EvictionPolicy::default();
        let streaks = [(1u64, 4u64), (2, 5)];
        let fwd = [
            (2u64, evidence(9, 4, 4)),
            (1, evidence(4, 3, 3)),
            (1, evidence(8, 5, 9)),
        ];
        let mut rev = fwd.clone();
        rev.reverse();
        assert_eq!(policy.plan(&streaks, &fwd), policy.plan(&streaks, &rev));
    }

    #[test]
    fn quarantine_backoff_escalates_and_caps() {
        let policy = EvictionPolicy {
            streak_threshold: 3,
            base_quarantine_epochs: 2,
            backoff_cap: 2,
        };
        let mut q = Quarantine::default();
        // First eviction at epoch 10 with cumulative 4: span 2 + 4/2 = 4.
        assert_eq!(q.quarantine(&policy, 5, 10, 4), 14);
        assert!(q.is_quarantined(5, 13));
        assert!(!q.is_quarantined(5, 14));
        assert!(q.readmit(5), "a pending penalty is cleared on readmit");
        assert!(!q.is_quarantined(5, 10));
        // Second eviction doubles the span; third doubles again; the
        // fourth is capped at the same exponent as the third.
        assert_eq!(q.quarantine(&policy, 5, 20, 4), 20 + 8);
        q.readmit(5);
        assert_eq!(q.quarantine(&policy, 5, 30, 4), 30 + 16);
        q.readmit(5);
        assert_eq!(q.quarantine(&policy, 5, 40, 4), 40 + 16);
        assert_eq!(q.evictions(5), 4);
        // Unknown members are never quarantined and readmit is a no-op.
        assert!(!q.is_quarantined(77, 0));
        assert!(!q.readmit(77));
    }

    #[test]
    fn quarantine_rows_roundtrip() {
        let policy = EvictionPolicy::default();
        let mut q = Quarantine::default();
        q.quarantine(&policy, 3, 5, 2);
        q.quarantine(&policy, 9, 6, 0);
        q.readmit(9);
        let rows = q.rows();
        assert_eq!(Quarantine::from_rows(&rows), q);
        assert_eq!(Quarantine::from_rows(&rows).rows(), rows);
    }

    #[test]
    fn blame_cert_signs_verifies_and_roundtrips() {
        let key = CoordinatorKey::from_seed(0x5eed);
        let evicted = vec![evidence(3, 3, 7), evidence(11, 4, 4)];
        let cert = BlameCert::sign(&key, 2, 9, evicted.clone());
        assert!(cert.verify(&key.public()));
        // Deterministic: re-signing the same body yields the same cert.
        assert_eq!(BlameCert::sign(&key, 2, 9, evicted), cert);
        let bytes = cert.encode();
        let back = BlameCert::decode(&bytes).expect("roundtrip decodes");
        assert_eq!(back, cert);
        assert!(back.verify(&key.public()));
    }

    #[test]
    fn blame_cert_decode_rejects_damage() {
        let key = CoordinatorKey::from_seed(1);
        let cert = BlameCert::sign(&key, 1, 2, vec![evidence(4, 3, 3)]);
        let bytes = cert.encode();
        // Truncation at every prefix length.
        for cut in 0..bytes.len() {
            assert!(BlameCert::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(BlameCert::decode(&extended).is_none());
        // A flipped body byte still decodes (the codec is not a MAC) but
        // the signature no longer verifies.
        let mut flipped = bytes.clone();
        flipped[20] ^= 1;
        if let Some(tampered) = BlameCert::decode(&flipped) {
            assert!(!tampered.verify(&key.public()));
        }
    }

    #[test]
    fn blame_cert_rejects_unknown_cause_code() {
        let key = CoordinatorKey::from_seed(1);
        let cert = BlameCert::sign(&key, 1, 2, vec![evidence(4, 3, 3)]);
        let mut bytes = cert.encode();
        // The cause byte sits right after the fixed-width member fields.
        let cause_at = 2 + BLAME_DOMAIN.len() + 8 + 8 + 2 + 4 + 8 + 8;
        assert_eq!(bytes[cause_at], StallCause::Detached.code());
        bytes[cause_at] = 0xff;
        assert!(BlameCert::decode(&bytes).is_none());
    }
}
