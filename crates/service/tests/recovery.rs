//! Crash-recovery properties of the durable service.
//!
//! * **Bit-for-bit reconstruction**: `recover` rebuilds every shard —
//!   sessions, keys, suites, pending queues, power state, batteries — to
//!   exactly the pre-crash state, whether from a pure log replay or from
//!   snapshot + tail, and the recovered service's *future* (subsequent
//!   ticks) is identical too.
//! * **Torture**: truncating the WAL at any byte offset recovers a strict
//!   prefix of the committed epochs, and flipping any byte either still
//!   recovers a valid prefix (a torn tail) or reports a typed
//!   [`StoreError::Corrupt`] — never a panic, never a wrong key.

use std::sync::Arc;

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_medium::RadioProfile;
use egka_service::{
    KeyService, MemStore, MembershipEvent, RadioConfig, ServiceBuilder, Store, StoreConfig,
    StoreError,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Shared toy PKG (parameter generation is too slow to re-run per case).
fn pkg() -> &'static Arc<Pkg> {
    use std::sync::OnceLock;
    static PKG: OnceLock<Arc<Pkg>> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x0e9a_51c3);
        Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy))
    })
}

fn builder(store: StoreConfig) -> ServiceBuilder {
    KeyService::builder().shards(3).seed(0xd1ce).store(store)
}

fn users(range: std::ops::Range<u32>) -> Vec<UserId> {
    range.map(UserId).collect()
}

/// XOR-fold of every live group key, keyed like the churn fingerprint.
fn fingerprint(svc: &KeyService) -> u64 {
    svc.group_ids()
        .iter()
        .map(|&g| {
            svc.group_key(g)
                .expect("live group")
                .to_bytes_be()
                .iter()
                .fold(0u64, |acc, &b| acc.rotate_left(8) ^ u64::from(b))
        })
        .fold(0u64, |acc, h| acc.rotate_left(1) ^ h)
}

/// Deep state comparison: identical groups, sessions, keys, suites.
fn assert_same_state(a: &KeyService, b: &KeyService) {
    assert_eq!(a.epoch(), b.epoch());
    assert_eq!(a.group_ids(), b.group_ids());
    for gid in a.group_ids() {
        assert_eq!(a.suite_of(gid), b.suite_of(gid), "group {gid} suite");
        let (sa, sb) = (a.session(gid).unwrap(), b.session(gid).unwrap());
        assert_eq!(sa.key, sb.key, "group {gid} key");
        assert_eq!(sa.member_ids(), sb.member_ids(), "group {gid} members");
        for (ma, mb) in sa.members.iter().zip(&sb.members) {
            assert_eq!(ma.r, mb.r);
            assert_eq!(ma.z, mb.z);
            assert_eq!(ma.tau, mb.tau);
            assert_eq!(ma.t, mb.t);
            assert_eq!(ma.gq_key, mb.gq_key);
        }
    }
}

/// A deterministic scripted workload: 4 groups, mixed churn, `epochs`
/// ticks; returns the service (with its store attached).
fn scripted(store: StoreConfig, epochs: u64) -> KeyService {
    let mut svc = builder(store).build(Arc::clone(pkg()));
    for g in 0..4u64 {
        let base = g as u32 * 10;
        svc.create_group(g, &users(base..base + 4)).unwrap();
    }
    let mut fresh = 1000u32;
    for e in 0..epochs {
        for g in 0..4u64 {
            if (e + g) % 2 == 0 {
                svc.submit(g, MembershipEvent::Join(UserId(fresh))).unwrap();
                fresh += 1;
            } else {
                let victim = svc.session(g).unwrap().member_ids()[1];
                svc.submit(g, MembershipEvent::Leave(victim)).unwrap();
            }
        }
        svc.tick();
    }
    svc
}

#[test]
fn recover_reconstructs_shards_bit_for_bit() {
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let mut original = scripted(store.clone(), 3);
    // Uncommitted work in flight at the crash: queued events, a detached
    // member, a loss setting — all must survive through the log.
    original
        .submit(1, MembershipEvent::Join(UserId(77)))
        .unwrap();
    original.detach_member(UserId(30));
    original.set_loss(0.05);

    let (mut recovered, report) = builder(store).recover(Arc::clone(pkg())).unwrap();
    assert_eq!(report.snapshot_epoch, None, "snapshots disabled");
    assert_eq!(report.epochs_replayed, 3);
    assert_eq!(report.groups_recovered, 4);
    assert!(report.records_replayed > 7);
    assert_same_state(&original, &recovered);

    // The recovered service's *future* matches too: same queues, same
    // power state, same seeds — the next epoch produces identical keys.
    original.attach_member(UserId(30));
    recovered.attach_member(UserId(30));
    original.set_loss(0.0);
    recovered.set_loss(0.0);
    original.tick();
    recovered.tick();
    assert_same_state(&original, &recovered);
    assert!(original.session(1).unwrap().contains(UserId(77)));
}

#[test]
fn recovery_replays_snapshot_plus_tail() {
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(2);
    let original = scripted(store.clone(), 5);
    assert_eq!(original.metrics().snapshots_written, 2, "epochs 2 and 4");

    // The log was compacted at epoch 4: the tail holds only epoch 5.
    let (recovered, report) = builder(store).recover(Arc::clone(pkg())).unwrap();
    assert_eq!(report.snapshot_epoch, Some(4));
    assert_eq!(report.epochs_replayed, 1);
    assert_eq!(report.groups_recovered, 4);
    assert_same_state(&original, &recovered);
    assert_eq!(fingerprint(&original), fingerprint(&recovered));
}

#[test]
fn crash_between_snapshot_and_truncation_replays_once() {
    // The file backend's crash window: snapshot installed, WAL truncation
    // lost. The LSN watermark must keep the stale tail from replaying on
    // top of the snapshot.
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let mut original = scripted(store.clone(), 2);
    let stale_wal = mem.wal_bytes().unwrap();
    original.snapshot_now();
    // Simulate the torn crash: reinstate the pre-snapshot log bytes.
    mem.set_raw(stale_wal, mem.raw_snapshot());

    let (recovered, report) = builder(store).recover(Arc::clone(pkg())).unwrap();
    assert_eq!(report.snapshot_epoch, Some(2));
    assert_eq!(
        report.records_replayed, 0,
        "every stale record predates the snapshot watermark"
    );
    assert_same_state(&original, &recovered);
}

#[test]
fn wrong_seal_key_is_typed_corruption() {
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone()))
        .snapshot_every(1)
        .seal_key([7u8; 32]);
    scripted(store, 2);
    let wrong = StoreConfig::new(Arc::new(mem))
        .snapshot_every(1)
        .seal_key([8u8; 32]);
    match builder(wrong).recover(Arc::clone(pkg())) {
        Err(StoreError::Corrupt { what, .. }) => {
            assert!(what.contains("seal"), "{what}")
        }
        other => panic!("expected Corrupt, got {:?}", other.map(|_| "a service")),
    }
}

#[test]
fn config_mismatch_is_typed_corruption() {
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(1);
    scripted(store.clone(), 2);
    let result = KeyService::builder()
        .shards(5) // the snapshot was cut under 3 shards
        .seed(0xd1ce)
        .store(store)
        .recover(Arc::clone(pkg()));
    assert!(matches!(result, Err(StoreError::Corrupt { .. })));
}

#[test]
fn log_only_config_mismatch_is_typed_corruption() {
    // No snapshot cut yet: the WAL's leading config-header record must
    // still reject a wrong seed or shard count — a replay under different
    // topology would silently derive different keys.
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    scripted(store.clone(), 1);
    let wrong_seed = KeyService::builder()
        .shards(3)
        .seed(0xd1ce ^ 1)
        .store(store.clone())
        .recover(Arc::clone(pkg()));
    match wrong_seed {
        Err(StoreError::Corrupt { what, .. }) => assert!(what.contains("configuration"), "{what}"),
        other => panic!("expected Corrupt, got {:?}", other.map(|_| "a service")),
    }
    let wrong_shards = KeyService::builder()
        .shards(7)
        .seed(0xd1ce)
        .store(store)
        .recover(Arc::clone(pkg()));
    assert!(matches!(wrong_shards, Err(StoreError::Corrupt { .. })));
}

#[test]
fn log_only_battery_records_without_a_radio_config_are_corrupt() {
    // Crash before the first snapshot: a logged battery install proves the
    // original service ran a radio; a recovering builder that forgot
    // .radio(...) must be rejected on the log path too.
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let mut svc = KeyService::builder()
        .shards(2)
        .seed(0xbeef)
        .radio(RadioConfig {
            profile: RadioProfile::sensor_100kbps(),
            default_battery_uj: 2_000_000.0,
        })
        .store(store.clone())
        .build(Arc::clone(pkg()));
    svc.set_battery(UserId(1), 40_000.0);
    svc.create_group(1, &users(0..4)).unwrap();
    let result = KeyService::builder()
        .shards(2)
        .seed(0xbeef)
        // no .radio(...)
        .store(store)
        .recover(Arc::clone(pkg()));
    match result {
        Err(StoreError::Corrupt { what, .. }) => assert!(what.contains("battery"), "{what}"),
        other => panic!("expected Corrupt, got {:?}", other.map(|_| "a service")),
    }
}

#[test]
fn recovering_a_radio_snapshot_without_a_radio_config_is_corrupt() {
    // Dropping the battery ledger would resurrect dead motes and silently
    // diverge; a builder that forgot .radio(...) must be told, not obeyed.
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(1);
    let mut svc = KeyService::builder()
        .shards(2)
        .seed(0xbeef)
        .radio(RadioConfig {
            profile: RadioProfile::sensor_100kbps(),
            default_battery_uj: 2_000_000.0,
        })
        .store(store.clone())
        .build(Arc::clone(pkg()));
    svc.create_group(1, &users(0..4)).unwrap();
    svc.submit(1, MembershipEvent::Join(UserId(9))).unwrap();
    svc.tick();
    let result = KeyService::builder()
        .shards(2)
        .seed(0xbeef)
        // no .radio(...)
        .store(store)
        .recover(Arc::clone(pkg()));
    match result {
        Err(StoreError::Corrupt { what, .. }) => assert!(what.contains("battery"), "{what}"),
        other => panic!("expected Corrupt, got {:?}", other.map(|_| "a service")),
    }
}

#[test]
fn same_epoch_snapshots_never_reuse_sealing_ivs() {
    // snapshot_now is public: two snapshots cut in the same epoch must not
    // seal different bodies under one (key, IV) stream.
    let mem = MemStore::new();
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let mut svc = scripted(store, 1);
    svc.snapshot_now();
    let first = mem.raw_snapshot().expect("snapshot installed");
    // Same epoch, same state, same everything — only the cut counter
    // advanced. Identical bytes here would mean the second snapshot
    // sealed the same plaintexts under the same (key, IV) pairs.
    svc.snapshot_now();
    let second = mem.raw_snapshot().expect("snapshot installed");
    assert_ne!(
        first, second,
        "back-to-back snapshots must draw fresh sealing IVs"
    );
    // And the stream stays fresh *across a crash*: the recovered process
    // continues the persisted LSN stream, so its next cut — same epoch,
    // same state — must not repeat either pre-crash seal.
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let (mut recovered, _) = builder(store).recover(Arc::clone(pkg())).unwrap();
    assert_same_state(&svc, &recovered);
    recovered.snapshot_now();
    let third = mem.raw_snapshot().expect("snapshot installed");
    assert_ne!(
        third, first,
        "post-recovery seal must not reuse pre-crash IVs"
    );
    assert_ne!(third, second);
}

#[test]
fn battery_ledger_and_dead_members_survive_recovery() {
    let mem = MemStore::new();
    let radio = RadioConfig {
        profile: RadioProfile::sensor_100kbps(),
        default_battery_uj: 2_000_000.0,
    };
    let build = |store: StoreConfig| {
        KeyService::builder()
            .shards(2)
            .seed(0xbeef)
            .radio(radio.clone())
            .store(store)
    };
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0);
    let mut original = build(store.clone()).build(Arc::clone(pkg()));
    original.set_battery(UserId(1), 40_000.0); // nearly flat: dies quickly
    original.create_group(1, &users(0..4)).unwrap();
    original.create_group(2, &users(4..8)).unwrap();
    for round in 0..3 {
        original
            .submit(1, MembershipEvent::Join(UserId(100 + round)))
            .unwrap();
        original
            .submit(2, MembershipEvent::Join(UserId(200 + round)))
            .unwrap();
        original.tick();
    }
    assert!(
        original.dead_members().contains(&UserId(1)),
        "the weak mote must die in this script"
    );

    let (recovered, _) = build(store).recover(Arc::clone(pkg())).unwrap();
    assert_same_state(&original, &recovered);
    assert_eq!(original.dead_members(), recovered.dead_members());
    let (oa, ob) = (original.battery_status(), recovered.battery_status());
    assert_eq!(oa.len(), ob.len());
    for (a, b) in oa.iter().zip(&ob) {
        assert_eq!(a.user, b.user);
        assert_eq!(a.capacity_uj.to_bits(), b.capacity_uj.to_bits());
        assert_eq!(
            a.spent_uj.to_bits(),
            b.spent_uj.to_bits(),
            "user {}",
            a.user
        );
        assert_eq!(a.dead, b.dead);
    }
}

#[test]
fn snapshot_plus_tail_battery_recovery_is_exact() {
    // Same scenario, but recovery goes through a snapshot cut *between*
    // battery drains — the ledger must restore from serialized cells, not
    // replayed radio traffic, and still line up bit-for-bit.
    let mem = MemStore::new();
    let radio = RadioConfig {
        profile: RadioProfile::sensor_100kbps(),
        default_battery_uj: 2_000_000.0,
    };
    let build = |store: StoreConfig| {
        KeyService::builder()
            .shards(2)
            .seed(0xbeef)
            .radio(radio.clone())
            .store(store)
    };
    let store = StoreConfig::new(Arc::new(mem.clone())).snapshot_every(2);
    let mut original = build(store.clone()).build(Arc::clone(pkg()));
    original.create_group(1, &users(0..5)).unwrap();
    for round in 0..3 {
        original
            .submit(1, MembershipEvent::Join(UserId(100 + round)))
            .unwrap();
        original.tick();
    }
    let (recovered, report) = build(store).recover(Arc::clone(pkg())).unwrap();
    assert_eq!(report.snapshot_epoch, Some(2));
    assert_same_state(&original, &recovered);
    for (a, b) in original
        .battery_status()
        .iter()
        .zip(&recovered.battery_status())
    {
        assert_eq!(
            a.spent_uj.to_bits(),
            b.spent_uj.to_bits(),
            "user {}",
            a.user
        );
    }
}

/// Reference checkpoints: every group's key bytes after `k` committed
/// epochs of the scripted workload, for `k = 0..=epochs`.
fn checkpoints(epochs: u64) -> Vec<std::collections::BTreeMap<u64, Vec<u8>>> {
    (0..=epochs)
        .map(|k| {
            let svc = scripted(
                StoreConfig::new(Arc::new(MemStore::new())).snapshot_every(0),
                k,
            );
            svc.group_ids()
                .into_iter()
                .map(|g| (g, svc.group_key(g).unwrap().to_bytes_be()))
                .collect()
        })
        .collect()
}

/// The torture acceptance: the recovered service sits at a committed
/// epoch `≤ epochs`, holds a subset of the reference groups (a cut can
/// land mid-epoch, after some creates/submits but before the commit), and
/// every key it *does* hold is bit-for-bit the reference key at that
/// epoch — never a fabricated one.
fn assert_valid_prefix(
    svc: &KeyService,
    reference: &[std::collections::BTreeMap<u64, Vec<u8>>],
    epochs: u64,
) {
    let epoch = svc.epoch();
    assert!(epoch <= epochs, "recovered a future that never committed");
    let expect = &reference[epoch as usize];
    for gid in svc.group_ids() {
        let key = svc.group_key(gid).unwrap().to_bytes_be();
        let reference_key = expect
            .get(&gid)
            .unwrap_or_else(|| panic!("group {gid} does not exist at epoch {epoch}"));
        assert_eq!(&key, reference_key, "group {gid} key at epoch {epoch}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// WAL torture: truncate the log at *any* byte offset and recovery
    /// yields a strict prefix of the committed epochs — bit-for-bit equal
    /// to an uninterrupted run of that many epochs — or, at worst, a
    /// typed corruption error. Never a panic, never a wrong key.
    #[test]
    fn truncated_wal_recovers_a_strict_epoch_prefix(cut_permille in 0u64..1000) {
        const EPOCHS: u64 = 3;
        let reference = checkpoints(EPOCHS);
        let mem = MemStore::new();
        scripted(StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0), EPOCHS);
        let wal = mem.wal_bytes().unwrap();
        let cut = (wal.len() as u64 * cut_permille / 1000) as usize;
        let damaged = MemStore::with_raw(wal[..cut].to_vec(), None);
        let store = StoreConfig::new(Arc::new(damaged)).snapshot_every(0);
        let (svc, report) = builder(store).recover(Arc::clone(pkg())).unwrap();
        prop_assert_eq!(report.epochs_replayed, svc.epoch());
        assert_valid_prefix(&svc, &reference, EPOCHS);
    }

    /// Flipping any byte of the log yields either typed corruption or a
    /// valid strict prefix (a flip in the final frame's length field can
    /// legitimately read as a torn tail) — never a panic or a wrong key.
    #[test]
    fn bitflipped_wal_is_corrupt_or_a_valid_prefix(
        flip_permille in 0u64..1000,
        bit in 0u8..8,
    ) {
        const EPOCHS: u64 = 2;
        let reference = checkpoints(EPOCHS);
        let mem = MemStore::new();
        scripted(StoreConfig::new(Arc::new(mem.clone())).snapshot_every(0), EPOCHS);
        let mut wal = mem.wal_bytes().unwrap();
        let at = (wal.len() as u64 * flip_permille / 1000) as usize % wal.len();
        wal[at] ^= 1 << bit;
        let damaged = MemStore::with_raw(wal, None);
        let store = StoreConfig::new(Arc::new(damaged)).snapshot_every(0);
        match builder(store).recover(Arc::clone(pkg())) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            Ok((svc, _)) => assert_valid_prefix(&svc, &reference, EPOCHS),
        }
    }
}
