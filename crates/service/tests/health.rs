//! Health-plane reconciliation properties.
//!
//! 1. Per-shard [`ShardStats`] are an exact *partition* of the service
//!    totals: over random churn (creates, joins, leaves, merges,
//!    detaches, loss) the integer counters sum precisely to
//!    [`ServiceMetrics`], and energy matches to floating-point
//!    association order.
//! 2. The stall ledger's consecutive-epoch counter grows while a member
//!    keeps a group stalled and resets on the first successful rekey,
//!    while the cumulative counter never forgets.

use std::sync::Arc;

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_service::{
    HealthReport, KeyService, MembershipEvent, ServiceMetrics, ShardStats, STALLED_AFTER_EPOCHS,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn service(seed: u64, shards: usize) -> KeyService {
    let mut rng = ChaChaRng::seed_from_u64(0x4ea1 ^ seed);
    let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
    KeyService::builder().shards(shards).seed(seed).build(pkg)
}

/// Group `g`'s founders are `g*100 .. g*100+size`.
fn founders(g: u64, size: u32) -> Vec<UserId> {
    (0..size).map(|i| UserId(g as u32 * 100 + i)).collect()
}

/// Asserts Σ-shards == metrics for every counter the stats partition,
/// and energy up to f64 association order.
fn assert_reconciles(stats: &[ShardStats], m: &ServiceMetrics) {
    let sum = |f: &dyn Fn(&ShardStats) -> u64| stats.iter().map(f).sum::<u64>();
    assert_eq!(sum(&|s| s.events_applied), m.events_applied);
    assert_eq!(sum(&|s| s.events_rejected), m.events_rejected);
    assert_eq!(sum(&|s| s.events_cancelled), m.events_cancelled);
    assert_eq!(sum(&|s| s.rekeys_executed), m.rekeys_executed);
    assert_eq!(sum(&|s| s.rekeys_failed), m.rekeys_failed);
    assert_eq!(sum(&|s| s.groups_stalled), m.groups_stalled);
    assert_eq!(sum(&|s| s.steps_retried), m.steps_retried);
    assert_eq!(sum(&|s| s.groups), m.groups_active);
    let lat_count: u64 = stats.iter().map(|s| s.latency_virtual.count()).sum();
    assert_eq!(lat_count, m.latency_virtual.count());
    let energy: f64 = stats.iter().map(|s| s.energy_mj).sum();
    let tol = 1e-9 * m.energy_mj.abs().max(1.0);
    assert!(
        (energy - m.energy_mj).abs() <= tol,
        "shard energy {energy} != metrics {}",
        m.energy_mj
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random churn over several epochs; after every tick the per-shard
    /// stats must partition the cumulative service metrics exactly.
    #[test]
    fn shard_stats_partition_service_metrics(
        seed in 0u64..1_000,
        shards in 1usize..5,
        n_groups in 2u64..6,
        sizes in proptest::collection::vec(3u32..6, 5),
        epochs in 2u64..5,
        loss_pct in 0u32..30,
    ) {
        let mut svc = service(seed, shards);
        for g in 0..n_groups {
            svc.create_group(g, &founders(g, sizes[g as usize % sizes.len()])).unwrap();
        }
        // Below 5% acts as the lossless case.
        if loss_pct >= 5 {
            svc.set_loss(f64::from(loss_pct) / 100.0);
        }
        for e in 0..epochs {
            for g in 0..n_groups {
                let base = g as u32 * 100;
                match (e + g) % 4 {
                    0 => { let _ = svc.submit(g, MembershipEvent::Join(UserId(base + 50 + e as u32))); }
                    1 => { let _ = svc.submit(g, MembershipEvent::Leave(UserId(base))); }
                    2 => { let _ = svc.submit(g, MembershipEvent::MergeWith((g + 1) % n_groups)); }
                    _ => {
                        // A join/leave pair that cancels, plus a detach to
                        // exercise the stall path.
                        let u = UserId(base + 70 + e as u32);
                        let _ = svc.submit(g, MembershipEvent::Join(u));
                        let _ = svc.submit(g, MembershipEvent::Leave(u));
                        if e == 1 {
                            svc.detach_member(UserId(base + 1));
                        }
                    }
                }
            }
            svc.tick();
            assert_reconciles(&svc.shard_stats(), svc.metrics());
        }
    }
}

#[test]
fn stall_ledger_streak_resets_on_success_and_health_tracks_it() {
    let mut svc = service(7, 2);
    svc.create_group(1, &founders(1, 4)).unwrap();
    svc.create_group(2, &founders(2, 4)).unwrap();
    assert_eq!(svc.health(), HealthReport::Healthy);

    // Member 101 powers off; group 1's leave of member 100 now needs the
    // silent 101 and stalls every epoch, while group 2 churns happily.
    let culprit = UserId(101);
    svc.detach_member(culprit);
    svc.submit(1, MembershipEvent::Leave(UserId(100))).unwrap();
    for e in 1..=STALLED_AFTER_EPOCHS {
        svc.submit(2, MembershipEvent::Join(UserId(250 + e as u32)))
            .unwrap();
        svc.tick();
        let stall = svc.stall_ledger().member(1, culprit).expect("attributed");
        assert_eq!(stall.consecutive, e);
        assert_eq!(stall.cumulative, e);
        // Group 2 keeps succeeding: its streak stays closed.
        assert!(svc.stall_ledger().member(2, UserId(201)).is_none());
        if e < STALLED_AFTER_EPOCHS {
            assert!(
                matches!(svc.health(), HealthReport::Degraded { .. }),
                "short streak degrades"
            );
        }
    }
    assert_eq!(
        svc.health(),
        HealthReport::Stalled { groups: vec![1] },
        "streak of {STALLED_AFTER_EPOCHS} flags the group"
    );

    // The member comes back; the requeued leave applies and the streak
    // closes — but the cumulative history survives.
    svc.attach_member(culprit);
    let report = svc.tick();
    assert_eq!(report.rekeys_executed, 1);
    let stall = svc.stall_ledger().member(1, culprit).expect("history kept");
    assert_eq!(stall.consecutive, 0);
    assert_eq!(stall.cumulative, STALLED_AFTER_EPOCHS);
    assert_eq!(svc.health(), HealthReport::Healthy);
}
