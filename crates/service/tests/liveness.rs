//! Scheduler liveness under faults — the property the sans-IO refactor
//! exists for.
//!
//! With the seed's blocking drivers a shard ran each group's rekey to
//! completion before touching the next, so one powered-off member stalled
//! *every* group on the shard (the epoch never returned). With poll-driven
//! machines the shard is a scheduler: the stalled group times out, keeps
//! its pre-epoch key, requeues its events — and all N−1 other groups
//! finish their rekeys in the same epoch.

use std::sync::Arc;

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_service::{KeyService, MembershipEvent};
use rand::SeedableRng;

fn service(seed: u64, shards: usize) -> KeyService {
    let mut rng = ChaChaRng::seed_from_u64(0x11fe ^ seed);
    let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
    KeyService::builder().shards(shards).seed(seed).build(pkg)
}

/// Group `g`'s founding members are `g*10 .. g*10+4`.
fn founders(g: u64) -> Vec<UserId> {
    (0..4).map(|i| UserId(g as u32 * 10 + i)).collect()
}

#[test]
fn one_detached_member_stalls_only_its_group() {
    // One shard on purpose: all five groups compete for the same
    // scheduler thread, which is exactly the situation that used to
    // deadlock the whole epoch.
    let n_groups = 5u64;
    let mut svc = service(1, 1);
    for g in 0..n_groups {
        svc.create_group(g, &founders(g)).unwrap();
    }
    let keys_before: Vec<_> = (0..n_groups)
        .map(|g| svc.group_key(g).unwrap().clone())
        .collect();

    // Member U21 (of group 2) powers off; every group gets a rekey-forcing
    // leave of a *different* member, so group 2's reduced rekey needs the
    // silent U21 and must stall.
    svc.detach_member(UserId(21));
    for g in 0..n_groups {
        svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10)))
            .unwrap();
    }
    let report = svc.tick();

    // Liveness: the shard finished N−1 groups' rekeys in this epoch.
    assert_eq!(report.groups_stalled, 1, "exactly group 2 stalls");
    assert_eq!(report.rekeys_failed, 1);
    assert_eq!(report.rekeys_executed, n_groups - 1);
    for g in 0..n_groups {
        let key = svc.group_key(g).unwrap();
        if g == 2 {
            assert_eq!(key, &keys_before[g as usize], "stalled group keeps its key");
            assert_eq!(svc.session(g).unwrap().n(), 4, "membership unchanged");
        } else {
            assert_ne!(key, &keys_before[g as usize], "group {g} must rekey");
            assert_eq!(svc.session(g).unwrap().n(), 3);
        }
    }
    // The stalled attempt's transmissions are charged as energy.
    assert!(report.energy_mj > 0.0);

    // Recovery: the member powers back on; the requeued leave applies at
    // the next tick with no resubmission.
    svc.attach_member(UserId(21));
    let report2 = svc.tick();
    assert_eq!(report2.groups_stalled, 0);
    assert_eq!(report2.rekeys_executed, 1, "only the requeued group rekeys");
    assert_ne!(svc.group_key(2).unwrap(), &keys_before[2]);
    assert_eq!(svc.session(2).unwrap().n(), 3);
    assert!(svc.session(2).unwrap().invariant_holds());
}

#[test]
fn detached_newcomer_stalls_only_the_joining_group() {
    let mut svc = service(3, 1);
    svc.create_group(0, &founders(0)).unwrap();
    svc.create_group(1, &founders(1)).unwrap();
    let key1 = svc.group_key(1).unwrap().clone();

    // Group 0's newcomer is powered off; group 1's join is healthy.
    svc.detach_member(UserId(100));
    svc.submit(0, MembershipEvent::Join(UserId(100))).unwrap();
    svc.submit(1, MembershipEvent::Join(UserId(101))).unwrap();
    let report = svc.tick();
    assert_eq!(report.groups_stalled, 1);
    assert_eq!(svc.session(0).unwrap().n(), 4, "join did not apply");
    assert_eq!(svc.session(1).unwrap().n(), 5, "healthy join applied");
    assert_ne!(svc.group_key(1).unwrap(), &key1);
}

#[test]
fn lossy_medium_retries_with_fresh_randomness_and_stays_deterministic() {
    let run = |seed: u64| {
        let mut svc = service(seed, 2);
        for g in 0..8u64 {
            svc.create_group(g, &founders(g)).unwrap();
        }
        // Loss high enough that some round trips drop and the scheduler's
        // retransmission path has to fire.
        svc.set_loss(0.02);
        for g in 0..8u64 {
            svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10)))
                .unwrap();
        }
        let report = svc.tick();
        // Every group either rekeyed or (if it exhausted its retries)
        // stalled — the epoch always terminates.
        assert_eq!(
            report.rekeys_executed + report.groups_stalled,
            8,
            "all groups accounted for"
        );
        let keys: Vec<_> = (0..8u64)
            .map(|g| svc.group_key(g).unwrap().clone())
            .collect();
        (report.rekeys_executed, report.steps_retried, keys)
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "loss + retries are deterministic per seed");
    assert!(a.0 >= 6, "loss this light must not stall most groups");
}

#[test]
fn detached_member_defers_cross_group_merges_too() {
    // Coordinator-resolved merges obey the same fault plan as shard
    // rekeys: a powered-off member in either ring defers the fold (both
    // groups keep their keys and memberships) until the member returns.
    let mut svc = service(5, 2);
    svc.create_group(0, &founders(0)).unwrap();
    svc.create_group(1, &founders(1)).unwrap();
    let (key0, key1) = (
        svc.group_key(0).unwrap().clone(),
        svc.group_key(1).unwrap().clone(),
    );
    svc.detach_member(UserId(12)); // a bystander of group 1
    svc.submit(0, MembershipEvent::MergeWith(1)).unwrap();
    let report = svc.tick();
    assert_eq!(report.groups_stalled, 1);
    assert_eq!(report.rekeys_executed, 0);
    assert_eq!(svc.groups_active(), 2, "no absorption happened");
    assert_eq!(svc.group_key(0).unwrap(), &key0);
    assert_eq!(svc.group_key(1).unwrap(), &key1);

    // Power back on: the deferred request resolves at the next tick.
    svc.attach_member(UserId(12));
    let report2 = svc.tick();
    assert_eq!(report2.groups_stalled, 0);
    assert_eq!(report2.rekeys_executed, 1, "the deferred fold ran");
    assert_eq!(svc.groups_active(), 1);
    let merged = svc.session(0).expect("host survives");
    assert_eq!(merged.n(), 8);
    assert!(merged.invariant_holds());
    assert!(svc.session(1).is_none(), "target absorbed");
}

#[test]
fn detached_member_as_the_leaver_does_not_stall() {
    // The powered-off member *is* the one leaving: the reduced rekey runs
    // among the survivors and must not need the leaver's radio.
    let mut svc = service(9, 1);
    svc.create_group(0, &founders(0)).unwrap();
    let key0 = svc.group_key(0).unwrap().clone();
    svc.detach_member(UserId(1));
    svc.submit(0, MembershipEvent::Leave(UserId(1))).unwrap();
    let report = svc.tick();
    // The group still holds a detached id in the fail-fast check, so the
    // conservative scheduler may treat it as unretriable — but the rekey
    // itself only involves survivors and completes.
    assert_eq!(report.rekeys_executed, 1);
    assert_eq!(report.groups_stalled, 0);
    assert_ne!(svc.group_key(0).unwrap(), &key0);
    assert!(!svc.session(0).unwrap().contains(UserId(1)));
}
