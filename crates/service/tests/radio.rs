//! Service-level behavior over the virtual-time radio medium:
//! virtual-ms latency quantiles, battery-driven death feeding the
//! detach/timeout path, and bit-for-bit equivalence of the ideal radio
//! with the instant medium.

use std::sync::Arc;

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_medium::RadioProfile;
use egka_service::{KeyService, MembershipEvent, RadioConfig};
use rand::SeedableRng;

fn service(seed: u64, shards: usize, radio: Option<RadioConfig>) -> KeyService {
    let mut rng = ChaChaRng::seed_from_u64(0xad10 ^ seed);
    let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
    let mut builder = KeyService::builder().shards(shards).seed(seed);
    if let Some(radio) = radio {
        builder = builder.radio(radio);
    }
    builder.build(pkg)
}

/// Group `g`'s founding members are `g*10 .. g*10+4`.
fn founders(g: u64) -> Vec<UserId> {
    (0..4).map(|i| UserId(g as u32 * 10 + i)).collect()
}

#[test]
fn radio_rekeys_report_virtual_latency_and_battery_drain() {
    let radio = RadioConfig::new(RadioProfile::sensor_100kbps());
    let mut svc = service(1, 2, Some(radio));
    for g in 0..4u64 {
        svc.create_group(g, &founders(g)).unwrap();
    }
    for g in 0..4u64 {
        svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10)))
            .unwrap();
    }
    let report = svc.tick();
    assert_eq!(report.rekeys_executed, 4);
    assert_eq!(report.rekey_latencies_virtual_ms.len(), 4);
    let (p50, p95, p99) = report.latency_quantiles_virtual().expect("radio quantiles");
    assert!(p50 <= p95 && p95 <= p99);
    // A Leave moves several kilobit broadcasts over a 100 kbps channel
    // with ≥ 2 ms link delay: tens of virtual milliseconds at least.
    assert!(p50 > 10.0, "p50 {p50} vms implausibly small");
    // The cumulative metrics carry the same data through the fixed-bucket
    // histogram: within-bucket interpolation can shift a mid-sample
    // quantile slightly, but the extremes pin to the exact min/max and
    // the median stays within a few percent of the nearest-rank answer.
    let (m50, m95, m99) = svc
        .metrics()
        .virtual_latency_quantiles()
        .expect("metrics quantiles");
    assert!((m50 - p50).abs() / p50 < 0.05, "p50 {m50} vs {p50}");
    assert_eq!(m95, p95);
    assert_eq!(m99, p99);
    // Every rekey participant drew real energy from its (mains) battery
    // (leavers transmit nothing, so only the 3 survivors per group have
    // cells).
    let status = svc.battery_status();
    assert!(status.len() >= 12, "all survivors have cells");
    assert!(status.iter().all(|s| s.spent_uj > 0.0 && !s.dead));
    assert!(svc.dead_members().is_empty());
}

#[test]
fn radio_service_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut svc = service(
            seed,
            2,
            Some(RadioConfig::new(RadioProfile::sensor_100kbps())),
        );
        for g in 0..3u64 {
            svc.create_group(g, &founders(g)).unwrap();
        }
        for g in 0..3u64 {
            svc.submit(g, MembershipEvent::Join(UserId(100 + g as u32)))
                .unwrap();
        }
        let report = svc.tick();
        let keys: Vec<_> = (0..3u64)
            .map(|g| svc.group_key(g).unwrap().clone())
            .collect();
        (report.rekey_latencies_virtual_ms.clone(), keys)
    };
    assert_eq!(run(7), run(7), "same seed: same virtual times, same keys");
    assert_ne!(run(7).1, run(8).1);
}

#[test]
fn ideal_radio_matches_the_instant_medium_bit_for_bit() {
    let run = |radio: Option<RadioConfig>| {
        let mut svc = service(11, 2, radio);
        for g in 0..4u64 {
            svc.create_group(g, &founders(g)).unwrap();
        }
        for g in 0..4u64 {
            svc.submit(g, MembershipEvent::Join(UserId(200 + g as u32)))
                .unwrap();
            svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10 + 1)))
                .unwrap();
        }
        let report = svc.tick();
        let keys: Vec<_> = svc
            .group_ids()
            .iter()
            .map(|&g| svc.group_key(g).unwrap().clone())
            .collect();
        (
            report.events_applied,
            report.rekeys_executed,
            report.energy_mj,
            keys,
        )
    };
    let instant = run(None);
    let radio = run(Some(RadioConfig::new(RadioProfile::ideal())));
    assert_eq!(instant, radio);
}

#[test]
fn dead_or_detached_members_cannot_found_groups() {
    let mut svc = service(4, 1, Some(RadioConfig::new(RadioProfile::sensor_100kbps())));
    // Battery-dead founder: capacity zero means the first contact check
    // sees a drained cell.
    svc.set_battery(UserId(1), 0.0);
    assert_eq!(
        svc.create_group(1, &founders(0)),
        Err(egka_service::ServiceError::MemberUnavailable(UserId(1)))
    );
    // Detached founder.
    svc.detach_member(UserId(12));
    assert_eq!(
        svc.create_group(2, &founders(1)),
        Err(egka_service::ServiceError::MemberUnavailable(UserId(12)))
    );
    // Healthy founders still work.
    svc.create_group(3, &founders(2)).unwrap();
    assert_eq!(svc.groups_active(), 1);
}

#[test]
fn battery_death_mid_epoch_stalls_one_group_and_feeds_the_detach_path() {
    // Five groups on one shard; group 2's member U21 gets a battery so
    // small it browns out during the epoch's rekey. Liveness: the other
    // four groups complete the same epoch; U21's group times out, keeps
    // its key, and — because death is permanent — recovers only by
    // *evicting* the corpse.
    let n_groups = 5u64;
    let mut radio = RadioConfig::new(RadioProfile::sensor_100kbps());
    radio.default_battery_uj = f64::INFINITY;
    let mut svc = service(2, 1, Some(radio));
    for g in 0..n_groups {
        svc.create_group(g, &founders(g)).unwrap();
    }
    let keys_before: Vec<_> = (0..n_groups)
        .map(|g| svc.group_key(g).unwrap().clone())
        .collect();
    // ~25 mJ: enough to start the rekey, not enough to finish it.
    svc.set_battery(UserId(21), 25_000.0);
    for g in 0..n_groups {
        svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10)))
            .unwrap();
    }
    let report = svc.tick();
    assert_eq!(report.nodes_died, 1, "U21's battery died mid-epoch");
    assert_eq!(report.groups_stalled, 1, "exactly group 2 stalls");
    assert_eq!(report.rekeys_executed, n_groups - 1, "liveness preserved");
    assert_eq!(svc.dead_members(), vec![UserId(21)]);
    for g in 0..n_groups {
        if g == 2 {
            assert_eq!(svc.group_key(g).unwrap(), &keys_before[g as usize]);
        } else {
            assert_ne!(svc.group_key(g).unwrap(), &keys_before[g as usize]);
        }
    }

    // attach_member cannot resurrect a drained battery.
    svc.attach_member(UserId(21));
    // Evict the corpse: the requeued Leave(20) plus Leave(21) coalesce
    // into one Partition among the three survivors — leavers transmit
    // nothing, so the dead radio is not needed.
    svc.submit(2, MembershipEvent::Leave(UserId(21))).unwrap();
    let report2 = svc.tick();
    assert_eq!(report2.groups_stalled, 0);
    assert_eq!(report2.rekeys_executed, 1);
    let s = svc.session(2).expect("group recovered");
    assert_eq!(s.n(), 2);
    assert!(!s.contains(UserId(21)));
    assert!(!s.contains(UserId(20)));
    assert_ne!(svc.group_key(2).unwrap(), &keys_before[2]);
    assert_eq!(svc.metrics().nodes_died, 1, "death counted once");
}
