//! The identifiable-abort robustness plane, end to end over the public
//! API: the Healthy → Stalled → evict → readmit → re-evict lifecycle,
//! and crash recovery reproducing evictions bit for bit.

use std::sync::Arc;

use egka_core::{Pkg, SecurityProfile, UserId};
use egka_hash::ChaChaRng;
use egka_service::{
    EvictionPolicy, HealthReport, KeyService, MemStore, MembershipEvent, ServiceBuilder,
    ServiceError, Store, StoreConfig, STALLED_AFTER_EPOCHS,
};
use rand::SeedableRng;

fn pkg(seed: u64) -> Arc<Pkg> {
    let mut rng = ChaChaRng::seed_from_u64(seed);
    Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy))
}

fn users(range: std::ops::Range<u32>) -> Vec<UserId> {
    range.map(UserId).collect()
}

/// Healthy → Stalled → evict → readmit → re-evict, with the second
/// quarantine span escalated by the backoff.
#[test]
fn eviction_lifecycle_with_readmission_and_backoff() {
    let mut svc = KeyService::builder()
        .seed(0x0b57)
        .eviction(EvictionPolicy::default())
        .build(pkg(0x0b57));
    svc.create_group(1, &users(0..4)).unwrap();
    assert_eq!(svc.health(), HealthReport::Healthy);

    // A silent member stalls the group for STALLED_AFTER_EPOCHS epochs.
    svc.detach_member(UserId(3));
    svc.submit(1, MembershipEvent::Join(UserId(10))).unwrap();
    for _ in 0..STALLED_AFTER_EPOCHS {
        let r = svc.tick();
        assert_eq!(r.members_evicted, 0);
    }
    assert_eq!(svc.health(), HealthReport::Stalled { groups: vec![1] });

    // The next tick evicts the culprit, completes the epoch over the
    // survivors, and books the quarantine penalty.
    let r = svc.tick();
    assert_eq!(r.evicted, vec![(1, UserId(3))]);
    assert!(r.rekeys_executed >= 1);
    assert_eq!(svc.health(), HealthReport::Healthy);
    assert!(svc.is_quarantined(UserId(3)));
    assert_eq!(svc.blame_certs().len(), 1);
    assert_eq!(svc.metrics().members_evicted, 1);
    let first_until = svc.quarantine_rows()[0].1;
    let eviction_epoch = svc.epoch();
    assert_eq!(eviction_epoch, STALLED_AFTER_EPOCHS + 1);
    // Default policy: span = base 2 + cumulative 3 / 2 = 3 epochs.
    assert_eq!(first_until, eviction_epoch + 3);

    // The link comes back, but the penalty holds Joins off until it
    // elapses…
    svc.attach_member(UserId(3));
    assert_eq!(
        svc.submit(1, MembershipEvent::Join(UserId(3))),
        Err(ServiceError::Quarantined {
            user: UserId(3),
            until_epoch: first_until,
        })
    );
    while svc.epoch() + 1 < first_until {
        svc.tick();
    }
    // …and the first post-penalty Join readmits.
    svc.submit(1, MembershipEvent::Join(UserId(3))).unwrap();
    assert!(!svc.is_quarantined(UserId(3)));
    assert_eq!(svc.metrics().members_readmitted, 1);
    svc.tick();
    assert!(svc.session(1).unwrap().contains(UserId(3)));

    // The link flaps: the member goes silent again and is re-evicted
    // with an escalated (doubled) quarantine span.
    svc.detach_member(UserId(3));
    svc.submit(1, MembershipEvent::Join(UserId(11))).unwrap();
    for _ in 0..STALLED_AFTER_EPOCHS {
        svc.tick();
    }
    let r = svc.tick();
    assert_eq!(r.evicted, vec![(1, UserId(3))]);
    assert_eq!(svc.blame_certs().len(), 2);
    let (member, second_until, evictions) = svc.quarantine_rows()[0];
    assert_eq!(member, 3);
    assert_eq!(evictions, 2);
    // Cumulative is now 6, so the base span is 2 + 3 = 5, doubled once
    // by the backoff: 10 epochs versus 3 the first time.
    assert_eq!(second_until, svc.epoch() + 10);
    assert!(svc.session(1).unwrap().contains(UserId(11)));
    assert!(!svc.session(1).unwrap().contains(UserId(3)));
}

/// Recovery from snapshot + WAL tail re-derives the same evictions: the
/// certificates, quarantine state, sessions and ledger all match the
/// uninterrupted service.
#[test]
fn recovery_replays_evictions_bit_for_bit() {
    let backend: Arc<dyn Store> = Arc::new(MemStore::new());
    let builder = || -> ServiceBuilder {
        KeyService::builder()
            .seed(0x0b58)
            .eviction(EvictionPolicy::default())
            .store(StoreConfig::new(Arc::clone(&backend)).snapshot_every(2))
    };
    let mut svc = builder().build(pkg(0x0b58));
    svc.create_group(1, &users(0..4)).unwrap();
    svc.create_group(2, &users(4..8)).unwrap();
    svc.detach_member(UserId(3));
    svc.submit(1, MembershipEvent::Join(UserId(10))).unwrap();
    svc.submit(2, MembershipEvent::Leave(UserId(5))).unwrap();
    for _ in 0..=STALLED_AFTER_EPOCHS {
        svc.tick();
    }
    assert_eq!(svc.blame_certs().len(), 1, "the eviction fired");

    let (rec, report) = builder().recover(pkg(0x0b58)).expect("recovery succeeds");
    assert!(report.snapshot_epoch.is_some(), "a snapshot was cut");
    assert_eq!(rec.epoch(), svc.epoch());
    assert_eq!(rec.quarantine_rows(), svc.quarantine_rows());
    assert_eq!(rec.group_key(1), svc.group_key(1));
    assert_eq!(rec.group_key(2), svc.group_key(2));
    assert_eq!(
        rec.stall_ledger().member_records(),
        svc.stall_ledger().member_records()
    );
    // Certificates re-derived during replay are bit-identical to the
    // originals (same deterministic coordinator key, same evidence).
    let replayed: Vec<Vec<u8>> = rec.blame_certs().iter().map(|c| c.encode()).collect();
    let original: Vec<Vec<u8>> = svc.blame_certs().iter().map(|c| c.encode()).collect();
    assert_eq!(replayed, original);
}
