//! The protocol-erased suite boundary, exercised end to end through
//! `KeyService`:
//!
//! 1. **Every suite serves**: all five Table 1 protocols run the full
//!    service lifecycle (create → churn → tick) behind `dyn Suite`, with
//!    correct membership and fresh keys.
//! 2. **Liveness per suite**: one detached member stalls only its own
//!    group, whichever protocol it runs.
//! 3. **Policy**: `SuitePolicy::Cheapest` equals the closed-form argmin
//!    (proptest over sizes, join batches and both paper transceivers),
//!    picks different suites for different hardware profiles, and
//!    migrates a group across the crossover at a full rekey.
//! 4. **Golden**: `Fixed(Proposed)` planning is bit-for-bit the legacy
//!    planner.

use std::sync::Arc;

use egka_core::suite::SuiteId;
use egka_core::{Pkg, SecurityProfile, UserId};
use egka_energy::{CpuModel, OpCounts, Transceiver};
use egka_hash::ChaChaRng;
use egka_service::{
    plan_group, plan_group_suite, CostModel, KeyService, MembershipEvent, SuitePolicy,
};
use proptest::prelude::*;
use rand::SeedableRng;

/// Shared toy PKG (parameter generation is too slow to re-run per case).
fn pkg() -> &'static Arc<Pkg> {
    use std::sync::OnceLock;
    static PKG: OnceLock<Arc<Pkg>> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x5017e5);
        Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy))
    })
}

fn fixed_service(seed: u64, id: SuiteId) -> KeyService {
    KeyService::builder()
        .shards(2)
        .seed(seed)
        .suite_policy(SuitePolicy::Fixed(id))
        .build(Arc::clone(pkg()))
}

fn sensor_cheapest() -> SuitePolicy {
    SuitePolicy::Cheapest {
        cpu: CpuModel::strongarm_133(),
        transceiver: Transceiver::radio_100kbps(),
    }
}

fn wlan_cheapest() -> SuitePolicy {
    SuitePolicy::Cheapest {
        cpu: CpuModel::strongarm_133(),
        transceiver: Transceiver::wlan_spectrum24(),
    }
}

#[test]
fn every_suite_runs_the_service_lifecycle_end_to_end() {
    for (i, id) in SuiteId::ALL.into_iter().enumerate() {
        let mut svc = fixed_service(0x51 ^ i as u64, id);
        let members: Vec<UserId> = (0..4).map(UserId).collect();
        svc.create_group(9, &members).unwrap();
        assert_eq!(svc.suite_of(9), Some(id), "{}", id.key());
        let key0 = svc.group_key(9).unwrap().clone();

        svc.submit(9, MembershipEvent::Join(UserId(100))).unwrap();
        svc.submit(9, MembershipEvent::Leave(UserId(1))).unwrap();
        let report = svc.tick();
        assert_eq!(report.events_applied, 2, "{}", id.key());
        assert!(report.rekeys_executed >= 1, "{}", id.key());
        assert!(report.energy_mj > 0.0, "{}", id.key());
        // The epoch's cost ledger attributes the work to the right suite.
        let usage = report.per_suite.get(&id).expect("suite charged");
        assert!(usage.rekeys >= 1 && usage.energy_mj > 0.0, "{}", id.key());

        let s = svc.session(9).unwrap();
        assert_eq!(s.n(), 4, "{}", id.key());
        assert!(s.contains(UserId(100)), "{}", id.key());
        assert!(!s.contains(UserId(1)), "{}", id.key());
        assert_ne!(
            &key0,
            svc.group_key(9).unwrap(),
            "{}: key must change on churn",
            id.key()
        );
        // The proposed suite's ring invariant is checkable; baselines
        // re-derive their sessions from full runs, whose BD share
        // invariant also holds except for SSN's confirmation exponent.
        if id != SuiteId::Ssn {
            assert!(s.invariant_holds(), "{}", id.key());
        }
    }
}

#[test]
fn every_suite_is_deterministic_per_seed() {
    for id in SuiteId::ALL {
        let run = |seed: u64| {
            let mut svc = fixed_service(seed, id);
            svc.create_group(3, &(0..5).map(UserId).collect::<Vec<_>>())
                .unwrap();
            svc.submit(3, MembershipEvent::Join(UserId(50))).unwrap();
            svc.tick();
            svc.group_key(3).unwrap().clone()
        };
        assert_eq!(run(7), run(7), "{}: same seed, same key", id.key());
        assert_ne!(run(7), run(8), "{}: seed must matter", id.key());
    }
}

#[test]
fn one_detached_member_stalls_only_its_group_under_every_suite() {
    for (i, id) in SuiteId::ALL.into_iter().enumerate() {
        let mut svc = fixed_service(0xde7ac ^ i as u64, id);
        for g in 0..3u64 {
            let base = g as u32 * 10;
            svc.create_group(g, &(base..base + 4).map(UserId).collect::<Vec<_>>())
                .unwrap();
        }
        let keys_before: Vec<_> = (0..3u64)
            .map(|g| svc.group_key(g).unwrap().clone())
            .collect();
        // Member 12 (group 1) powers off; every group gets churn.
        svc.detach_member(UserId(12));
        for g in 0..3u64 {
            svc.submit(g, MembershipEvent::Join(UserId(100 + g as u32)))
                .unwrap();
        }
        let report = svc.tick();
        assert_eq!(report.groups_stalled, 1, "{}", id.key());
        assert_eq!(
            svc.group_key(1).unwrap(),
            &keys_before[1],
            "{}: stalled group keeps its pre-epoch key",
            id.key()
        );
        for g in [0u64, 2] {
            assert_ne!(
                svc.group_key(g).unwrap(),
                &keys_before[g as usize],
                "{}: healthy groups rekeyed in the same epoch",
                id.key()
            );
        }
        // Recovery: reattach, next tick applies the requeued join.
        svc.attach_member(UserId(12));
        let report = svc.tick();
        assert_eq!(report.groups_stalled, 0, "{}", id.key());
        assert!(
            svc.session(1).unwrap().contains(UserId(101)),
            "{}",
            id.key()
        );
    }
}

#[test]
fn cheapest_picks_different_suites_for_different_hardware_profiles() {
    let cost = CostModel::default();
    // 3-member groups on the 100 kbps sensor radio: the ECDSA baseline's
    // smaller wire format wins. On the WLAN card traffic is nearly free,
    // so the proposed scheme's cheap compute wins at the same size.
    let on_radio = sensor_cheapest().choose(&cost, 3, 0);
    let on_wlan = wlan_cheapest().choose(&cost, 3, 0);
    assert_eq!(on_radio, SuiteId::BdEcdsa);
    assert_eq!(on_wlan, SuiteId::Proposed);
    assert_ne!(on_radio, on_wlan, "hardware profile must matter");
    // And group size matters too: by n = 10 the batch verification
    // dominates everywhere (Figure 1's story).
    assert_eq!(sensor_cheapest().choose(&cost, 10, 0), SuiteId::Proposed);
    assert_eq!(wlan_cheapest().choose(&cost, 10, 0), SuiteId::Proposed);
}

#[test]
fn cheapest_service_founds_a_mixed_fleet_and_reports_per_suite_costs() {
    let mut svc = KeyService::builder()
        .shards(2)
        .seed(0xa11)
        .suite_policy(sensor_cheapest())
        .build(Arc::clone(pkg()));
    svc.create_group(1, &[UserId(0), UserId(1)]).unwrap();
    svc.create_group(2, &(10..16).map(UserId).collect::<Vec<_>>())
        .unwrap();
    assert_eq!(svc.suite_of(1), Some(SuiteId::BdEcdsa), "small group");
    assert_eq!(svc.suite_of(2), Some(SuiteId::Proposed), "large group");
    let mix = svc.groups_per_suite();
    assert_eq!(mix.len(), 2);
    let m = svc.metrics();
    assert!(m.per_suite.get(&SuiteId::BdEcdsa).unwrap().energy_mj > 0.0);
    assert!(m.per_suite.get(&SuiteId::Proposed).unwrap().energy_mj > 0.0);
}

#[test]
fn baseline_group_migrates_to_proposed_when_it_outgrows_the_crossover() {
    let mut svc = KeyService::builder()
        .shards(2)
        .seed(0x916)
        .suite_policy(sensor_cheapest())
        .build(Arc::clone(pkg()));
    svc.create_group(4, &[UserId(0), UserId(1)]).unwrap();
    assert_eq!(svc.suite_of(4), Some(SuiteId::BdEcdsa));
    // Three arrivals push the final size to 5 — past the crossover. The
    // baseline realizes the batch as one full rekey, at which the policy
    // re-picks the suite: the group migrates.
    for u in 100..103u32 {
        svc.submit(4, MembershipEvent::Join(UserId(u))).unwrap();
    }
    let report = svc.tick();
    assert_eq!(report.rekeys_executed, 1, "one full re-run covers all 3");
    assert_eq!(svc.suite_of(4), Some(SuiteId::Proposed), "migrated");
    let s = svc.session(4).unwrap();
    assert_eq!(s.n(), 5);
    assert!(s.invariant_holds(), "proposed session after migration");
    // From here the group uses native §7 dynamics again.
    svc.submit(4, MembershipEvent::Leave(UserId(100))).unwrap();
    let report = svc.tick();
    assert_eq!(report.rekeys_executed, 1);
    assert_eq!(svc.session(4).unwrap().n(), 4);
}

/// Fixed(Proposed) planning is the legacy planner, bit for bit.
fn arbitrary_events(n_members: u32) -> impl Strategy<Value = Vec<MembershipEvent>> {
    prop::collection::vec(any::<u64>(), 0..8).prop_map(move |words| {
        words
            .into_iter()
            .map(|w| {
                let u = UserId(((w >> 1) % u64::from(n_members + 6)) as u32);
                if w & 1 == 0 {
                    MembershipEvent::Join(u)
                } else {
                    MembershipEvent::Leave(u)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `SuitePolicy::Cheapest` returns exactly the argmin of the
    /// per-suite closed-form totals (initial + pending joins) over random
    /// group sizes, join batch sizes, and both paper hardware profiles.
    #[test]
    fn cheapest_is_the_closed_form_argmin(
        n in 2u64..200,
        k in 0u64..6,
        wlan in any::<bool>(),
        composable in any::<bool>(),
    ) {
        let cost = CostModel { composable_joins: composable, ..CostModel::default() };
        let transceiver = if wlan {
            Transceiver::wlan_spectrum24()
        } else {
            Transceiver::radio_100kbps()
        };
        let cpu = CpuModel::strongarm_133();
        let policy = SuitePolicy::Cheapest { cpu: cpu.clone(), transceiver: transceiver.clone() };
        let chosen = policy.choose(&cost, n, k);

        let priced = CostModel { cpu, radio: transceiver, composable_joins: composable };
        let mj = |id: SuiteId| {
            let mut total = priced.suite_initial_total(id, n);
            total.merge(&priced.suite_joins_total(id, n, k));
            priced.price_mj(&total)
        };
        let best = mj(chosen);
        for id in SuiteId::ALL {
            prop_assert!(
                best <= mj(id),
                "{} ({best} mJ) must not lose to {} ({} mJ) at n={n}, k={k}",
                chosen.key(), id.key(), mj(id)
            );
        }
        // Strict argmin up to ties; ties break toward the earlier column.
        for id in SuiteId::ALL {
            if id < chosen {
                prop_assert!(mj(id) > best, "tie must break toward {}", id.key());
            }
        }
    }

    /// The suite-aware planner under `Fixed(Proposed)` reproduces the
    /// legacy proposed planner bit for bit — steps, admission accounting
    /// and all.
    #[test]
    fn fixed_proposed_planning_matches_the_legacy_planner(
        n in 3u32..8,
        seed in any::<u64>(),
        events in arbitrary_events(8),
    ) {
        let mut svc = fixed_service(seed, SuiteId::Proposed);
        let members: Vec<UserId> = (0..n).map(UserId).collect();
        svc.create_group(1, &members).unwrap();
        let session = svc.session(1).unwrap();
        let cost = CostModel::default();
        let legacy = plan_group(session, &events, &cost);
        let erased = plan_group_suite(
            session,
            &events,
            &cost,
            SuiteId::Proposed,
            &SuitePolicy::Fixed(SuiteId::Proposed),
        );
        prop_assert_eq!(&legacy.steps, &erased.steps);
        prop_assert_eq!(legacy.events_applied, erased.events_applied);
        prop_assert_eq!(legacy.events_cancelled, erased.events_cancelled);
        prop_assert_eq!(&legacy.rejected, &erased.rejected);
        prop_assert_eq!(erased.suite, SuiteId::Proposed);
    }

    /// A baseline suite collapses any net change into exactly one full
    /// rekey over the final membership (or a dissolve) — never a §7 step.
    #[test]
    fn baseline_plans_are_single_full_rekeys(
        n in 2u32..8,
        seed in any::<u64>(),
        events in arbitrary_events(8),
    ) {
        let mut svc = fixed_service(seed, SuiteId::Ssn);
        let members: Vec<UserId> = (0..n).map(UserId).collect();
        svc.create_group(1, &members).unwrap();
        let session = svc.session(1).unwrap();
        let cost = CostModel::default();
        let plan = plan_group_suite(
            session,
            &events,
            &cost,
            SuiteId::Ssn,
            &SuitePolicy::Fixed(SuiteId::Ssn),
        );
        prop_assert!(plan.steps.len() <= 1, "one step at most: {:?}", plan.steps);
        if let Some(step) = plan.steps.first() {
            prop_assert!(
                matches!(
                    step,
                    egka_service::RekeyStep::FullRekey { .. } | egka_service::RekeyStep::Dissolve
                ),
                "baseline step must be a full rekey or dissolve: {step:?}"
            );
        }
        // And the admission accounting matches the legacy planner's (the
        // event-folding rules are protocol independent).
        let legacy = plan_group(session, &events, &cost);
        prop_assert_eq!(legacy.events_applied, plan.events_applied);
        prop_assert_eq!(legacy.events_cancelled, plan.events_cancelled);
        prop_assert_eq!(&legacy.rejected, &plan.rejected);
    }
}

#[test]
fn suite_closed_forms_price_the_instrumented_service_runs() {
    // A Fixed(BdEcdsa) group creation's metered ops equal the closed-form
    // initial total the planner prices — the consistency the whole
    // cost-aware selection rests on.
    for id in [SuiteId::BdEcdsa, SuiteId::Ssn, SuiteId::Proposed] {
        let mut svc = fixed_service(0xc057 ^ id as u64, id);
        svc.create_group(1, &(0..5).map(UserId).collect::<Vec<_>>())
            .unwrap();
        let measured: &OpCounts = &svc.metrics().ops;
        let expect = CostModel::default().suite_initial_total(id, 5);
        assert_eq!(measured.exps(), expect.exps(), "{}", id.key());
        assert_eq!(measured.tx_bits, expect.tx_bits, "{}", id.key());
        assert_eq!(measured.rx_bits, expect.rx_bits, "{}", id.key());
    }
}
