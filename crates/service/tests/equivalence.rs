//! Equivalence properties of epoch-coalesced rekeying.
//!
//! 1. **Correctness**: an epoch-coalesced batch of churn events leaves
//!    every surviving group with an agreed key satisfying the ring
//!    invariant and exactly the expected membership.
//! 2. **Economy**: coalescing `k` joins is never more expensive — metered
//!    operations and nominal bits, priced by the paper's energy model —
//!    than `k` sequential paper-exact Joins. (The planner prices both
//!    realizations with the closed forms the instrumented runs are
//!    asserted to match, and picks the cheaper, so this holds by
//!    construction; the test verifies it against *measured* counts.)

use std::sync::Arc;

use egka_core::{dynamics, Pkg, SecurityProfile, UserId};
use egka_energy::OpCounts;
use egka_hash::ChaChaRng;
use egka_service::{final_membership, CostModel, KeyService, MembershipEvent};
use proptest::prelude::*;
use rand::SeedableRng;

/// Shared toy PKG (parameter generation is too slow to re-run per case).
fn pkg() -> &'static Arc<Pkg> {
    use std::sync::OnceLock;
    static PKG: OnceLock<Arc<Pkg>> = OnceLock::new();
    PKG.get_or_init(|| {
        let mut rng = ChaChaRng::seed_from_u64(0x0e9a_51c3);
        Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy))
    })
}

fn paper_exact_cost() -> CostModel {
    CostModel {
        composable_joins: false,
        ..CostModel::default()
    }
}

fn service_with_group(seed: u64, n: u32) -> (KeyService, Vec<UserId>) {
    let mut svc = KeyService::builder()
        .seed(seed)
        .cost(paper_exact_cost())
        .build(Arc::clone(pkg()));
    let members: Vec<UserId> = (0..n).map(UserId).collect();
    svc.create_group(1, &members).expect("create");
    (svc, members)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Coalesced churn (joins + leaves in one epoch) preserves the ring
    /// invariant, changes the key, and lands on the expected membership.
    #[test]
    fn coalesced_epoch_is_correct(
        n in 4u32..8,
        joins in 1usize..4,
        leave_stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let (mut svc, members) = service_with_group(seed, n);
        let key0 = svc.group_key(1).unwrap().clone();
        let mut events = Vec::new();
        for j in 0..joins {
            events.push(MembershipEvent::Join(UserId(1000 + j as u32)));
        }
        for leaver in members.iter().step_by(leave_stride + 1).take(2) {
            events.push(MembershipEvent::Leave(*leaver));
        }
        for ev in &events {
            svc.submit(1, ev.clone()).unwrap();
        }
        let report = svc.tick();
        prop_assert_eq!(report.events_applied as usize, events.len());

        let expected = final_membership(&members, &events);
        let session = svc.session(1).expect("group survives");
        prop_assert!(session.invariant_holds(), "ring invariant after coalesced epoch");
        let mut got = session.member_ids();
        let mut want = expected;
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "membership after coalesced epoch");
        prop_assert_ne!(&key0, &session.key, "churn must change the key");
        // Coalescing: every event this epoch was served by at most
        // |events| rekeys, and with any batching strictly fewer.
        prop_assert!(report.rekeys_executed <= report.events_applied);
    }

    /// Economy: the coalesced plan for k joins costs no more than k
    /// sequential paper-exact Joins, measured on the meters and priced by
    /// the paper's model.
    #[test]
    fn coalesced_joins_never_beat_by_sequential(
        n in 3u32..7,
        k in 1u32..6,
        seed in any::<u64>(),
    ) {
        let (mut svc, _members) = service_with_group(seed, n);
        let start = svc.session(1).unwrap().clone();
        let cost = paper_exact_cost();

        // Baseline: k sequential paper-exact Joins, measured.
        let mut baseline_ops = OpCounts::new();
        let mut session = start.clone();
        for j in 0..k {
            let id = UserId(2000 + j);
            let key = pkg().extract(id);
            let out = dynamics::join(&session, id, &key, seed ^ u64::from(j), false);
            for r in &out.reports {
                baseline_ops.merge(&r.counts);
            }
            session = out.session;
        }
        let baseline_mj = cost.price_mj(&baseline_ops);

        // Coalesced: submit the same k joins as one epoch batch.
        for j in 0..k {
            svc.submit(1, MembershipEvent::Join(UserId(2000 + j))).unwrap();
        }
        let report = svc.tick();
        prop_assert_eq!(report.events_applied, u64::from(k));
        let coalesced_mj = report.energy_mj;

        prop_assert!(
            coalesced_mj <= baseline_mj + 1e-9,
            "coalesced {} joins cost {:.3} mJ > sequential {:.3} mJ",
            k, coalesced_mj, baseline_mj
        );

        // The planner's closed-form estimates are honest: the sequential
        // estimate prices the measured baseline exactly.
        let est_seq = cost.sequential_joins_total(u64::from(n), u64::from(k));
        prop_assert_eq!(est_seq.exps(), baseline_ops.exps(), "closed-form exps");
        prop_assert_eq!(est_seq.tx_bits, baseline_ops.tx_bits, "closed-form tx bits");
        prop_assert_eq!(est_seq.rx_bits, baseline_ops.rx_bits, "closed-form rx bits");
        prop_assert!((cost.price_mj(&est_seq) - baseline_mj).abs() < 1e-9);

        // And the resulting group is intact either way.
        let s = svc.session(1).unwrap();
        prop_assert!(s.invariant_holds());
        prop_assert_eq!(s.n() as u32, n + k);
    }

    /// A join+leave pair of the same pending user coalesces to zero cost,
    /// while the equivalent sequential execution pays a join and a leave.
    #[test]
    fn cancelled_pair_is_strictly_cheaper(n in 4u32..7, seed in any::<u64>()) {
        let (mut svc, _) = service_with_group(seed, n);
        svc.submit(1, MembershipEvent::Join(UserId(3000))).unwrap();
        svc.submit(1, MembershipEvent::Leave(UserId(3000))).unwrap();
        let report = svc.tick();
        prop_assert_eq!(report.rekeys_executed, 0);
        prop_assert_eq!(report.energy_mj, 0.0);
        prop_assert!(svc.session(1).unwrap().invariant_holds());
    }
}
