//! The sharded, epoch-batched key-management service.

use std::sync::Arc;
use std::time::Instant;

use egka_bigint::Ubig;
use egka_core::proposed;
use egka_core::{dynamics, par, GroupSession, Pkg, RunConfig, UserId};

use crate::event::{GroupId, MembershipEvent, RejectReason, ServiceError};
use crate::metrics::{add_traffic, traffic_of, EpochReport, ServiceMetrics};
use crate::plan::CostModel;
use crate::shard::{mix, GroupState, Shard};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of worker shards groups are hashed across.
    pub shards: usize,
    /// Master seed: with the same seed and the same call sequence, every
    /// key and every counter the service produces is identical.
    pub seed: u64,
    /// Hardware model the coalescing planner optimizes for, and whether
    /// Joins run in composable mode.
    pub cost: CostModel,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            seed: 0xe96a,
            cost: CostModel::default(),
        }
    }
}

/// A multi-group key-management service over the paper's protocols.
///
/// Owns many concurrent [`GroupSession`]s, hashed across single-threaded
/// worker shards, and drives them through their lifecycle with
/// **epoch-batched rekeying**: membership events queue per group and each
/// [`KeyService::tick`] collapses every queue into the minimal sequence of
/// §7 dynamics (see [`crate::plan`]).
pub struct KeyService {
    pkg: Arc<Pkg>,
    config: ServiceConfig,
    shards: Vec<Shard>,
    epoch: u64,
    metrics: ServiceMetrics,
}

impl KeyService {
    /// Creates an empty service on `pkg`'s parameters.
    ///
    /// # Panics
    /// Panics if `config.shards` is zero.
    pub fn new(pkg: Arc<Pkg>, config: ServiceConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        let shards = (0..config.shards).map(|_| Shard::default()).collect();
        KeyService {
            pkg,
            config,
            shards,
            epoch: 0,
            metrics: ServiceMetrics::default(),
        }
    }

    /// The shard index `gid` hashes to.
    pub fn shard_of(&self, gid: GroupId) -> usize {
        (mix(0x051a_6d0f_5ead, gid) % self.shards.len() as u64) as usize
    }

    /// Creates a group by running the initial authenticated GKA over
    /// `members` (extracting their ID keys from the PKG). Counts and
    /// energy are charged to the service metrics.
    pub fn create_group(&mut self, gid: GroupId, members: &[UserId]) -> Result<(), ServiceError> {
        if members.len() < 2 {
            return Err(ServiceError::GroupTooSmall);
        }
        for (i, u) in members.iter().enumerate() {
            if members[..i].contains(u) {
                return Err(ServiceError::DuplicateMember(*u));
            }
        }
        let shard = self.shard_of(gid);
        if self.shards[shard].groups.contains_key(&gid) {
            return Err(ServiceError::GroupExists(gid));
        }
        let keys: Vec<_> = members.iter().map(|&u| self.pkg.extract(u)).collect();
        let seed = mix(mix(self.config.seed, gid), 0xc4ea7e);
        let (report, session) = proposed::run(self.pkg.params(), &keys, seed, RunConfig::default());
        for node in &report.nodes {
            self.metrics.ops.merge(&node.counts);
            self.metrics.energy_mj += self.config.cost.price_mj(&node.counts);
            add_traffic(&mut self.metrics.traffic, &traffic_of(&node.counts));
        }
        self.shards[shard].groups.insert(
            gid,
            GroupState {
                session,
                created_epoch: self.epoch,
                rekeys: 0,
            },
        );
        self.metrics.groups_created += 1;
        self.metrics.groups_active += 1;
        Ok(())
    }

    /// Queues a membership event against `gid`; it will be applied (and
    /// coalesced with its neighbours) at the next [`KeyService::tick`].
    pub fn submit(&mut self, gid: GroupId, event: MembershipEvent) -> Result<(), ServiceError> {
        let shard = self.shard_of(gid);
        if !self.shards[shard].groups.contains_key(&gid) {
            return Err(ServiceError::UnknownGroup(gid));
        }
        self.shards[shard]
            .pending
            .entry(gid)
            .or_default()
            .push(event);
        self.metrics.events_submitted += 1;
        Ok(())
    }

    /// Runs one rekey epoch: resolves cross-group merges on the
    /// coordinator, then fans the shards across threads — each shard
    /// single-threaded over its own groups — and folds their reports.
    pub fn tick(&mut self) -> EpochReport {
        self.epoch += 1;
        let epoch = self.epoch;

        let mut merge_report = self.resolve_merges(epoch);

        // Fan out: shards are independent (no group spans two shards), so
        // this is lock-free parallelism; determinism is per-shard.
        let pkg = Arc::clone(&self.pkg);
        let cost = self.config.cost.clone();
        let seed = self.config.seed;
        par::par_for_each_mut(&mut self.shards, |_, shard| {
            shard.run_epoch(&pkg, &cost, epoch, seed);
        });

        for shard in &mut self.shards {
            let scratch = std::mem::take(&mut shard.scratch);
            merge_report.groups_touched += scratch.groups_touched;
            merge_report.events_applied += scratch.events_applied;
            merge_report.events_rejected += scratch.events_rejected;
            merge_report.rejections.extend(scratch.rejections);
            merge_report.events_cancelled += scratch.events_cancelled;
            merge_report.rekeys_executed += scratch.rekeys_executed;
            merge_report.full_gka_runs += scratch.full_gka_runs;
            merge_report.groups_dissolved += scratch.groups_dissolved;
            merge_report.energy_mj += scratch.energy_mj;
            merge_report.ops.merge(&scratch.ops);
            add_traffic(&mut merge_report.traffic, &scratch.traffic);
            merge_report.rekey_latencies.extend(scratch.rekey_latencies);
        }
        merge_report.epoch = epoch;
        merge_report.fold_into(&mut self.metrics);
        self.metrics.groups_active = self.shards.iter().map(|s| s.groups.len() as u64).sum();
        merge_report
    }

    /// Drains `MergeWith` events from every queue and executes them on the
    /// coordinator thread (merges are the one operation crossing shard
    /// boundaries). Host groups are processed in ascending id order;
    /// absorbed groups forward both their queued events and their pending
    /// merge requests to their absorber.
    fn resolve_merges(&mut self, epoch: u64) -> EpochReport {
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };

        // (host, target) pairs in deterministic order.
        let mut requests: Vec<(GroupId, GroupId)> = Vec::new();
        for shard in &mut self.shards {
            for (&gid, queue) in shard.pending.iter_mut() {
                queue.retain(|ev| match *ev {
                    MembershipEvent::MergeWith(other) => {
                        requests.push((gid, other));
                        false
                    }
                    _ => true,
                });
            }
        }
        if requests.is_empty() {
            return report;
        }
        requests.sort();

        // absorbed[g] = the group that now holds g's members.
        let mut absorbed: std::collections::BTreeMap<GroupId, GroupId> =
            std::collections::BTreeMap::new();
        let resolve = |absorbed: &std::collections::BTreeMap<GroupId, GroupId>, mut g: GroupId| {
            while let Some(&into) = absorbed.get(&g) {
                g = into;
            }
            g
        };

        // host → targets, following absorptions as they happen.
        let mut i = 0;
        while i < requests.len() {
            let host = resolve(&absorbed, requests[i].0);
            // Gather every request whose resolved host is `host` in this
            // contiguous run (requests are sorted by original host id).
            let mut targets: Vec<GroupId> = Vec::new();
            let first_host = requests[i].0;
            while i < requests.len() && requests[i].0 == first_host {
                let raw_target = requests[i].1;
                let target = resolve(&absorbed, raw_target);
                let ev = MembershipEvent::MergeWith(raw_target);
                if target == host {
                    report.events_rejected += 1;
                    report.rejections.push((host, ev, RejectReason::SelfMerge));
                } else if !self.group_exists(target) {
                    report.events_rejected += 1;
                    report
                        .rejections
                        .push((host, ev, RejectReason::UnknownPeerGroup));
                } else if !targets.contains(&target) {
                    targets.push(target);
                } else {
                    report.events_rejected += 1;
                    report
                        .rejections
                        .push((host, ev, RejectReason::DuplicateMerge));
                }
                i += 1;
            }
            if !self.group_exists(host) {
                report.events_rejected += targets.len() as u64;
                report.rejections.extend(
                    targets
                        .iter()
                        .map(|&t| (host, MembershipEvent::MergeWith(t), RejectReason::GroupGone)),
                );
                continue;
            }
            if targets.is_empty() {
                continue;
            }

            // Fold host + targets with merge_many (k−1 pairwise merges).
            let host_shard = self.shard_of(host);
            let host_state = self.shards[host_shard]
                .groups
                .remove(&host)
                .expect("exists");
            let (host_created_epoch, host_rekeys) = (host_state.created_epoch, host_state.rekeys);
            let mut sessions: Vec<GroupSession> = vec![host_state.session];
            for &t in &targets {
                let ts = self.shard_of(t);
                let state = self.shards[ts].groups.remove(&t).expect("exists");
                sessions.push(state.session);
            }
            let started = Instant::now();
            let refs: Vec<&GroupSession> = sessions.iter().collect();
            let seed = mix(mix(self.config.seed, host), epoch ^ 0x6d65);
            let out = dynamics::merge_many(&refs, seed);
            for r in &out.reports {
                report.ops.merge(&r.counts);
            }
            report.rekey_latencies.push(started.elapsed());
            report.rekeys_executed += targets.len() as u64; // k−1 folds
            report.events_applied += targets.len() as u64;
            report.groups_touched += 1;

            // The merged ring lives on under the host id; absorbed groups'
            // pending events forward to the host.
            for &t in &targets {
                absorbed.insert(t, host);
                self.metrics.groups_merged_away += 1;
                let ts = self.shard_of(t);
                let forwarded = self.shards[ts].pending.remove(&t).unwrap_or_default();
                if !forwarded.is_empty() {
                    let hs = self.shard_of(host);
                    self.shards[hs]
                        .pending
                        .entry(host)
                        .or_default()
                        .extend(forwarded);
                }
            }
            self.shards[host_shard].groups.insert(
                host,
                GroupState {
                    session: out.session,
                    created_epoch: host_created_epoch,
                    rekeys: host_rekeys + targets.len() as u64,
                },
            );
        }
        report.energy_mj = self.config.cost.price_mj(&report.ops);
        add_traffic(&mut report.traffic, &traffic_of(&report.ops));
        report
    }

    fn group_exists(&self, gid: GroupId) -> bool {
        self.shards[self.shard_of(gid)].groups.contains_key(&gid)
    }

    /// The group's current key, if the group is live.
    pub fn group_key(&self, gid: GroupId) -> Option<&Ubig> {
        self.shards[self.shard_of(gid)]
            .groups
            .get(&gid)
            .map(|s| &s.session.key)
    }

    /// The group's live session, if any (omniscient test/inspection view).
    pub fn session(&self, gid: GroupId) -> Option<&GroupSession> {
        self.shards[self.shard_of(gid)]
            .groups
            .get(&gid)
            .map(|s| &s.session)
    }

    /// Number of live groups.
    pub fn groups_active(&self) -> usize {
        self.shards.iter().map(|s| s.groups.len()).sum()
    }

    /// Live group ids, ascending.
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self
            .shards
            .iter()
            .flat_map(|s| s.groups.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Cumulative service metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Current epoch number (ticks completed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The PKG parameters this service runs on.
    pub fn pkg(&self) -> &Pkg {
        &self.pkg
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}
