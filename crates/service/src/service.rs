//! The sharded, epoch-batched key-management service.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use egka_bigint::Ubig;
use egka_core::suite::{suite, StepCtx, SuiteId, SuiteOutcome};
use egka_core::{par, Faults, GroupSession, Pkg, Pump, RadioSpec, UserId};
use egka_energy::OpCounts;
use egka_medium::{BatteryBank, BatteryStatus, RadioProfile};
use egka_robust::{BlameCert, EvictionPolicy, MemberEvidence, Quarantine};
use egka_sig::blame::{BlamePublic, CoordinatorKey};
use egka_store::{wal_stream_records, StoreError, TracedStore};
use egka_symmetric::Envelope;
use egka_trace::{
    group_tid, labeled, Event, Payload, Phase, StallCause, StepTrace, TraceConfig, Tracer,
    CONTROL_TID, COORD_PID, EPOCH_NS, SWEEP_NS,
};

use crate::event::{GroupId, MembershipEvent, RejectReason, ServiceError};
use crate::hashing::ShardDirectory;
use crate::health::{
    HealthReport, PhaseProfile, ShardStats, StallEvent, StallLedger, STALLED_AFTER_EPOCHS,
};
use crate::metrics::{add_per_suite, add_traffic, traffic_of, EpochReport, ServiceMetrics};
use crate::persist::{
    decode_snapshot, encode_snapshot, seal_group_state, unseal_group_state, RecoveryReport,
    SnapshotState, StoreConfig, WalRecord,
};
use crate::plan::{CostModel, SuitePolicy};
use crate::shard::{mix, EpochCtx, GroupState, RadioEpoch, Shard};

/// Runs every rekey over the virtual-time radio instead of the instant
/// medium: per-link delay, airtime contention at the profile's data rate,
/// and battery drain per tx/rx bit and compute op. Rekey latencies are
/// then reported in virtual radio milliseconds
/// ([`EpochReport::latency_quantiles_virtual`]) and a member whose budget
/// drains to zero is powered off mid-protocol and auto-detached.
#[derive(Clone, Debug)]
pub struct RadioConfig {
    /// Hardware/channel profile (transceiver, CPU, link delay, loss).
    pub profile: RadioProfile,
    /// Battery budget installed per member on first contact, microjoules.
    /// `f64::INFINITY` (the [`RadioConfig::new`] default) means mains
    /// power — drain is accounted but nobody dies. Override per member
    /// with [`KeyService::set_battery`].
    pub default_battery_uj: f64,
}

impl RadioConfig {
    /// Mains-powered nodes on `profile`.
    pub fn new(profile: RadioProfile) -> Self {
        RadioConfig {
            profile,
            default_battery_uj: f64::INFINITY,
        }
    }
}

/// Salt mixed into group ids for [`ShardDirectory`] placement (kept
/// identical to the pre-directory `jump_hash` salt so existing
/// deployments' placements — and goldens — are unchanged).
const PLACEMENT_SALT: u64 = 0x051a_6d0f_5ead;

/// Load-driven shard rebalancing policy ([`ServiceBuilder::rebalancer`]).
///
/// At the top of every [`KeyService::tick`] the rebalancer compares
/// per-shard **pending-event** counts (the one load signal that is both
/// observable *and* exactly reconstructible from the WAL, so recovery
/// replays identical decisions) and live-moves the hottest groups off any
/// shard above `max_pending` onto the coldest shard. `cooldown_epochs` is
/// the hysteresis: a group that just moved is immune for that many
/// epochs, so two near-balanced shards cannot ping-pong one group
/// forever.
#[derive(Clone, Copy, Debug)]
pub struct Rebalancer {
    /// A shard whose pending-event count exceeds this shed load.
    pub max_pending: u64,
    /// Epochs a moved group is immune from further rebalancer moves.
    pub cooldown_epochs: u64,
    /// Upper bound on rebalancer moves per tick.
    pub max_moves_per_epoch: usize,
}

impl Default for Rebalancer {
    fn default() -> Self {
        Rebalancer {
            max_pending: 16,
            cooldown_epochs: 4,
            max_moves_per_epoch: 4,
        }
    }
}

/// Internal, fully-resolved configuration (assembled by
/// [`ServiceBuilder`]).
#[derive(Clone, Debug)]
pub(crate) struct Config {
    pub shards: usize,
    pub seed: u64,
    pub cost: CostModel,
    pub step_retries: u32,
    pub radio: Option<RadioConfig>,
    pub policy: SuitePolicy,
    pub loss: f64,
    pub store: Option<StoreConfig>,
    pub trace: Tracer,
    pub parallel_pump: bool,
    pub eviction: Option<EvictionPolicy>,
    pub rebalancer: Option<Rebalancer>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            shards: 8,
            seed: 0xe96a,
            cost: CostModel::default(),
            step_retries: 2,
            radio: None,
            policy: SuitePolicy::default(),
            loss: 0.0,
            store: None,
            trace: Tracer::disabled(),
            parallel_pump: false,
            eviction: None,
            rebalancer: None,
        }
    }
}

/// Fluent construction façade for [`KeyService`] — the one place service
/// knobs are set, so examples, benches and drivers cannot drift apart on
/// ad-hoc field-poking.
///
/// ```
/// use std::sync::Arc;
/// use egka_core::{Pkg, SecurityProfile, UserId};
/// use egka_core::suite::SuiteId;
/// use egka_hash::ChaChaRng;
/// use egka_service::{KeyService, SuitePolicy};
/// use rand::SeedableRng;
///
/// let mut rng = ChaChaRng::seed_from_u64(7);
/// let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
/// let mut svc = KeyService::builder()
///     .shards(4)
///     .seed(0xfeed)
///     .suite_policy(SuitePolicy::Fixed(SuiteId::Proposed))
///     .build(pkg);
/// svc.create_group(1, &[UserId(0), UserId(1), UserId(2)]).unwrap();
/// assert_eq!(svc.suite_of(1), Some(SuiteId::Proposed));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceBuilder {
    cfg: Config,
}

impl ServiceBuilder {
    /// *Initial* number of worker shards groups are hashed across
    /// (default 8). The pool can grow and shrink at runtime via
    /// [`KeyService::add_shard`] / [`KeyService::remove_shard`]; this
    /// value stays pinned in the WAL config header and snapshot guard, so
    /// recovery always starts from the same topology and replays the
    /// resize records to reach the live one.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.cfg.shards = shards;
        self
    }

    /// Master seed: with the same seed and the same call sequence, every
    /// key and every counter the service produces is identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Hardware model the coalescing planner optimizes for, and whether
    /// Joins run in composable mode.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// How many times a loss-stalled rekey step is retried with fresh
    /// randomness before its group is timed out for the epoch (default 2).
    pub fn step_retries(mut self, retries: u32) -> Self {
        self.cfg.step_retries = retries;
        self
    }

    /// Runs every rekey over the virtual-time radio medium.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.cfg.radio = Some(radio);
        self
    }

    /// How groups pick their GKA suite (default:
    /// `SuitePolicy::Fixed(SuiteId::Proposed)`).
    pub fn suite_policy(mut self, policy: SuitePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Fans every protocol step's per-node machine work across threads
    /// (default off). Purely a wall-clock knob: the parallel sweep
    /// dispatches sends in node-index order after the machines join, so
    /// keys, meters, loss draws, radio schedules and trace streams are
    /// bit-identical to the sequential pump.
    pub fn parallel_pump(mut self, on: bool) -> Self {
        self.cfg.parallel_pump = on;
        self
    }

    /// Initial per-delivery loss probability (same contract as
    /// [`KeyService::set_loss`], which can still change it at runtime).
    ///
    /// # Panics
    /// Panics unless `0.0 <= prob < 1.0`.
    pub fn loss(mut self, prob: f64) -> Self {
        assert!((0.0..1.0).contains(&prob), "loss probability out of range");
        self.cfg.loss = prob;
        self
    }

    /// Attaches a durable [`egka_store::Store`]: every state-changing call
    /// is write-ahead logged, every applied epoch appends its commit record
    /// before the [`EpochReport`] is returned, and a compacting snapshot is
    /// installed on the configured cadence. A service built *without* a
    /// store behaves exactly as before — persistence is a pure observer of
    /// the deterministic state machine.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.cfg.store = Some(store);
        self
    }

    /// Arms the identifiable-abort eviction engine (`egka-robust`): once
    /// a group's stall streak crosses `policy.streak_threshold`, the next
    /// tick synthesizes Leave events evicting the ledger's culprits so
    /// the epoch completes over the survivors, appends a signed
    /// [`BlameCert`] to the WAL (when a store is configured), and books
    /// the evicted members into an escalating-backoff quarantine that a
    /// post-penalty Join clears. Without this call — the default — the
    /// service never evicts anybody and behaves exactly as before.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.cfg.eviction = Some(policy);
        self
    }

    /// Arms the load-driven [`Rebalancer`]: at the top of every tick,
    /// groups are live-moved off shards whose pending-event backlog
    /// exceeds the policy threshold (see the [`Rebalancer`] docs for the
    /// determinism and hysteresis contract). Without this call — the
    /// default — groups move only on explicit
    /// [`KeyService::move_group`] / pool-resize calls.
    pub fn rebalancer(mut self, policy: Rebalancer) -> Self {
        self.cfg.rebalancer = Some(policy);
        self
    }

    /// Records structured trace events (and optional metrics) for every
    /// epoch, plan, protocol step, round, retransmission, battery death
    /// and WAL append, all on the **virtual clock** — so the export is
    /// deterministic per seed. Instrumentation is purely observational:
    /// it draws no randomness and changes no keys, counters or WAL bytes.
    /// Without this call tracing is a no-op.
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = Tracer::from(trace);
        self
    }

    /// Builds the service on `pkg`'s parameters.
    pub fn build(self, pkg: Arc<Pkg>) -> KeyService {
        let mut cfg = self.cfg;
        // Under tracing, the durable backend reports its append /
        // snapshot-install spans on the dedicated store lane.
        if cfg.trace.is_enabled() {
            if let Some(sc) = &mut cfg.store {
                sc.backend = Arc::new(TracedStore::new(Arc::clone(&sc.backend), cfg.trace.clone()));
            }
        }
        let shards = (0..cfg.shards).map(|_| Shard::default()).collect();
        let health_shards = (0..cfg.shards)
            .map(|shard| ShardStats {
                shard,
                ..ShardStats::default()
            })
            .collect();
        let bank = cfg
            .radio
            .as_ref()
            .map(|r| BatteryBank::new(r.default_battery_uj));
        // The blame-signing key derives from the master seed, so a
        // recovered coordinator re-signs bit-identical certificates.
        let coordinator = cfg
            .eviction
            .map(|_| CoordinatorKey::from_seed(mix(cfg.seed, 0xb1a4e)));
        let directory = ShardDirectory::new(cfg.shards as u32, PLACEMENT_SALT);
        KeyService {
            pkg,
            loss: cfg.loss,
            config: cfg,
            shards,
            health_shards,
            directory,
            last_moved: BTreeMap::new(),
            handoffs: 0,
            ledger: StallLedger::default(),
            phase_totals: PhaseProfile::default(),
            epoch: 0,
            metrics: ServiceMetrics::default(),
            detached: BTreeSet::new(),
            bank,
            known_dead: BTreeSet::new(),
            next_lsn: 1,
            replaying: false,
            coord_ns: 0,
            quarantine: Quarantine::default(),
            coordinator,
            blame_certs: Vec::new(),
            replay_certs: Vec::new(),
            replay_fault: None,
        }
    }

    /// Rebuilds a service from this builder's [`ServiceBuilder::store`]:
    /// restores the latest snapshot (unsealing session-key material), then
    /// replays the WAL tail through the ordinary entry points — re-running
    /// each committed epoch's rekeys deterministically — until the
    /// reconstructed shards are bit-for-bit the pre-crash state.
    ///
    /// The builder must carry the **same configuration** (seed, shards,
    /// policy, radio, cost) the original service ran with; the snapshot
    /// pins seed and shard count and a mismatch is reported as
    /// [`StoreError::Corrupt`] rather than silently diverging. Commands
    /// whose commit never reached the log (a torn tail) are gone — exactly
    /// the write-ahead contract: an unacknowledged epoch never happened.
    ///
    /// # Panics
    /// Panics if no store was configured on the builder.
    pub fn recover(self, pkg: Arc<Pkg>) -> Result<(KeyService, RecoveryReport), StoreError> {
        let store = self
            .cfg
            .store
            .clone()
            .expect("ServiceBuilder::recover needs ServiceBuilder::store");
        let mut svc = self.build(pkg);
        let mut report = RecoveryReport::default();
        svc.replaying = true;
        if let Some(snap) = store.backend.snapshot_bytes()? {
            let restored = decode_snapshot(&snap, &store, &svc.pkg)?;
            if restored.shards != svc.config.shards as u32 || restored.seed != svc.config.seed {
                svc.replaying = false;
                return Err(StoreError::Corrupt {
                    what: "snapshot was cut under a different service configuration",
                    offset: 0,
                });
            }
            svc.epoch = restored.epoch;
            svc.loss = restored.loss;
            // Install the shard directory (live pool size + pinned
            // placements) *before* placing any group: `shard_of` routes
            // through it, so restoring groups first would scatter them
            // across the initial topology instead of the snapshotted one.
            svc.directory = ShardDirectory::new(restored.dir_shards, PLACEMENT_SALT);
            svc.directory.set_overrides(restored.overrides.into_iter());
            svc.last_moved = restored.last_moved.into_iter().collect();
            svc.resize_pool(restored.dir_shards as usize);
            svc.detached = restored.detached.into_iter().collect();
            svc.known_dead = restored.known_dead.into_iter().collect();
            match &svc.bank {
                Some(bank) => {
                    for (user, capacity_uj, spent_uj) in restored.batteries {
                        bank.set_capacity(user, capacity_uj);
                        let _ = bank.debit(user, spent_uj);
                    }
                }
                // Dropping a drained battery ledger would resurrect dead
                // motes and silently diverge from the acknowledged state —
                // the same class of mismatch as a wrong seed.
                None if !restored.batteries.is_empty() => {
                    svc.replaying = false;
                    return Err(StoreError::Corrupt {
                        what:
                            "snapshot carries a battery ledger but the builder has no radio config",
                        offset: 0,
                    });
                }
                None => {}
            }
            for (gid, state) in restored.groups {
                let shard = svc.shard_of(gid);
                svc.shards[shard].groups.insert(gid, state);
            }
            for (gid, events) in restored.pending {
                let shard = svc.shard_of(gid);
                svc.shards[shard].pending.insert(gid, events);
            }
            svc.ledger = StallLedger::restore(
                restored
                    .stall_groups
                    .into_iter()
                    .map(|(gid, consecutive, cumulative, last_cause)| {
                        (
                            gid,
                            crate::health::MemberStall {
                                consecutive,
                                cumulative,
                                last_cause,
                            },
                        )
                    })
                    .collect(),
                restored
                    .stall_members
                    .into_iter()
                    .map(|(gid, member, consecutive, cumulative, last_cause)| {
                        crate::health::StallRecord {
                            group: gid,
                            member: UserId(member),
                            stall: crate::health::MemberStall {
                                consecutive,
                                cumulative,
                                last_cause,
                            },
                        }
                    })
                    .collect(),
            );
            svc.quarantine = Quarantine::from_rows(&restored.quarantine);
            svc.blame_certs = restored
                .blame_certs
                .iter()
                .map(|bytes| {
                    BlameCert::decode(bytes).ok_or(StoreError::Corrupt {
                        what: "snapshot blame certificate malformed",
                        offset: 0,
                    })
                })
                .collect::<Result<_, _>>()?;
            svc.metrics.groups_active = svc.groups_active() as u64;
            svc.next_lsn = restored.next_lsn;
            report.snapshot_epoch = Some(restored.epoch);
        }
        let watermark = svc.next_lsn;
        // The WAL is striped across streams (stream 0 = control, stream
        // k+1 = shard k's group-addressed records). Each stream is an
        // independent clean prefix; the global command order is the LSN
        // order, so decode every stream and merge-sort by LSN before
        // replaying.
        let mut tail: Vec<(u64, Vec<u8>, WalRecord)> = Vec::new();
        for stream in store.backend.wal_streams()? {
            for payload in wal_stream_records(store.backend.as_ref(), stream)? {
                let (lsn, record) =
                    WalRecord::decode(&payload).map_err(|_| StoreError::Corrupt {
                        what: "wal record malformed",
                        offset: 0,
                    })?;
                if lsn < watermark {
                    // Tail that predates the snapshot (the file backend's
                    // crash window between snapshot install and
                    // truncation): already folded in, skip.
                    continue;
                }
                tail.push((lsn, payload, record));
            }
        }
        tail.sort_by_key(|&(lsn, _, _)| lsn);
        for (lsn, payload, record) in tail {
            if svc.trace_on() {
                let ts = svc.coord_ts();
                svc.config.trace.emit(
                    Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "wal.replay").with(
                        Payload::Lsn {
                            lsn,
                            bytes: payload.len() as u64,
                        },
                    ),
                );
            }
            svc.apply_replayed(record)?;
            svc.next_lsn = lsn + 1;
            report.records_replayed += 1;
        }
        report.epochs_replayed = svc.metrics.epochs;
        report.groups_recovered = svc.groups_active() as u64;
        // An Evict record whose epoch commit never reached the log is a
        // torn tail: the eviction never happened (write-ahead contract)
        // and the resumed service will re-derive and re-log it.
        svc.replay_certs.clear();
        svc.replaying = false;
        Ok((svc, report))
    }
}

/// A multi-group key-management service over the paper's protocols.
///
/// Owns many concurrent [`GroupSession`]s, hashed across single-threaded
/// worker shards, and drives them through their lifecycle with
/// **epoch-batched rekeying**: membership events queue per group and each
/// [`KeyService::tick`] collapses every queue into the minimal sequence of
/// §7 dynamics (see [`crate::plan`]).
pub struct KeyService {
    pkg: Arc<Pkg>,
    config: Config,
    shards: Vec<Shard>,
    /// Per-shard cumulative load/outcome counters — observability only,
    /// never persisted; recovery re-accumulates them over the replayed
    /// WAL tail.
    health_shards: Vec<ShardStats>,
    /// The group→shard map: jump-hash placement plus handoff overrides.
    /// Snapshotted, and reshaped by replayed resize/move records, so
    /// recovery rebuilds placement bit-for-bit.
    directory: ShardDirectory,
    /// Epoch each group last moved at — the rebalancer's hysteresis
    /// stamps. Snapshotted alongside the directory.
    last_moved: BTreeMap<GroupId, u64>,
    /// Live handoffs performed — salts the transit seal so no two sealed
    /// group blobs share an IV stream.
    handoffs: u64,
    /// Per-member stall attribution (see [`StallLedger`]).
    ledger: StallLedger,
    /// Where tick time has gone, cumulatively, across the service's life.
    phase_totals: PhaseProfile,
    epoch: u64,
    metrics: ServiceMetrics,
    /// Per-delivery loss probability injected into every rekey step's
    /// medium (0.0 = reliable).
    loss: f64,
    /// Members currently powered off: any group whose epoch needs one of
    /// them stalls (and only that group — scheduler liveness).
    detached: BTreeSet<UserId>,
    /// Battery budgets under a radio config (`None` off-radio). Shared by
    /// every epoch's protocol executions, so drain accumulates for the
    /// life of the service.
    bank: Option<BatteryBank>,
    /// Battery deaths already folded into `detached` / `nodes_died`.
    known_dead: BTreeSet<UserId>,
    /// Log sequence number of the next WAL record (monotone across
    /// compaction, so a stale post-snapshot tail replays exactly once).
    next_lsn: u64,
    /// True while `recover` replays the log: replayed commands must not be
    /// re-appended, and ticks must not cut snapshots.
    replaying: bool,
    /// The coordinator's position on its trace lanes (virtual ns): jumps
    /// to each epoch's slot and ticks one `SWEEP_NS` per coordinator-side
    /// event between slots. Only advanced under tracing.
    coord_ns: u64,
    /// The eviction penalty box (always empty without an armed
    /// [`ServiceBuilder::eviction`] policy). Snapshotted with the ledger
    /// so recovery re-derives identical readmission decisions.
    quarantine: Quarantine,
    /// The blame-signing key, derived from the master seed when an
    /// eviction policy is armed.
    coordinator: Option<CoordinatorKey>,
    /// Every blame certificate this service has signed (or re-derived
    /// during replay), in eviction order.
    blame_certs: Vec<BlameCert>,
    /// Certificates read from the WAL tail during replay, awaiting the
    /// replayed tick that must re-derive them bit for bit.
    replay_certs: Vec<BlameCert>,
    /// A divergence detected inside a replayed tick (the tick itself
    /// cannot error); surfaced as corruption at the epoch-commit record.
    replay_fault: Option<&'static str>,
}

impl KeyService {
    /// Starts the fluent construction façade; see [`ServiceBuilder`].
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    fn trace_on(&self) -> bool {
        self.config.trace.is_enabled()
    }

    /// Advances the coordinator's lane clock by one sweep and returns it —
    /// every coordinator-side event gets a fresh, strictly monotone
    /// virtual timestamp.
    fn coord_ts(&mut self) -> u64 {
        self.coord_ns += SWEEP_NS;
        self.coord_ns
    }

    /// Appends one command to the write-ahead log, unless none is
    /// configured or the command is itself being replayed by `recover`.
    ///
    /// Durability failures are **fatal by design** (fail-stop): a service
    /// that acknowledged state it could not log would break the recovery
    /// contract, so an append error panics rather than limping on.
    fn log(&mut self, record: WalRecord) {
        if self.replaying {
            return;
        }
        if self.config.store.is_none() {
            return;
        }
        // The very first record of a fresh log is a config header, so that
        // a log-only recovery (no snapshot cut yet) validates seed and
        // shard count exactly like the snapshot path does.
        if self.next_lsn == 1 && !matches!(record, WalRecord::ConfigHeader { .. }) {
            self.log(WalRecord::ConfigHeader {
                shards: self.config.shards as u32,
                seed: self.config.seed,
            });
        }
        // Group-addressed records are charged to their shard's WAL-byte
        // ledger *and* routed to that shard's WAL stream (stream k+1), so
        // appends against different shards never serialize through one
        // log. Coordinator-wide records (epoch commits, config, fault
        // toggles, resize/move records) stay unattributed on stream 0.
        let byte_shard = match &record {
            WalRecord::CreateGroup { gid, .. } | WalRecord::Submit { gid, .. } => {
                Some(self.shard_of(*gid))
            }
            _ => None,
        };
        let stream = byte_shard.map_or(0, |s| s as u32 + 1);
        let store = self.config.store.as_ref().expect("checked above");
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let encoded = record.encode(lsn);
        store
            .backend
            .append_stream(stream, &encoded)
            .expect("write-ahead log append must not fail (fail-stop durability)");
        if let Some(s) = byte_shard {
            self.health_shards[s].wal_bytes += encoded.len() as u64;
        }
        self.metrics.wal_appends += 1;
        self.metrics.store_syncs = store.backend.sync_count();
        if self.trace_on() {
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "wal.append").with(
                    Payload::Lsn {
                        lsn,
                        bytes: encoded.len() as u64,
                    },
                ),
            );
            if let Some(reg) = self.config.trace.registry() {
                reg.add("wal_appends", 1);
            }
        }
    }

    /// Re-applies one replayed WAL command through the ordinary entry
    /// points. A command the live service would reject describes a history
    /// that cannot have happened — typed corruption, not a panic.
    fn apply_replayed(&mut self, record: WalRecord) -> Result<(), StoreError> {
        let rejected = |what| StoreError::Corrupt { what, offset: 0 };
        match record {
            WalRecord::ConfigHeader { shards, seed } => {
                if shards != self.config.shards as u32 || seed != self.config.seed {
                    return Err(rejected(
                        "wal was written under a different service configuration",
                    ));
                }
                Ok(())
            }
            WalRecord::CreateGroup { gid, members } => self
                .create_group(gid, &members)
                .map_err(|_| rejected("replayed create_group was rejected")),
            WalRecord::Submit { gid, event } => self
                .submit(gid, event)
                .map_err(|_| rejected("replayed submit was rejected")),
            WalRecord::Detach(user) => {
                self.detach_member(user);
                Ok(())
            }
            WalRecord::Attach(user) => {
                self.attach_member(user);
                Ok(())
            }
            WalRecord::SetBattery { user, capacity_uj } => {
                // set_battery is a silent no-op off-radio, but a *logged*
                // battery install proves the original service had a bank —
                // dropping the ledger here would diverge silently, exactly
                // like the snapshot-path mismatch.
                if self.bank.is_none() {
                    return Err(rejected(
                        "wal has a battery install but the builder has no radio config",
                    ));
                }
                self.set_battery(user, capacity_uj);
                Ok(())
            }
            WalRecord::SetLoss(prob) => {
                if !(0.0..1.0).contains(&prob) {
                    return Err(rejected("replayed loss probability out of range"));
                }
                self.set_loss(prob);
                Ok(())
            }
            WalRecord::EpochCommit { epoch } => {
                let _ = self.tick();
                if self.epoch != epoch {
                    return Err(rejected("replayed epoch commit out of sequence"));
                }
                if let Some(what) = self.replay_fault.take() {
                    return Err(rejected(what));
                }
                // Anything the logged epoch evicted that the replayed
                // tick did not re-derive is divergence.
                if !self.replay_certs.is_empty() {
                    return Err(rejected(
                        "logged eviction was not re-derived by the replayed epoch",
                    ));
                }
                Ok(())
            }
            WalRecord::Evict { cert } => {
                let Some(coordinator) = &self.coordinator else {
                    return Err(rejected(
                        "wal has an eviction but the builder has no eviction policy",
                    ));
                };
                let cert = BlameCert::decode(&cert)
                    .ok_or_else(|| rejected("logged blame certificate malformed"))?;
                if !cert.verify(&coordinator.public()) {
                    return Err(rejected(
                        "logged blame certificate failed signature verification",
                    ));
                }
                self.replay_certs.push(cert);
                Ok(())
            }
            WalRecord::AddShard { shards } => {
                if shards as usize != self.shards.len() + 1 {
                    return Err(rejected("replayed shard add out of sequence"));
                }
                self.add_shard();
                Ok(())
            }
            WalRecord::RemoveShard { shards } => {
                if shards as usize + 1 != self.shards.len() {
                    return Err(rejected("replayed shard removal out of sequence"));
                }
                self.remove_shard(self.shards.len() - 1)
                    .map(|_| ())
                    .map_err(|_| rejected("replayed shard removal was rejected"))
            }
            WalRecord::MoveGroup { gid, to } => self
                .move_group(gid, to as usize)
                .map_err(|_| rejected("replayed group move was rejected")),
        }
    }

    /// The shard `gid` lives on right now: its [`ShardDirectory`] pin if
    /// a handoff moved it, else its jump-hash home — so growing the pool
    /// relocates only `≈ 1/(N+1)` of the groups (see [`crate::hashing`]).
    pub fn shard_of(&self, gid: GroupId) -> usize {
        self.directory.locate(gid) as usize
    }

    /// Live shard count (grows and shrinks with
    /// [`KeyService::add_shard`] / [`KeyService::remove_shard`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Grows the pool by one shard and live-moves every unpinned group
    /// whose jump-hash home changed onto it — by the jump-hash contract,
    /// `≈ 1/(N+1)` of the groups, each handed off through the sealed
    /// snapshot codec (state sealed, installed on the target shard,
    /// directory flipped; no replay, no stalled epochs). Pending queues
    /// travel with their groups. Returns the new shard's index.
    pub fn add_shard(&mut self) -> usize {
        let new_count = self.shards.len() + 1;
        self.resize_pool(new_count);
        let resident: Vec<GroupId> = self.group_ids();
        let moved = self.directory.grow(new_count as u32, resident.into_iter());
        for &(gid, to) in &moved {
            // Movers were resident on their *old* jump-hash home; the
            // directory already points at the new one, so hand the state
            // over from where it physically sits.
            let from = self
                .shards
                .iter()
                .position(|s| s.groups.contains_key(&gid))
                .expect("mover is resident");
            self.relocate_group(gid, from, to as usize);
        }
        self.metrics.shards_added += 1;
        if self.trace_on() {
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "shard.add").with(
                    Payload::Epoch {
                        epoch: self.epoch,
                        groups: moved.len() as u64,
                    },
                ),
            );
        }
        self.log(WalRecord::AddShard {
            shards: new_count as u32,
        });
        new_count - 1
    }

    /// Retires shard `shard` (which must be the highest-index shard —
    /// jump-hash bucket spaces are contiguous), live-moving its resident
    /// groups onto their homes at the reduced count and absorbing its
    /// cumulative stats into shard 0's so the
    /// stats-sum-to-[`ServiceMetrics`] partition invariant survives.
    ///
    /// Refuses with [`ServiceError::ShardBusy`] while any resident group
    /// has pending events (an in-flight round): relocating it would drop
    /// queued work on the floor. Tick the backlog dry first.
    pub fn remove_shard(&mut self, shard: usize) -> Result<(), ServiceError> {
        let live = self.shards.len();
        if shard >= live {
            return Err(ServiceError::NoSuchShard(shard));
        }
        if live == 1 {
            return Err(ServiceError::LastShard);
        }
        if shard != live - 1 {
            return Err(ServiceError::ShardNotHighest {
                shard,
                highest: live - 1,
            });
        }
        if let Some((&gid, _)) = self.shards[shard]
            .pending
            .iter()
            .find(|(_, q)| !q.is_empty())
        {
            return Err(ServiceError::ShardBusy { shard, group: gid });
        }
        let placed: Vec<(GroupId, u32)> = self
            .group_ids()
            .into_iter()
            .map(|gid| (gid, self.directory.locate(gid)))
            .collect();
        let moved = self.directory.shrink((live - 1) as u32, placed.into_iter());
        for &(gid, to) in &moved {
            self.relocate_group(gid, shard, to as usize);
        }
        let retired = self.health_shards.pop().expect("pool is non-empty");
        self.health_shards[0].absorb(&retired);
        self.shards.pop();
        debug_assert!(retired.shard == shard);
        self.metrics.shards_removed += 1;
        if self.trace_on() {
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "shard.remove").with(
                    Payload::Epoch {
                        epoch: self.epoch,
                        groups: moved.len() as u64,
                    },
                ),
            );
        }
        self.log(WalRecord::RemoveShard {
            shards: (live - 1) as u32,
        });
        Ok(())
    }

    /// Live-moves `gid` onto shard `to` and pins it there (moving a group
    /// back onto its jump-hash home drops the pin instead). The handoff
    /// runs through the sealed snapshot codec between epochs: no replay,
    /// no stalled epochs, and the pending queue travels along. Records
    /// the move for the rebalancer's hysteresis.
    pub fn move_group(&mut self, gid: GroupId, to: usize) -> Result<(), ServiceError> {
        if to >= self.shards.len() {
            return Err(ServiceError::NoSuchShard(to));
        }
        if !self.group_exists(gid) {
            return Err(ServiceError::UnknownGroup(gid));
        }
        let from = self.shard_of(gid);
        if from != to {
            self.relocate_group(gid, from, to);
        }
        self.directory.pin(gid, to as u32);
        self.last_moved.insert(gid, self.epoch);
        if self.trace_on() {
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::Instant, ts, COORD_PID, group_tid(gid), "group.move").with(
                    Payload::Epoch {
                        epoch: self.epoch,
                        groups: to as u64,
                    },
                ),
            );
        }
        self.log(WalRecord::MoveGroup { gid, to: to as u32 });
        Ok(())
    }

    /// Grows (or shrinks) the physical pool and its stats rows to `n`
    /// entries. Placement is not touched — callers adjust the directory.
    fn resize_pool(&mut self, n: usize) {
        while self.shards.len() < n {
            self.health_shards.push(ShardStats {
                shard: self.shards.len(),
                ..ShardStats::default()
            });
            self.shards.push(Shard::default());
        }
        self.shards.truncate(n);
        self.health_shards.truncate(n);
    }

    /// One live handoff: seal the group's state through the snapshot
    /// codec, install it on the target shard, move the pending queue.
    /// The seal/unseal round trip is deliberate — every handoff proves
    /// the state is exactly as portable as a snapshot says it is, and a
    /// failure surfaces as the same typed corruption.
    fn relocate_group(&mut self, gid: GroupId, from: usize, to: usize) {
        let state = self.shards[from]
            .groups
            .remove(&gid)
            .expect("relocating a resident group");
        let envelope = self
            .config
            .store
            .as_ref()
            .map(StoreConfig::envelope)
            .unwrap_or_else(|| Envelope::from_key_material(&[0u8; 32]));
        self.handoffs += 1;
        let seal_seed = mix(mix(self.config.seed, gid), self.handoffs ^ 0x6d0e);
        let sealed = seal_group_state(&state, &envelope, seal_seed);
        drop(state);
        let restored = unseal_group_state(&sealed, &envelope, &self.pkg)
            .expect("transit-sealed group state must round-trip");
        self.shards[to].groups.insert(gid, restored);
        if let Some(queue) = self.shards[from].pending.remove(&gid) {
            if !queue.is_empty() {
                self.shards[to].pending.insert(gid, queue);
            }
        }
        self.metrics.groups_moved += 1;
    }

    /// The tick-top rebalancer pass: while any shard's pending backlog
    /// exceeds the armed policy's threshold, move its hottest
    /// off-cooldown group to the coldest shard. Runs *before* the epoch
    /// counter increments, and is suppressed during replay — the logged
    /// [`WalRecord::MoveGroup`] records reproduce the exact moves, which
    /// is what keeps recovery bit-identical even though the load stats
    /// driving the decisions are not persisted.
    fn rebalance(&mut self) {
        if self.replaying {
            return;
        }
        let Some(rb) = self.config.rebalancer else {
            return;
        };
        if self.shards.len() < 2 {
            return;
        }
        for _ in 0..rb.max_moves_per_epoch {
            let loads: Vec<u64> = self
                .shards
                .iter()
                .map(|s| s.pending.values().map(|q| q.len() as u64).sum())
                .collect();
            let mut hot = 0;
            let mut cold = 0;
            for i in 1..loads.len() {
                if loads[i] > loads[hot] {
                    hot = i;
                }
                if loads[i] < loads[cold] {
                    cold = i;
                }
            }
            if loads[hot] <= rb.max_pending || hot == cold {
                break;
            }
            // Hottest group: largest queue, ties to the lowest group id
            // (BTreeMap iteration is ascending, strict `>` keeps the
            // first). Skip groups still inside their cooldown window.
            let mut candidate: Option<(GroupId, usize)> = None;
            for (&gid, queue) in &self.shards[hot].pending {
                if queue.is_empty() {
                    continue;
                }
                let cooled = self
                    .last_moved
                    .get(&gid)
                    .is_none_or(|&at| self.epoch >= at + rb.cooldown_epochs);
                if !cooled {
                    continue;
                }
                if candidate.is_none_or(|(_, len)| queue.len() > len) {
                    candidate = Some((gid, queue.len()));
                }
            }
            let Some((gid, _)) = candidate else {
                break;
            };
            self.move_group(gid, cold)
                .expect("rebalancer moves between live shards cannot fail");
        }
    }

    /// Injects per-delivery loss into every subsequent rekey step's
    /// medium. Loss-stalled steps are retried (`step_retries`) with fresh
    /// randomness — the paper's "all members retransmit" path, driven by
    /// the scheduler. `0.0` restores reliable delivery.
    ///
    /// # Panics
    /// Panics unless `0.0 <= prob < 1.0`.
    pub fn set_loss(&mut self, prob: f64) {
        assert!((0.0..1.0).contains(&prob), "loss probability out of range");
        self.loss = prob;
        self.log(WalRecord::SetLoss(prob));
    }

    /// Marks `member` as powered off: any group whose next rekey needs it
    /// stalls and times out for the epoch (keeping its pre-epoch key,
    /// requeueing its events) while every other group proceeds.
    pub fn detach_member(&mut self, member: UserId) {
        self.detached.insert(member);
        self.log(WalRecord::Detach(member));
    }

    /// Reverses [`KeyService::detach_member`]; requeued events apply at
    /// the next tick. A battery-dead member stays down — its radio has no
    /// power to come back with.
    pub fn attach_member(&mut self, member: UserId) {
        if !self.known_dead.contains(&member) {
            self.detached.remove(&member);
        }
        self.log(WalRecord::Attach(member));
    }

    /// Installs `member`'s battery budget (microjoules), replacing the
    /// radio config's default. No-op off-radio.
    pub fn set_battery(&mut self, member: UserId, capacity_uj: f64) {
        if let Some(bank) = &self.bank {
            bank.set_capacity(member.0, capacity_uj);
            self.log(WalRecord::SetBattery {
                user: member,
                capacity_uj,
            });
        }
    }

    /// Per-member battery budgets (spent/remaining/dead), ascending by
    /// id. Empty off-radio or before any radio traffic.
    pub fn battery_status(&self) -> Vec<BatteryStatus> {
        self.bank.as_ref().map_or_else(Vec::new, |b| b.snapshot())
    }

    /// Members whose battery has drained to zero, ascending. Each was
    /// auto-detached at the end of the epoch it died in.
    pub fn dead_members(&self) -> Vec<UserId> {
        self.bank
            .as_ref()
            .map_or_else(Vec::new, |b| b.dead().into_iter().map(UserId).collect())
    }

    /// Creates a group by running the initial authenticated GKA over
    /// `members` (extracting their ID keys from the PKG), under the suite
    /// the service's [`SuitePolicy`] picks for this group size. Counts
    /// and energy are charged to the service metrics.
    ///
    /// Creation is **provisioning**, not radio traffic: like the PKG's
    /// `Extract`, it happens before the field powers up, so it runs on
    /// the instant medium and draws no battery even under a radio config.
    /// What it cannot do is raise the dead — founding a group with a
    /// detached or battery-dead member is rejected.
    pub fn create_group(&mut self, gid: GroupId, members: &[UserId]) -> Result<(), ServiceError> {
        if members.len() < 2 {
            return Err(ServiceError::GroupTooSmall);
        }
        for (i, u) in members.iter().enumerate() {
            if members[..i].contains(u) {
                return Err(ServiceError::DuplicateMember(*u));
            }
            if self.detached.contains(u) || self.bank.as_ref().is_some_and(|b| b.is_dead(u.0)) {
                return Err(ServiceError::MemberUnavailable(*u));
            }
        }
        let shard = self.shard_of(gid);
        if self.shards[shard].groups.contains_key(&gid) {
            return Err(ServiceError::GroupExists(gid));
        }
        let suite_id = self
            .config
            .policy
            .choose(&self.config.cost, members.len() as u64, 0);
        let seed = mix(mix(self.config.seed, gid), 0xc4ea7e);
        let strace = if self.trace_on() {
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::Begin, ts, COORD_PID, group_tid(gid), "create").with(
                    Payload::Plan {
                        suite: suite_id.key(),
                        steps: 1,
                    },
                ),
            );
            Some(StepTrace::new(COORD_PID, gid, ts))
        } else {
            None
        };
        let faults_for = |_seed: u64| Faults {
            trace: strace.clone(),
            parallel: self.config.parallel_pump,
            ..Faults::none()
        };
        let ctx = StepCtx {
            pkg: &self.pkg,
            seed,
            composable_joins: self.config.cost.composable_joins,
            faults_for: &faults_for,
        };
        let mut run = suite(suite_id).initial(&ctx, self.pkg.params(), members);
        loop {
            match run.pump() {
                Pump::Done => break,
                Pump::Progressed => {}
                other => panic!("group creation on a reliable medium cannot {other:?}"),
            }
        }
        let out = run.finish();
        let mut created_mj = 0.0;
        for node in &out.reports {
            self.metrics.ops.merge(&node.counts);
            created_mj += self.config.cost.price_mj(&node.counts);
            add_traffic(&mut self.metrics.traffic, &traffic_of(&node.counts));
        }
        self.metrics.energy_mj += created_mj;
        // Provisioning energy lands on the shard the group will live on
        // (creations count no shard rekey — they are not epoch dynamics).
        self.health_shards[shard].energy_mj += created_mj;
        let usage = self.metrics.per_suite.entry(suite_id).or_default();
        usage.rekeys += 1;
        usage.energy_mj += created_mj;
        if let Some(st) = strace {
            st.close();
            let end = st.end_ns();
            self.config.trace.emit_all(st.drain());
            self.config.trace.emit(
                Event::new(Phase::End, end, COORD_PID, group_tid(gid), "create").with(
                    Payload::Rekey {
                        suite: suite_id.key(),
                        rekeys: 1,
                        mj: created_mj,
                    },
                ),
            );
            self.coord_ns = self.coord_ns.max(end);
            if let Some(reg) = self.config.trace.registry() {
                reg.add("groups_created", 1);
            }
        }
        self.shards[shard].groups.insert(
            gid,
            GroupState {
                session: out.session,
                suite: suite_id,
                created_epoch: self.epoch,
                rekeys: 0,
            },
        );
        self.metrics.groups_created += 1;
        self.metrics.groups_active += 1;
        self.log(WalRecord::CreateGroup {
            gid,
            members: members.to_vec(),
        });
        Ok(())
    }

    /// Queues a membership event against `gid`; it will be applied (and
    /// coalesced with its neighbours) at the next [`KeyService::tick`].
    pub fn submit(&mut self, gid: GroupId, event: MembershipEvent) -> Result<(), ServiceError> {
        let shard = self.shard_of(gid);
        if !self.shards[shard].groups.contains_key(&gid) {
            return Err(ServiceError::UnknownGroup(gid));
        }
        // Quarantine gate: an evicted member's Join is refused until its
        // penalty elapses; the first post-penalty Join readmits it. The
        // event applies at the *next* epoch, so that is the epoch the
        // penalty is judged against.
        if let MembershipEvent::Join(u) = &event {
            if let Some(until_epoch) = self.quarantine.pending_until(u.0) {
                if self.epoch + 1 < until_epoch {
                    return Err(ServiceError::Quarantined {
                        user: *u,
                        until_epoch,
                    });
                }
                self.quarantine.readmit(u.0);
                self.metrics.members_readmitted += 1;
            }
        }
        self.shards[shard]
            .pending
            .entry(gid)
            .or_default()
            .push(event.clone());
        self.metrics.events_submitted += 1;
        self.log(WalRecord::Submit { gid, event });
        Ok(())
    }

    /// Runs one rekey epoch: resolves cross-group merges on the
    /// coordinator, then fans the shards across threads — each shard a
    /// single-threaded *scheduler* interleaving its pending groups' round
    /// machines — and folds their reports.
    pub fn tick(&mut self) -> EpochReport {
        // Rebalance *before* the epoch counter increments: the cooldown
        // stamps written here must match the ones a WAL replay produces,
        // and replayed MoveGroup records land before their epoch's
        // EpochCommit advances the counter.
        self.rebalance();
        self.epoch += 1;
        let epoch = self.epoch;
        let trace_enabled = self.trace_on();
        if trace_enabled {
            // Each epoch gets a fixed slot on the virtual timeline; the
            // coordinator's own events tick forward inside it.
            self.coord_ns = epoch.saturating_mul(EPOCH_NS).max(self.coord_ns + SWEEP_NS);
            self.config.trace.emit(
                Event::new(Phase::Begin, self.coord_ns, COORD_PID, CONTROL_TID, "epoch").with(
                    Payload::Epoch {
                        epoch,
                        groups: self.groups_active() as u64,
                    },
                ),
            );
        }

        // Eviction synthesis runs before merge resolution and the shard
        // fan-out, so the synthesized Leaves are in the queues this
        // epoch's planners drain — the stalled group completes *this*
        // tick, over the survivors.
        let (evicted_pairs, certs_signed) = self.synthesize_evictions(epoch);

        let merges_started = Instant::now();
        let (mut merge_report, deferred_merges) = self.resolve_merges(epoch);
        merge_report.phases.execute.wall += merges_started.elapsed();
        merge_report.members_evicted = evicted_pairs.len() as u64;
        merge_report.blame_certs = certs_signed;
        merge_report.evicted = evicted_pairs;

        // Fan out: shards are independent (no group spans two shards), so
        // this is lock-free parallelism; determinism is per-shard. The
        // battery bank *is* shared across shards, but each cell is only
        // ever debited by its owner's group, so drain order per cell stays
        // deterministic too.
        let pkg = Arc::clone(&self.pkg);
        let cost = self.config.cost.clone();
        let policy = self.config.policy.clone();
        let seed = self.config.seed;
        let detached: Vec<UserId> = self.detached.iter().copied().collect();
        let loss = self.loss;
        let step_retries = self.config.step_retries;
        let parallel_pump = self.config.parallel_pump;
        let radio = self.radio_epoch();
        par::par_for_each_mut(&mut self.shards, |i, shard| {
            shard.run_epoch(&EpochCtx {
                pkg: &pkg,
                cost: &cost,
                policy: &policy,
                epoch,
                service_seed: seed,
                loss,
                detached: &detached,
                step_retries,
                radio: radio.as_ref(),
                pid: i as u32 + 1,
                trace_enabled,
                parallel_pump,
            });
        });

        let commit_started = Instant::now();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            // Shards buffered their events locally during the parallel
            // phase; draining them here, in shard order, keeps the global
            // event stream deterministic.
            if trace_enabled {
                self.config
                    .trace
                    .emit_all(std::mem::take(&mut shard.scratch_trace));
            }
            let scratch = std::mem::take(&mut shard.scratch);
            let hs = &mut self.health_shards[i];
            hs.events_applied += scratch.events_applied;
            hs.events_rejected += scratch.events_rejected;
            hs.events_cancelled += scratch.events_cancelled;
            hs.rekeys_executed += scratch.rekeys_executed;
            hs.rekeys_failed += scratch.rekeys_failed;
            hs.groups_stalled += scratch.groups_stalled;
            hs.steps_retried += scratch.steps_retried;
            hs.energy_mj += scratch.energy_mj;
            for &ms in &scratch.rekey_latencies_virtual_ms {
                hs.latency_virtual.observe(ms);
            }
            merge_report.phases.add(&scratch.phases);
            merge_report.stall_events.extend(scratch.stall_events);
            merge_report.rekeyed_groups.extend(scratch.rekeyed_groups);
            merge_report.groups_touched += scratch.groups_touched;
            merge_report.events_applied += scratch.events_applied;
            merge_report.events_rejected += scratch.events_rejected;
            merge_report.rejections.extend(scratch.rejections);
            merge_report.events_cancelled += scratch.events_cancelled;
            merge_report.rekeys_executed += scratch.rekeys_executed;
            merge_report.full_gka_runs += scratch.full_gka_runs;
            merge_report.rekeys_failed += scratch.rekeys_failed;
            merge_report.groups_stalled += scratch.groups_stalled;
            merge_report.steps_retried += scratch.steps_retried;
            merge_report.groups_dissolved += scratch.groups_dissolved;
            merge_report.energy_mj += scratch.energy_mj;
            merge_report.ops.merge(&scratch.ops);
            add_traffic(&mut merge_report.traffic, &scratch.traffic);
            merge_report.rekey_latencies.extend(scratch.rekey_latencies);
            merge_report
                .rekey_latencies_virtual_ms
                .extend(scratch.rekey_latencies_virtual_ms);
            add_per_suite(&mut merge_report.per_suite, &scratch.per_suite);
        }
        // Directory hygiene: groups that dissolved this epoch must not
        // leave stale pins (or cooldown stamps) behind — a reused gid
        // would inherit a dead group's placement.
        let stale: Vec<GroupId> = self
            .directory
            .overrides()
            .map(|(gid, _)| gid)
            .chain(self.last_moved.keys().copied())
            .filter(|&gid| !self.group_exists(gid))
            .collect();
        for gid in stale {
            self.directory.forget(gid);
            self.last_moved.remove(&gid);
        }
        // Harvest battery deaths: a drained member is powered off for good
        // — auto-detach it so the next epoch's planner fails fast instead
        // of burning the retransmission budget on a corpse. Evicting it
        // (a Leave) still works: leavers transmit nothing.
        let drained = self.bank.as_ref().map(|b| b.dead()).unwrap_or_default();
        for user in drained {
            let u = UserId(user);
            if self.known_dead.insert(u) {
                self.detached.insert(u);
                merge_report.nodes_died += 1;
                if trace_enabled {
                    let ts = self.coord_ts();
                    self.config.trace.emit(
                        Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "battery.death")
                            .with(Payload::Death { user }),
                    );
                }
            }
        }
        // Timed-out merge folds go back into their host's queue now —
        // after the shard phase, so this tick's planners (which reject
        // `MergeWith` by construction) never see them — and are resolved
        // again at the next tick.
        for (host, target) in deferred_merges {
            if self.group_exists(host) {
                let hs = self.shard_of(host);
                self.shards[hs]
                    .pending
                    .entry(host)
                    .or_default()
                    .push(MembershipEvent::MergeWith(target));
                // Already counted at its original submit; no re-count.
            }
        }
        merge_report.epoch = epoch;
        // Feed the stall ledger: successes first (they close streaks),
        // then this epoch's stalls — a group that both merged and stalled
        // this epoch is, as of now, stalled.
        for gid in &merge_report.rekeyed_groups {
            self.ledger.record_success(*gid);
        }
        for ev in &merge_report.stall_events {
            self.ledger.record_stall(ev.group, ev.cause, &ev.culprits);
        }
        merge_report.fold_into(&mut self.metrics);
        self.metrics.groups_active = self.shards.iter().map(|s| s.groups.len() as u64).sum();
        // Write-ahead commit: the epoch is durable before its report is
        // visible to the caller, so an acknowledged rekey can always be
        // reconstructed.
        self.log(WalRecord::EpochCommit { epoch });
        merge_report.phases.commit.wall += commit_started.elapsed();
        let snapshot_due = self.config.store.as_ref().is_some_and(|store| {
            !self.replaying
                && store.snapshot_every > 0
                && epoch.is_multiple_of(store.snapshot_every)
        });
        if snapshot_due {
            let snapshot_started = Instant::now();
            self.snapshot_now();
            merge_report.phases.snapshot.wall += snapshot_started.elapsed();
        }
        self.phase_totals.add(&merge_report.phases);
        if trace_enabled {
            if let Some(reg) = self.config.trace.registry() {
                reg.add("epochs", 1);
                reg.add("rekeys", merge_report.rekeys_executed);
                reg.add("rekeys_failed", merge_report.rekeys_failed);
                reg.add("steps_retried", merge_report.steps_retried);
                reg.add("nodes_died", merge_report.nodes_died);
                // Robustness counters appear only once an eviction fires,
                // keeping eviction-free expositions bit-identical.
                if merge_report.members_evicted > 0 {
                    reg.add("members_evicted", merge_report.members_evicted);
                    reg.add("blame_certs", merge_report.blame_certs);
                }
                for ms in &merge_report.rekey_latencies_virtual_ms {
                    reg.observe("rekey_latency_vms", *ms);
                }
                for (sid, usage) in &merge_report.per_suite {
                    reg.observe(
                        &labeled("suite_energy_mj", &[("suite", sid.key())]),
                        usage.energy_mj,
                    );
                }
                // Live-load gauges and epoch-windowed rates — all virtual
                // / deterministic values, so same-seed runs render a
                // byte-identical exposition.
                for (i, shard) in self.shards.iter().enumerate() {
                    let idx = i.to_string();
                    reg.set_gauge(
                        &labeled("shard_groups", &[("shard", &idx)]),
                        shard.groups.len() as f64,
                    );
                    reg.set_gauge(
                        &labeled("shard_pending_events", &[("shard", &idx)]),
                        shard.pending.values().map(|q| q.len()).sum::<usize>() as f64,
                    );
                }
                reg.set_gauge("groups_active", self.metrics.groups_active as f64);
                reg.meter("events_applied", merge_report.events_applied as f64);
                reg.meter("rekeys_executed", merge_report.rekeys_executed as f64);
                reg.meter("energy_mj", merge_report.energy_mj);
                reg.roll_window();
            }
            let ts = self.coord_ts();
            self.config.trace.emit(
                Event::new(Phase::End, ts, COORD_PID, CONTROL_TID, "epoch").with(Payload::Epoch {
                    epoch,
                    groups: self.metrics.groups_active,
                }),
            );
        }
        merge_report
    }

    /// The eviction planner's tick-top pass: consults the stall ledger
    /// (fed through the *previous* epoch), asks the armed
    /// [`EvictionPolicy`] who must go, signs and WAL-logs one
    /// [`BlameCert`] per evicting group, books the members into
    /// quarantine, and injects the synthesized Leave events. Returns the
    /// `(group, member)` eviction pairs and the number of certificates
    /// signed. A no-op (and bit-for-bit invisible) without an armed
    /// policy or when no streak has crossed the threshold.
    fn synthesize_evictions(&mut self, epoch: u64) -> (Vec<(GroupId, UserId)>, u64) {
        let Some(policy) = self.config.eviction else {
            return (Vec::new(), 0);
        };
        let group_streaks: Vec<(u64, u64)> = self
            .ledger
            .group_records()
            .into_iter()
            .filter(|(gid, _)| self.group_exists(*gid))
            .map(|(gid, s)| (gid, s.consecutive))
            .collect();
        let mut members: Vec<(u64, MemberEvidence)> = Vec::new();
        for rec in self.ledger.member_records() {
            if !self.group_exists(rec.group) {
                continue;
            }
            let shard = self.shard_of(rec.group);
            let in_session = self.shards[shard].groups[&rec.group]
                .session
                .member_ids()
                .contains(&rec.member);
            let queue = self.shards[shard].pending.get(&rec.group);
            // A culprit that is only a *pending arrival* (a queued Join
            // of an unreachable user) is evicted the same way: the
            // synthesized Leave cancels the still-pending Join.
            let join_pending = queue.is_some_and(|q| {
                q.iter()
                    .any(|ev| matches!(ev, MembershipEvent::Join(u) if *u == rec.member))
            });
            if !in_session && !join_pending {
                continue;
            }
            // Already leaving on its own — nothing to synthesize.
            let leave_pending = queue.is_some_and(|q| {
                q.iter()
                    .any(|ev| matches!(ev, MembershipEvent::Leave(u) if *u == rec.member))
            });
            if leave_pending {
                continue;
            }
            members.push((
                rec.group,
                MemberEvidence {
                    member: rec.member.0,
                    streak: rec.stall.consecutive,
                    cumulative: rec.stall.cumulative,
                    cause: rec.stall.last_cause,
                },
            ));
        }
        let decisions = policy.plan(&group_streaks, &members);
        if decisions.is_empty() {
            return (Vec::new(), 0);
        }
        let coordinator = self
            .coordinator
            .clone()
            .expect("coordinator key exists whenever eviction is armed");
        let mut evicted_pairs: Vec<(GroupId, UserId)> = Vec::new();
        let mut certs_signed = 0u64;
        for decision in decisions {
            let cert = BlameCert::sign(&coordinator, decision.group, epoch, decision.evicted);
            if self.replaying {
                // The logged certificate must be re-derived bit for bit;
                // ticks cannot error, so divergence is parked for the
                // epoch-commit record to surface as corruption.
                match self.replay_certs.iter().position(|c| *c == cert) {
                    Some(i) => {
                        self.replay_certs.remove(i);
                    }
                    None => {
                        self.replay_fault =
                            Some("replayed eviction diverged from the logged blame certificate");
                    }
                }
            } else {
                self.log(WalRecord::Evict {
                    cert: cert.encode(),
                });
            }
            certs_signed += 1;
            let shard = self.shard_of(decision.group);
            for ev in &cert.evicted {
                let user = UserId(ev.member);
                self.shards[shard]
                    .pending
                    .entry(decision.group)
                    .or_default()
                    .push(MembershipEvent::Leave(user));
                self.quarantine
                    .quarantine(&policy, ev.member, epoch, ev.cumulative);
                evicted_pairs.push((decision.group, user));
                if self.trace_on() {
                    let ts = self.coord_ts();
                    self.config.trace.emit(
                        Event::new(Phase::Instant, ts, COORD_PID, CONTROL_TID, "evict").with(
                            Payload::Evict {
                                group: decision.group,
                                user: ev.member,
                                streak: ev.streak,
                            },
                        ),
                    );
                }
            }
            self.blame_certs.push(cert);
        }
        (evicted_pairs, certs_signed)
    }

    /// Serializes the full service state (sealing session-key material
    /// under the store's envelope key) and installs it atomically,
    /// truncating the WAL — the compaction point recovery replays from.
    /// No-op without a configured store or during replay.
    ///
    /// # Panics
    /// Like WAL appends, a failed snapshot install is fatal
    /// (fail-stop durability).
    pub fn snapshot_now(&mut self) {
        if self.config.store.is_none() || self.replaying {
            return;
        }
        // Cutting a snapshot consumes one LSN. The LSN stream is persisted
        // (snapshot header) and strictly monotone across the service's
        // whole durable life — compaction, recovery and all — so deriving
        // the sealing seed from it guarantees the envelope never reuses a
        // (key, IV) pair across two snapshot bodies, even for back-to-back
        // cuts in one epoch or cuts either side of a crash. (A counter
        // like `snapshots_written` would reset with the process.)
        let seal_lsn = self.next_lsn;
        self.next_lsn += 1;
        let store = self.config.store.as_ref().expect("checked above");
        let batteries = self
            .bank
            .as_ref()
            .map(|b| {
                b.snapshot()
                    .into_iter()
                    .map(|s| (s.user, s.capacity_uj, s.spent_uj))
                    .collect()
            })
            .unwrap_or_default();
        let mut groups: Vec<(GroupId, &GroupState)> = Vec::new();
        let mut pending: Vec<(GroupId, &[MembershipEvent])> = Vec::new();
        for shard in &self.shards {
            for (&gid, state) in &shard.groups {
                groups.push((gid, state));
            }
            for (&gid, queue) in &shard.pending {
                if !queue.is_empty() {
                    pending.push((gid, queue));
                }
            }
        }
        groups.sort_by_key(|(gid, _)| *gid);
        pending.sort_by_key(|(gid, _)| *gid);
        let stall_groups = self
            .ledger
            .group_records()
            .into_iter()
            .map(|(gid, s)| (gid, s.consecutive, s.cumulative, s.last_cause))
            .collect();
        let stall_members = self
            .ledger
            .member_records()
            .into_iter()
            .map(|r| {
                (
                    r.group,
                    r.member.0,
                    r.stall.consecutive,
                    r.stall.cumulative,
                    r.stall.last_cause,
                )
            })
            .collect();
        let state = SnapshotState {
            shards: self.config.shards as u32,
            seed: self.config.seed,
            epoch: self.epoch,
            next_lsn: self.next_lsn,
            loss: self.loss,
            detached: self.detached.iter().copied().collect(),
            known_dead: self.known_dead.iter().copied().collect(),
            batteries,
            groups,
            pending,
            stall_groups,
            stall_members,
            quarantine: self.quarantine.rows(),
            blame_certs: self.blame_certs.iter().map(BlameCert::encode).collect(),
            dir_shards: self.directory.shards(),
            overrides: self.directory.overrides().collect(),
            last_moved: self.last_moved.iter().map(|(&g, &e)| (g, e)).collect(),
        };
        let seal_seed = mix(mix(self.config.seed, seal_lsn), 0x5ea1);
        let bytes = encode_snapshot(&state, store, seal_seed);
        let snapshot_bytes = bytes.len() as u64;
        store
            .backend
            .install_snapshot(&bytes)
            .expect("snapshot install must not fail (fail-stop durability)");
        self.metrics.snapshots_written += 1;
        self.metrics.store_syncs = store.backend.sync_count();
        if self.trace_on() {
            let begin = self.coord_ts();
            let end = self.coord_ts();
            let lsn = Payload::Lsn {
                lsn: seal_lsn,
                bytes: snapshot_bytes,
            };
            self.config.trace.emit(
                Event::new(Phase::Begin, begin, COORD_PID, CONTROL_TID, "snapshot").with(lsn),
            );
            self.config
                .trace
                .emit(Event::new(Phase::End, end, COORD_PID, CONTROL_TID, "snapshot").with(lsn));
            if let Some(reg) = self.config.trace.registry() {
                reg.add("snapshots_written", 1);
            }
        }
    }

    /// Drains `MergeWith` events from every queue and executes them on the
    /// coordinator thread (merges are the one operation crossing shard
    /// boundaries). Host groups are processed in ascending id order;
    /// absorbed groups forward both their queued events and their pending
    /// merge requests to their absorber. Folds that time out under the
    /// fault plan are returned as deferred `(host, target)` requests; the
    /// caller reinjects them after the shard phase so they retry next
    /// tick.
    fn resolve_merges(&mut self, epoch: u64) -> (EpochReport, Vec<(GroupId, GroupId)>) {
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };
        let mut deferred: Vec<(GroupId, GroupId)> = Vec::new();
        // Per-suite attribution of everything this coordinator phase
        // charges (committed folds and aborted attempts alike).
        let mut suite_ops: BTreeMap<SuiteId, OpCounts> = BTreeMap::new();

        // (host, target) pairs in deterministic order.
        let mut requests: Vec<(GroupId, GroupId)> = Vec::new();
        for shard in &mut self.shards {
            for (&gid, queue) in shard.pending.iter_mut() {
                queue.retain(|ev| match *ev {
                    MembershipEvent::MergeWith(other) => {
                        requests.push((gid, other));
                        false
                    }
                    _ => true,
                });
            }
        }
        if requests.is_empty() {
            return (report, deferred);
        }
        requests.sort();

        // absorbed[g] = the group that now holds g's members.
        let mut absorbed: std::collections::BTreeMap<GroupId, GroupId> =
            std::collections::BTreeMap::new();
        let resolve = |absorbed: &std::collections::BTreeMap<GroupId, GroupId>, mut g: GroupId| {
            while let Some(&into) = absorbed.get(&g) {
                g = into;
            }
            g
        };

        // host → targets, following absorptions as they happen.
        let mut i = 0;
        while i < requests.len() {
            let host = resolve(&absorbed, requests[i].0);
            let host_shard = self.shard_of(host);
            // Gather every request whose resolved host is `host` in this
            // contiguous run (requests are sorted by original host id).
            let mut targets: Vec<GroupId> = Vec::new();
            let first_host = requests[i].0;
            while i < requests.len() && requests[i].0 == first_host {
                let raw_target = requests[i].1;
                let target = resolve(&absorbed, raw_target);
                let ev = MembershipEvent::MergeWith(raw_target);
                if target == host {
                    report.events_rejected += 1;
                    self.health_shards[host_shard].events_rejected += 1;
                    report.rejections.push((host, ev, RejectReason::SelfMerge));
                } else if !self.group_exists(target) {
                    report.events_rejected += 1;
                    self.health_shards[host_shard].events_rejected += 1;
                    report
                        .rejections
                        .push((host, ev, RejectReason::UnknownPeerGroup));
                } else if !targets.contains(&target) {
                    targets.push(target);
                } else {
                    report.events_rejected += 1;
                    self.health_shards[host_shard].events_rejected += 1;
                    report
                        .rejections
                        .push((host, ev, RejectReason::DuplicateMerge));
                }
                i += 1;
            }
            if !self.group_exists(host) {
                report.events_rejected += targets.len() as u64;
                self.health_shards[host_shard].events_rejected += targets.len() as u64;
                report.rejections.extend(
                    targets
                        .iter()
                        .map(|&t| (host, MembershipEvent::MergeWith(t), RejectReason::GroupGone)),
                );
                continue;
            }
            if targets.is_empty() {
                continue;
            }

            // Fold the targets into the host with k−1 pairwise merges
            // (`merge_many`'s schedule), each under the service's fault
            // plan: a stalled fold retransmits with fresh randomness and,
            // if it keeps stalling (e.g. a powered-off member), the
            // remaining merge requests are deferred to the next tick with
            // every already-committed fold kept.
            let started = Instant::now();
            let seed = mix(mix(self.config.seed, host), epoch ^ 0x6d65);
            let mut acc = self.shards[host_shard].groups[&host].session.clone();
            let mut acc_suite = self.shards[host_shard].groups[&host].suite;
            report.groups_touched += 1;
            let mut folds_done = 0u64;
            let mut virtual_ms = 0.0f64;
            // Everything this host's folds charge — committed and aborted
            // attempts alike — so the host's shard can be billed exactly.
            let mut host_ops = OpCounts::new();
            let mut host_stalled = false;
            let host_retried_before = report.steps_retried;
            for (j, &t) in targets.iter().enumerate() {
                // merge_many's fold seeds: `seed` for the first fold,
                // `seed ^ (k << 8)` for session index k ≥ 2.
                let fold_seed = if j == 0 {
                    seed
                } else {
                    seed ^ ((j as u64 + 1) << 8)
                };
                let target_session = self.shards[self.shard_of(t)].groups[&t].session.clone();
                // A native-dynamics host folds with its own Merge; a
                // baseline host's "merge" is a full re-run over the union,
                // so a Cheapest policy gets to re-pick the suite for the
                // merged size (migrating the group, as at any full rekey).
                let fold_suite = if egka_core::suite::suite(acc_suite).native_dynamics() {
                    acc_suite
                } else {
                    let merged = (acc.n() + target_session.n()) as u64;
                    self.config.policy.choose(&self.config.cost, merged, 0)
                };
                let fold_trace = if self.trace_on() {
                    let ts = self.coord_ts();
                    self.config.trace.emit(
                        Event::new(Phase::Begin, ts, COORD_PID, group_tid(host), "merge.fold")
                            .with(Payload::Plan {
                                suite: fold_suite.key(),
                                steps: 1,
                            }),
                    );
                    Some(StepTrace::new(COORD_PID, host, ts))
                } else {
                    None
                };
                let vms_before = virtual_ms;
                let retried_before = report.steps_retried;
                let folded = self.fold_one_merge(
                    fold_suite,
                    &acc,
                    &target_session,
                    fold_seed,
                    &mut report,
                    suite_ops.entry(fold_suite).or_default(),
                    &mut host_ops,
                    &mut virtual_ms,
                    fold_trace.as_ref(),
                );
                if let Some(st) = fold_trace {
                    st.close();
                    let end = st.end_ns();
                    self.config.trace.emit_all(st.drain());
                    self.config.trace.emit(
                        Event::new(Phase::End, end, COORD_PID, group_tid(host), "merge.fold").with(
                            Payload::Step {
                                suite: fold_suite.key(),
                                step: j as u32,
                                retries: (report.steps_retried - retried_before) as u32,
                                vms: virtual_ms - vms_before,
                                bits: 0,
                                mj: 0.0,
                            },
                        ),
                    );
                    self.coord_ns = self.coord_ns.max(end);
                }
                match folded {
                    Some(out) => {
                        let fold_ops = suite_ops.entry(fold_suite).or_default();
                        for r in &out.reports {
                            report.ops.merge(&r.counts);
                            fold_ops.merge(&r.counts);
                            host_ops.merge(&r.counts);
                        }
                        report.full_gka_runs += out.gka_runs;
                        report.per_suite.entry(fold_suite).or_default().rekeys += 1;
                        acc = out.session;
                        acc_suite = fold_suite;
                        folds_done += 1;
                        report.rekeys_executed += 1;
                        report.events_applied += 1;
                        self.health_shards[host_shard].rekeys_executed += 1;
                        self.health_shards[host_shard].events_applied += 1;
                        // The absorbed group's pending events forward to
                        // the host.
                        absorbed.insert(t, host);
                        self.metrics.groups_merged_away += 1;
                        let ts = self.shard_of(t);
                        self.shards[ts].groups.remove(&t);
                        self.directory.forget(t);
                        self.last_moved.remove(&t);
                        let forwarded = self.shards[ts].pending.remove(&t).unwrap_or_default();
                        if !forwarded.is_empty() {
                            self.shards[host_shard]
                                .pending
                                .entry(host)
                                .or_default()
                                .extend(forwarded);
                        }
                    }
                    None => {
                        // This fold (and, with the host ring unchanged,
                        // every later one) cannot complete now; defer the
                        // unserved requests past this tick's shard phase.
                        report.rekeys_failed += 1;
                        report.groups_stalled += 1;
                        self.health_shards[host_shard].rekeys_failed += 1;
                        self.health_shards[host_shard].groups_stalled += 1;
                        // Attribute the stall exactly as the shard
                        // scheduler would: unreachable members of either
                        // ring are the culprits; none means pure loss.
                        let mut culprits: Vec<UserId> = acc
                            .member_ids()
                            .iter()
                            .chain(target_session.member_ids().iter())
                            .copied()
                            .filter(|u| {
                                self.detached.contains(u)
                                    || self.bank.as_ref().is_some_and(|b| b.is_dead(u.0))
                            })
                            .collect();
                        culprits.sort_unstable();
                        culprits.dedup();
                        let cause = if culprits.is_empty() {
                            StallCause::Loss
                        } else if self.detached.is_empty() {
                            StallCause::BatteryDead
                        } else {
                            StallCause::Detached
                        };
                        report.stall_events.push(StallEvent {
                            group: host,
                            cause,
                            culprits,
                        });
                        host_stalled = true;
                        deferred.extend(targets[j..].iter().map(|&rem| (host, rem)));
                        break;
                    }
                }
            }
            if folds_done > 0 {
                let state = self.shards[host_shard]
                    .groups
                    .get_mut(&host)
                    .expect("host exists");
                state.session = acc;
                state.suite = acc_suite;
                state.rekeys += folds_done;
                if !host_stalled {
                    report.rekeyed_groups.push(host);
                }
                report.rekey_latencies.push(started.elapsed());
                if self.config.radio.is_some() {
                    report.rekey_latencies_virtual_ms.push(virtual_ms);
                    self.health_shards[host_shard]
                        .latency_virtual
                        .observe(virtual_ms);
                }
            }
            // Bill the host's shard for this coordinator work — committed
            // folds and aborted attempts alike. Pricing per host (instead
            // of one `price_mj` over the phase total) is exact up to f64
            // association order: `price_mj` is linear in the counts.
            let host_mj = self.config.cost.price_mj(&host_ops);
            report.energy_mj += host_mj;
            self.health_shards[host_shard].energy_mj += host_mj;
            self.health_shards[host_shard].steps_retried +=
                report.steps_retried - host_retried_before;
        }
        for (suite_id, ops) in &suite_ops {
            report.per_suite.entry(*suite_id).or_default().energy_mj +=
                self.config.cost.price_mj(ops);
        }
        add_traffic(&mut report.traffic, &traffic_of(&report.ops));
        (report, deferred)
    }

    /// The per-tick radio context (profile + shared bank), if configured.
    fn radio_epoch(&self) -> Option<RadioEpoch> {
        self.config.radio.as_ref().map(|rc| RadioEpoch {
            profile: rc.profile.clone(),
            bank: self.bank.clone().expect("bank exists whenever radio does"),
        })
    }

    /// Attempts one pairwise merge fold under the service fault plan — as
    /// `fold_suite`'s [`egka_core::Suite::merge_groups`] realization —
    /// retrying loss stalls with fresh randomness. `None` means the fold
    /// timed out (its wasted transmissions are already charged, into
    /// `report.ops`, `fold_ops` and `host_ops`). `virtual_ms` accumulates
    /// the fold's radio time, aborted attempts included.
    #[allow(clippy::too_many_arguments)] // one accumulator per ledger, by design
    fn fold_one_merge(
        &self,
        fold_suite: SuiteId,
        acc: &GroupSession,
        target: &GroupSession,
        fold_seed: u64,
        report: &mut EpochReport,
        fold_ops: &mut OpCounts,
        host_ops: &mut OpCounts,
        virtual_ms: &mut f64,
        trace: Option<&StepTrace>,
    ) -> Option<SuiteOutcome> {
        let involves_detached = acc
            .member_ids()
            .iter()
            .chain(target.member_ids().iter())
            .any(|u| {
                self.detached.contains(u) || self.bank.as_ref().is_some_and(|b| b.is_dead(u.0))
            });
        let mut retry = 0u32;
        loop {
            let salted = if retry == 0 {
                fold_seed
            } else {
                mix(fold_seed, 0x7e70 + u64::from(retry))
            };
            let faults_for = |seed: u64| Faults {
                loss: self.loss,
                loss_seed: mix(seed, 0x105e),
                detached: self.detached.iter().copied().collect(),
                radio: self.config.radio.as_ref().map(|rc| RadioSpec {
                    profile: rc.profile.clone(),
                    seed: mix(seed, 0xad10),
                    bank: self.bank.clone(),
                }),
                trace: trace.cloned(),
                parallel: self.config.parallel_pump,
            };
            let ctx = StepCtx {
                pkg: &self.pkg,
                seed: salted,
                composable_joins: self.config.cost.composable_joins,
                faults_for: &faults_for,
            };
            let mut run = suite(fold_suite).merge_groups(&ctx, acc, target);
            loop {
                match run.pump() {
                    Pump::Done => {
                        *virtual_ms += run.virtual_elapsed_ms();
                        return Some(run.finish());
                    }
                    Pump::Progressed => {}
                    Pump::Stalled | Pump::Failed(_) => break,
                }
            }
            report.ops.merge(&run.partial_counts());
            fold_ops.merge(&run.partial_counts());
            host_ops.merge(&run.partial_counts());
            *virtual_ms += run.virtual_elapsed_ms();
            if involves_detached || retry >= self.config.step_retries {
                return None;
            }
            retry += 1;
            report.steps_retried += 1;
        }
    }

    fn group_exists(&self, gid: GroupId) -> bool {
        self.shards[self.shard_of(gid)].groups.contains_key(&gid)
    }

    /// The group's current key, if the group is live.
    pub fn group_key(&self, gid: GroupId) -> Option<&Ubig> {
        self.shards[self.shard_of(gid)]
            .groups
            .get(&gid)
            .map(|s| &s.session.key)
    }

    /// The group's live session, if any (omniscient test/inspection view).
    pub fn session(&self, gid: GroupId) -> Option<&GroupSession> {
        self.shards[self.shard_of(gid)]
            .groups
            .get(&gid)
            .map(|s| &s.session)
    }

    /// Number of live groups.
    pub fn groups_active(&self) -> usize {
        self.shards.iter().map(|s| s.groups.len()).sum()
    }

    /// Live group ids, ascending.
    pub fn group_ids(&self) -> Vec<GroupId> {
        let mut ids: Vec<GroupId> = self
            .shards
            .iter()
            .flat_map(|s| s.groups.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Cumulative service metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Per-shard load and outcome stats, ascending by shard index — the
    /// counters accumulated since construction (or recovery-replay start)
    /// plus live gauges (`groups`, `pending_events`) filled at call time.
    /// The counter fields sum to the matching [`ServiceMetrics`] totals.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.health_shards
            .iter()
            .map(|hs| {
                let mut s = hs.clone();
                s.groups = self.shards[hs.shard].groups.len() as u64;
                s.pending_events = self.shards[hs.shard]
                    .pending
                    .values()
                    .map(|q| q.len() as u64)
                    .sum();
                s
            })
            .collect()
    }

    /// The per-member stall attribution ledger.
    pub fn stall_ledger(&self) -> &StallLedger {
        &self.ledger
    }

    /// Every blame certificate this service has signed (or re-derived
    /// during recovery replay), in eviction order. Empty without an
    /// armed eviction policy.
    pub fn blame_certs(&self) -> &[BlameCert] {
        &self.blame_certs
    }

    /// The coordinator's blame-verification key, when an eviction policy
    /// is armed — hand it to anyone auditing [`BlameCert`]s.
    pub fn blame_public(&self) -> Option<BlamePublic> {
        self.coordinator.as_ref().map(CoordinatorKey::public)
    }

    /// Whether `member`'s quarantine penalty would refuse a Join
    /// submitted right now.
    pub fn is_quarantined(&self, member: UserId) -> bool {
        self.quarantine.is_quarantined(member.0, self.epoch + 1)
    }

    /// The penalty box as `(member, until_epoch, evictions)` rows,
    /// ascending by member — `until_epoch` 0 means readmitted, with the
    /// eviction count retained for backoff escalation.
    pub fn quarantine_rows(&self) -> Vec<(u32, u64, u32)> {
        self.quarantine.rows()
    }

    /// Cumulative epoch phase profile: where tick wall time (and virtual
    /// radio time) has gone since construction.
    pub fn phase_profile(&self) -> &PhaseProfile {
        &self.phase_totals
    }

    /// A typed liveness verdict from the stall ledger and battery bank:
    /// [`HealthReport::Stalled`] when any *live* group has
    /// [`STALLED_AFTER_EPOCHS`] or more consecutive stalled epochs,
    /// [`HealthReport::Degraded`] for shorter live streaks or battery
    /// deaths, else [`HealthReport::Healthy`]. Deterministic given the
    /// event history; dissolved or merged-away groups never count.
    pub fn health(&self) -> HealthReport {
        let mut stalled: Vec<GroupId> = Vec::new();
        let mut reasons: Vec<String> = Vec::new();
        for (gid, s) in self.ledger.group_records() {
            if s.consecutive == 0 || !self.group_exists(gid) {
                continue;
            }
            if s.consecutive >= STALLED_AFTER_EPOCHS {
                stalled.push(gid);
            } else {
                reasons.push(format!(
                    "group {gid}: {} consecutive stalled epoch(s) ({})",
                    s.consecutive,
                    s.last_cause.label()
                ));
            }
        }
        if !stalled.is_empty() {
            return HealthReport::Stalled { groups: stalled };
        }
        if !self.known_dead.is_empty() {
            reasons.push(format!("{} member(s) battery-dead", self.known_dead.len()));
        }
        if reasons.is_empty() {
            HealthReport::Healthy
        } else {
            HealthReport::Degraded { reasons }
        }
    }

    /// Current epoch number (ticks completed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The PKG parameters this service runs on.
    pub fn pkg(&self) -> &Pkg {
        &self.pkg
    }

    /// The suite-selection policy this service was built with.
    pub fn suite_policy(&self) -> &SuitePolicy {
        &self.config.policy
    }

    /// The suite `gid`'s group currently runs, if the group is live.
    pub fn suite_of(&self, gid: GroupId) -> Option<SuiteId> {
        self.shards[self.shard_of(gid)]
            .groups
            .get(&gid)
            .map(|s| s.suite)
    }

    /// Live groups per suite — the mixed-fleet view a `Cheapest` policy
    /// produces.
    pub fn groups_per_suite(&self) -> BTreeMap<SuiteId, u64> {
        let mut mixed = BTreeMap::new();
        for shard in &self.shards {
            for state in shard.groups.values() {
                *mixed.entry(state.suite).or_insert(0) += 1;
            }
        }
        mixed
    }
}
