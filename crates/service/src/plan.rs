//! The epoch coordinator's coalescing planner.
//!
//! Given one group's queued membership events, produce the **minimal
//! sequence of §7 dynamics** that realizes their net effect, choosing
//! between equivalent realizations by the paper's own closed-form energy
//! model (`egka_energy::complexity` — which instrumented runs are asserted
//! to match exactly, so a plan priced cheaper really *is* cheaper on the
//! meters):
//!
//! 1. a `Join(u)` cancelled by a `Leave(u)` of the same still-pending user
//!    consumes both events with no rekey;
//! 2. all surviving leaves collapse into **one** Partition (a single
//!    reduced rekey), never k sequential Leaves;
//! 3. `k ≥ 2` surviving joins are priced both ways — k sequential paper
//!    Joins vs "newcomers run the initial GKA among themselves, then one
//!    Merge" — and the cheaper plan is taken. This makes the guarantee
//!    *"coalescing is never more expensive than sequential paper-exact
//!    joins"* hold by construction (see the equivalence property test);
//! 4. when the paper's side conditions fail (Join needs `n ≥ 3`, a reduced
//!    rekey needs ≥ 3 survivors), the planner falls back to one full re-run
//!    of the initial GKA over the final membership — still a single rekey.

use egka_core::suite::{suite, SuiteId};
use egka_core::{GroupSession, UserId};
use egka_energy::{total_energy_mj, CpuModel, OpCounts, Transceiver};

use crate::event::{MembershipEvent, RejectReason};

pub use egka_core::suite::roles_total;

/// One §7 dynamic (or fallback) the executor will run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RekeyStep {
    /// One reduced rekey removing all `leavers` (positions resolved at
    /// execution time; a single leaver degenerates to the Leave protocol).
    Partition {
        /// Identities departing this epoch.
        leavers: Vec<UserId>,
    },
    /// One paper-exact Join of a single newcomer.
    JoinOne {
        /// The joining identity.
        newcomer: UserId,
    },
    /// The newcomers run the initial GKA among themselves, then the result
    /// merges with the existing group — one Merge instead of k Joins.
    MergeNewcomers {
        /// The joining identities (≥ 2).
        newcomers: Vec<UserId>,
    },
    /// Fallback: re-run the initial GKA over `members` (final membership).
    FullRekey {
        /// The final membership after all queued arrivals/departures.
        members: Vec<UserId>,
    },
    /// Too few members remain; the group is dissolved.
    Dissolve,
}

/// The planner's output for one group at one epoch.
#[derive(Clone, Debug)]
pub struct RekeyPlan {
    /// Steps to execute, in order (leaves before joins: a departed member
    /// must never see a key that covers the newcomers).
    pub steps: Vec<RekeyStep>,
    /// The suite the steps execute under — and the suite the group adopts
    /// when the epoch commits. Stays the group's current suite except at a
    /// full rekey, where a [`SuitePolicy::Cheapest`] service re-picks the
    /// cheapest protocol for the new size.
    pub suite: SuiteId,
    /// Events that were absorbed (applied or mutually cancelled).
    pub events_applied: u64,
    /// Join/leave pairs of the same pending user that cancelled outright.
    pub events_cancelled: u64,
    /// Events that could not be applied, with reasons.
    pub rejected: Vec<(MembershipEvent, RejectReason)>,
}

impl Default for RekeyPlan {
    fn default() -> Self {
        RekeyPlan {
            steps: Vec::new(),
            suite: SuiteId::Proposed,
            events_applied: 0,
            events_cancelled: 0,
            rejected: Vec::new(),
        }
    }
}

impl RekeyPlan {
    /// Number of §7/fallback rekeys this plan executes.
    pub fn rekeys(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| !matches!(s, RekeyStep::Dissolve))
            .count() as u64
    }
}

/// Pricing context: which hardware the coalescing decisions optimize for.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// CPU energy model (Table 2).
    pub cpu: CpuModel,
    /// Transceiver energy model (Table 3).
    pub radio: Transceiver,
    /// Whether Joins run in composable mode (`z'_1` disseminated; +1 exp
    /// and +1024 nominal bits at `U_1` — see `egka_core::dynamics`).
    pub composable_joins: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu: CpuModel::strongarm_133(),
            radio: Transceiver::radio_100kbps(),
            composable_joins: true,
        }
    }
}

impl CostModel {
    /// Prices a count vector in millijoules.
    pub fn price_mj(&self, counts: &OpCounts) -> f64 {
        total_energy_mj(&self.cpu, &self.radio, counts)
    }

    /// Group-total closed-form cost of one proposed-suite Join at current
    /// size `n`.
    pub fn join_total(&self, n: u64) -> OpCounts {
        suite(SuiteId::Proposed).join_total(n, self.composable_joins)
    }

    /// Group-total closed-form cost of `k` sequential proposed-suite Joins
    /// starting at size `n`.
    pub fn sequential_joins_total(&self, n: u64, k: u64) -> OpCounts {
        suite(SuiteId::Proposed).sequential_joins_total(n, k, self.composable_joins)
    }

    /// Group-total closed-form cost of the proposed batch plan: `k ≥ 2`
    /// newcomers run the initial GKA, then one Merge with the group of
    /// size `n`.
    pub fn batch_join_total(&self, n: u64, k: u64) -> OpCounts {
        suite(SuiteId::Proposed).batch_join_total(n, k)
    }

    /// Group-total closed-form cost of a proposed-suite Partition removing
    /// `ld` of `n` members with `v` refreshers.
    pub fn partition_total(&self, n: u64, ld: u64, v: u64) -> OpCounts {
        suite(SuiteId::Proposed).partition_total(n, ld, v)
    }

    /// Group-total closed-form cost of re-running the proposed initial GKA
    /// at size `n`.
    pub fn full_rekey_total(&self, n: u64) -> OpCounts {
        suite(SuiteId::Proposed).full_rekey_total(n)
    }

    /// Group-total closed-form cost of running `s`'s initial GKA at size
    /// `n` — every suite's creation price, from the Table 1 column.
    pub fn suite_initial_total(&self, s: SuiteId, n: u64) -> OpCounts {
        suite(s).initial_total(n)
    }

    /// Group-total closed-form cost of the cheapest realization of `k`
    /// joins under suite `s` starting at size `n`, honoring the §7 side
    /// conditions exactly as the planner does (baselines: one full re-run
    /// at `n + k`). Zero for `k = 0`.
    pub fn suite_joins_total(&self, s: SuiteId, n: u64, k: u64) -> OpCounts {
        if k == 0 {
            return OpCounts::new();
        }
        let su = suite(s);
        if !su.native_dynamics() {
            return su.sequential_joins_total(n, k, false);
        }
        if n >= 3 {
            if k == 1 {
                return su.join_total(n, self.composable_joins);
            }
            let seq = su.sequential_joins_total(n, k, self.composable_joins);
            let batch = su.batch_join_total(n, k);
            if self.price_mj(&seq) <= self.price_mj(&batch) {
                seq
            } else {
                batch
            }
        } else if k >= 2 {
            // n = 2 cannot host paper Joins; the Merge path applies.
            su.batch_join_total(n, k)
        } else {
            // n = 2, one join: a full re-run at 3 (the planner's fallback).
            su.full_rekey_total(n + 1)
        }
    }
}

/// Which suite each group runs — fixed, or chosen per group by the
/// closed-form energy argmin for a hardware profile. Consulted at
/// `create_group` and again at every full-rekey plan, so a `Cheapest`
/// service migrates a group to a cheaper protocol as its size crosses a
/// crossover point.
///
/// The crossovers are real: on the paper's hardware the proposed GQ-batch
/// scheme wins from `n ≈ 4` up, but for 2–3-member groups on the 100 kbps
/// sensor radio the ECDSA-certificate baseline's smaller wire format and
/// cheap verifications undercut it.
#[derive(Clone, Debug)]
pub enum SuitePolicy {
    /// Every group runs this suite.
    Fixed(SuiteId),
    /// Per group, the suite minimizing the closed-form group-total energy
    /// (initial GKA + the pending joins' cheapest realization), priced for
    /// this hardware profile. Ties break toward the earlier Table 1
    /// column.
    Cheapest {
        /// CPU energy model the selection prices compute with (Table 2).
        cpu: CpuModel,
        /// Transceiver the selection prices traffic with (Table 3).
        transceiver: Transceiver,
    },
}

impl Default for SuitePolicy {
    fn default() -> Self {
        SuitePolicy::Fixed(SuiteId::Proposed)
    }
}

impl SuitePolicy {
    /// Selection argmin over millijoules under this policy's hardware,
    /// priced for a group founding (or fully rekeying) at size `n` with
    /// `pending_joins` queued arrivals. `cost` supplies the planner's
    /// composable-joins convention so policy pricing and plan pricing
    /// cannot drift.
    pub fn choose(&self, cost: &CostModel, n: u64, pending_joins: u64) -> SuiteId {
        match self {
            SuitePolicy::Fixed(id) => *id,
            SuitePolicy::Cheapest { cpu, transceiver } => {
                let priced = CostModel {
                    cpu: cpu.clone(),
                    radio: transceiver.clone(),
                    composable_joins: cost.composable_joins,
                };
                let mut best = SuiteId::Proposed;
                let mut best_mj = f64::INFINITY;
                for s in SuiteId::ALL {
                    let mut total = priced.suite_initial_total(s, n);
                    total.merge(&priced.suite_joins_total(s, n, pending_joins));
                    let mj = priced.price_mj(&total);
                    if mj < best_mj {
                        best = s;
                        best_mj = mj;
                    }
                }
                best
            }
        }
    }
}

/// Collapses one group's queued `Join`/`Leave` events into a [`RekeyPlan`]
/// (`MergeWith` requests are cross-group and handled by the coordinator
/// before shard fan-out).
///
/// The plan applies leaves strictly before joins, so a departing member
/// never sees key material covering same-epoch arrivals.
pub fn plan_group(
    session: &GroupSession,
    events: &[MembershipEvent],
    cost: &CostModel,
) -> RekeyPlan {
    let mut plan = RekeyPlan::default();
    let (joins, leaves) = admit_events(session, events, &mut plan);

    let n = session.n() as u64;
    let survivors = n - leaves.len() as u64;
    let final_size = survivors + joins.len() as u64;

    // Everyone leaves (or a lone survivor): no group remains to rekey.
    if final_size < 2 {
        plan.steps.push(RekeyStep::Dissolve);
        return plan;
    }

    // Too few survivors for a reduced rekey: one full re-run over the
    // final membership covers every queued event in a single rekey.
    if !leaves.is_empty() && survivors < 3 {
        let members = final_members(session, &leaves, &joins);
        plan.steps.push(RekeyStep::FullRekey { members });
        return plan;
    }

    if !leaves.is_empty() {
        plan.steps.push(RekeyStep::Partition {
            leavers: leaves.clone(),
        });
    }

    let n_after_leaves = survivors;
    match joins.len() as u64 {
        0 => {}
        1 if n_after_leaves >= 3 => plan.steps.push(RekeyStep::JoinOne { newcomer: joins[0] }),
        1 => {
            // n = 2: the Join protocol needs a bystander; re-run at 3.
            let members = final_members(session, &leaves, &joins);
            plan.steps.push(RekeyStep::FullRekey { members });
        }
        k => {
            let batch = cost.price_mj(&cost.batch_join_total(n_after_leaves, k));
            if n_after_leaves >= 3 {
                let sequential = cost.price_mj(&cost.sequential_joins_total(n_after_leaves, k));
                if sequential <= batch {
                    for &u in &joins {
                        plan.steps.push(RekeyStep::JoinOne { newcomer: u });
                    }
                } else {
                    plan.steps.push(RekeyStep::MergeNewcomers {
                        newcomers: joins.clone(),
                    });
                }
            } else {
                // n = 2 cannot host paper Joins; the Merge path applies.
                plan.steps.push(RekeyStep::MergeNewcomers {
                    newcomers: joins.clone(),
                });
            }
        }
    }

    plan
}

/// Plans one group's epoch for the suite it currently runs.
///
/// * The proposed suite plans with the §7 coalescer ([`plan_group`]) —
///   under [`SuitePolicy::Fixed`]`(Proposed)` the output is bit-for-bit
///   the legacy plan.
/// * A baseline suite has no §7 dynamics: any net membership change
///   collapses into **one** full re-run over the final membership (still
///   a single rekey — the baseline convention the paper prices).
/// * At a full rekey the policy re-picks the suite for the final size;
///   otherwise the group keeps `current`.
pub fn plan_group_suite(
    session: &GroupSession,
    events: &[MembershipEvent],
    cost: &CostModel,
    current: SuiteId,
    policy: &SuitePolicy,
) -> RekeyPlan {
    let mut plan = if suite(current).native_dynamics() {
        plan_group(session, events, cost)
    } else {
        let mut plan = RekeyPlan {
            suite: current,
            ..RekeyPlan::default()
        };
        let (joins, leaves) = admit_events(session, events, &mut plan);
        if joins.is_empty() && leaves.is_empty() {
            return plan;
        }
        let members = final_members(session, &leaves, &joins);
        if members.len() < 2 {
            plan.steps.push(RekeyStep::Dissolve);
        } else {
            plan.steps.push(RekeyStep::FullRekey { members });
        }
        plan
    };
    plan.suite = current;
    if let [RekeyStep::FullRekey { members }] = plan.steps.as_slice() {
        plan.suite = policy.choose(cost, members.len() as u64, 0);
    }
    plan
}

/// The membership after `leaves` depart and `joins` arrive (survivors in
/// ring order, then newcomers in arrival order) — what every full-rekey
/// fallback runs over.
fn final_members(session: &GroupSession, leaves: &[UserId], joins: &[UserId]) -> Vec<UserId> {
    let mut members: Vec<UserId> = session
        .member_ids()
        .into_iter()
        .filter(|u| !leaves.contains(u))
        .collect();
    members.extend(joins.iter().copied());
    members
}

/// Folds the queued `Join`/`Leave` events into net arrival/departure sets,
/// recording admission accounting (applied / cancelled / rejected) on
/// `plan`. Shared by every suite's planner — admission is protocol
/// independent.
fn admit_events(
    session: &GroupSession,
    events: &[MembershipEvent],
    plan: &mut RekeyPlan,
) -> (Vec<UserId>, Vec<UserId>) {
    let mut joins: Vec<UserId> = Vec::new();
    let mut leaves: Vec<UserId> = Vec::new();

    for ev in events {
        match *ev {
            MembershipEvent::Join(u) => {
                if joins.contains(&u) || (session.contains(u) && !leaves.contains(&u)) {
                    plan.rejected
                        .push((ev.clone(), RejectReason::AlreadyMember));
                } else {
                    // Either a fresh newcomer, or a same-epoch re-join
                    // after a leave (both stand: the rekey in between is
                    // what forward secrecy requires).
                    joins.push(u);
                    plan.events_applied += 1;
                }
            }
            MembershipEvent::Leave(u) => {
                if let Some(at) = joins.iter().position(|&j| j == u) {
                    // This leave cancels the pending join outright. For a
                    // fresh user that is the plain join+leave cancellation;
                    // for a live member the pending entry was a *re-join*
                    // whose original leave is already in `leaves` (a
                    // re-join is only accepted with the leave recorded), so
                    // cancelling the pair leaves exactly one net departure.
                    joins.remove(at);
                    plan.events_applied -= 1;
                    plan.events_cancelled += 2;
                } else if session.contains(u) && !leaves.contains(&u) {
                    leaves.push(u);
                    plan.events_applied += 1;
                } else {
                    plan.rejected.push((ev.clone(), RejectReason::NotAMember));
                }
            }
            MembershipEvent::MergeWith(_) => {
                unreachable!("cross-group merges are resolved before plan_group")
            }
        }
    }

    (joins, leaves)
}
