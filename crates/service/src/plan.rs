//! The epoch coordinator's coalescing planner.
//!
//! Given one group's queued membership events, produce the **minimal
//! sequence of §7 dynamics** that realizes their net effect, choosing
//! between equivalent realizations by the paper's own closed-form energy
//! model (`egka_energy::complexity` — which instrumented runs are asserted
//! to match exactly, so a plan priced cheaper really *is* cheaper on the
//! meters):
//!
//! 1. a `Join(u)` cancelled by a `Leave(u)` of the same still-pending user
//!    consumes both events with no rekey;
//! 2. all surviving leaves collapse into **one** Partition (a single
//!    reduced rekey), never k sequential Leaves;
//! 3. `k ≥ 2` surviving joins are priced both ways — k sequential paper
//!    Joins vs "newcomers run the initial GKA among themselves, then one
//!    Merge" — and the cheaper plan is taken. This makes the guarantee
//!    *"coalescing is never more expensive than sequential paper-exact
//!    joins"* hold by construction (see the equivalence property test);
//! 4. when the paper's side conditions fail (Join needs `n ≥ 3`, a reduced
//!    rekey needs ≥ 3 survivors), the planner falls back to one full re-run
//!    of the initial GKA over the final membership — still a single rekey.

use egka_core::{GroupSession, UserId};
use egka_energy::complexity::{
    proposed_join, proposed_merge, proposed_partition, InitialProtocol, RoleCounts,
};
use egka_energy::{total_energy_mj, CompOp, CpuModel, OpCounts, Transceiver};

use crate::event::{MembershipEvent, RejectReason};

/// One §7 dynamic (or fallback) the executor will run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RekeyStep {
    /// One reduced rekey removing all `leavers` (positions resolved at
    /// execution time; a single leaver degenerates to the Leave protocol).
    Partition {
        /// Identities departing this epoch.
        leavers: Vec<UserId>,
    },
    /// One paper-exact Join of a single newcomer.
    JoinOne {
        /// The joining identity.
        newcomer: UserId,
    },
    /// The newcomers run the initial GKA among themselves, then the result
    /// merges with the existing group — one Merge instead of k Joins.
    MergeNewcomers {
        /// The joining identities (≥ 2).
        newcomers: Vec<UserId>,
    },
    /// Fallback: re-run the initial GKA over `members` (final membership).
    FullRekey {
        /// The final membership after all queued arrivals/departures.
        members: Vec<UserId>,
    },
    /// Too few members remain; the group is dissolved.
    Dissolve,
}

/// The planner's output for one group at one epoch.
#[derive(Clone, Debug, Default)]
pub struct RekeyPlan {
    /// Steps to execute, in order (leaves before joins: a departed member
    /// must never see a key that covers the newcomers).
    pub steps: Vec<RekeyStep>,
    /// Events that were absorbed (applied or mutually cancelled).
    pub events_applied: u64,
    /// Join/leave pairs of the same pending user that cancelled outright.
    pub events_cancelled: u64,
    /// Events that could not be applied, with reasons.
    pub rejected: Vec<(MembershipEvent, RejectReason)>,
}

impl RekeyPlan {
    /// Number of §7/fallback rekeys this plan executes.
    pub fn rekeys(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| !matches!(s, RekeyStep::Dissolve))
            .count() as u64
    }
}

/// Pricing context: which hardware the coalescing decisions optimize for.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// CPU energy model (Table 2).
    pub cpu: CpuModel,
    /// Transceiver energy model (Table 3).
    pub radio: Transceiver,
    /// Whether Joins run in composable mode (`z'_1` disseminated; +1 exp
    /// and +1024 nominal bits at `U_1` — see `egka_core::dynamics`).
    pub composable_joins: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu: CpuModel::strongarm_133(),
            radio: Transceiver::radio_100kbps(),
            composable_joins: true,
        }
    }
}

impl CostModel {
    /// Prices a count vector in millijoules.
    pub fn price_mj(&self, counts: &OpCounts) -> f64 {
        total_energy_mj(&self.cpu, &self.radio, counts)
    }

    /// Group-total closed-form cost of one Join at current size `n`.
    pub fn join_total(&self, n: u64) -> OpCounts {
        let mut total = roles_total(&proposed_join(n));
        if self.composable_joins {
            // U_1 computes and ships z'_1 inside m'_1: one extra
            // exponentiation, +Z_BITS on the wire, received by the n−1
            // other old-group members.
            total.add(CompOp::ModExp, 1);
            total.tx_bits += egka_energy::wire::Z_BITS;
            total.rx_bits += egka_energy::wire::Z_BITS * (n - 1);
        }
        total
    }

    /// Group-total closed-form cost of `k` sequential Joins starting at
    /// size `n`.
    pub fn sequential_joins_total(&self, n: u64, k: u64) -> OpCounts {
        let mut total = OpCounts::new();
        for i in 0..k {
            total.merge(&self.join_total(n + i));
        }
        total
    }

    /// Group-total closed-form cost of the batch plan: `k ≥ 2` newcomers
    /// run the initial GKA, then one Merge with the group of size `n`.
    pub fn batch_join_total(&self, n: u64, k: u64) -> OpCounts {
        assert!(k >= 2, "batch path needs at least two newcomers");
        let per_user = InitialProtocol::ProposedGqBatch.per_user_counts(k);
        let mut total = OpCounts::new();
        total.merge_scaled(&per_user, k);
        total.merge(&roles_total(&proposed_merge(n, k)));
        total
    }

    /// Group-total closed-form cost of a Partition removing `ld` of `n`
    /// members with `v` refreshers.
    pub fn partition_total(&self, n: u64, ld: u64, v: u64) -> OpCounts {
        roles_total(&proposed_partition(n, ld, v))
    }

    /// Group-total closed-form cost of re-running the initial GKA at size
    /// `n`.
    pub fn full_rekey_total(&self, n: u64) -> OpCounts {
        let per_user = InitialProtocol::ProposedGqBatch.per_user_counts(n);
        let mut total = OpCounts::new();
        total.merge_scaled(&per_user, n);
        total
    }
}

/// Sums per-role counts over their populations.
pub fn roles_total(roles: &[RoleCounts]) -> OpCounts {
    let mut total = OpCounts::new();
    for role in roles {
        total.merge_scaled(&role.counts, role.population);
    }
    total
}

/// Collapses one group's queued `Join`/`Leave` events into a [`RekeyPlan`]
/// (`MergeWith` requests are cross-group and handled by the coordinator
/// before shard fan-out).
///
/// The plan applies leaves strictly before joins, so a departing member
/// never sees key material covering same-epoch arrivals.
pub fn plan_group(
    session: &GroupSession,
    events: &[MembershipEvent],
    cost: &CostModel,
) -> RekeyPlan {
    let mut plan = RekeyPlan::default();
    let mut joins: Vec<UserId> = Vec::new();
    let mut leaves: Vec<UserId> = Vec::new();

    for ev in events {
        match *ev {
            MembershipEvent::Join(u) => {
                if joins.contains(&u) || (session.contains(u) && !leaves.contains(&u)) {
                    plan.rejected
                        .push((ev.clone(), RejectReason::AlreadyMember));
                } else {
                    // Either a fresh newcomer, or a same-epoch re-join
                    // after a leave (both stand: the rekey in between is
                    // what forward secrecy requires).
                    joins.push(u);
                    plan.events_applied += 1;
                }
            }
            MembershipEvent::Leave(u) => {
                if let Some(at) = joins.iter().position(|&j| j == u) {
                    // This leave cancels the pending join outright. For a
                    // fresh user that is the plain join+leave cancellation;
                    // for a live member the pending entry was a *re-join*
                    // whose original leave is already in `leaves` (a
                    // re-join is only accepted with the leave recorded), so
                    // cancelling the pair leaves exactly one net departure.
                    joins.remove(at);
                    plan.events_applied -= 1;
                    plan.events_cancelled += 2;
                } else if session.contains(u) && !leaves.contains(&u) {
                    leaves.push(u);
                    plan.events_applied += 1;
                } else {
                    plan.rejected.push((ev.clone(), RejectReason::NotAMember));
                }
            }
            MembershipEvent::MergeWith(_) => {
                unreachable!("cross-group merges are resolved before plan_group")
            }
        }
    }

    let n = session.n() as u64;
    let survivors = n - leaves.len() as u64;
    let final_size = survivors + joins.len() as u64;

    // Everyone leaves (or a lone survivor): no group remains to rekey.
    if final_size < 2 {
        plan.steps.push(RekeyStep::Dissolve);
        return plan;
    }

    // Too few survivors for a reduced rekey: one full re-run over the
    // final membership covers every queued event in a single rekey.
    if !leaves.is_empty() && survivors < 3 {
        let mut members: Vec<UserId> = session
            .member_ids()
            .into_iter()
            .filter(|u| !leaves.contains(u))
            .collect();
        members.extend(joins.iter().copied());
        plan.steps.push(RekeyStep::FullRekey { members });
        return plan;
    }

    if !leaves.is_empty() {
        plan.steps.push(RekeyStep::Partition {
            leavers: leaves.clone(),
        });
    }

    let n_after_leaves = survivors;
    match joins.len() as u64 {
        0 => {}
        1 if n_after_leaves >= 3 => plan.steps.push(RekeyStep::JoinOne { newcomer: joins[0] }),
        1 => {
            // n = 2: the Join protocol needs a bystander; re-run at 3.
            let mut members: Vec<UserId> = session
                .member_ids()
                .into_iter()
                .filter(|u| !leaves.contains(u))
                .collect();
            members.extend(joins.iter().copied());
            plan.steps.push(RekeyStep::FullRekey { members });
        }
        k => {
            let batch = cost.price_mj(&cost.batch_join_total(n_after_leaves, k));
            if n_after_leaves >= 3 {
                let sequential = cost.price_mj(&cost.sequential_joins_total(n_after_leaves, k));
                if sequential <= batch {
                    for &u in &joins {
                        plan.steps.push(RekeyStep::JoinOne { newcomer: u });
                    }
                } else {
                    plan.steps.push(RekeyStep::MergeNewcomers {
                        newcomers: joins.clone(),
                    });
                }
            } else {
                // n = 2 cannot host paper Joins; the Merge path applies.
                plan.steps.push(RekeyStep::MergeNewcomers {
                    newcomers: joins.clone(),
                });
            }
        }
    }

    plan
}
