//! # egka-service — sharded multi-group key management with epoch-batched
//! rekeying
//!
//! The paper's protocols run one group at a time; production serves *many
//! thousands of concurrent groups* under *continuous membership churn*.
//! This crate is the service layer that closes that gap:
//!
//! ## Architecture
//!
//! ```text
//!                 ┌──────────────────────────────────────────────┐
//!   create_group  │ KeyService                                   │
//!   submit(event) │   epoch tick                                 │
//!   tick()  ─────▶│   1. coordinator: cross-group MergeWith      │
//!                 │      requests → one merge_many fold          │
//!                 │   2. shard fan-out (threads)                 │
//!                 │   ┌─────────┐ ┌─────────┐     ┌─────────┐    │
//!                 │   │ shard 0 │ │ shard 1 │  …  │ shard N │    │
//!                 │   │ groups  │ │ groups  │     │ groups  │    │
//!                 │   │ queues  │ │ queues  │     │ queues  │    │
//!                 │   │ ⟲ pump  │ │ ⟲ pump  │     │ ⟲ pump  │    │
//!                 │   └─────────┘ └─────────┘     └─────────┘    │
//!                 └──────────────────────────────────────────────┘
//! ```
//!
//! * **Sharded registry** (shard layer): the [`ShardDirectory`] places
//!   groups on `N` worker shards — [`jump_hash`] homes by default
//!   (consistent: growing the pool relocates only `≈ 1/(N+1)` of the
//!   groups), per-group pins after a live [`KeyService::move_group`]
//!   handoff; during a tick each shard runs single-threaded over its own
//!   groups, so group state needs **no locking** and results are
//!   deterministic regardless of thread scheduling. Only shards — never
//!   individual groups — are fanned across threads.
//! * **Elastic resharding** ([`KeyService::add_shard`],
//!   [`KeyService::remove_shard`], [`KeyService::move_group`], an armed
//!   [`Rebalancer`]): the pool grows and shrinks *live*. Handoffs run
//!   through the sealed snapshot codec between epochs (seal, install on
//!   the target shard, flip the directory — no replay, no stalled
//!   epochs), every placement mutation gets its own WAL record so
//!   recovery rebuilds the directory bit for bit, and the rebalancer
//!   drains pending-event hot spots with cooldown hysteresis.
//! * **Shards are schedulers, not drivers**: every rekey step is a
//!   sans-IO `egka_core::machine` execution, and within a tick the shard
//!   **interleaves** all pending groups' round machines round-robin
//!   (`pump` in the diagram). A group stalled by a powered-off member or
//!   persistent loss is detected, retried with fresh randomness, and
//!   finally timed out — keeping its pre-epoch key, requeueing its events
//!   — while every other group on the shard completes in the same epoch.
//! * **Epoch-batched rekey coordinator** ([`plan`]): membership events
//!   queue per group between ticks; each tick collapses a queue into the
//!   **minimal sequence of the paper's §7 dynamics** — k leaves become one
//!   Partition, k joins become either k paper Joins or one newcomer GKA +
//!   Merge (whichever the paper's own closed-form energy model prices
//!   cheaper), a join cancelled by a leave of the same pending user costs
//!   nothing, and cross-group merge requests fold with one `merge_many`.
//! * **Metrics** ([`metrics`]): per-epoch and cumulative — groups active,
//!   events coalesced, rekeys executed/failed, steps retransmitted,
//!   priced energy (mJ), operation counts, and cumulative
//!   `egka_net::TrafficStats`.
//!
//! Every rekey executes the real protocols over the simulated medium —
//! keys are derived by actual modular arithmetic on every simulated node
//! and the per-node meters feed straight into the paper's pricing, so
//! service-level energy totals are *measurements*, not estimates.
//!
//! ## Mapping onto the paper's §7
//!
//! | queued events                 | executed dynamic                        |
//! |-------------------------------|-----------------------------------------|
//! | 1 leave                       | Leave (reduced rekey)                    |
//! | k ≥ 2 leaves                  | one Partition                            |
//! | 1 join                        | Join                                     |
//! | k ≥ 2 joins                   | min-cost{k × Join, newcomer GKA + Merge} |
//! | k merge requests              | one `merge_many` (k ≥ 2 groups)          |
//! | join+leave of pending user    | nothing                                  |
//! | < 3 survivors                 | full GKA re-run over final membership    |
//!
//! * **Protocol-erased suites** ([`SuitePolicy`]): every group runs one
//!   of the five Table 1 protocols behind `egka_core::suite::Suite` —
//!   fixed fleet-wide, or picked per group by the closed-form energy
//!   argmin for a hardware profile (`Cheapest`), with per-suite costs
//!   surfaced in [`EpochReport::per_suite`].
//! * **Durability** ([`StoreConfig`], [`ServiceBuilder::store`],
//!   [`ServiceBuilder::recover`]): state-changing calls are write-ahead
//!   logged to an `egka-store` backend with one commit record per applied
//!   epoch (appended before the report is returned), plus periodic
//!   compacting snapshots with session-key material sealed under the
//!   authenticated envelope. Recovery replays snapshot + tail through the
//!   ordinary entry points and reconstructs every shard bit for bit —
//!   groups survive the controller process.
//! * **Robustness** ([`ServiceBuilder::eviction`], `egka-robust`): with
//!   an armed [`EvictionPolicy`], a group whose stall streak crosses the
//!   threshold has the ledger's culprits *evicted* at the next tick —
//!   synthesized Leaves complete the epoch over the survivors, a signed
//!   [`BlameCert`] lands in the WAL so recovery replays the eviction bit
//!   for bit, and evicted members serve an escalating-backoff
//!   [`Quarantine`] before a Join readmits them.
//!
//! ```
//! use std::sync::Arc;
//! use egka_core::{Pkg, SecurityProfile, UserId};
//! use egka_hash::ChaChaRng;
//! use egka_service::{KeyService, MembershipEvent};
//! use rand::SeedableRng;
//!
//! let mut rng = ChaChaRng::seed_from_u64(7);
//! let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
//! let mut svc = KeyService::builder().build(pkg);
//! svc.create_group(1, &[UserId(0), UserId(1), UserId(2), UserId(3)]).unwrap();
//! svc.submit(1, MembershipEvent::Join(UserId(10))).unwrap();
//! svc.submit(1, MembershipEvent::Leave(UserId(2))).unwrap();
//! let report = svc.tick();
//! assert_eq!(report.events_applied, 2);
//! assert!(svc.session(1).unwrap().invariant_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hashing;
pub mod health;
pub mod metrics;
mod persist;
pub mod plan;
mod service;
mod shard;

pub use egka_core::suite::{Suite, SuiteId};
pub use egka_robust::{BlameCert, EvictionDecision, EvictionPolicy, MemberEvidence, Quarantine};
pub use egka_sig::blame::BlamePublic;
pub use egka_store::{FileStore, MemStore, Store, StoreError};
pub use egka_trace::StallCause;
pub use event::{GroupId, MembershipEvent, RejectReason, ServiceError};
pub use hashing::{jump_hash, ShardDirectory};
pub use health::{
    HealthReport, MemberStall, PhaseBucket, PhaseProfile, ShardStats, StallEvent, StallLedger,
    StallRecord, STALLED_AFTER_EPOCHS,
};
pub use metrics::{quantiles3, EpochReport, ServiceMetrics, SuiteUsage};
pub use persist::{RecoveryReport, StoreConfig};
pub use plan::{plan_group, plan_group_suite, CostModel, RekeyPlan, RekeyStep, SuitePolicy};
pub use service::{KeyService, RadioConfig, Rebalancer, ServiceBuilder};
pub use shard::{final_membership, GroupState};

#[cfg(test)]
mod tests {
    use super::*;
    use egka_core::{Pkg, SecurityProfile, UserId};
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn service(seed: u64) -> KeyService {
        let mut rng = ChaChaRng::seed_from_u64(0x5e81 ^ seed);
        let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
        KeyService::builder().seed(seed).build(pkg)
    }

    fn users(range: std::ops::Range<u32>) -> Vec<UserId> {
        range.map(UserId).collect()
    }

    #[test]
    fn create_submit_tick_lifecycle() {
        let mut svc = service(1);
        svc.create_group(7, &users(0..5)).unwrap();
        assert_eq!(svc.groups_active(), 1);
        let key0 = svc.group_key(7).unwrap().clone();

        svc.submit(7, MembershipEvent::Join(UserId(100))).unwrap();
        svc.submit(7, MembershipEvent::Leave(UserId(1))).unwrap();
        let report = svc.tick();
        assert_eq!(report.events_applied, 2);
        assert!(report.rekeys_executed >= 1);
        assert!(report.energy_mj > 0.0);

        let s = svc.session(7).unwrap();
        assert_eq!(s.n(), 5);
        assert!(s.contains(UserId(100)));
        assert!(!s.contains(UserId(1)));
        assert!(s.invariant_holds());
        assert_ne!(&key0, svc.group_key(7).unwrap(), "key must change on churn");
    }

    #[test]
    fn create_group_validates_inputs() {
        let mut svc = service(2);
        assert_eq!(
            svc.create_group(1, &users(0..1)),
            Err(ServiceError::GroupTooSmall)
        );
        assert_eq!(
            svc.create_group(1, &[UserId(3), UserId(3)]),
            Err(ServiceError::DuplicateMember(UserId(3)))
        );
        svc.create_group(1, &users(0..3)).unwrap();
        assert_eq!(
            svc.create_group(1, &users(3..6)),
            Err(ServiceError::GroupExists(1))
        );
        assert_eq!(
            svc.submit(99, MembershipEvent::Join(UserId(9))),
            Err(ServiceError::UnknownGroup(99))
        );
    }

    #[test]
    fn pending_join_cancelled_by_leave_costs_nothing() {
        let mut svc = service(3);
        svc.create_group(4, &users(0..4)).unwrap();
        let key0 = svc.group_key(4).unwrap().clone();
        svc.submit(4, MembershipEvent::Join(UserId(50))).unwrap();
        svc.submit(4, MembershipEvent::Leave(UserId(50))).unwrap();
        let report = svc.tick();
        assert_eq!(report.rekeys_executed, 0, "cancelled pair must not rekey");
        assert_eq!(report.events_cancelled, 2);
        assert_eq!(&key0, svc.group_key(4).unwrap());
    }

    #[test]
    fn flappy_member_nets_to_one_departure() {
        // Leave / Join / Leave of the same live member in one epoch must
        // net to a single departure — not a duplicated leaver that could
        // dissolve the group (regression: the second leave used to push
        // the member into the leaver set twice).
        let mut svc = service(11);
        svc.create_group(6, &users(0..3)).unwrap();
        svc.submit(6, MembershipEvent::Leave(UserId(2))).unwrap();
        svc.submit(6, MembershipEvent::Join(UserId(2))).unwrap();
        svc.submit(6, MembershipEvent::Leave(UserId(2))).unwrap();
        let report = svc.tick();
        assert_eq!(
            report.groups_dissolved, 0,
            "group must survive a flappy member"
        );
        assert_eq!(report.events_cancelled, 2, "re-join + its leave cancel");
        assert_eq!(report.events_applied, 1, "net effect is one departure");
        let s = svc.session(6).expect("group alive");
        assert_eq!(s.n(), 2);
        assert!(!s.contains(UserId(2)));
        assert!(s.invariant_holds());
    }

    #[test]
    fn many_leaves_coalesce_into_one_partition() {
        let mut svc = service(4);
        svc.create_group(2, &users(0..9)).unwrap();
        for u in [1u32, 3, 5] {
            svc.submit(2, MembershipEvent::Leave(UserId(u))).unwrap();
        }
        let report = svc.tick();
        assert_eq!(report.events_applied, 3);
        assert_eq!(report.rekeys_executed, 1, "3 leaves → one Partition");
        assert!(report.coalesce_ratio() > 1.0);
        let s = svc.session(2).unwrap();
        assert_eq!(s.n(), 6);
        assert!(s.invariant_holds());
    }

    #[test]
    fn merge_requests_fold_groups() {
        let mut svc = service(5);
        svc.create_group(10, &users(0..4)).unwrap();
        svc.create_group(20, &users(4..7)).unwrap();
        svc.create_group(30, &users(7..10)).unwrap();
        svc.submit(10, MembershipEvent::MergeWith(20)).unwrap();
        svc.submit(10, MembershipEvent::MergeWith(30)).unwrap();
        let report = svc.tick();
        assert_eq!(report.events_applied, 2);
        assert_eq!(
            report.rekeys_executed, 2,
            "merge_many over 3 groups = 2 folds"
        );
        assert_eq!(svc.groups_active(), 1);
        let s = svc.session(10).unwrap();
        assert_eq!(s.n(), 10);
        assert!(s.invariant_holds());
        assert!(svc.session(20).is_none());
        assert_eq!(svc.metrics().groups_merged_away, 2);
    }

    #[test]
    fn dissolving_group_is_removed() {
        let mut svc = service(6);
        svc.create_group(3, &users(0..3)).unwrap();
        for u in 0..2u32 {
            svc.submit(3, MembershipEvent::Leave(UserId(u))).unwrap();
        }
        let report = svc.tick();
        assert_eq!(report.groups_dissolved, 1);
        assert_eq!(svc.groups_active(), 0);
        assert!(svc.group_key(3).is_none());
        // Events against a dissolved group are rejected at admission.
        assert_eq!(
            svc.submit(3, MembershipEvent::Join(UserId(9))),
            Err(ServiceError::UnknownGroup(3))
        );
    }

    #[test]
    fn shrink_below_reduced_rekey_falls_back_to_full_run() {
        let mut svc = service(7);
        svc.create_group(5, &users(0..4)).unwrap();
        // 4 members, 2 leave → 2 survivors: reduced rekey impossible.
        svc.submit(5, MembershipEvent::Leave(UserId(0))).unwrap();
        svc.submit(5, MembershipEvent::Leave(UserId(2))).unwrap();
        let report = svc.tick();
        assert_eq!(report.rekeys_executed, 1);
        assert_eq!(
            report.full_gka_runs, 1,
            "fallback is one initial-GKA re-run"
        );
        let s = svc.session(5).unwrap();
        assert_eq!(s.n(), 2);
        assert!(s.invariant_holds());
    }

    #[test]
    fn service_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut svc = service(seed);
            for g in 0..6u64 {
                svc.create_group(g, &users(g as u32 * 10..g as u32 * 10 + 4))
                    .unwrap();
            }
            for g in 0..6u64 {
                svc.submit(g, MembershipEvent::Join(UserId(1000 + g as u32)))
                    .unwrap();
                svc.submit(g, MembershipEvent::Leave(UserId(g as u32 * 10 + 1)))
                    .unwrap();
            }
            let r = svc.tick();
            let keys: Vec<_> = svc
                .group_ids()
                .iter()
                .map(|&g| svc.group_key(g).unwrap().clone())
                .collect();
            (r.events_applied, r.rekeys_executed, keys)
        };
        assert_eq!(run(42), run(42), "same seed, same keys and counters");
        assert_ne!(run(42).2, run(43).2, "different seed, different keys");
    }

    #[test]
    fn shards_partition_the_group_space() {
        let mut svc = service(8);
        for g in 0..40u64 {
            svc.create_group(g, &users(g as u32 * 8..g as u32 * 8 + 3))
                .unwrap();
        }
        assert_eq!(svc.groups_active(), 40);
        assert_eq!(svc.group_ids().len(), 40);
        // Every group lives on exactly the shard its id hashes to, and
        // ticking an empty queue set is a no-op.
        let report = svc.tick();
        assert_eq!(report.rekeys_executed, 0);
        assert_eq!(svc.groups_active(), 40);
    }

    #[test]
    fn eviction_logs_a_verifiable_blame_cert_in_the_wal() {
        use egka_store::wal_records;

        let mut rng = ChaChaRng::seed_from_u64(0x0b57);
        let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
        let backend: Arc<dyn Store> = Arc::new(MemStore::new());
        let mut svc = KeyService::builder()
            .seed(0xe0a1)
            .eviction(EvictionPolicy::default())
            .store(StoreConfig::new(Arc::clone(&backend)).snapshot_every(0))
            .build(pkg);
        svc.create_group(1, &users(0..4)).unwrap();
        svc.detach_member(UserId(3));
        svc.submit(1, MembershipEvent::Join(UserId(10))).unwrap();
        // STALLED_AFTER_EPOCHS stalls accrue the streak…
        for _ in 0..STALLED_AFTER_EPOCHS {
            let r = svc.tick();
            assert_eq!(r.members_evicted, 0);
            assert_eq!(r.rekeys_executed, 0);
        }
        // …and the next tick evicts the culprit and completes the epoch
        // over the survivors: within STALLED_AFTER_EPOCHS + 1 epochs.
        let r = svc.tick();
        assert_eq!(r.evicted, vec![(1, UserId(3))]);
        assert_eq!(r.blame_certs, 1);
        assert!(r.rekeys_executed >= 1, "the stalled group completed");
        let s = svc.session(1).unwrap();
        assert!(!s.contains(UserId(3)));
        assert!(s.contains(UserId(10)));

        // The signed certificate is in the WAL, names the member, and
        // verifies against the coordinator's public key.
        let public = svc.blame_public().expect("eviction armed");
        let mut logged = Vec::new();
        for payload in wal_records(backend.as_ref()).unwrap() {
            if let (_, crate::persist::WalRecord::Evict { cert }) =
                crate::persist::WalRecord::decode(&payload).unwrap()
            {
                logged.push(BlameCert::decode(&cert).expect("logged cert decodes"));
            }
        }
        assert_eq!(logged.len(), 1);
        assert_eq!(logged[0].group, 1);
        assert_eq!(logged[0].epoch, STALLED_AFTER_EPOCHS + 1);
        assert_eq!(logged[0].evicted.len(), 1);
        assert_eq!(logged[0].evicted[0].member, 3);
        assert_eq!(logged[0].evicted[0].streak, STALLED_AFTER_EPOCHS);
        assert!(logged[0].verify(&public), "coordinator signature verifies");
        assert_eq!(svc.blame_certs(), &logged[..]);
    }

    #[test]
    fn add_remove_move_shards_keep_keys_bit_identical() {
        let mut svc = service(21);
        for g in 0..24u64 {
            svc.create_group(g, &users(g as u32 * 8..g as u32 * 8 + 3))
                .unwrap();
        }
        svc.tick();
        let keys: Vec<_> = (0..24u64)
            .map(|g| svc.group_key(g).unwrap().clone())
            .collect();
        let before = svc.shard_count();

        // Grow twice: placements move, keys must not.
        svc.add_shard();
        svc.add_shard();
        assert_eq!(svc.shard_count(), before + 2);
        assert!(svc.metrics().groups_moved > 0, "growth relocated movers");

        // Pin a group somewhere it does not hash to.
        let gid = 5;
        let target = (svc.shard_of(gid) + 1) % svc.shard_count();
        svc.move_group(gid, target).unwrap();
        assert_eq!(svc.shard_of(gid), target);

        // Shrink all the way back down (evacuating residents each time).
        while svc.shard_count() > 1 {
            let highest = svc.shard_count() - 1;
            svc.remove_shard(highest).unwrap();
        }
        assert_eq!(svc.groups_active(), 24, "no group lost in transit");
        for (g, key) in keys.iter().enumerate() {
            assert_eq!(
                key,
                svc.group_key(g as u64).unwrap(),
                "handoffs must never touch key material"
            );
        }
        // One shard left: everything is on shard 0, pins included.
        for g in 0..24u64 {
            assert_eq!(svc.shard_of(g), 0);
        }
        // And churn still works after all that movement.
        svc.submit(3, MembershipEvent::Join(UserId(900))).unwrap();
        let r = svc.tick();
        assert_eq!(r.events_applied, 1);
        assert!(svc.session(3).unwrap().invariant_holds());
    }

    #[test]
    fn remove_shard_guards_and_busy_refusal() {
        let mut svc = service(22);
        for g in 0..16u64 {
            svc.create_group(g, &users(g as u32 * 8..g as u32 * 8 + 3))
                .unwrap();
        }
        let highest = svc.shard_count() - 1;
        assert_eq!(
            svc.remove_shard(highest + 5),
            Err(ServiceError::NoSuchShard(highest + 5))
        );
        if highest > 0 {
            assert_eq!(
                svc.remove_shard(0),
                Err(ServiceError::ShardNotHighest { shard: 0, highest })
            );
        }
        // Queue an event on a group resident on the highest shard: the
        // removal must refuse rather than relocate in-flight work.
        let resident = (0..16u64)
            .find(|&g| svc.shard_of(g) == highest)
            .expect("some group lands on the highest shard");
        svc.submit(resident, MembershipEvent::Join(UserId(800)))
            .unwrap();
        assert_eq!(
            svc.remove_shard(highest),
            Err(ServiceError::ShardBusy {
                shard: highest,
                group: resident
            })
        );
        // Draining the backlog un-busies it.
        svc.tick();
        svc.remove_shard(highest).unwrap();
        assert_eq!(svc.shard_count(), highest);
        // The last shard can never go.
        while svc.shard_count() > 1 {
            svc.remove_shard(svc.shard_count() - 1).unwrap();
        }
        assert_eq!(svc.remove_shard(0), Err(ServiceError::LastShard));
    }

    #[test]
    fn resharding_survives_crash_recovery_bit_for_bit() {
        let mut rng = ChaChaRng::seed_from_u64(0x0e5d);
        let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
        let backend: Arc<dyn Store> = Arc::new(MemStore::new());
        let build = |backend: &Arc<dyn Store>| {
            KeyService::builder()
                .seed(0xd1f)
                .shards(2)
                .store(StoreConfig::new(Arc::clone(backend)).snapshot_every(0))
        };
        let mut svc = build(&backend).build(Arc::clone(&pkg));
        for g in 0..12u64 {
            svc.create_group(g, &users(g as u32 * 8..g as u32 * 8 + 3))
                .unwrap();
        }
        svc.tick();
        svc.add_shard();
        svc.add_shard();
        let pin_to = (svc.shard_of(7) + 1) % svc.shard_count();
        svc.move_group(7, pin_to).unwrap();
        svc.remove_shard(svc.shard_count() - 1).unwrap();
        svc.submit(2, MembershipEvent::Join(UserId(700))).unwrap();
        svc.tick();

        // "Crash": rebuild purely from the store. Placement, keys, and
        // metrics counters must all reconstruct exactly.
        let (recovered, report) = build(&backend).recover(pkg).unwrap();
        assert!(report.records_replayed > 0);
        assert_eq!(recovered.shard_count(), svc.shard_count());
        for g in svc.group_ids() {
            assert_eq!(
                recovered.shard_of(g),
                svc.shard_of(g),
                "group {g} placement"
            );
            assert_eq!(
                recovered.group_key(g).unwrap(),
                svc.group_key(g).unwrap(),
                "group {g} key"
            );
        }
        let (m, r) = (svc.metrics(), recovered.metrics());
        assert_eq!(r.shards_added, m.shards_added);
        assert_eq!(r.shards_removed, m.shards_removed);
        assert_eq!(r.groups_moved, m.groups_moved);
    }

    #[test]
    fn rebalancer_drains_hot_spots_deterministically() {
        let build = |seed: u64| {
            let mut rng = ChaChaRng::seed_from_u64(0x5e81 ^ seed);
            let pkg = Arc::new(Pkg::setup(&mut rng, SecurityProfile::Toy));
            KeyService::builder()
                .seed(seed)
                .shards(2)
                .rebalancer(Rebalancer {
                    max_pending: 1,
                    cooldown_epochs: 1,
                    max_moves_per_epoch: 2,
                })
                .build(pkg)
        };
        let run = |seed: u64| {
            let mut svc = build(seed);
            for g in 0..8u64 {
                svc.create_group(g, &users(g as u32 * 16..g as u32 * 16 + 4))
                    .unwrap();
            }
            // Pile events onto whichever groups share shard 0 so its
            // backlog crosses the threshold.
            for round in 0..4u32 {
                for g in 0..8u64 {
                    if svc.shard_of(g) == 0 {
                        svc.submit(
                            g,
                            MembershipEvent::Join(UserId(2000 + round * 50 + g as u32)),
                        )
                        .unwrap();
                    }
                }
                svc.tick();
            }
            let keys: Vec<_> = svc
                .group_ids()
                .iter()
                .map(|&g| svc.group_key(g).unwrap().clone())
                .collect();
            (svc.metrics().groups_moved, keys)
        };
        let (moved, keys) = run(77);
        assert!(moved > 0, "the hot shard sheds load");
        assert_eq!((moved, keys), run(77), "rebalancing is deterministic");
    }

    #[test]
    fn epoch_report_latency_quantiles() {
        let mut svc = service(9);
        svc.create_group(1, &users(0..6)).unwrap();
        svc.submit(1, MembershipEvent::Leave(UserId(3))).unwrap();
        let report = svc.tick();
        let (p50, p95, max) = report.latency_quantiles().expect("one rekey ran");
        assert!(p50 <= p95 && p95 <= max);
    }
}
