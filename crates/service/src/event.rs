//! Membership events and their admission errors.

use egka_core::UserId;

/// Service-wide group identifier (stable across rekeys; assigned by the
/// caller at [`crate::KeyService::create_group`]).
pub type GroupId = u64;

/// A queued membership-change request against one group.
///
/// Events are not applied when submitted: they accumulate per group and
/// are collapsed by the epoch coordinator into the minimal sequence of the
/// paper's §7 dynamics at the next [`crate::KeyService::tick`]:
///
/// * a batch of `Leave`s → one Partition (a single reduced rekey);
/// * `k ≥ 2` `Join`s → either `k` paper Joins or one newcomer GKA + Merge,
///   whichever the closed-form energy model prices cheaper;
/// * `MergeWith` requests → one `merge_many` fold;
/// * a `Join` cancelled by a `Leave` of the same still-pending user → no
///   rekey at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipEvent {
    /// `user` wants to join the group.
    Join(UserId),
    /// `user` wants to (or was observed to) leave the group.
    Leave(UserId),
    /// The entire group `other` should be absorbed into this group.
    MergeWith(GroupId),
}

/// Why an event could not be applied at its epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Join of a user who is already a member.
    AlreadyMember,
    /// Leave of a user who is not a member (and not a pending join).
    NotAMember,
    /// MergeWith an unknown or already-dissolved group.
    UnknownPeerGroup,
    /// MergeWith the group itself (possibly via a same-epoch absorption
    /// chain that collapsed host and target into one group).
    SelfMerge,
    /// A second MergeWith naming a target already being merged this epoch.
    DuplicateMerge,
    /// The event's group dissolved or was merged away before the epoch
    /// could apply it.
    GroupGone,
}

/// Errors from the service's synchronous API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The referenced group id is not registered.
    UnknownGroup(GroupId),
    /// A group with this id already exists.
    GroupExists(GroupId),
    /// A group needs at least two founding members.
    GroupTooSmall,
    /// Duplicate founding member ids.
    DuplicateMember(UserId),
    /// A founding member is powered off (detached) or battery-dead: it
    /// cannot run the initial GKA.
    MemberUnavailable(UserId),
    /// The user was evicted by the robustness engine and its quarantine
    /// has not elapsed: the Join is refused until the given epoch.
    Quarantined {
        /// The penalized user.
        user: UserId,
        /// First epoch at which a Join will be accepted again.
        until_epoch: u64,
    },
    /// The referenced shard index is outside the live pool.
    NoSuchShard(usize),
    /// The pool cannot shrink below one shard.
    LastShard,
    /// Only the highest-index shard can be removed (jump-hash bucket
    /// spaces are contiguous; removing a middle shard would leave a hole).
    ShardNotHighest {
        /// The shard the caller asked to remove.
        shard: usize,
        /// The only currently removable shard.
        highest: usize,
    },
    /// A shard removal was refused because a resident group still has
    /// pending membership events (an in-flight round): retiring the shard
    /// now would drop queued work. Drain with a tick first.
    ShardBusy {
        /// The shard that refused.
        shard: usize,
        /// A resident group with pending events.
        group: GroupId,
    },
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            ServiceError::GroupExists(g) => write!(f, "group {g} already exists"),
            ServiceError::GroupTooSmall => write!(f, "a group needs at least two members"),
            ServiceError::DuplicateMember(u) => write!(f, "duplicate founding member {u}"),
            ServiceError::MemberUnavailable(u) => {
                write!(f, "founding member {u} is powered off or battery-dead")
            }
            ServiceError::Quarantined { user, until_epoch } => {
                write!(f, "user {user} is quarantined until epoch {until_epoch}")
            }
            ServiceError::NoSuchShard(s) => write!(f, "no such shard {s}"),
            ServiceError::LastShard => write!(f, "cannot remove the last shard"),
            ServiceError::ShardNotHighest { shard, highest } => {
                write!(
                    f,
                    "only the highest shard ({highest}) can be removed, not {shard}"
                )
            }
            ServiceError::ShardBusy { shard, group } => {
                write!(
                    f,
                    "shard {shard} is busy: group {group} has pending events; tick first"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}
