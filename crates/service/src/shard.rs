//! A worker shard: exclusive owner of a subset of the service's groups,
//! and a **scheduler** (not a driver) for their rekeys.
//!
//! Groups are placed on shards by jump consistent hashing; each shard is
//! driven single-threaded over its own groups during an epoch tick (the
//! service fans shards — not groups — across threads), so group state
//! needs no locking and epoch results are deterministic regardless of how
//! the OS schedules the shard threads.
//!
//! Within a tick the shard no longer runs each group's rekey to
//! completion before touching the next: every pending group's protocol
//! step is a sans-IO [`egka_core::machine`] execution, and
//! [`Shard::run_epoch`] **interleaves** them round-robin, pumping each
//! group's machines as far as they go without blocking. A group whose
//! member is powered off simply stops making progress; the scheduler
//! detects the stall (a pump sweep with zero movement on a private medium
//! is permanent), charges the wasted transmissions, retries lossy-medium
//! stalls with fresh randomness, and finally times the group out — while
//! every other group on the shard completes in the same epoch. That
//! per-group isolation under faults is the liveness property
//! `tests/liveness.rs` pins.

use std::collections::BTreeMap;
use std::time::Instant;

use egka_core::machine::Faults;
use egka_core::suite::{suite, StepCtx, SuiteId, SuiteRun};
use egka_core::{GroupSession, Pkg, Pump, RadioSpec, UserId};
use egka_energy::OpCounts;
use egka_medium::{BatteryBank, RadioProfile};

use egka_trace::{Event, Payload, Phase, StallCause, StepTrace, CONTROL_TID, EPOCH_NS, SWEEP_NS};

use crate::event::{GroupId, MembershipEvent, RejectReason};
use crate::health::StallEvent;
use crate::metrics::{add_traffic, traffic_of, EpochReport};
use crate::plan::{plan_group_suite, CostModel, RekeyPlan, RekeyStep, SuitePolicy};

/// One managed group.
#[derive(Clone, Debug)]
pub struct GroupState {
    /// The live session (members, shares, current key).
    pub session: GroupSession,
    /// The GKA suite this group runs ([`crate::SuitePolicy`] chose it at
    /// creation; a `Cheapest` policy may migrate it at a full rekey).
    pub suite: SuiteId,
    /// Epoch at which the group was created.
    pub created_epoch: u64,
    /// Rekeys this group has been through.
    pub rekeys: u64,
}

/// Deterministic 64-bit mixing for per-group / per-step seeds
/// (re-exported from the suite layer so schedulers and suites share one
/// derivation chain).
pub(crate) use egka_core::suite::mix;

/// The radio half of an epoch context: the hardware/channel profile every
/// step's medium is built from, and the shared battery bank the drain
/// accumulates in.
pub(crate) struct RadioEpoch {
    pub profile: RadioProfile,
    pub bank: BatteryBank,
}

/// Epoch-wide execution context handed to every shard.
pub(crate) struct EpochCtx<'a> {
    pub pkg: &'a Pkg,
    pub cost: &'a CostModel,
    /// Suite-selection policy (consulted at full-rekey plans).
    pub policy: &'a SuitePolicy,
    pub epoch: u64,
    pub service_seed: u64,
    /// Network faults injected into every protocol step's medium.
    pub loss: f64,
    pub detached: &'a [UserId],
    /// Retransmission budget for loss-stalled steps before the group is
    /// timed out for the epoch.
    pub step_retries: u32,
    /// When set, every protocol step runs over a virtual-time radio
    /// instead of the instant medium.
    pub radio: Option<&'a RadioEpoch>,
    /// This shard's trace pid lane (shard index + 1; the coordinator is
    /// pid 0).
    pub pid: u32,
    /// Whether the service records traces — shards buffer events locally
    /// and the coordinator drains the buffers in shard order, so the
    /// recorded stream is deterministic despite the parallel fan-out.
    pub trace_enabled: bool,
    /// Fan each protocol step's per-node machine sweeps across threads
    /// (bit-identical outcome; see [`Faults::parallel`]).
    pub parallel_pump: bool,
}

impl EpochCtx<'_> {
    fn faults_for(&self, step_seed: u64) -> Faults {
        Faults {
            loss: self.loss,
            loss_seed: mix(step_seed, 0x105e),
            detached: self.detached.to_vec(),
            radio: self.radio.map(|r| RadioSpec {
                profile: r.profile.clone(),
                seed: mix(step_seed, 0xad10),
                bank: Some(r.bank.clone()),
            }),
            trace: None,
            parallel: self.parallel_pump,
        }
    }

    /// Whether `u` is unreachable for this epoch: explicitly powered off,
    /// or battery-dead on the radio.
    fn is_down(&self, u: UserId) -> bool {
        self.detached.contains(&u) || self.radio.is_some_and(|r| r.bank.is_dead(u.0))
    }
}

/// One group's epoch work: its plan, working session, and progress. The
/// in-flight step is a protocol-erased [`SuiteRun`] — the shard schedules
/// pumps and accounts outcomes without knowing which of the five suites
/// is running.
struct ActiveGroup {
    gid: GroupId,
    original_events: Vec<MembershipEvent>,
    plan: RekeyPlan,
    step_idx: usize,
    runner: Option<Box<dyn SuiteRun>>,
    retries: u32,
    session: GroupSession,
    ops: OpCounts,
    rekeys: u64,
    gka_runs: u64,
    started: Instant,
    /// Virtual radio milliseconds spent on this group's epoch so far —
    /// completed steps plus aborted (retransmitted) attempts.
    virtual_ms: f64,
    dissolved: bool,
    done: bool,
    failed: bool,
    /// Shared buffer the in-flight step's executor and radio report into
    /// (when tracing); drained after the step settles.
    trace: Option<StepTrace>,
    /// The group's position on its trace lane: where the next step span
    /// begins.
    lane_ns: u64,
}

/// A shard: groups + their pending event queues.
#[derive(Default)]
pub(crate) struct Shard {
    pub groups: BTreeMap<GroupId, GroupState>,
    pub pending: BTreeMap<GroupId, Vec<MembershipEvent>>,
    /// Scratch output of the last `run_epoch` (read by the coordinator
    /// after the parallel fan-out joins).
    pub scratch: EpochReport,
    /// Trace events buffered during the last `run_epoch`, drained by the
    /// coordinator in shard order after the join.
    pub scratch_trace: Vec<Event>,
}

impl Shard {
    /// Executes one epoch over this shard's groups: drain each non-empty
    /// queue, collapse it into a [`RekeyPlan`], then **interleave** every
    /// plan's protocol steps round-robin until each group completes,
    /// stalls out, or dissolves. Deterministic given (state, seed, fault
    /// plan). A group's epoch is atomic: its session and its plan's event
    /// accounting commit only if every step completes; a timed-out group
    /// keeps its pre-epoch key and its events are requeued for the next
    /// tick.
    pub fn run_epoch(&mut self, ctx: &EpochCtx<'_>) {
        let mut report = EpochReport {
            epoch: ctx.epoch,
            ..EpochReport::default()
        };
        let mut tr: Vec<Event> = Vec::new();
        let slot = ctx.epoch * EPOCH_NS;
        let queues: Vec<(GroupId, Vec<MembershipEvent>)> = std::mem::take(&mut self.pending)
            .into_iter()
            .filter(|(_, q)| !q.is_empty())
            .collect();

        // ---- Plan every group's epoch ----
        let plan_started = Instant::now();
        let mut active: Vec<ActiveGroup> = Vec::new();
        for (gid, events) in queues {
            let Some(state) = self.groups.get(&gid) else {
                // Group dissolved/merged away after the events were queued.
                report.events_rejected += events.len() as u64;
                report.rejections.extend(
                    events
                        .into_iter()
                        .map(|ev| (gid, ev, RejectReason::GroupGone)),
                );
                continue;
            };
            report.groups_touched += 1;
            let plan = plan_group_suite(&state.session, &events, ctx.cost, state.suite, ctx.policy);
            if plan.steps.is_empty() {
                // Nothing to execute (e.g. a cancelled join/leave pair):
                // the plan's accounting commits immediately.
                if ctx.trace_enabled {
                    tr.push(
                        Event::new(
                            Phase::Instant,
                            slot,
                            ctx.pid,
                            egka_trace::group_tid(gid),
                            "plan.cancelled",
                        )
                        .with(Payload::Plan {
                            suite: plan.suite.key(),
                            steps: 0,
                        }),
                    );
                }
                fold_plan_accounting(&mut report, gid, &plan);
                continue;
            }
            if ctx.trace_enabled {
                tr.push(
                    Event::new(
                        Phase::Begin,
                        slot,
                        ctx.pid,
                        egka_trace::group_tid(gid),
                        "group.epoch",
                    )
                    .with(Payload::Plan {
                        suite: plan.suite.key(),
                        steps: plan.steps.len() as u32,
                    }),
                );
            }
            active.push(ActiveGroup {
                gid,
                original_events: events,
                plan,
                step_idx: 0,
                runner: None,
                retries: 0,
                session: state.session.clone(),
                ops: OpCounts::new(),
                rekeys: 0,
                gka_runs: 0,
                started: Instant::now(),
                virtual_ms: 0.0,
                dissolved: false,
                done: false,
                failed: false,
                trace: None,
                lane_ns: slot,
            });
        }
        report.phases.plan.wall += plan_started.elapsed();

        if ctx.trace_enabled {
            tr.insert(
                0,
                Event::new(Phase::Begin, slot, ctx.pid, CONTROL_TID, "shard.epoch").with(
                    Payload::Epoch {
                        epoch: ctx.epoch,
                        groups: active.len() as u64,
                    },
                ),
            );
        }

        // ---- Interleave: one pump per unfinished group per sweep ----
        let exec_started = Instant::now();
        while active.iter().any(|g| !g.done) {
            for g in active.iter_mut().filter(|g| !g.done) {
                self.advance_group(g, ctx, &mut report, &mut tr);
            }
        }
        report.phases.execute.wall += exec_started.elapsed();

        // ---- Commit ----
        let commit_started = Instant::now();
        let mut lane_end = slot;
        for g in active {
            let step_energy_mj = ctx.cost.price_mj(&g.ops);
            if ctx.trace_enabled {
                lane_end = lane_end.max(g.lane_ns);
                tr.push(
                    Event::new(
                        Phase::End,
                        g.lane_ns,
                        ctx.pid,
                        egka_trace::group_tid(g.gid),
                        "group.epoch",
                    )
                    .with(Payload::Rekey {
                        suite: g.plan.suite.key(),
                        rekeys: g.rekeys,
                        mj: step_energy_mj,
                    }),
                );
            }
            let usage = report.per_suite.entry(g.plan.suite).or_default();
            usage.energy_mj += step_energy_mj;
            report.phases.execute.virtual_ms += g.virtual_ms;
            if g.failed {
                // Atomic epoch: the group keeps its pre-epoch session and
                // key; its events go back to the head of the queue so the
                // next tick retries them (e.g. once the member re-attaches).
                report.groups_stalled += 1;
                let queue = self.pending.entry(g.gid).or_default();
                let mut requeued = g.original_events;
                requeued.append(queue);
                *queue = requeued;
                // The wasted transmissions and computations are real
                // energy; charge them even though no key changed.
                report.ops.merge(&g.ops);
                add_traffic(&mut report.traffic, &traffic_of(&g.ops));
                report.energy_mj += step_energy_mj;
                continue;
            }
            usage.rekeys += g.rekeys;
            fold_plan_accounting(&mut report, g.gid, &g.plan);
            report.rekeys_executed += g.rekeys;
            report.full_gka_runs += g.gka_runs;
            report.ops.merge(&g.ops);
            add_traffic(&mut report.traffic, &traffic_of(&g.ops));
            report.energy_mj += step_energy_mj;
            if g.dissolved {
                self.groups.remove(&g.gid);
                report.groups_dissolved += 1;
            } else if g.rekeys > 0 {
                report.rekeyed_groups.push(g.gid);
                let state = self.groups.get_mut(&g.gid).expect("active group exists");
                state.session = g.session;
                state.rekeys += g.rekeys;
                // A full rekey is where a Cheapest policy migrates the
                // group to the suite it re-keyed under.
                state.suite = g.plan.suite;
                report.rekey_latencies.push(g.started.elapsed());
                if ctx.radio.is_some() {
                    report.rekey_latencies_virtual_ms.push(g.virtual_ms);
                }
            }
        }
        if ctx.trace_enabled {
            tr.push(
                Event::new(Phase::End, lane_end, ctx.pid, CONTROL_TID, "shard.epoch").with(
                    Payload::Epoch {
                        epoch: ctx.epoch,
                        groups: report.groups_touched,
                    },
                ),
            );
        }
        report.phases.commit.wall += commit_started.elapsed();
        self.scratch = report;
        self.scratch_trace = tr;
    }

    /// Gives `g` one scheduling quantum: materialize its current step's
    /// execution if needed, pump it, and handle completion / stall.
    fn advance_group(
        &self,
        g: &mut ActiveGroup,
        ctx: &EpochCtx<'_>,
        report: &mut EpochReport,
        tr: &mut Vec<Event>,
    ) {
        let group_seed = mix(mix(ctx.service_seed, g.gid), ctx.epoch);
        let lane = egka_trace::group_tid(g.gid);

        // Materialize the runner for the current step.
        if g.runner.is_none() {
            let step = &g.plan.steps[g.step_idx];
            if matches!(step, RekeyStep::Dissolve) {
                if ctx.trace_enabled {
                    tr.push(Event::new(
                        Phase::Instant,
                        g.lane_ns,
                        ctx.pid,
                        lane,
                        "dissolve",
                    ));
                }
                g.dissolved = true;
                g.done = true;
                return;
            }
            let base_seed = mix(group_seed, g.step_idx as u64 + 1);
            let step_seed = if g.retries == 0 {
                base_seed
            } else {
                // Fresh randomness per retransmission attempt.
                mix(base_seed, 0x7e70 + u64::from(g.retries))
            };
            if ctx.trace_enabled {
                if g.retries == 0 {
                    // One span per plan step; retry attempts stay inside it
                    // (their rounds and retry instants tell the story).
                    tr.push(
                        Event::new(Phase::Begin, g.lane_ns, ctx.pid, lane, step_name(step)).with(
                            Payload::Step {
                                suite: g.plan.suite.key(),
                                step: g.step_idx as u32,
                                retries: 0,
                                vms: 0.0,
                                bits: 0,
                                mj: 0.0,
                            },
                        ),
                    );
                }
                g.trace = Some(StepTrace::new(ctx.pid, g.gid, g.lane_ns));
            }
            g.runner = Some(build_step(
                ctx,
                g.plan.suite,
                &g.session,
                step,
                step_seed,
                g.trace.clone(),
            ));
        }

        let runner = g.runner.as_mut().expect("materialized above");
        match runner.pump() {
            Pump::Progressed => {}
            Pump::Done => {
                let finished = g.runner.take().expect("pumped");
                let step_vms = finished.virtual_elapsed_ms();
                g.virtual_ms += step_vms;
                let out = finished.finish();
                let mut sc = OpCounts::new();
                for node in &out.reports {
                    sc.merge(&node.counts);
                }
                if ctx.trace_enabled {
                    drain_step_trace(g, tr);
                    tr.push(
                        Event::new(
                            Phase::End,
                            g.lane_ns,
                            ctx.pid,
                            lane,
                            step_name(&g.plan.steps[g.step_idx]),
                        )
                        .with(Payload::Step {
                            suite: g.plan.suite.key(),
                            step: g.step_idx as u32,
                            retries: g.retries,
                            vms: step_vms,
                            bits: sc.tx_bits,
                            mj: ctx.cost.price_mj(&sc),
                        }),
                    );
                }
                g.ops.merge(&sc);
                g.session = out.session;
                g.rekeys += 1;
                g.gka_runs += out.gka_runs;
                g.retries = 0;
                g.step_idx += 1;
                if g.step_idx == g.plan.steps.len() {
                    g.done = true;
                }
            }
            Pump::Stalled | Pump::Failed(_) => {
                // On a private per-group medium a zero-progress sweep is
                // permanent: every machine is blocked and nothing is in
                // flight. Charge the aborted attempt (its energy *and* its
                // radio time) and retry or give up.
                let aborted = g.runner.take().expect("pumped");
                g.ops.merge(&aborted.partial_counts());
                g.virtual_ms += aborted.virtual_elapsed_ms();
                let detached_member = group_touches_detached(g, ctx);
                let cause = if !detached_member {
                    StallCause::Loss
                } else if ctx.detached.is_empty() {
                    StallCause::BatteryDead
                } else {
                    StallCause::Detached
                };
                if ctx.trace_enabled {
                    drain_step_trace(g, tr);
                    tr.push(
                        Event::new(Phase::Instant, g.lane_ns, ctx.pid, lane, "stall")
                            .with(Payload::Stall { cause }),
                    );
                }
                if !detached_member && g.retries < ctx.step_retries {
                    g.retries += 1;
                    report.steps_retried += 1;
                    // Runner rebuilds with a salted seed next quantum.
                    if ctx.trace_enabled {
                        tr.push(
                            Event::new(Phase::Instant, g.lane_ns, ctx.pid, lane, "retry")
                                .with(Payload::Retry { attempt: g.retries }),
                        );
                    }
                } else {
                    report.rekeys_failed += 1;
                    report.stall_events.push(StallEvent {
                        group: g.gid,
                        cause,
                        culprits: down_members(g, ctx),
                    });
                    g.failed = true;
                    g.done = true;
                    if ctx.trace_enabled {
                        // Balance the step span even though it went nowhere.
                        tr.push(
                            Event::new(
                                Phase::End,
                                g.lane_ns,
                                ctx.pid,
                                lane,
                                step_name(&g.plan.steps[g.step_idx]),
                            )
                            .with(Payload::Step {
                                suite: g.plan.suite.key(),
                                step: g.step_idx as u32,
                                retries: g.retries,
                                vms: g.virtual_ms,
                                bits: 0,
                                mj: 0.0,
                            }),
                        );
                    }
                }
            }
        }
    }
}

/// Settles a step's shared trace buffer back into the shard's event
/// stream: seals any dangling round span, advances the group's lane
/// clock past everything the step emitted, and appends the events.
fn drain_step_trace(g: &mut ActiveGroup, tr: &mut Vec<Event>) {
    if let Some(st) = g.trace.take() {
        st.close();
        g.lane_ns = st.end_ns().max(g.lane_ns + SWEEP_NS);
        tr.extend(st.drain());
    }
}

/// Stable trace-span name for a plan step.
fn step_name(step: &RekeyStep) -> &'static str {
    match step {
        RekeyStep::Partition { .. } => "step.partition",
        RekeyStep::JoinOne { .. } => "step.join_one",
        RekeyStep::MergeNewcomers { .. } => "step.merge_newcomers",
        RekeyStep::FullRekey { .. } => "step.full_rekey",
        RekeyStep::Dissolve => "step.dissolve",
    }
}

/// Whether any member this epoch touches (survivors or arrivals) is
/// unreachable — explicitly detached or battery-dead. Such a group cannot
/// succeed by retrying, so it fails fast instead of burning the
/// retransmission budget.
fn group_touches_detached(g: &ActiveGroup, ctx: &EpochCtx<'_>) -> bool {
    if ctx.detached.is_empty() && ctx.radio.is_none() {
        return false;
    }
    let in_session = g.session.member_ids().iter().any(|&u| ctx.is_down(u));
    let in_plan = g.plan.steps.iter().any(|s| match s {
        RekeyStep::JoinOne { newcomer } => ctx.is_down(*newcomer),
        RekeyStep::MergeNewcomers { newcomers } => newcomers.iter().any(|&u| ctx.is_down(u)),
        RekeyStep::FullRekey { members } => members.iter().any(|&u| ctx.is_down(u)),
        RekeyStep::Partition { .. } | RekeyStep::Dissolve => false,
    });
    in_session || in_plan
}

/// The unreachable members a group's epoch needed — the stall ledger's
/// culprit list. Session members plus the plan's arrivals, filtered to the
/// down set, ascending and deduplicated; empty under pure loss.
fn down_members(g: &ActiveGroup, ctx: &EpochCtx<'_>) -> Vec<UserId> {
    let mut down: Vec<UserId> = g
        .session
        .member_ids()
        .iter()
        .copied()
        .filter(|&u| ctx.is_down(u))
        .collect();
    for s in &g.plan.steps {
        match s {
            RekeyStep::JoinOne { newcomer } => {
                if ctx.is_down(*newcomer) {
                    down.push(*newcomer);
                }
            }
            RekeyStep::MergeNewcomers { newcomers } => {
                down.extend(newcomers.iter().copied().filter(|&u| ctx.is_down(u)));
            }
            RekeyStep::FullRekey { members } => {
                down.extend(members.iter().copied().filter(|&u| ctx.is_down(u)));
            }
            RekeyStep::Partition { .. } | RekeyStep::Dissolve => {}
        }
    }
    down.sort_unstable();
    down.dedup();
    down
}

/// Materializes one plan step as a protocol-erased, pumpable execution of
/// `suite_id` — the single point where a plan meets `dyn Suite`.
fn build_step(
    ctx: &EpochCtx<'_>,
    suite_id: SuiteId,
    session: &GroupSession,
    step: &RekeyStep,
    step_seed: u64,
    trace: Option<StepTrace>,
) -> Box<dyn SuiteRun> {
    let faults_for = move |seed: u64| {
        let mut f = ctx.faults_for(seed);
        f.trace = trace.clone();
        f
    };
    let step_ctx = StepCtx {
        pkg: ctx.pkg,
        seed: step_seed,
        composable_joins: ctx.cost.composable_joins,
        faults_for: &faults_for,
    };
    let s = suite(suite_id);
    match step {
        RekeyStep::Dissolve => unreachable!("dissolve has no protocol execution"),
        RekeyStep::Partition { leavers } => s.partition(&step_ctx, session, leavers),
        RekeyStep::JoinOne { newcomer } => s.join_one(&step_ctx, session, *newcomer),
        RekeyStep::MergeNewcomers { newcomers } => s.merge_newcomers(&step_ctx, session, newcomers),
        RekeyStep::FullRekey { members } => s.full_rekey(&step_ctx, &session.params, members),
    }
}

/// Commits a plan's admission accounting (applied / cancelled / rejected)
/// into the epoch report.
fn fold_plan_accounting(report: &mut EpochReport, gid: GroupId, plan: &RekeyPlan) {
    report.events_applied += plan.events_applied;
    report.events_cancelled += plan.events_cancelled;
    report.events_rejected += plan.rejected.len() as u64;
    report.rejections.extend(
        plan.rejected
            .iter()
            .cloned()
            .map(|(ev, why)| (gid, ev, why)),
    );
}

/// Applies `UserId`-keyed events in arrival order to a plain vector —
/// used by tests to model the expected final membership.
pub fn final_membership(start: &[UserId], events: &[MembershipEvent]) -> Vec<UserId> {
    let mut members: Vec<UserId> = start.to_vec();
    for ev in events {
        match *ev {
            MembershipEvent::Join(u) => {
                if !members.contains(&u) {
                    members.push(u);
                }
            }
            MembershipEvent::Leave(u) => members.retain(|&m| m != u),
            MembershipEvent::MergeWith(_) => {}
        }
    }
    members
}
