//! A worker shard: exclusive owner of a subset of the service's groups.
//!
//! Groups are hashed across shards at creation; each shard is driven
//! **single-threaded** over its own groups during an epoch tick (the
//! service fans shards — not groups — across threads), so group state
//! needs no locking at all and epoch results are deterministic regardless
//! of how the OS schedules the shard threads.

use std::collections::BTreeMap;
use std::time::Instant;

use egka_core::{dynamics, proposed, GroupSession, Pkg, RunConfig, UserId};
use egka_energy::OpCounts;

use crate::event::{GroupId, MembershipEvent, RejectReason};
use crate::metrics::{add_traffic, traffic_of, EpochReport};
use crate::plan::{plan_group, CostModel, RekeyPlan, RekeyStep};

/// One managed group.
#[derive(Clone, Debug)]
pub struct GroupState {
    /// The live session (members, shares, current key).
    pub session: GroupSession,
    /// Epoch at which the group was created.
    pub created_epoch: u64,
    /// Rekeys this group has been through.
    pub rekeys: u64,
}

/// Deterministic 64-bit mixing for per-group / per-step seeds.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shard: groups + their pending event queues.
#[derive(Default)]
pub(crate) struct Shard {
    pub groups: BTreeMap<GroupId, GroupState>,
    pub pending: BTreeMap<GroupId, Vec<MembershipEvent>>,
    /// Scratch output of the last `run_epoch` (read by the coordinator
    /// after the parallel fan-out joins).
    pub scratch: EpochReport,
}

impl Shard {
    /// Executes one epoch over this shard's groups: drain each non-empty
    /// queue, collapse it into a [`RekeyPlan`], run the plan, record
    /// metrics into `self.scratch`. Deterministic given (state, seed).
    pub fn run_epoch(&mut self, pkg: &Pkg, cost: &CostModel, epoch: u64, service_seed: u64) {
        let mut report = EpochReport {
            epoch,
            ..EpochReport::default()
        };
        let queues: Vec<(GroupId, Vec<MembershipEvent>)> = std::mem::take(&mut self.pending)
            .into_iter()
            .filter(|(_, q)| !q.is_empty())
            .collect();

        for (gid, events) in queues {
            let Some(state) = self.groups.get_mut(&gid) else {
                // Group dissolved/merged away after the events were queued.
                report.events_rejected += events.len() as u64;
                report.rejections.extend(
                    events
                        .into_iter()
                        .map(|ev| (gid, ev, RejectReason::GroupGone)),
                );
                continue;
            };
            report.groups_touched += 1;
            let plan = plan_group(&state.session, &events, cost);
            report.events_applied += plan.events_applied;
            report.events_cancelled += plan.events_cancelled;
            report.events_rejected += plan.rejected.len() as u64;
            report.rejections.extend(
                plan.rejected
                    .iter()
                    .cloned()
                    .map(|(ev, why)| (gid, ev, why)),
            );

            if plan.steps.is_empty() {
                continue;
            }
            let started = Instant::now();
            let seed = mix(mix(service_seed, gid), epoch);
            let outcome = execute_plan(pkg, &state.session, &plan, seed, cost);
            report.rekeys_executed += outcome.rekeys;
            report.full_gka_runs += outcome.gka_runs;
            report.ops.merge(&outcome.ops);
            add_traffic(&mut report.traffic, &traffic_of(&outcome.ops));
            report.energy_mj += cost.price_mj(&outcome.ops);
            match outcome.session {
                Some(session) => {
                    state.session = session;
                    state.rekeys += outcome.rekeys;
                    report.rekey_latencies.push(started.elapsed());
                }
                None => {
                    self.groups.remove(&gid);
                    report.groups_dissolved += 1;
                }
            }
        }
        self.scratch = report;
    }
}

/// Result of executing one group's plan.
pub(crate) struct PlanOutcome {
    /// `None` iff the group dissolved.
    pub session: Option<GroupSession>,
    /// Summed per-node counts of every protocol run in the plan.
    pub ops: OpCounts,
    /// §7/fallback protocol executions performed.
    pub rekeys: u64,
    /// Full initial-GKA executions among them (fallbacks + batched-join
    /// newcomer GKAs).
    pub gka_runs: u64,
}

/// Runs a [`RekeyPlan`] against a session, returning the new session and
/// the *measured* (instrumented) cost of every protocol execution.
pub(crate) fn execute_plan(
    pkg: &Pkg,
    session: &GroupSession,
    plan: &RekeyPlan,
    seed: u64,
    cost: &CostModel,
) -> PlanOutcome {
    let mut current = session.clone();
    let mut ops = OpCounts::new();
    let mut rekeys = 0u64;
    let mut gka_runs = 0u64;

    for (idx, step) in plan.steps.iter().enumerate() {
        let step_seed = mix(seed, idx as u64 + 1);
        match step {
            RekeyStep::Dissolve => {
                return PlanOutcome {
                    session: None,
                    ops,
                    rekeys,
                    gka_runs,
                };
            }
            RekeyStep::Partition { leavers } => {
                let positions: Vec<usize> = leavers
                    .iter()
                    .map(|&u| {
                        current
                            .position_of(u)
                            .expect("planner only removes live members")
                    })
                    .collect();
                let out = dynamics::partition(&current, &positions, step_seed);
                for r in &out.reports {
                    ops.merge(&r.counts);
                }
                current = out.session;
                rekeys += 1;
            }
            RekeyStep::JoinOne { newcomer } => {
                let key = pkg.extract(*newcomer);
                let out =
                    dynamics::join(&current, *newcomer, &key, step_seed, cost.composable_joins);
                for r in &out.reports {
                    ops.merge(&r.counts);
                }
                current = out.session;
                rekeys += 1;
            }
            RekeyStep::MergeNewcomers { newcomers } => {
                let keys: Vec<_> = newcomers.iter().map(|&u| pkg.extract(u)).collect();
                let (gka_report, newcomer_session) =
                    proposed::run(&current.params, &keys, step_seed, RunConfig::default());
                for node in &gka_report.nodes {
                    ops.merge(&node.counts);
                }
                gka_runs += 1;
                let out = dynamics::merge(&current, &newcomer_session, mix(step_seed, 0x6d));
                for r in &out.reports {
                    ops.merge(&r.counts);
                }
                current = out.session;
                rekeys += 1;
            }
            RekeyStep::FullRekey { members } => {
                let keys: Vec<_> = members.iter().map(|&u| pkg.extract(u)).collect();
                let (report, session) =
                    proposed::run(&current.params, &keys, step_seed, RunConfig::default());
                for node in &report.nodes {
                    ops.merge(&node.counts);
                }
                current = session;
                rekeys += 1;
                gka_runs += 1;
            }
        }
    }

    PlanOutcome {
        session: Some(current),
        ops,
        rekeys,
        gka_runs,
    }
}

/// Applies `UserId`-keyed events in arrival order to a plain vector —
/// used by tests to model the expected final membership.
pub fn final_membership(start: &[UserId], events: &[MembershipEvent]) -> Vec<UserId> {
    let mut members: Vec<UserId> = start.to_vec();
    for ev in events {
        match *ev {
            MembershipEvent::Join(u) => {
                if !members.contains(&u) {
                    members.push(u);
                }
            }
            MembershipEvent::Leave(u) => members.retain(|&m| m != u),
            MembershipEvent::MergeWith(_) => {}
        }
    }
    members
}
