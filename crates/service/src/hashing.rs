//! Jump consistent hashing for elastic shard counts.
//!
//! The service used to place groups with a fixed `hash % N`: growing the
//! shard pool from `N` to `N+1` remapped nearly every group (only `1/N+1`
//! of `hash % N` placements coincide with `hash % (N+1)`), which would
//! force a full re-registration of group state on every resize. Jump
//! consistent hashing (Lamping & Veach, arXiv:1406.2294) gives the same
//! O(1), zero-state placement but moves only `≈ 1/(N+1)` of the keys on a
//! grow — and every moved key lands on the *new* bucket, never between old
//! ones. The unit tests pin both properties.

/// Maps `key` to a bucket in `0..buckets` such that growing `buckets` by
/// one relocates only `≈ 1/buckets` of the keys (all onto the new bucket).
///
/// # Panics
/// Panics if `buckets` is zero.
pub fn jump_hash(key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "need at least one bucket");
    let mut key = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        let r = ((1u64 << 31) as f64) / (((key >> 33) + 1) as f64);
        j = (((b + 1) as f64) * r) as i64;
    }
    b as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> impl Iterator<Item = u64> {
        // Deterministic spread of group-id-like keys.
        (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7))
    }

    #[test]
    fn stays_in_range_and_is_deterministic() {
        for buckets in [1u32, 2, 7, 8, 64] {
            for k in keys().take(500) {
                let b = jump_hash(k, buckets);
                assert!(b < buckets);
                assert_eq!(b, jump_hash(k, buckets));
            }
        }
    }

    #[test]
    fn grow_moves_at_most_one_over_n_plus_slack() {
        // The defining consistent-hashing property: going N → N+1 moves
        // ≈ 1/(N+1) of keys; we allow 50% relative slack over 10k keys.
        for n in [2u32, 4, 8, 16] {
            let total = 10_000u32;
            let moved = keys()
                .filter(|&k| jump_hash(k, n) != jump_hash(k, n + 1))
                .count() as u32;
            let expected = total / (n + 1);
            assert!(
                moved <= expected + expected / 2,
                "N={n}: moved {moved} of {total}, expected ≈ {expected}"
            );
            assert!(moved > 0, "N={n}: a grow must move some keys");
        }
    }

    #[test]
    fn moved_keys_land_only_on_the_new_bucket() {
        for n in [3u32, 8, 13] {
            for k in keys().take(3_000) {
                let before = jump_hash(k, n);
                let after = jump_hash(k, n + 1);
                if before != after {
                    assert_eq!(after, n, "moved keys must land on the new bucket");
                }
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let buckets = 8u32;
        let mut counts = vec![0u32; buckets as usize];
        let total = 10_000;
        for k in keys().take(total) {
            counts[jump_hash(k, buckets) as usize] += 1;
        }
        let expected = total as u32 / buckets;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (expected / 2..expected * 2).contains(&c),
                "bucket {b} holds {c}, expected ≈ {expected}"
            );
        }
    }
}
