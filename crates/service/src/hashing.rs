//! Jump consistent hashing and the shard directory it seeds.
//!
//! The service used to place groups with a fixed `hash % N`: growing the
//! shard pool from `N` to `N+1` remapped nearly every group (only `1/N+1`
//! of `hash % N` placements coincide with `hash % (N+1)`), which would
//! force a full re-registration of group state on every resize. Jump
//! consistent hashing (Lamping & Veach, arXiv:1406.2294) gives the same
//! O(1), zero-state placement but moves only `≈ 1/(N+1)` of the keys on a
//! grow — and every moved key lands on the *new* bucket, never between old
//! ones. The unit tests pin both properties.
//!
//! [`ShardDirectory`] layers explicit per-group overrides on top of that
//! default: a group sits on its jump-hash home unless a live handoff
//! ([`crate::KeyService::move_group`] or the rebalancer) pinned it
//! elsewhere. The directory is the single authority on placement — the
//! service never calls [`jump_hash`] directly for routing.

use std::collections::BTreeMap;

use crate::event::GroupId;

/// Maps `key` to a bucket in `0..buckets` such that growing `buckets` by
/// one relocates only `≈ 1/buckets` of the keys (all onto the new bucket).
///
/// # Panics
/// Panics if `buckets` is zero.
pub fn jump_hash(key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "need at least one bucket");
    let mut key = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        let r = ((1u64 << 31) as f64) / (((key >> 33) + 1) as f64);
        j = (((b + 1) as f64) * r) as i64;
    }
    b as u32
}

/// The group→shard map: jump-hash placement plus explicit overrides.
///
/// Placement is `override if pinned else jump_hash(key(gid), shards)`.
/// Overrides are created by live handoffs (manual `move_group`, rebalancer
/// moves, or relocations forced by a shrink) and dropped when a group is
/// moved back onto its jump-hash home — so a directory with no overrides
/// is exactly the stateless placement the service started with.
#[derive(Clone, Debug)]
pub struct ShardDirectory {
    /// Live shard count — `jump_hash` bucket space.
    shards: u32,
    /// Salted placement key base; the directory hashes `salt ^ gid`
    /// derivations supplied by the caller (see [`ShardDirectory::home`]).
    salt: u64,
    /// Pinned placements that differ from (or deliberately shadow) the
    /// jump-hash home.
    overrides: BTreeMap<GroupId, u32>,
}

impl ShardDirectory {
    /// A directory over `shards` buckets using `salt` to key placement.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: u32, salt: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardDirectory {
            shards,
            salt,
            overrides: BTreeMap::new(),
        }
    }

    /// Live shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The jump-hash home for `gid` at the current shard count, ignoring
    /// overrides.
    pub fn home(&self, gid: GroupId) -> u32 {
        jump_hash(egka_core::suite::mix(self.salt, gid), self.shards)
    }

    /// Where `gid` lives right now: its override if pinned, else its home.
    pub fn locate(&self, gid: GroupId) -> u32 {
        self.overrides
            .get(&gid)
            .copied()
            .unwrap_or_else(|| self.home(gid))
    }

    /// Whether `gid` is pinned away from pure jump-hash placement.
    pub fn is_pinned(&self, gid: GroupId) -> bool {
        self.overrides.contains_key(&gid)
    }

    /// Pins `gid` to `shard`. If `shard` is the group's jump-hash home the
    /// pin is dropped instead — moving a group back to its home restores
    /// stateless placement for it.
    pub fn pin(&mut self, gid: GroupId, shard: u32) {
        debug_assert!(shard < self.shards);
        if self.home(gid) == shard {
            self.overrides.remove(&gid);
        } else {
            self.overrides.insert(gid, shard);
        }
    }

    /// Forgets `gid` entirely (group dissolved or merged away).
    pub fn forget(&mut self, gid: GroupId) {
        self.overrides.remove(&gid);
    }

    /// Grows the bucket space to `shards` (must be larger). Returns the
    /// *unpinned* groups among `resident` whose jump-hash home moved — by
    /// the jump-hash contract, all of them land on new buckets. Pinned
    /// groups stay put: an operator placement outranks the hash.
    pub fn grow(
        &mut self,
        shards: u32,
        resident: impl Iterator<Item = GroupId>,
    ) -> Vec<(GroupId, u32)> {
        assert!(shards > self.shards, "grow must increase the shard count");
        let old = self.shards;
        self.shards = shards;
        let mut moved = Vec::new();
        for gid in resident {
            if self.is_pinned(gid) {
                continue;
            }
            let before = jump_hash(egka_core::suite::mix(self.salt, gid), old);
            let after = self.home(gid);
            if before != after {
                moved.push((gid, after));
            }
        }
        moved
    }

    /// Shrinks the bucket space to `shards` (must be smaller, nonzero).
    /// Returns every group among `resident` currently placed on a removed
    /// bucket, paired with its new home at the reduced count; their pins
    /// (if any) are dropped so the new placement is authoritative.
    pub fn shrink(
        &mut self,
        shards: u32,
        resident: impl Iterator<Item = (GroupId, u32)>,
    ) -> Vec<(GroupId, u32)> {
        assert!(
            shards > 0 && shards < self.shards,
            "shrink must reduce the shard count"
        );
        self.shards = shards;
        let mut moved = Vec::new();
        for (gid, at) in resident {
            if at >= shards {
                self.overrides.remove(&gid);
                moved.push((gid, self.home(gid)));
            } else if self.overrides.get(&gid).is_some_and(|&o| o >= shards) {
                self.overrides.remove(&gid);
            }
        }
        moved
    }

    /// The pinned placements, ascending by group id — snapshot material.
    pub fn overrides(&self) -> impl Iterator<Item = (GroupId, u32)> + '_ {
        self.overrides.iter().map(|(&g, &s)| (g, s))
    }

    /// Restores pinned placements wholesale (recovery).
    pub fn set_overrides(&mut self, overrides: impl Iterator<Item = (GroupId, u32)>) {
        self.overrides = overrides.collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> impl Iterator<Item = u64> {
        // Deterministic spread of group-id-like keys.
        (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7))
    }

    #[test]
    fn stays_in_range_and_is_deterministic() {
        for buckets in [1u32, 2, 7, 8, 64] {
            for k in keys().take(500) {
                let b = jump_hash(k, buckets);
                assert!(b < buckets);
                assert_eq!(b, jump_hash(k, buckets));
            }
        }
    }

    #[test]
    fn grow_moves_at_most_one_over_n_plus_slack() {
        // The defining consistent-hashing property: going N → N+1 moves
        // ≈ 1/(N+1) of keys; we allow 50% relative slack over 10k keys.
        for n in [2u32, 4, 8, 16] {
            let total = 10_000u32;
            let moved = keys()
                .filter(|&k| jump_hash(k, n) != jump_hash(k, n + 1))
                .count() as u32;
            let expected = total / (n + 1);
            assert!(
                moved <= expected + expected / 2,
                "N={n}: moved {moved} of {total}, expected ≈ {expected}"
            );
            assert!(moved > 0, "N={n}: a grow must move some keys");
        }
    }

    #[test]
    fn moved_keys_land_only_on_the_new_bucket() {
        for n in [3u32, 8, 13] {
            for k in keys().take(3_000) {
                let before = jump_hash(k, n);
                let after = jump_hash(k, n + 1);
                if before != after {
                    assert_eq!(after, n, "moved keys must land on the new bucket");
                }
            }
        }
    }

    #[test]
    fn directory_defaults_to_jump_hash_and_pins_override() {
        let mut dir = ShardDirectory::new(4, 0xabc);
        let gid = 42;
        assert_eq!(dir.locate(gid), dir.home(gid));
        assert!(!dir.is_pinned(gid));

        let target = (dir.home(gid) + 1) % 4;
        dir.pin(gid, target);
        assert_eq!(dir.locate(gid), target);
        assert!(dir.is_pinned(gid));

        // Pinning back to the home drops the override entirely.
        dir.pin(gid, dir.home(gid));
        assert!(!dir.is_pinned(gid));
    }

    #[test]
    fn directory_grow_relocates_only_unpinned_movers() {
        let mut dir = ShardDirectory::new(4, 0x51a7);
        let gids: Vec<u64> = (0..200).collect();
        // Pin one group that would otherwise move on the grow.
        let pinned = gids
            .iter()
            .copied()
            .find(|&g| {
                jump_hash(egka_core::suite::mix(0x51a7, g), 4)
                    != jump_hash(egka_core::suite::mix(0x51a7, g), 5)
            })
            .expect("some group moves on 4→5");
        let before = dir.locate(pinned);
        dir.pin(pinned, before); // no-op pin (home) …
        dir.pin(pinned, (before + 1) % 4); // … then a real pin
        let pinned_at = dir.locate(pinned);

        let moved = dir.grow(5, gids.iter().copied());
        assert!(
            moved.iter().all(|&(_, to)| to == 4),
            "grow movers land on the new shard"
        );
        assert!(
            moved.iter().all(|&(g, _)| g != pinned),
            "pinned groups never move on grow"
        );
        assert_eq!(dir.locate(pinned), pinned_at);
        for (g, to) in moved {
            assert_eq!(dir.locate(g), to);
        }
    }

    #[test]
    fn directory_shrink_evacuates_the_removed_bucket() {
        let mut dir = ShardDirectory::new(5, 0x51a7);
        let gids: Vec<u64> = (0..200).collect();
        let placed: Vec<(u64, u32)> = gids.iter().map(|&g| (g, dir.locate(g))).collect();
        let on_last: Vec<u64> = placed
            .iter()
            .filter(|&&(_, s)| s == 4)
            .map(|&(g, _)| g)
            .collect();
        assert!(!on_last.is_empty());

        let moved = dir.shrink(4, placed.iter().copied());
        assert_eq!(
            moved.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            on_last,
            "exactly the removed bucket's residents move"
        );
        for (g, to) in moved {
            assert!(to < 4);
            assert_eq!(dir.locate(g), to);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let buckets = 8u32;
        let mut counts = vec![0u32; buckets as usize];
        let total = 10_000;
        for k in keys().take(total) {
            counts[jump_hash(k, buckets) as usize] += 1;
        }
        let expected = total as u32 / buckets;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (expected / 2..expected * 2).contains(&c),
                "bucket {b} holds {c}, expected ≈ {expected}"
            );
        }
    }
}
