//! Durable group state: WAL record codec, snapshot codec, recovery.
//!
//! ## What is logged
//!
//! The service's state is a deterministic function of its configuration
//! (seed, shards, policy, radio) and the *sequence of state-changing
//! calls* made against it. So the WAL does not persist protocol
//! transcripts — it persists the **commands** ([`WalRecord`]): group
//! creations, submitted membership events, power events, battery installs,
//! loss changes, and one [`WalRecord::EpochCommit`] per applied epoch,
//! appended *before* the epoch's report is returned to the caller.
//! Recovery replays the commands through the ordinary service entry
//! points; determinism does the rest, bit for bit.
//!
//! ## What is snapshotted
//!
//! Replaying a long history re-runs every rekey's cryptography. Every
//! `snapshot_every` epochs the service therefore serializes its *state*
//! directly — membership, per-group [`SuiteId`], epoch, session-key
//! material (sealed under the store's envelope key), pending queues, the
//! battery ledger, detached members — and installs it atomically,
//! truncating the log. Recovery is then snapshot + tail.
//!
//! Every record carries a monotone **log sequence number**; the snapshot
//! records the LSN watermark it covers, so a tail that survived a crash
//! between snapshot install and log truncation replays exactly once (the
//! file backend's documented crash window).
//!
//! ## Sealing
//!
//! Session keys are the one secret the service holds; at rest they are
//! sealed with the authenticated `E_K(·)` envelope (`egka-symmetric`)
//! under a 32-byte store key supplied by the deployment
//! ([`StoreConfig::seal_key`]). A snapshot opened with the wrong key — or
//! a tampered one — surfaces as [`StoreError::Corrupt`], never as a wrong
//! group key.

use std::sync::Arc;

use egka_core::suite::SuiteId;
use egka_core::wire::{DecodeError, Reader, Writer};
use egka_core::{GroupSession, Pkg, UserId};
use egka_hash::ChaChaRng;
use egka_store::{Store, StoreError};
use egka_symmetric::Envelope;
use egka_trace::StallCause;
use rand::SeedableRng;

use crate::event::{GroupId, MembershipEvent};
use crate::shard::GroupState;

/// Snapshot format magic + version (bump on layout changes).
const SNAPSHOT_MAGIC: &[u8; 8] = b"EGKASNP3";
/// WAL record format version.
const WAL_VERSION: u8 = 1;

/// Durability configuration handed to
/// [`crate::ServiceBuilder::store`]: the backend plus the sealing and
/// compaction knobs.
#[derive(Clone)]
pub struct StoreConfig {
    /// The WAL + snapshot backing.
    pub backend: Arc<dyn Store>,
    /// 32-byte key the snapshots' session-key material is sealed under.
    /// Recovery requires the same key. Defaults to an all-zero
    /// development key — a real deployment supplies its own.
    pub seal_key: [u8; 32],
    /// Install a compacting snapshot every this many epochs (0 disables
    /// periodic snapshots; the WAL then grows until
    /// [`crate::KeyService::snapshot_now`] is called).
    pub snapshot_every: u64,
}

impl StoreConfig {
    /// Durability on `backend` with the development seal key and a
    /// snapshot every 8 epochs.
    pub fn new(backend: Arc<dyn Store>) -> Self {
        StoreConfig {
            backend,
            seal_key: [0u8; 32],
            snapshot_every: 8,
        }
    }

    /// Replaces the snapshot sealing key.
    pub fn seal_key(mut self, key: [u8; 32]) -> Self {
        self.seal_key = key;
        self
    }

    /// Replaces the snapshot cadence (0 = never automatically).
    pub fn snapshot_every(mut self, epochs: u64) -> Self {
        self.snapshot_every = epochs;
        self
    }

    pub(crate) fn envelope(&self) -> Envelope {
        Envelope::from_key_material(&self.seal_key)
    }
}

impl core::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("backend", &"<dyn Store>")
            .field("seal_key", &"<sealed>")
            .field("snapshot_every", &self.snapshot_every)
            .finish()
    }
}

/// What [`crate::ServiceBuilder::recover`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch the restored snapshot covered (`None` = no snapshot, full
    /// log replay).
    pub snapshot_epoch: Option<u64>,
    /// WAL records replayed from the tail.
    pub records_replayed: u64,
    /// Committed epochs re-executed from the tail.
    pub epochs_replayed: u64,
    /// Groups live after recovery.
    pub groups_recovered: u64,
}

/// One durable state-changing command.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum WalRecord {
    /// First record of every fresh log: the topology the commands were
    /// issued under, so a log-only recovery (no snapshot yet) rejects a
    /// mismatched builder instead of silently deriving different keys.
    ConfigHeader { shards: u32, seed: u64 },
    /// `create_group(gid, members)` succeeded.
    CreateGroup { gid: GroupId, members: Vec<UserId> },
    /// `submit(gid, event)` accepted the event into a queue.
    Submit {
        gid: GroupId,
        event: MembershipEvent,
    },
    /// `detach_member(user)`.
    Detach(UserId),
    /// `attach_member(user)`.
    Attach(UserId),
    /// `set_battery(user, capacity_uj)`.
    SetBattery { user: UserId, capacity_uj: f64 },
    /// `set_loss(prob)`.
    SetLoss(f64),
    /// A `tick()` applied this epoch in full (appended before the report
    /// is returned — the write-ahead commit point).
    EpochCommit { epoch: u64 },
    /// The robustness engine evicted members: the encoded, signed
    /// [`egka_robust::BlameCert`]. Logged *before* the synthesized Leave
    /// events take effect, so replay can cross-check that it re-derives
    /// the identical eviction from the replayed ledger.
    Evict { cert: Vec<u8> },
    /// `add_shard()` grew the pool to `shards`. Logged *after* the grow's
    /// relocations completed, so replay re-runs the identical handoffs.
    AddShard { shards: u32 },
    /// `remove_shard()` shrank the pool to `shards`.
    RemoveShard { shards: u32 },
    /// A group was pinned to `to` — manual `move_group`, a rebalancer
    /// decision, or a relocation forced by a shrink. Replay re-applies the
    /// pin so recovery rebuilds placement bit-for-bit even when the
    /// triggering load statistics are not persisted.
    MoveGroup { gid: GroupId, to: u32 },
}

mod tag {
    pub const CONFIG_HEADER: u8 = 8;
    pub const CREATE: u8 = 1;
    pub const SUBMIT: u8 = 2;
    pub const DETACH: u8 = 3;
    pub const ATTACH: u8 = 4;
    pub const SET_BATTERY: u8 = 5;
    pub const SET_LOSS: u8 = 6;
    pub const EPOCH_COMMIT: u8 = 7;
    pub const EVICT: u8 = 9;
    pub const ADD_SHARD: u8 = 10;
    pub const REMOVE_SHARD: u8 = 11;
    pub const MOVE_GROUP: u8 = 12;
}

mod event_tag {
    pub const JOIN: u8 = 1;
    pub const LEAVE: u8 = 2;
    pub const MERGE_WITH: u8 = 3;
}

fn put_event(w: &mut Writer, event: &MembershipEvent) {
    match *event {
        MembershipEvent::Join(u) => {
            w.put_u8(event_tag::JOIN).put_id(u);
        }
        MembershipEvent::Leave(u) => {
            w.put_u8(event_tag::LEAVE).put_id(u);
        }
        MembershipEvent::MergeWith(g) => {
            w.put_u8(event_tag::MERGE_WITH).put_u64(g);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<MembershipEvent, DecodeError> {
    match r.get_u8()? {
        event_tag::JOIN => Ok(MembershipEvent::Join(r.get_id()?)),
        event_tag::LEAVE => Ok(MembershipEvent::Leave(r.get_id()?)),
        event_tag::MERGE_WITH => Ok(MembershipEvent::MergeWith(r.get_u64()?)),
        _ => Err(DecodeError {
            what: "unknown membership-event tag",
        }),
    }
}

impl WalRecord {
    /// Encodes `[version][lsn][tag][fields…]`.
    pub(crate) fn encode(&self, lsn: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(WAL_VERSION).put_u64(lsn);
        match self {
            WalRecord::ConfigHeader { shards, seed } => {
                w.put_u8(tag::CONFIG_HEADER).put_u32(*shards).put_u64(*seed);
            }
            WalRecord::CreateGroup { gid, members } => {
                w.put_u8(tag::CREATE)
                    .put_u64(*gid)
                    .put_u32(members.len() as u32);
                for u in members {
                    w.put_id(*u);
                }
            }
            WalRecord::Submit { gid, event } => {
                w.put_u8(tag::SUBMIT).put_u64(*gid);
                put_event(&mut w, event);
            }
            WalRecord::Detach(u) => {
                w.put_u8(tag::DETACH).put_id(*u);
            }
            WalRecord::Attach(u) => {
                w.put_u8(tag::ATTACH).put_id(*u);
            }
            WalRecord::SetBattery { user, capacity_uj } => {
                w.put_u8(tag::SET_BATTERY)
                    .put_id(*user)
                    .put_f64(*capacity_uj);
            }
            WalRecord::SetLoss(p) => {
                w.put_u8(tag::SET_LOSS).put_f64(*p);
            }
            WalRecord::EpochCommit { epoch } => {
                w.put_u8(tag::EPOCH_COMMIT).put_u64(*epoch);
            }
            WalRecord::Evict { cert } => {
                w.put_u8(tag::EVICT).put_blob(cert);
            }
            WalRecord::AddShard { shards } => {
                w.put_u8(tag::ADD_SHARD).put_u32(*shards);
            }
            WalRecord::RemoveShard { shards } => {
                w.put_u8(tag::REMOVE_SHARD).put_u32(*shards);
            }
            WalRecord::MoveGroup { gid, to } => {
                w.put_u8(tag::MOVE_GROUP).put_u64(*gid).put_u32(*to);
            }
        }
        w.finish().to_vec()
    }

    /// Decodes one record payload, returning `(lsn, record)`.
    pub(crate) fn decode(payload: &[u8]) -> Result<(u64, WalRecord), DecodeError> {
        let mut r = Reader::new(payload);
        if r.get_u8()? != WAL_VERSION {
            return Err(DecodeError {
                what: "unsupported wal record version",
            });
        }
        let lsn = r.get_u64()?;
        let record = match r.get_u8()? {
            tag::CONFIG_HEADER => WalRecord::ConfigHeader {
                shards: r.get_u32()?,
                seed: r.get_u64()?,
            },
            tag::CREATE => {
                let gid = r.get_u64()?;
                let n = r.get_u32()? as usize;
                let mut members = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    members.push(r.get_id()?);
                }
                WalRecord::CreateGroup { gid, members }
            }
            tag::SUBMIT => WalRecord::Submit {
                gid: r.get_u64()?,
                event: get_event(&mut r)?,
            },
            tag::DETACH => WalRecord::Detach(r.get_id()?),
            tag::ATTACH => WalRecord::Attach(r.get_id()?),
            tag::SET_BATTERY => WalRecord::SetBattery {
                user: r.get_id()?,
                capacity_uj: r.get_f64()?,
            },
            tag::SET_LOSS => WalRecord::SetLoss(r.get_f64()?),
            tag::EPOCH_COMMIT => WalRecord::EpochCommit {
                epoch: r.get_u64()?,
            },
            tag::EVICT => WalRecord::Evict {
                cert: r.get_blob()?.to_vec(),
            },
            tag::ADD_SHARD => WalRecord::AddShard {
                shards: r.get_u32()?,
            },
            tag::REMOVE_SHARD => WalRecord::RemoveShard {
                shards: r.get_u32()?,
            },
            tag::MOVE_GROUP => WalRecord::MoveGroup {
                gid: r.get_u64()?,
                to: r.get_u32()?,
            },
            _ => {
                return Err(DecodeError {
                    what: "unknown wal record tag",
                })
            }
        };
        r.expect_end()?;
        Ok((lsn, record))
    }
}

/// Everything a snapshot carries besides the groups themselves.
pub(crate) struct SnapshotState<'a> {
    /// Shard count and master seed of the service that cut the snapshot —
    /// a recovery under a different topology would scatter groups across
    /// different shards and derive different step seeds, so a mismatch is
    /// typed corruption rather than silent divergence.
    pub shards: u32,
    pub seed: u64,
    pub epoch: u64,
    pub next_lsn: u64,
    pub loss: f64,
    /// Live shard-directory bucket count (≥ `shards`, which stays the
    /// *initial* builder topology for the config guard).
    pub dir_shards: u32,
    /// Directory overrides `(gid, shard)`, ascending by gid.
    pub overrides: Vec<(GroupId, u32)>,
    /// Rebalancer hysteresis stamps `(gid, epoch last moved)`, ascending.
    pub last_moved: Vec<(GroupId, u64)>,
    pub detached: Vec<UserId>,
    pub known_dead: Vec<UserId>,
    /// `(user, capacity_uj, spent_uj)` battery cells, ascending by id.
    pub batteries: Vec<(u32, f64, f64)>,
    /// `(gid, state)` for every live group, ascending by id.
    pub groups: Vec<(GroupId, &'a GroupState)>,
    /// `(gid, queued events)` for every non-empty queue, ascending by id.
    pub pending: Vec<(GroupId, &'a [MembershipEvent])>,
    /// Stall-ledger group rows `(gid, consecutive, cumulative, cause)`,
    /// ascending — persisted so a recovered service re-derives the same
    /// eviction decisions from the same streaks.
    pub stall_groups: Vec<(GroupId, u64, u64, StallCause)>,
    /// Stall-ledger member rows `(gid, member, consecutive, cumulative,
    /// cause)`, ascending by `(gid, member)`.
    pub stall_members: Vec<(GroupId, u32, u64, u64, StallCause)>,
    /// Quarantine cells `(member, until_epoch, evictions)`, ascending.
    pub quarantine: Vec<(u32, u64, u32)>,
    /// Encoded blame certificates in issuance order, so a recovery from
    /// a post-eviction snapshot still surfaces the full audit trail.
    pub blame_certs: Vec<Vec<u8>>,
}

/// The owned counterpart [`decode_snapshot`] returns.
pub(crate) struct RestoredState {
    pub shards: u32,
    pub seed: u64,
    pub epoch: u64,
    pub next_lsn: u64,
    pub loss: f64,
    pub dir_shards: u32,
    pub overrides: Vec<(GroupId, u32)>,
    pub last_moved: Vec<(GroupId, u64)>,
    pub detached: Vec<UserId>,
    pub known_dead: Vec<UserId>,
    pub batteries: Vec<(u32, f64, f64)>,
    pub groups: Vec<(GroupId, GroupState)>,
    pub pending: Vec<(GroupId, Vec<MembershipEvent>)>,
    pub stall_groups: Vec<(GroupId, u64, u64, StallCause)>,
    pub stall_members: Vec<(GroupId, u32, u64, u64, StallCause)>,
    pub quarantine: Vec<(u32, u64, u32)>,
    pub blame_certs: Vec<Vec<u8>>,
}

/// Serializes a snapshot, sealing each group's session state under
/// `config`'s envelope. `seal_seed` drives the sealing IVs (deterministic
/// per service seed + epoch, so snapshotting never perturbs protocol
/// randomness).
pub(crate) fn encode_snapshot(
    state: &SnapshotState<'_>,
    config: &StoreConfig,
    seal_seed: u64,
) -> Vec<u8> {
    let envelope = config.envelope();
    let mut rng = ChaChaRng::seed_from_u64(seal_seed ^ 0x5ea1_5ea1);
    let mut w = Writer::new();
    w.put_bytes(SNAPSHOT_MAGIC);
    w.put_u32(state.shards).put_u64(state.seed);
    w.put_u64(state.epoch)
        .put_u64(state.next_lsn)
        .put_f64(state.loss);
    w.put_u32(state.dir_shards);
    w.put_u32(state.overrides.len() as u32);
    for &(gid, shard) in &state.overrides {
        w.put_u64(gid).put_u32(shard);
    }
    w.put_u32(state.last_moved.len() as u32);
    for &(gid, epoch) in &state.last_moved {
        w.put_u64(gid).put_u64(epoch);
    }
    w.put_u32(state.detached.len() as u32);
    for u in &state.detached {
        w.put_id(*u);
    }
    w.put_u32(state.known_dead.len() as u32);
    for u in &state.known_dead {
        w.put_id(*u);
    }
    w.put_u32(state.batteries.len() as u32);
    for &(user, capacity, spent) in &state.batteries {
        w.put_u32(user).put_f64(capacity).put_f64(spent);
    }
    w.put_u32(state.groups.len() as u32);
    for (gid, g) in &state.groups {
        w.put_u64(*gid)
            .put_u8(g.suite.code())
            .put_u64(g.created_epoch)
            .put_u64(g.rekeys);
        let mut sw = Writer::new();
        g.session.encode_state(&mut sw);
        let sealed = envelope.seal(&mut rng, &sw.finish());
        w.put_blob(&sealed);
    }
    w.put_u32(state.pending.len() as u32);
    for (gid, events) in &state.pending {
        w.put_u64(*gid).put_u32(events.len() as u32);
        for ev in events.iter() {
            put_event(&mut w, ev);
        }
    }
    w.put_u32(state.stall_groups.len() as u32);
    for &(gid, consecutive, cumulative, cause) in &state.stall_groups {
        w.put_u64(gid)
            .put_u64(consecutive)
            .put_u64(cumulative)
            .put_u8(cause.code());
    }
    w.put_u32(state.stall_members.len() as u32);
    for &(gid, member, consecutive, cumulative, cause) in &state.stall_members {
        w.put_u64(gid)
            .put_u32(member)
            .put_u64(consecutive)
            .put_u64(cumulative)
            .put_u8(cause.code());
    }
    w.put_u32(state.quarantine.len() as u32);
    for &(member, until_epoch, evictions) in &state.quarantine {
        w.put_u32(member).put_u64(until_epoch).put_u32(evictions);
    }
    w.put_u32(state.blame_certs.len() as u32);
    for cert in &state.blame_certs {
        w.put_blob(cert);
    }
    w.finish().to_vec()
}

fn corrupt(what: &'static str) -> StoreError {
    StoreError::Corrupt { what, offset: 0 }
}

/// Deserializes and unseals a snapshot against the recovering service's
/// PKG and envelope key. Any damage — truncation, tag drift, a wrong or
/// stale seal key — is a typed [`StoreError::Corrupt`].
pub(crate) fn decode_snapshot(
    bytes: &[u8],
    config: &StoreConfig,
    pkg: &Pkg,
) -> Result<RestoredState, StoreError> {
    let envelope = config.envelope();
    let mut r = Reader::new(bytes);
    let de = |_: DecodeError| corrupt("snapshot truncated or malformed");
    if r.get_bytes().map_err(de)? != SNAPSHOT_MAGIC {
        return Err(corrupt("snapshot magic mismatch"));
    }
    let shards = r.get_u32().map_err(de)?;
    let seed = r.get_u64().map_err(de)?;
    let epoch = r.get_u64().map_err(de)?;
    let next_lsn = r.get_u64().map_err(de)?;
    let loss = r.get_f64().map_err(de)?;
    if !(0.0..1.0).contains(&loss) {
        return Err(corrupt("snapshot loss out of range"));
    }
    let dir_shards = r.get_u32().map_err(de)?;
    if dir_shards == 0 {
        return Err(corrupt("snapshot directory has zero shards"));
    }
    let mut overrides = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        let gid = r.get_u64().map_err(de)?;
        let shard = r.get_u32().map_err(de)?;
        if shard >= dir_shards {
            return Err(corrupt("snapshot override outside the shard pool"));
        }
        overrides.push((gid, shard));
    }
    let mut last_moved = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        last_moved.push((r.get_u64().map_err(de)?, r.get_u64().map_err(de)?));
    }
    let mut detached = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        detached.push(r.get_id().map_err(de)?);
    }
    let mut known_dead = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        known_dead.push(r.get_id().map_err(de)?);
    }
    let mut batteries = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        batteries.push((
            r.get_u32().map_err(de)?,
            r.get_f64().map_err(de)?,
            r.get_f64().map_err(de)?,
        ));
    }
    let n_groups = r.get_u32().map_err(de)?;
    let mut groups = Vec::with_capacity((n_groups as usize).min(1 << 16));
    for _ in 0..n_groups {
        let gid = r.get_u64().map_err(de)?;
        let suite = SuiteId::from_code(r.get_u8().map_err(de)?)
            .ok_or_else(|| corrupt("unknown suite code in snapshot"))?;
        let created_epoch = r.get_u64().map_err(de)?;
        let rekeys = r.get_u64().map_err(de)?;
        let sealed = r.get_blob().map_err(de)?;
        let plain = envelope.open(sealed).map_err(|_| {
            corrupt("sealed session failed authentication (damaged or wrong seal key)")
        })?;
        let mut sr = Reader::new(&plain);
        let session = GroupSession::decode_state(&mut sr, pkg.params())
            .map_err(|_| corrupt("sealed session payload malformed"))?;
        sr.expect_end()
            .map_err(|_| corrupt("sealed session has trailing bytes"))?;
        groups.push((
            gid,
            GroupState {
                session,
                suite,
                created_epoch,
                rekeys,
            },
        ));
    }
    let n_pending = r.get_u32().map_err(de)?;
    let mut pending = Vec::with_capacity((n_pending as usize).min(1 << 16));
    for _ in 0..n_pending {
        let gid = r.get_u64().map_err(de)?;
        let n = r.get_u32().map_err(de)?;
        let mut events = Vec::with_capacity((n as usize).min(1 << 16));
        for _ in 0..n {
            events.push(get_event(&mut r).map_err(de)?);
        }
        pending.push((gid, events));
    }
    let cause_of =
        |code: u8| StallCause::from_code(code).ok_or_else(|| corrupt("unknown stall cause"));
    let mut stall_groups = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        stall_groups.push((
            r.get_u64().map_err(de)?,
            r.get_u64().map_err(de)?,
            r.get_u64().map_err(de)?,
            cause_of(r.get_u8().map_err(de)?)?,
        ));
    }
    let mut stall_members = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        stall_members.push((
            r.get_u64().map_err(de)?,
            r.get_u32().map_err(de)?,
            r.get_u64().map_err(de)?,
            r.get_u64().map_err(de)?,
            cause_of(r.get_u8().map_err(de)?)?,
        ));
    }
    let mut quarantine = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        quarantine.push((
            r.get_u32().map_err(de)?,
            r.get_u64().map_err(de)?,
            r.get_u32().map_err(de)?,
        ));
    }
    let mut blame_certs = Vec::new();
    for _ in 0..r.get_u32().map_err(de)? {
        blame_certs.push(r.get_blob().map_err(de)?.to_vec());
    }
    r.expect_end()
        .map_err(|_| corrupt("snapshot has trailing bytes"))?;
    Ok(RestoredState {
        shards,
        seed,
        epoch,
        next_lsn,
        loss,
        dir_shards,
        overrides,
        last_moved,
        detached,
        known_dead,
        batteries,
        groups,
        pending,
        stall_groups,
        stall_members,
        quarantine,
        blame_certs,
    })
}

/// Seals one group's state for shard-to-shard transit — the same
/// `[suite][created_epoch][rekeys][sealed session]` layout the snapshot
/// codec writes per group, so every live handoff exercises exactly the
/// portability the snapshot guarantees (and nothing more: no membership
/// replay, no re-keying).
pub(crate) fn seal_group_state(g: &GroupState, envelope: &Envelope, seal_seed: u64) -> Vec<u8> {
    let mut rng = ChaChaRng::seed_from_u64(seal_seed ^ 0x5ea1_5ea1);
    let mut w = Writer::new();
    w.put_u8(g.suite.code())
        .put_u64(g.created_epoch)
        .put_u64(g.rekeys);
    let mut sw = Writer::new();
    g.session.encode_state(&mut sw);
    w.put_blob(&envelope.seal(&mut rng, &sw.finish()));
    w.finish().to_vec()
}

/// Opens a [`seal_group_state`] blob. Damage or a wrong envelope key is
/// typed corruption, exactly as for a snapshot.
pub(crate) fn unseal_group_state(
    bytes: &[u8],
    envelope: &Envelope,
    pkg: &Pkg,
) -> Result<GroupState, StoreError> {
    let mut r = Reader::new(bytes);
    let de = |_: DecodeError| corrupt("sealed group state truncated or malformed");
    let suite = SuiteId::from_code(r.get_u8().map_err(de)?)
        .ok_or_else(|| corrupt("unknown suite code in sealed group state"))?;
    let created_epoch = r.get_u64().map_err(de)?;
    let rekeys = r.get_u64().map_err(de)?;
    let sealed = r.get_blob().map_err(de)?;
    let plain = envelope
        .open(sealed)
        .map_err(|_| corrupt("sealed session failed authentication (damaged or wrong seal key)"))?;
    let mut sr = Reader::new(&plain);
    let session = GroupSession::decode_state(&mut sr, pkg.params())
        .map_err(|_| corrupt("sealed session payload malformed"))?;
    sr.expect_end()
        .map_err(|_| corrupt("sealed session has trailing bytes"))?;
    r.expect_end()
        .map_err(|_| corrupt("sealed group state has trailing bytes"))?;
    Ok(GroupState {
        session,
        suite,
        created_epoch,
        rekeys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_codec_roundtrips() {
        let records = vec![
            WalRecord::ConfigHeader {
                shards: 8,
                seed: 0xe96a,
            },
            WalRecord::CreateGroup {
                gid: 7,
                members: vec![UserId(0), UserId(1), UserId(9)],
            },
            WalRecord::Submit {
                gid: 7,
                event: MembershipEvent::Join(UserId(4)),
            },
            WalRecord::Submit {
                gid: 7,
                event: MembershipEvent::Leave(UserId(1)),
            },
            WalRecord::Submit {
                gid: 7,
                event: MembershipEvent::MergeWith(12),
            },
            WalRecord::Detach(UserId(3)),
            WalRecord::Attach(UserId(3)),
            WalRecord::SetBattery {
                user: UserId(2),
                capacity_uj: 1234.5,
            },
            WalRecord::SetLoss(0.01),
            WalRecord::EpochCommit { epoch: 42 },
            WalRecord::Evict {
                cert: vec![0xde, 0xad, 0xbe, 0xef],
            },
            WalRecord::AddShard { shards: 9 },
            WalRecord::RemoveShard { shards: 7 },
            WalRecord::MoveGroup { gid: 7, to: 3 },
        ];
        for (i, rec) in records.iter().enumerate() {
            let lsn = 100 + i as u64;
            let (got_lsn, got) = WalRecord::decode(&rec.encode(lsn)).unwrap();
            assert_eq!(got_lsn, lsn);
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn wal_record_rejects_damage() {
        let payload = WalRecord::EpochCommit { epoch: 9 }.encode(1);
        for cut in 0..payload.len() {
            assert!(WalRecord::decode(&payload[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = payload.clone();
        extra.push(0);
        assert!(WalRecord::decode(&extra).is_err(), "trailing bytes");
        let mut bad_tag = payload;
        bad_tag[9] = 0xFF;
        assert!(WalRecord::decode(&bad_tag).is_err(), "unknown tag");
    }

    #[test]
    fn wal_evict_record_rejects_damage() {
        let payload = WalRecord::Evict { cert: vec![7; 16] }.encode(3);
        for cut in 0..payload.len() {
            assert!(WalRecord::decode(&payload[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = payload;
        extra.push(0);
        assert!(WalRecord::decode(&extra).is_err(), "trailing bytes");
    }
}
