//! Live health & load telemetry: per-shard load stats, the per-member
//! **stall attribution ledger**, the epoch **phase profiler**, and the
//! typed [`HealthReport`].
//!
//! Everything here is *always on* — plain counter arithmetic on the
//! coordinator, no tracing required — so an operator can ask a running
//! service "which shard is hot?" and "which member keeps stalling its
//! group?" without replaying a Perfetto export. The ledger is the data
//! substrate the `egka-robust` eviction planner consumes: `k`
//! consecutive stalled epochs attributed to one member is its eviction
//! trigger.
//!
//! Because evictions are derived from the ledger, it is no longer pure
//! observability: snapshots persist the ledger (and the quarantine box)
//! so a recovered service re-derives the *same* evictions, and the WAL
//! tail replays the rest.

use std::collections::BTreeMap;
use std::time::Duration;

use egka_core::UserId;
use egka_trace::{Histogram, StallCause};

use crate::event::GroupId;

/// Consecutive stalled epochs after which [`HealthReport::Stalled`]
/// flags a group (below this, stalls surface as
/// [`HealthReport::Degraded`] reasons).
pub const STALLED_AFTER_EPOCHS: u64 = 3;

/// Cumulative load and outcome counters for one shard, plus the live
/// gauges [`crate::KeyService::shard_stats`] fills at snapshot time.
///
/// The counter fields sum to the matching [`crate::ServiceMetrics`]
/// totals across shards — exactly for the integer counters, and to
/// floating-point association order for `energy_mj` (the proptest in
/// `tests/health.rs` pins both). Merge-phase work is attributed to the
/// *host* group's shard; group-creation energy to the created group's
/// shard; WAL bytes to the shard of the record's group (epoch commits
/// and config records are coordinator-wide and unattributed).
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Groups currently owned (gauge).
    pub groups: u64,
    /// Events sitting in this shard's pending queues (gauge).
    pub pending_events: u64,
    /// Events applied as membership changes.
    pub events_applied: u64,
    /// Events rejected at their epoch.
    pub events_rejected: u64,
    /// Join/leave pairs that cancelled without a rekey.
    pub events_cancelled: u64,
    /// §7 dynamic rekeys committed (creations excluded, matching
    /// [`crate::ServiceMetrics::rekeys_executed`]).
    pub rekeys_executed: u64,
    /// Rekey steps that timed out.
    pub rekeys_failed: u64,
    /// Group-epochs aborted by a stalled rekey.
    pub groups_stalled: u64,
    /// Loss-stalled steps retried with fresh randomness.
    pub steps_retried: u64,
    /// Priced energy attributed to this shard's groups, mJ.
    pub energy_mj: f64,
    /// WAL bytes appended for records addressed to this shard's groups.
    pub wal_bytes: u64,
    /// Virtual radio milliseconds per committed rekey (fixed-bucket
    /// histogram; empty off-radio).
    pub latency_virtual: Histogram,
}

impl ShardStats {
    /// Folds another shard's cumulative counters into this one — used when
    /// a shard is removed, so its history is absorbed (by convention into
    /// shard 0) instead of vanishing and breaking the stats-sum-to-metrics
    /// partition invariant. Gauges (`groups`, `pending_events`) are *not*
    /// summed: they describe live residency, which the relocations already
    /// moved.
    pub(crate) fn absorb(&mut self, other: &ShardStats) {
        self.events_applied += other.events_applied;
        self.events_rejected += other.events_rejected;
        self.events_cancelled += other.events_cancelled;
        self.rekeys_executed += other.rekeys_executed;
        self.rekeys_failed += other.rekeys_failed;
        self.groups_stalled += other.groups_stalled;
        self.steps_retried += other.steps_retried;
        self.energy_mj += other.energy_mj;
        self.wal_bytes += other.wal_bytes;
        self.latency_virtual.merge(&other.latency_virtual);
    }
}

/// One `(group, member)` — or group-level — stall tally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberStall {
    /// Stalled epochs since the last successful rekey (reset on commit).
    pub consecutive: u64,
    /// Stalled epochs over the ledger's lifetime (never reset).
    pub cumulative: u64,
    /// Classification of the most recent stall.
    pub last_cause: StallCause,
}

/// One stall this epoch, attributed: the group, the scheduler's
/// [`StallCause`] classification, and the unreachable members the epoch
/// needed (empty under pure loss — nobody is to blame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallEvent {
    /// The group whose epoch aborted.
    pub group: GroupId,
    /// Why it stalled.
    pub cause: StallCause,
    /// The detached / battery-dead members among the session and plan,
    /// ascending.
    pub culprits: Vec<UserId>,
}

/// A flattened ledger row: one member's stall tally within one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallRecord {
    /// The stalled group.
    pub group: GroupId,
    /// The member the stalls are attributed to.
    pub member: UserId,
    /// Its tally.
    pub stall: MemberStall,
}

/// The per-member stall attribution ledger.
///
/// Every aborted group-epoch increments the group's tally and — when the
/// scheduler identified unreachable members — each culprit's
/// `(group, member)` tally. A successful rekey resets the *consecutive*
/// counters (group and members alike) but keeps the cumulative history,
/// so flapping members stay visible after they recover.
#[derive(Clone, Debug, Default)]
pub struct StallLedger {
    members: BTreeMap<(GroupId, UserId), MemberStall>,
    groups: BTreeMap<GroupId, MemberStall>,
}

impl StallLedger {
    fn bump(entry: &mut Option<&mut MemberStall>, cause: StallCause) {
        if let Some(e) = entry {
            e.consecutive += 1;
            e.cumulative += 1;
            e.last_cause = cause;
        }
    }

    /// Records one aborted group-epoch.
    pub(crate) fn record_stall(&mut self, gid: GroupId, cause: StallCause, culprits: &[UserId]) {
        let fresh = MemberStall {
            consecutive: 0,
            cumulative: 0,
            last_cause: cause,
        };
        Self::bump(&mut Some(self.groups.entry(gid).or_insert(fresh)), cause);
        for &u in culprits {
            Self::bump(
                &mut Some(self.members.entry((gid, u)).or_insert(fresh)),
                cause,
            );
        }
    }

    /// Records a committed rekey: the group (and its members') consecutive
    /// counters reset; cumulative history stays.
    pub(crate) fn record_success(&mut self, gid: GroupId) {
        if let Some(g) = self.groups.get_mut(&gid) {
            g.consecutive = 0;
        }
        for (_, e) in self
            .members
            .range_mut((gid, UserId(u32::MIN))..=(gid, UserId(u32::MAX)))
        {
            e.consecutive = 0;
        }
    }

    /// Group-level tallies, ascending by group id.
    pub fn group_records(&self) -> Vec<(GroupId, MemberStall)> {
        self.groups.iter().map(|(&g, &s)| (g, s)).collect()
    }

    /// Per-member rows, ascending by `(group, member)`.
    pub fn member_records(&self) -> Vec<StallRecord> {
        self.members
            .iter()
            .map(|(&(group, member), &stall)| StallRecord {
                group,
                member,
                stall,
            })
            .collect()
    }

    /// One group's tally, if it ever stalled.
    pub fn group(&self, gid: GroupId) -> Option<MemberStall> {
        self.groups.get(&gid).copied()
    }

    /// One member's tally within a group, if stalls were ever attributed
    /// to it.
    pub fn member(&self, gid: GroupId, member: UserId) -> Option<MemberStall> {
        self.members.get(&(gid, member)).copied()
    }

    /// The worst member rows, at most `n`, in a fully pinned order:
    /// highest consecutive streak first, then highest cumulative tally,
    /// then ascending member id, then ascending group id. Eviction
    /// planning consumes this ranking, so it must never depend on map
    /// iteration order — the tie-break chain leaves no two distinct rows
    /// unordered.
    pub fn worst_members(&self, n: usize) -> Vec<StallRecord> {
        let mut rows = self.member_records();
        rows.sort_by(|a, b| {
            b.stall
                .consecutive
                .cmp(&a.stall.consecutive)
                .then(b.stall.cumulative.cmp(&a.stall.cumulative))
                .then(a.member.cmp(&b.member))
                .then(a.group.cmp(&b.group))
        });
        rows.truncate(n);
        rows
    }

    /// Whether no stall has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Rebuilds a ledger from snapshot rows (the inverses of
    /// [`StallLedger::group_records`] / [`StallLedger::member_records`]).
    pub(crate) fn restore(groups: Vec<(GroupId, MemberStall)>, members: Vec<StallRecord>) -> Self {
        StallLedger {
            groups: groups.into_iter().collect(),
            members: members
                .into_iter()
                .map(|r| ((r.group, r.member), r.stall))
                .collect(),
        }
    }
}

/// Wall and virtual time one epoch phase consumed.
///
/// Shard-side buckets sum the *per-shard* walls, so under the parallel
/// fan-out a bucket reads like CPU time, not elapsed time — the sum over
/// shards can exceed the tick's wall clock on a multi-core host.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBucket {
    /// Wall-clock time spent (nondeterministic; never fed to the trace
    /// or the metrics registry).
    pub wall: Duration,
    /// Virtual radio milliseconds attributed (deterministic; 0 off-radio).
    pub virtual_ms: f64,
}

impl PhaseBucket {
    pub(crate) fn add(&mut self, other: &PhaseBucket) {
        self.wall += other.wall;
        self.virtual_ms += other.virtual_ms;
    }
}

/// Where an epoch tick's time went: planning (queue drain + coalescing),
/// executing protocol steps (including the coordinator's merge folds),
/// committing results (session installs, report folding, the WAL epoch
/// commit), and snapshotting.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseProfile {
    /// Queue drain and plan construction.
    pub plan: PhaseBucket,
    /// Protocol-step interleaving (shards) and merge folds (coordinator).
    pub execute: PhaseBucket,
    /// Commit loops, report folding and the WAL epoch-commit append.
    pub commit: PhaseBucket,
    /// Compacting snapshot cuts (zero on epochs without one).
    pub snapshot: PhaseBucket,
}

impl PhaseProfile {
    /// Folds another profile in, bucket by bucket.
    pub fn add(&mut self, other: &PhaseProfile) {
        self.plan.add(&other.plan);
        self.execute.add(&other.execute);
        self.commit.add(&other.commit);
        self.snapshot.add(&other.snapshot);
    }

    /// Total wall time across the four buckets.
    pub fn wall_total(&self) -> Duration {
        self.plan.wall + self.execute.wall + self.commit.wall + self.snapshot.wall
    }

    /// Total virtual milliseconds across the four buckets.
    pub fn virtual_total_ms(&self) -> f64 {
        self.plan.virtual_ms
            + self.execute.virtual_ms
            + self.commit.virtual_ms
            + self.snapshot.virtual_ms
    }
}

/// A typed, deterministic answer to "is the service OK right now?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HealthReport {
    /// No live group has a pending stall streak and no member is
    /// battery-dead.
    Healthy,
    /// Operational but impaired; each reason is a human-readable,
    /// deterministic sentence (stall streaks below the
    /// [`STALLED_AFTER_EPOCHS`] threshold, battery deaths).
    Degraded {
        /// Why, in stable order.
        reasons: Vec<String>,
    },
    /// At least one live group has stalled [`STALLED_AFTER_EPOCHS`] or
    /// more consecutive epochs — it is making no progress and will not
    /// without intervention (re-attach, or the `egka-robust` eviction
    /// engine completing the epoch over the survivors).
    Stalled {
        /// The stuck groups, ascending.
        groups: Vec<GroupId>,
    },
}

impl HealthReport {
    /// Stable one-word label (`healthy` / `degraded` / `stalled`) for
    /// artifacts and logs.
    pub fn label(&self) -> &'static str {
        match self {
            HealthReport::Healthy => "healthy",
            HealthReport::Degraded { .. } => "degraded",
            HealthReport::Stalled { .. } => "stalled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_attributes_and_resets() {
        let mut ledger = StallLedger::default();
        ledger.record_stall(7, StallCause::Detached, &[UserId(3), UserId(9)]);
        ledger.record_stall(7, StallCause::Detached, &[UserId(3)]);
        ledger.record_stall(8, StallCause::Loss, &[]);
        assert_eq!(ledger.group(7).unwrap().consecutive, 2);
        assert_eq!(ledger.member(7, UserId(3)).unwrap().cumulative, 2);
        assert_eq!(ledger.member(7, UserId(9)).unwrap().consecutive, 1);
        assert_eq!(ledger.member(8, UserId(3)), None);
        // Success resets consecutive, keeps cumulative, leaves other
        // groups alone.
        ledger.record_success(7);
        assert_eq!(ledger.group(7).unwrap().consecutive, 0);
        assert_eq!(ledger.group(7).unwrap().cumulative, 2);
        assert_eq!(ledger.member(7, UserId(3)).unwrap().consecutive, 0);
        assert_eq!(ledger.member(7, UserId(3)).unwrap().cumulative, 2);
        assert_eq!(ledger.group(8).unwrap().consecutive, 1);
        let worst = ledger.worst_members(1);
        assert_eq!(worst[0].member, UserId(3));
    }

    #[test]
    fn worst_members_pins_ties() {
        let mut ledger = StallLedger::default();
        // Three members with identical (consecutive=1, cumulative=1)
        // tallies, spread across two groups, plus one clear leader.
        ledger.record_stall(5, StallCause::Detached, &[UserId(8), UserId(2)]);
        ledger.record_stall(4, StallCause::Detached, &[UserId(2), UserId(6)]);
        ledger.record_stall(4, StallCause::Detached, &[UserId(6)]);
        let worst = ledger.worst_members(10);
        let order: Vec<(GroupId, UserId)> = worst.iter().map(|r| (r.group, r.member)).collect();
        // u6 leads on streak; the (1, 1) tie then orders by member id
        // with u2's two groups adjacent, group ascending.
        assert_eq!(
            order,
            vec![
                (4, UserId(6)),
                (4, UserId(2)),
                (5, UserId(2)),
                (5, UserId(8)),
            ]
        );
        // Streak dominates cumulative: after group 4's success resets
        // its members to streak 0, u6's cumulative 2 still sorts behind
        // every live streak, and only then ahead of the cumulative 1s.
        ledger.record_success(4);
        ledger.record_stall(5, StallCause::Detached, &[UserId(8)]);
        let order: Vec<(GroupId, UserId)> = ledger
            .worst_members(10)
            .iter()
            .map(|r| (r.group, r.member))
            .collect();
        assert_eq!(
            order,
            vec![
                (5, UserId(8)),
                (5, UserId(2)),
                (4, UserId(6)),
                (4, UserId(2)),
            ]
        );
    }

    #[test]
    fn phase_profile_sums() {
        let mut p = PhaseProfile::default();
        let mut q = PhaseProfile::default();
        q.plan.wall = Duration::from_millis(2);
        q.execute.virtual_ms = 5.0;
        p.add(&q);
        p.add(&q);
        assert_eq!(p.wall_total(), Duration::from_millis(4));
        assert_eq!(p.virtual_total_ms(), 10.0);
    }

    #[test]
    fn health_labels_are_stable() {
        assert_eq!(HealthReport::Healthy.label(), "healthy");
        assert_eq!(
            HealthReport::Degraded { reasons: vec![] }.label(),
            "degraded"
        );
        assert_eq!(HealthReport::Stalled { groups: vec![1] }.label(), "stalled");
    }
}
