//! Service-level and per-epoch metrics.

use std::collections::BTreeMap;
use std::time::Duration;

use egka_core::suite::SuiteId;
use egka_energy::OpCounts;
use egka_net::TrafficStats;
use egka_trace::Histogram;

use crate::event::{GroupId, MembershipEvent, RejectReason};
use crate::health::{PhaseProfile, StallEvent};

/// What one suite did (and cost) over some accounting window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SuiteUsage {
    /// Committed rekeys executed under the suite (creations count as one
    /// in the cumulative [`ServiceMetrics`] view).
    pub rekeys: u64,
    /// Priced energy attributed to the suite, mJ — committed rekeys *and*
    /// charged failed attempts.
    pub energy_mj: f64,
}

/// Merges per-suite usage maps component-wise.
pub(crate) fn add_per_suite(
    into: &mut BTreeMap<SuiteId, SuiteUsage>,
    from: &BTreeMap<SuiteId, SuiteUsage>,
) {
    for (&suite, usage) in from {
        let e = into.entry(suite).or_default();
        e.rekeys += usage.rekeys;
        e.energy_mj += usage.energy_mj;
    }
}

/// Cumulative service counters (monotone across epochs).
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Groups currently holding an agreed key.
    pub groups_active: u64,
    /// Groups ever created.
    pub groups_created: u64,
    /// Groups dissolved (membership fell below two).
    pub groups_dissolved: u64,
    /// Groups absorbed into another group by a merge.
    pub groups_merged_away: u64,
    /// Events accepted into queues by `submit`.
    pub events_submitted: u64,
    /// Events applied by epoch ticks as membership changes. Join/leave
    /// pairs that cancelled each other are *excluded* here and counted in
    /// `events_cancelled` instead.
    pub events_applied: u64,
    /// Events rejected at their epoch (invalid against the live state).
    pub events_rejected: u64,
    /// Join/leave pairs that cancelled without any rekey.
    pub events_cancelled: u64,
    /// §7 dynamic protocol executions (one Partition covering k leaves
    /// counts once — that is the point).
    pub rekeys_executed: u64,
    /// Full initial-GKA re-runs (fallbacks and batched-join GKAs).
    pub full_gka_runs: u64,
    /// Rekey steps that timed out after exhausting their retransmission
    /// budget (the group kept its pre-epoch key; its events requeued).
    pub rekeys_failed: u64,
    /// Groups whose epoch was aborted by a stalled rekey (a powered-off
    /// member, or persistent loss).
    pub groups_stalled: u64,
    /// Loss-stalled protocol steps that were retried with fresh
    /// randomness ("all members retransmit" at the scheduler level).
    pub steps_retried: u64,
    /// Epochs ticked.
    pub epochs: u64,
    /// Members whose battery drained to zero under a radio medium — each
    /// was auto-detached, feeding the scheduler's timeout path.
    pub nodes_died: u64,
    /// Members evicted by the robustness engine (stall streak crossed
    /// the policy threshold); 0 without an eviction policy.
    pub members_evicted: u64,
    /// Signed blame certificates appended to the WAL (one per evicting
    /// group-epoch).
    pub blame_certs: u64,
    /// Previously evicted members readmitted by a post-quarantine Join.
    pub members_readmitted: u64,
    /// Fixed-bucket histogram of virtual radio milliseconds per committed
    /// rekey (one observation per group-epoch that rekeyed over a radio
    /// medium; includes retransmitted attempts). O(1) per sample and
    /// O(buckets) memory, so a long-lived service never grows; quantiles
    /// come from bucket interpolation with exact min/max clamping. Empty
    /// off-radio.
    pub latency_virtual: Histogram,
    /// Total priced energy across all nodes of all groups, in mJ.
    pub energy_mj: f64,
    /// Cumulative operation counts across all rekeys.
    pub ops: OpCounts,
    /// Cumulative nominal/actual traffic across all rekeys, pulled from
    /// the per-run `egka-net` medium accounting.
    pub traffic: TrafficStats,
    /// Cumulative rekeys and priced energy per GKA suite (group creations
    /// included) — the multi-backend cost ledger.
    pub per_suite: BTreeMap<SuiteId, SuiteUsage>,
    /// Shards added to the live pool by [`crate::KeyService::add_shard`].
    pub shards_added: u64,
    /// Shards retired by [`crate::KeyService::remove_shard`].
    pub shards_removed: u64,
    /// Live group handoffs between shards (manual moves, rebalancer
    /// moves, and relocations forced by pool resizes).
    pub groups_moved: u64,
    /// Write-ahead log records appended (commands + epoch commits); 0
    /// without a configured store.
    pub wal_appends: u64,
    /// Compacting snapshots installed.
    pub snapshots_written: u64,
    /// Durability barriers (fsyncs or their in-memory equivalent) the
    /// store has performed on this service's behalf.
    pub store_syncs: u64,
}

impl ServiceMetrics {
    /// Events applied per rekey executed — the coalescing win. Greater
    /// than 1.0 means batching saved protocol executions.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.rekeys_executed == 0 {
            if self.events_applied == 0 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        self.events_applied as f64 / self.rekeys_executed as f64
    }

    /// `(p50, p95, p99)` rekey latency in **virtual radio milliseconds**
    /// across every committed rekey, estimated from the fixed-bucket
    /// histogram; `None` off-radio.
    pub fn virtual_latency_quantiles(&self) -> Option<(f64, f64, f64)> {
        let s = self.latency_virtual.snapshot();
        Some((s.quantile(0.50)?, s.quantile(0.95)?, s.quantile(0.99)?))
    }

    /// Renders the full counter set as one flat JSON object, parseable by
    /// `egka_bench::json` (numbers, nested objects, `null`) — the single
    /// serialization the bench artifacts embed, instead of each binary
    /// hand-picking fields.
    ///
    /// The exhaustive destructuring is deliberate: adding a field to
    /// [`ServiceMetrics`] without exporting it here is a compile error,
    /// not a silently stale artifact. Latencies are summarized as
    /// `{p50,p95,p99}` quantiles plus the retained sample count; op
    /// counts as their computational-op total (traffic is exported in
    /// full, separately).
    pub fn to_json(&self) -> String {
        let ServiceMetrics {
            groups_active,
            groups_created,
            groups_dissolved,
            groups_merged_away,
            events_submitted,
            events_applied,
            events_rejected,
            events_cancelled,
            rekeys_executed,
            full_gka_runs,
            rekeys_failed,
            groups_stalled,
            steps_retried,
            epochs,
            nodes_died,
            members_evicted,
            blame_certs,
            members_readmitted,
            latency_virtual,
            energy_mj,
            ops,
            traffic,
            per_suite,
            shards_added,
            shards_removed,
            groups_moved,
            wal_appends,
            snapshots_written,
            store_syncs,
        } = self;
        let lat_snap = latency_virtual.snapshot();
        let latency = match (
            lat_snap.quantile(0.50),
            lat_snap.quantile(0.95),
            lat_snap.quantile(0.99),
        ) {
            (Some(p50), Some(p95), Some(p99)) => {
                format!("{{\"p50\": {p50:.3}, \"p95\": {p95:.3}, \"p99\": {p99:.3}}}")
            }
            _ => "null".to_string(),
        };
        let suites = per_suite
            .iter()
            .map(|(id, u)| {
                format!(
                    "\"{}\": {{\"rekeys\": {}, \"energy_mj\": {:.3}}}",
                    id.key(),
                    u.rekeys,
                    u.energy_mj
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let comp_ops: u64 = ops.comp.iter().sum();
        format!(
            "{{\"groups_active\": {groups_active}, \
             \"groups_created\": {groups_created}, \
             \"groups_dissolved\": {groups_dissolved}, \
             \"groups_merged_away\": {groups_merged_away}, \
             \"events_submitted\": {events_submitted}, \
             \"events_applied\": {events_applied}, \
             \"events_rejected\": {events_rejected}, \
             \"events_cancelled\": {events_cancelled}, \
             \"rekeys_executed\": {rekeys_executed}, \
             \"full_gka_runs\": {full_gka_runs}, \
             \"rekeys_failed\": {rekeys_failed}, \
             \"groups_stalled\": {groups_stalled}, \
             \"steps_retried\": {steps_retried}, \
             \"epochs\": {epochs}, \
             \"nodes_died\": {nodes_died}, \
             \"members_evicted\": {members_evicted}, \
             \"blame_certs\": {blame_certs}, \
             \"members_readmitted\": {members_readmitted}, \
             \"energy_mj\": {energy_mj:.3}, \
             \"comp_ops\": {comp_ops}, \
             \"traffic\": {{\"tx_bits\": {}, \"rx_bits\": {}, \
             \"tx_bits_actual\": {}, \"rx_bits_actual\": {}, \
             \"msgs_tx\": {}, \"msgs_rx\": {}}}, \
             \"latency_virtual_ms\": {latency}, \
             \"latency_samples\": {}, \
             \"per_suite\": {{{suites}}}, \
             \"shards_added\": {shards_added}, \
             \"shards_removed\": {shards_removed}, \
             \"groups_moved\": {groups_moved}, \
             \"wal_appends\": {wal_appends}, \
             \"snapshots_written\": {snapshots_written}, \
             \"store_syncs\": {store_syncs}}}",
            traffic.tx_bits,
            traffic.rx_bits,
            traffic.tx_bits_actual,
            traffic.rx_bits_actual,
            traffic.msgs_tx,
            traffic.msgs_rx,
            latency_virtual.count(),
        )
    }
}

/// `(p50, p95, p99)` of a latency sample, `None` when empty.
///
/// Quantiles are **nearest-rank on the sorted sample**: `p_q` is the
/// element at index `round((n-1) * q)`. The degenerate cases are explicit
/// rather than falling out of the arithmetic: an empty sample has no
/// quantiles (`None`, never `NaN`), and a single sample *is* all three of
/// its quantiles.
pub fn quantiles3(xs: &[f64]) -> Option<(f64, f64, f64)> {
    match xs {
        [] => None,
        [only] => Some((*only, *only, *only)),
        _ => {
            let mut sorted = xs.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            Some((at(0.50), at(0.95), at(0.99)))
        }
    }
}

/// What one [`crate::KeyService::tick`] did.
#[derive(Clone, Debug, Default)]
pub struct EpochReport {
    /// Epoch number (1-based; incremented per tick).
    pub epoch: u64,
    /// Groups whose queues were non-empty this epoch.
    pub groups_touched: u64,
    /// Events applied this epoch.
    pub events_applied: u64,
    /// Events rejected this epoch (`rejections.len()`).
    pub events_rejected: u64,
    /// The rejected events themselves, with the group and reason.
    pub rejections: Vec<(GroupId, MembershipEvent, RejectReason)>,
    /// Join/leave pairs cancelled this epoch.
    pub events_cancelled: u64,
    /// §7 rekeys executed this epoch.
    pub rekeys_executed: u64,
    /// Full initial-GKA executions among them.
    pub full_gka_runs: u64,
    /// Rekey steps that timed out this epoch (their groups kept their
    /// pre-epoch keys; events requeued).
    pub rekeys_failed: u64,
    /// Groups stalled (epoch aborted) this epoch.
    pub groups_stalled: u64,
    /// Loss-stalled steps retried with fresh randomness this epoch.
    pub steps_retried: u64,
    /// Groups dissolved this epoch.
    pub groups_dissolved: u64,
    /// Priced energy of this epoch's rekeys, in mJ.
    pub energy_mj: f64,
    /// Operation counts of this epoch's rekeys.
    pub ops: OpCounts,
    /// Traffic of this epoch's rekeys.
    pub traffic: TrafficStats,
    /// Members whose battery died this epoch.
    pub nodes_died: u64,
    /// Members the robustness engine evicted at the top of this tick,
    /// as `(group, member)` pairs ascending — the synthesized Leaves
    /// that complete the epoch over the survivors.
    pub evicted: Vec<(GroupId, egka_core::UserId)>,
    /// `evicted.len()` as a counter (folds into the cumulative total).
    pub members_evicted: u64,
    /// Blame certificates signed and logged this tick.
    pub blame_certs: u64,
    /// Wall-clock from a group's epoch being planned to its commit, one
    /// entry per group that rekeyed. Under the interleaving scheduler
    /// this *includes* time the shard spent pumping other groups (and any
    /// retransmitted attempts) — it measures what a caller of `tick()`
    /// experiences per group, not a group's exclusive protocol time.
    pub rekey_latencies: Vec<Duration>,
    /// Virtual **radio** milliseconds per committed rekey this epoch:
    /// the group's exclusive channel time (airtime + link delay, summed
    /// over its plan's steps and any retransmitted attempts), measured on
    /// the simulated clock. Empty off-radio.
    pub rekey_latencies_virtual_ms: Vec<f64>,
    /// This epoch's rekeys and priced energy per GKA suite — under a
    /// [`crate::SuitePolicy::Cheapest`] service, the per-protocol cost
    /// split the planner's selections produced.
    pub per_suite: BTreeMap<SuiteId, SuiteUsage>,
    /// Every aborted group-epoch, attributed: the stalled group, the
    /// scheduler's cause classification, and the unreachable members the
    /// plan needed. Feeds the service's stall ledger.
    pub stall_events: Vec<StallEvent>,
    /// Groups that committed a rekey this epoch (successful epochs reset
    /// their ledger streaks).
    pub rekeyed_groups: Vec<GroupId>,
    /// Where this tick's wall and virtual time went: plan / execute /
    /// commit / snapshot. Wall buckets are nondeterministic and never fed
    /// to traces or the metrics registry.
    pub phases: PhaseProfile,
}

impl EpochReport {
    /// Events applied per rekey this epoch.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.rekeys_executed == 0 {
            if self.events_applied == 0 {
                return 1.0;
            }
            return f64::INFINITY;
        }
        self.events_applied as f64 / self.rekeys_executed as f64
    }

    /// `(p50, p95, max)` rekey latency of this epoch, if any rekeys ran.
    pub fn latency_quantiles(&self) -> Option<(Duration, Duration, Duration)> {
        if self.rekey_latencies.is_empty() {
            return None;
        }
        let mut sorted = self.rekey_latencies.clone();
        sorted.sort();
        let at = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Some((at(0.50), at(0.95), sorted[sorted.len() - 1]))
    }

    /// `(p50, p95, p99)` rekey latency of this epoch in virtual radio
    /// milliseconds; `None` off-radio or when nothing rekeyed.
    pub fn latency_quantiles_virtual(&self) -> Option<(f64, f64, f64)> {
        quantiles3(&self.rekey_latencies_virtual_ms)
    }

    /// Folds this epoch into the cumulative service counters.
    pub(crate) fn fold_into(&self, m: &mut ServiceMetrics) {
        m.events_applied += self.events_applied;
        m.events_rejected += self.events_rejected;
        m.events_cancelled += self.events_cancelled;
        m.rekeys_executed += self.rekeys_executed;
        m.full_gka_runs += self.full_gka_runs;
        m.rekeys_failed += self.rekeys_failed;
        m.groups_stalled += self.groups_stalled;
        m.steps_retried += self.steps_retried;
        m.groups_dissolved += self.groups_dissolved;
        m.nodes_died += self.nodes_died;
        m.members_evicted += self.members_evicted;
        m.blame_certs += self.blame_certs;
        for &v in &self.rekey_latencies_virtual_ms {
            m.latency_virtual.observe(v);
        }
        m.energy_mj += self.energy_mj;
        m.ops.merge(&self.ops);
        add_traffic(&mut m.traffic, &self.traffic);
        add_per_suite(&mut m.per_suite, &self.per_suite);
        m.epochs += 1;
    }
}

/// Component-wise sum of [`TrafficStats`].
pub(crate) fn add_traffic(into: &mut TrafficStats, from: &TrafficStats) {
    into.tx_bits += from.tx_bits;
    into.rx_bits += from.rx_bits;
    into.tx_bits_actual += from.tx_bits_actual;
    into.rx_bits_actual += from.rx_bits_actual;
    into.msgs_tx += from.msgs_tx;
    into.msgs_rx += from.msgs_rx;
}

/// Extracts the traffic components of an [`OpCounts`] (protocol reports
/// embed the medium's per-node counters there).
pub(crate) fn traffic_of(counts: &OpCounts) -> TrafficStats {
    TrafficStats {
        tx_bits: counts.tx_bits,
        rx_bits: counts.rx_bits,
        tx_bits_actual: counts.tx_bits_actual,
        rx_bits_actual: counts.rx_bits_actual,
        msgs_tx: counts.msgs_tx,
        msgs_rx: counts.msgs_rx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_empty_is_none() {
        assert_eq!(quantiles3(&[]), None);
    }

    #[test]
    fn quantiles_single_sample_is_all_three() {
        assert_eq!(quantiles3(&[7.25]), Some((7.25, 7.25, 7.25)));
    }

    #[test]
    fn quantiles_two_samples() {
        // round((2-1)*0.50) = 1, so p50 already lands on the larger
        // sample; p95/p99 likewise.
        assert_eq!(quantiles3(&[3.0, 1.0]), Some((3.0, 3.0, 3.0)));
    }

    #[test]
    fn quantiles_pinned_on_1_to_100() {
        // Nearest-rank on n=100: index round(99q) → p50 = sorted[50] = 51,
        // p95 = sorted[94] = 95, p99 = sorted[98] = 99.
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantiles3(&xs), Some((51.0, 95.0, 99.0)));
    }

    #[test]
    fn quantiles_sort_input() {
        let mut xs: Vec<f64> = (1..=100).rev().map(f64::from).collect();
        xs.swap(10, 60);
        assert_eq!(quantiles3(&xs), Some((51.0, 95.0, 99.0)));
    }

    /// The histogram that replaced the sort-on-every-call sample vector
    /// must reproduce `quantiles3`'s pinned answers on the same inputs:
    /// exactly for the degenerate cases (empty, single sample, n=2) and
    /// for uniform data, where within-bucket interpolation is exact.
    #[test]
    fn histogram_quantiles_pin_to_nearest_rank() {
        let observe_all = |xs: &[f64]| {
            let mut h = Histogram::default();
            for &x in xs {
                h.observe(x);
            }
            h
        };
        let triple = |h: &Histogram| {
            let s = h.snapshot();
            Some((s.quantile(0.50)?, s.quantile(0.95)?, s.quantile(0.99)?))
        };
        for xs in [
            &[][..],
            &[7.25][..],
            &[3.0, 1.0][..],
            &(1..=100).map(f64::from).collect::<Vec<_>>()[..],
        ] {
            assert_eq!(triple(&observe_all(xs)), quantiles3(xs), "input {xs:?}");
        }
    }

    #[test]
    fn metrics_json_is_parseable_and_complete() {
        let mut m = ServiceMetrics {
            groups_active: 3,
            rekeys_executed: 9,
            energy_mj: 1.5,
            ..ServiceMetrics::default()
        };
        m.latency_virtual.observe(2.0);
        m.per_suite.insert(
            SuiteId::Proposed,
            SuiteUsage {
                rekeys: 9,
                energy_mj: 1.5,
            },
        );
        let json = m.to_json();
        assert!(json.contains("\"groups_active\": 3"));
        assert!(json.contains("\"latency_virtual_ms\": {\"p50\": 2.000"));
        assert!(json.contains("\"proposed\""));
        // Balanced braces — the cheap structural sanity check available
        // without a parser dependency (egka-bench's parser round-trips it
        // in its own tests).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert!(opens >= 4);
    }
}
