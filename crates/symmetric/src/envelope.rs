//! The `E_K(·)` envelope used by the paper's dynamic protocols.
//!
//! The paper writes `E_K(m)` for "symmetric key encryption of m under the
//! current group key K" and has receivers check an identity embedded in the
//! plaintext to validate the decryption. This module provides that envelope:
//! AES-128-CBC with a random IV plus an HMAC-SHA256 tag (encrypt-then-MAC),
//! with the encryption and MAC keys derived from the group-key bytes via
//! HKDF. The identity check the paper relies on is then performed by the
//! protocol layer on the decrypted plaintext.

use egka_hash::{hkdf, Hmac, Sha256};
use rand::Rng;

use crate::aes::Aes;
use crate::modes::{cbc_decrypt, cbc_encrypt};

/// Length of the HMAC tag appended to each envelope (truncated SHA-256).
pub const TAG_LEN: usize = 16;

/// Envelope sealing/opening failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Ciphertext too short to contain IV + one block + tag.
    Truncated,
    /// The authentication tag did not verify.
    BadTag,
    /// CBC padding was malformed after a valid tag (should not happen).
    BadPadding,
}

impl core::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EnvelopeError::Truncated => write!(f, "envelope too short"),
            EnvelopeError::BadTag => write!(f, "envelope tag mismatch"),
            EnvelopeError::BadPadding => write!(f, "envelope padding invalid"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// A symmetric envelope keyed by raw group-key material.
#[derive(Clone)]
pub struct Envelope {
    enc: Aes,
    mac_key: Vec<u8>,
}

impl Envelope {
    /// Derives envelope keys from arbitrary key material (e.g. the group key
    /// `K` serialized as bytes).
    pub fn from_key_material(ikm: &[u8]) -> Self {
        let okm = hkdf(b"egka.envelope.v1", ikm, b"enc|mac", 16 + 32);
        Envelope {
            enc: Aes::new(&okm[..16]),
            mac_key: okm[16..].to_vec(),
        }
    }

    /// Seals `plaintext`: returns `IV || ciphertext || tag`.
    pub fn seal<R: Rng + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut iv = [0u8; 16];
        rng.fill_bytes(&mut iv);
        let ct = cbc_encrypt(&self.enc, &iv, plaintext);
        let mut out = Vec::with_capacity(16 + ct.len() + TAG_LEN);
        out.extend_from_slice(&iv);
        out.extend_from_slice(&ct);
        let tag = Hmac::<Sha256>::mac(&self.mac_key, &out);
        out.extend_from_slice(&tag[..TAG_LEN]);
        out
    }

    /// Opens an envelope produced by [`Envelope::seal`].
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, EnvelopeError> {
        if sealed.len() < 16 + 16 + TAG_LEN {
            return Err(EnvelopeError::Truncated);
        }
        let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let expect = Hmac::<Sha256>::mac(&self.mac_key, body);
        let ok = expect[..TAG_LEN]
            .iter()
            .zip(tag)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0;
        if !ok {
            return Err(EnvelopeError::BadTag);
        }
        let iv: [u8; 16] = body[..16].try_into().unwrap();
        cbc_decrypt(&self.enc, &iv, &body[16..]).ok_or(EnvelopeError::BadPadding)
    }

    /// Sealed size for a given plaintext length (used by the energy model to
    /// compute transmitted bits without materializing ciphertexts).
    pub fn sealed_len(plaintext_len: usize) -> usize {
        let padded = plaintext_len + (16 - plaintext_len % 16);
        16 + padded + TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let env = Envelope::from_key_material(b"group key material");
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len as u8).collect();
            let sealed = env.seal(&mut rng, &pt);
            assert_eq!(sealed.len(), Envelope::sealed_len(len));
            assert_eq!(env.open(&sealed).unwrap(), pt);
        }
    }

    #[test]
    fn tampering_is_detected() {
        let mut rng = ChaChaRng::seed_from_u64(2);
        let env = Envelope::from_key_material(b"k");
        let mut sealed = env.seal(&mut rng, b"attack at dawn");
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert!(
                matches!(env.open(&sealed), Err(EnvelopeError::BadTag)),
                "byte {i}"
            );
            sealed[i] ^= 1;
        }
        assert!(env.open(&sealed).is_ok());
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = ChaChaRng::seed_from_u64(3);
        let env1 = Envelope::from_key_material(b"key one");
        let env2 = Envelope::from_key_material(b"key two");
        let sealed = env1.seal(&mut rng, b"secret");
        assert_eq!(env2.open(&sealed), Err(EnvelopeError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        let env = Envelope::from_key_material(b"k");
        assert_eq!(env.open(&[0u8; 10]), Err(EnvelopeError::Truncated));
    }

    #[test]
    fn randomized_ivs_give_distinct_ciphertexts() {
        let mut rng = ChaChaRng::seed_from_u64(4);
        let env = Envelope::from_key_material(b"k");
        let a = env.seal(&mut rng, b"same message");
        let b = env.seal(&mut rng, b"same message");
        assert_ne!(a, b);
    }
}
