//! # egka-symmetric
//!
//! From-scratch symmetric cryptography for the `egka` reproduction:
//!
//! * [`aes::Aes`] — FIPS 197 AES-128/192/256 (verified against the official
//!   known-answer tests);
//! * [`modes`] — CBC (with PKCS#7) and CTR;
//! * [`envelope::Envelope`] — the paper's `E_K(·)` authenticated envelope
//!   used by the Join/Leave/Merge/Partition re-keying messages.
//!
//! The paper's dynamic protocols lean on symmetric crypto precisely because
//! its energy cost is "orders of magnitude lower than modular
//! exponentiations" (paper §7, citing Carman et al.); the energy model in
//! `egka-energy` accordingly treats these operations as negligible-cost while
//! the *bits on air* they produce are still charged per Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod envelope;
pub mod modes;

pub use aes::{Aes, KeySize};
pub use envelope::{Envelope, EnvelopeError, TAG_LEN};
pub use modes::{cbc_decrypt, cbc_encrypt, ctr_xor, pkcs7_pad, pkcs7_unpad};
