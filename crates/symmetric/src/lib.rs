//! # egka-symmetric
//!
//! From-scratch symmetric cryptography for the `egka` reproduction:
//!
//! * [`aes::Aes`] — FIPS 197 AES-128/192/256 (verified against the official
//!   known-answer tests);
//! * [`modes`] — CBC (with PKCS#7) and CTR;
//! * [`envelope::Envelope`] — the paper's `E_K(·)` authenticated envelope
//!   used by the Join/Leave/Merge/Partition re-keying messages.
//!
//! The paper's dynamic protocols lean on symmetric crypto precisely because
//! its energy cost is "orders of magnitude lower than modular
//! exponentiations" (paper §7, citing Carman et al.); the energy model in
//! `egka-energy` accordingly treats these operations as negligible-cost while
//! the *bits on air* they produce are still charged per Table 3.
//!
//! ```
//! use egka_hash::ChaChaRng;
//! use egka_symmetric::Envelope;
//! use rand::SeedableRng;
//!
//! // Authenticated encryption keyed from raw key material: seal with a
//! // random IV, open verifies the tag before returning the plaintext.
//! let mut rng = ChaChaRng::seed_from_u64(7);
//! let envelope = Envelope::from_key_material(&[0x42; 32]);
//! let sealed = envelope.seal(&mut rng, b"group state");
//! assert_eq!(envelope.open(&sealed).unwrap(), b"group state");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod envelope;
pub mod modes;

pub use aes::{Aes, KeySize};
pub use envelope::{Envelope, EnvelopeError, TAG_LEN};
pub use modes::{cbc_decrypt, cbc_encrypt, ctr_xor, pkcs7_pad, pkcs7_unpad};
