//! Block-cipher modes: CBC and CTR over [`Aes`], plus PKCS#7 padding.

use crate::aes::Aes;

/// PKCS#7-pads `data` to a multiple of 16 bytes.
pub fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = 16 - data.len() % 16;
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Removes PKCS#7 padding; `None` when the padding is malformed.
pub fn pkcs7_unpad(data: &[u8]) -> Option<Vec<u8>> {
    if data.is_empty() || !data.len().is_multiple_of(16) {
        return None;
    }
    let pad = *data.last().unwrap() as usize;
    if pad == 0 || pad > 16 || pad > data.len() {
        return None;
    }
    if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
        return None;
    }
    Some(data[..data.len() - pad].to_vec())
}

/// CBC-encrypts `plaintext` (PKCS#7 padded) under `iv`.
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut chain = *iv;
    for block in padded.chunks_exact(16) {
        let mut b: [u8; 16] = block.try_into().unwrap();
        for (x, c) in b.iter_mut().zip(chain.iter()) {
            *x ^= c;
        }
        aes.encrypt_block(&mut b);
        chain = b;
        out.extend_from_slice(&b);
    }
    out
}

/// CBC-decrypts and strips PKCS#7; `None` on malformed input/padding.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], ciphertext: &[u8]) -> Option<Vec<u8>> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
        return None;
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut chain = *iv;
    for block in ciphertext.chunks_exact(16) {
        let cblock: [u8; 16] = block.try_into().unwrap();
        let mut b = cblock;
        aes.decrypt_block(&mut b);
        for (x, c) in b.iter_mut().zip(chain.iter()) {
            *x ^= c;
        }
        chain = cblock;
        out.extend_from_slice(&b);
    }
    pkcs7_unpad(&out)
}

/// CTR keystream XOR (encrypt == decrypt). The 16-byte counter block is
/// `nonce (12 bytes) || big-endian u32 block counter`.
pub fn ctr_xor(aes: &Aes, nonce: &[u8; 12], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[..12].copy_from_slice(nonce);
        block[12..].copy_from_slice(&(i as u32).to_be_bytes());
        aes.encrypt_block(&mut block);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn pkcs7_roundtrip_all_lengths() {
        for len in 0..64 {
            let data: Vec<u8> = (0..len as u8).collect();
            let padded = pkcs7_pad(&data);
            assert_eq!(padded.len() % 16, 0);
            assert!(padded.len() > data.len());
            assert_eq!(pkcs7_unpad(&padded).unwrap(), data);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert!(pkcs7_unpad(&[]).is_none());
        assert!(pkcs7_unpad(&[1u8; 15]).is_none()); // not block multiple
        let mut bad = vec![0u8; 16];
        bad[15] = 17; // pad > 16
        assert!(pkcs7_unpad(&bad).is_none());
        bad[15] = 0; // pad == 0
        assert!(pkcs7_unpad(&bad).is_none());
        let mut inconsistent = vec![3u8; 16];
        inconsistent[14] = 2; // body byte mismatching pad value
        assert!(pkcs7_unpad(&inconsistent).is_none());
    }

    /// NIST SP 800-38A F.2.1 CBC-AES128 first block.
    #[test]
    fn nist_cbc_aes128_first_block() {
        let aes = Aes::new(&unhex("2b7e151628aed2a6abf7158809cf4f3c"));
        let iv: [u8; 16] = unhex("000102030405060708090a0b0c0d0e0f")
            .try_into()
            .unwrap();
        let pt = unhex("6bc1bee22e409f96e93d7e117393172a");
        let ct = cbc_encrypt(&aes, &iv, &pt);
        // our output has a padding block appended; the first block matches NIST
        assert_eq!(&ct[..16], &unhex("7649abac8119b246cee98e9b12e9197d")[..]);
        assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    /// NIST SP 800-38A F.5.1 CTR-AES128 keystream (counter layout differs, so
    /// we check self-consistency instead plus keystream position independence).
    #[test]
    fn ctr_roundtrip_and_seek_independence() {
        let aes = Aes::new(&[9u8; 16]);
        let nonce = [1u8; 12];
        let mut data = b"The quick brown fox jumps over the lazy dog".to_vec();
        let orig = data.clone();
        ctr_xor(&aes, &nonce, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn cbc_tamper_detected_or_garbled() {
        let aes = Aes::new(&[4u8; 16]);
        let iv = [0u8; 16];
        let ct = cbc_encrypt(&aes, &iv, b"sixteen byte msg");
        let mut tampered = ct.clone();
        tampered[0] ^= 0xff;
        // CBC without MAC: tampering either breaks padding or garbles output.
        match cbc_decrypt(&aes, &iv, &tampered) {
            None => {}
            Some(pt) => assert_ne!(pt, b"sixteen byte msg"),
        }
    }

    #[test]
    fn cbc_different_iv_different_ct() {
        let aes = Aes::new(&[4u8; 16]);
        let a = cbc_encrypt(&aes, &[0u8; 16], b"hello world");
        let b = cbc_encrypt(&aes, &[1u8; 16], b"hello world");
        assert_ne!(a, b);
    }
}
