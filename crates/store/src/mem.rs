//! The in-memory backend: hermetic tests, byte-identical persistence.

use parking_lot::Mutex;

use crate::wal::frame;
use crate::{Store, StoreError};

#[derive(Debug, Default)]
struct MemState {
    /// Stream 0 — the control log every store has.
    wal: Vec<u8>,
    /// Streams > 0, keyed by stream id; absent means empty.
    streams: std::collections::BTreeMap<u32, Vec<u8>>,
    snapshot: Option<Vec<u8>>,
    syncs: u64,
}

/// A [`Store`] that lives in memory.
///
/// It persists the *same bytes* a [`crate::FileStore`] would write to
/// disk, so torture tests (truncate the log at an arbitrary byte, flip a
/// bit) exercise exactly the framing a crash would tear — without touching
/// the filesystem. Cloning shares the underlying state, the way two
/// openings of one directory would.
#[derive(Clone, Debug, Default)]
pub struct MemStore {
    inner: std::sync::Arc<Mutex<MemState>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// A store pre-loaded with raw WAL bytes and an optional raw snapshot
    /// *payload* — the torture-test constructor: hand it a damaged byte
    /// stream and watch recovery cope.
    pub fn with_raw(wal: Vec<u8>, snapshot: Option<Vec<u8>>) -> Self {
        MemStore {
            inner: std::sync::Arc::new(Mutex::new(MemState {
                wal,
                streams: std::collections::BTreeMap::new(),
                snapshot: snapshot.map(|payload| frame(&payload)),
                syncs: 0,
            })),
        }
    }

    /// Replaces one stream's raw bytes (framing included) — the
    /// multi-stream torture constructor. Stream 0 aliases the main WAL.
    pub fn set_raw_stream(&self, stream: u32, bytes: Vec<u8>) {
        let mut inner = self.inner.lock();
        if stream == 0 {
            inner.wal = bytes;
        } else {
            inner.streams.insert(stream, bytes);
        }
    }

    /// The raw snapshot bytes as persisted (framing included), for tests
    /// that want to damage them.
    pub fn raw_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.lock().snapshot.clone()
    }

    /// Replaces the persisted bytes wholesale (framing and all) — the
    /// other half of the torture-test API.
    pub fn set_raw(&self, wal: Vec<u8>, framed_snapshot: Option<Vec<u8>>) {
        let mut inner = self.inner.lock();
        inner.wal = wal;
        inner.snapshot = framed_snapshot;
    }
}

impl Store for MemStore {
    fn append(&self, payload: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.wal.extend_from_slice(&frame(payload));
        inner.syncs += 1;
        Ok(())
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Ok(self.inner.lock().wal.clone())
    }

    fn append_stream(&self, stream: u32, payload: &[u8]) -> Result<(), StoreError> {
        if stream == 0 {
            return self.append(payload);
        }
        let mut inner = self.inner.lock();
        let buf = inner.streams.entry(stream).or_default();
        buf.extend_from_slice(&frame(payload));
        inner.syncs += 1;
        Ok(())
    }

    fn wal_stream_bytes(&self, stream: u32) -> Result<Vec<u8>, StoreError> {
        if stream == 0 {
            return self.wal_bytes();
        }
        Ok(self
            .inner
            .lock()
            .streams
            .get(&stream)
            .cloned()
            .unwrap_or_default())
    }

    fn wal_streams(&self) -> Result<Vec<u32>, StoreError> {
        let inner = self.inner.lock();
        let mut ids = vec![0];
        ids.extend(
            inner
                .streams
                .iter()
                .filter(|(_, b)| !b.is_empty())
                .map(|(id, _)| *id),
        );
        Ok(ids)
    }

    fn install_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        inner.snapshot = Some(frame(snapshot));
        inner.wal.clear();
        inner.streams.clear();
        inner.syncs += 1;
        Ok(())
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, StoreError> {
        let inner = self.inner.lock();
        inner
            .snapshot
            .as_deref()
            .map(crate::unframe_snapshot)
            .transpose()
    }

    fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }
}
