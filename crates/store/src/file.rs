//! The filesystem backend: one directory, `wal.log` + `snapshot.bin`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::wal::frame;
use crate::{Store, StoreError};

#[derive(Debug)]
struct FileState {
    wal: File,
    /// Lazily-opened handles for streams > 0 (`wal.{n}.log`).
    streams: std::collections::BTreeMap<u32, File>,
    syncs: u64,
}

/// A [`Store`] persisted in a directory.
///
/// * `wal.log` — the append-only record stream ([`crate::wal`] framing);
///   every append is written then `fsync`ed before returning.
/// * `snapshot.bin` — the latest compacting snapshot (one checksummed
///   frame), installed by write-to-temp + rename so a crash never leaves a
///   half-written snapshot under the real name.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    state: Mutex<FileState>,
}

impl FileStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(dir.join("wal.log"))?;
        Ok(FileStore {
            dir,
            state: Mutex::new(FileState {
                wal,
                streams: std::collections::BTreeMap::new(),
                syncs: 0,
            }),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    fn stream_path(&self, stream: u32) -> PathBuf {
        if stream == 0 {
            self.dir.join("wal.log")
        } else {
            self.dir.join(format!("wal.{stream}.log"))
        }
    }

    fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
        // Read through a fresh handle so append cursors are untouched.
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(bytes)
    }
}

impl Store for FileStore {
    fn append(&self, payload: &[u8]) -> Result<(), StoreError> {
        let mut state = self.state.lock();
        state.wal.write_all(&frame(payload))?;
        state.wal.sync_data()?;
        state.syncs += 1;
        Ok(())
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Self::read_file(&self.dir.join("wal.log"))
    }

    fn append_stream(&self, stream: u32, payload: &[u8]) -> Result<(), StoreError> {
        if stream == 0 {
            return self.append(payload);
        }
        let mut state = self.state.lock();
        let f = match state.streams.entry(stream) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .read(true)
                    .open(self.stream_path(stream))?,
            ),
        };
        f.write_all(&frame(payload))?;
        f.sync_data()?;
        state.syncs += 1;
        Ok(())
    }

    fn wal_stream_bytes(&self, stream: u32) -> Result<Vec<u8>, StoreError> {
        Self::read_file(&self.stream_path(stream))
    }

    fn wal_streams(&self) -> Result<Vec<u32>, StoreError> {
        let mut ids = vec![0];
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(mid) = name
                .strip_prefix("wal.")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(id) = mid.parse::<u32>() {
                    if id > 0 {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn install_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        let mut state = self.state.lock();
        // Durable snapshot first (tmp + fsync + rename), *then* truncate
        // the log: a crash between the two leaves snapshot + stale tail,
        // and replaying a tail of already-snapshotted records is prevented
        // by the epoch guard in the snapshot header upstream — while the
        // reverse order could lose commits outright.
        let tmp = self.dir.join("snapshot.tmp");
        let framed = frame(snapshot);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.snapshot_path())?;
        if let Ok(d) = File::open(&self.dir) {
            // Persist the rename itself; best-effort on filesystems that
            // reject directory fsync.
            let _ = d.sync_all();
        }
        state.wal.set_len(0)?;
        state.wal.sync_data()?;
        for f in state.streams.values_mut() {
            f.set_len(0)?;
            f.sync_data()?;
        }
        // Streams that were written by a previous opening (no live handle)
        // must be truncated too, or recovery would replay stale records.
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(mid) = name
                .strip_prefix("wal.")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(id) = mid.parse::<u32>() {
                    if id > 0 && !state.streams.contains_key(&id) {
                        let f = OpenOptions::new().write(true).open(entry.path())?;
                        f.set_len(0)?;
                        f.sync_data()?;
                    }
                }
            }
        }
        state.syncs += 2;
        Ok(())
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, StoreError> {
        let mut bytes = Vec::new();
        match File::open(self.snapshot_path()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        crate::unframe_snapshot(&bytes).map(Some)
    }

    fn sync_count(&self) -> u64 {
        self.state.lock().syncs
    }
}
