//! Write-ahead-log record framing.
//!
//! Every record is framed as
//!
//! ```text
//! ┌──────────┬───────────┬─────────────┐
//! │ len: u32 │ crc32: u32│ payload …   │   (big-endian integers)
//! └──────────┴───────────┴─────────────┘
//! ```
//!
//! where the CRC covers the payload bytes only. The framing gives the two
//! recovery properties the service layer builds on:
//!
//! * **torn tails are not errors** — a crash mid-append leaves a final
//!   frame whose bytes simply run out; [`scan`] stops there and returns
//!   every complete record before it (the WAL convention: an unfinished
//!   append never happened);
//! * **corruption is typed, never silent** — a complete frame whose
//!   checksum does not match its payload is a [`StoreError::Corrupt`],
//!   carrying the byte offset, so a recovery caller can distinguish "clean
//!   prefix" from "the log itself is damaged" and never reconstructs state
//!   from damaged bytes.

use crate::StoreError;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Frames `payload` as one WAL record.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// What terminated a [`scan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tail {
    /// The log ended exactly on a frame boundary.
    Clean,
    /// The log ended inside a frame (crash mid-append); `torn_at` is the
    /// offset of the unfinished frame's header.
    Torn {
        /// Byte offset of the torn frame.
        torn_at: usize,
    },
}

/// Decodes a WAL byte stream into its complete record payloads.
///
/// A frame whose bytes run out is a torn tail (reported, not an error); a
/// complete frame whose checksum mismatches is [`StoreError::Corrupt`].
pub fn scan(bytes: &[u8]) -> Result<(Vec<&[u8]>, Tail), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + FRAME_HEADER > bytes.len() {
            return Ok((records, Tail::Torn { torn_at: pos }));
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            return Ok((records, Tail::Torn { torn_at: pos }));
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt {
                what: "wal record checksum mismatch",
                offset: pos as u64,
            });
        }
        records.push(payload);
        pos = end;
    }
    Ok((records, Tail::Clean))
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the classic
/// table-driven implementation, built once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_scan_roundtrip() {
        let mut log = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"one".to_vec(), Vec::new(), vec![0xAB; 300]];
        for p in &payloads {
            log.extend_from_slice(&frame(p));
        }
        let (records, tail) = scan(&log).unwrap();
        assert_eq!(tail, Tail::Clean);
        assert_eq!(records.len(), 3);
        for (r, p) in records.iter().zip(&payloads) {
            assert_eq!(r, &p.as_slice());
        }
    }

    #[test]
    fn torn_tail_is_a_clean_prefix() {
        let mut log = frame(b"committed");
        let torn_at = log.len();
        log.extend_from_slice(&frame(b"in flight")[..5]);
        let (records, tail) = scan(&log).unwrap();
        assert_eq!(records, vec![b"committed".as_slice()]);
        assert_eq!(tail, Tail::Torn { torn_at });
    }

    #[test]
    fn bitflip_is_typed_corruption() {
        let mut log = frame(b"precious bytes");
        *log.last_mut().unwrap() ^= 0x40;
        match scan(&log) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_reads_as_torn() {
        // A length pointing past the buffer cannot be distinguished from a
        // crash that cut the payload short — prefix semantics, not panic.
        let mut log = frame(b"ok");
        log.extend_from_slice(&u32::MAX.to_be_bytes());
        log.extend_from_slice(&[0u8; 8]);
        let (records, tail) = scan(&log).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(tail, Tail::Torn { .. }));
    }
}
