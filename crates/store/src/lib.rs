//! # egka-store — durable group state
//!
//! The service layer's groups outlive any single controller process; this
//! crate is where their state survives. It provides:
//!
//! * a **write-ahead log** ([`wal`]): append-only, length-prefixed and
//!   CRC-checksummed records. The service appends every state-changing
//!   command (group creations, membership events, power events) and an
//!   *epoch commit* record after every applied rekey epoch;
//! * **compacting snapshots**: periodically the service serializes all
//!   per-shard group state (membership, suite, epoch, sealed session-key
//!   material, battery ledger) and installs it atomically, truncating the
//!   log — recovery then replays snapshot + tail instead of the whole
//!   history;
//! * the [`Store`] trait with two backends: [`MemStore`] (hermetic tests,
//!   byte-identical to what the file backend persists) and [`FileStore`]
//!   (a directory with `wal.log` + `snapshot.bin`, fsynced on append).
//!
//! The crate deals in *bytes*; what the records and snapshots mean is the
//! service layer's business (`egka_service`). That split keeps the torture
//! tests here independent of protocol state, and keeps this crate at the
//! bottom of the dependency stack.
//!
//! ## Recovery contract
//!
//! * A **torn tail** (crash mid-append) is not an error: the unfinished
//!   record never happened, and recovery sees a clean prefix.
//! * **Corruption is typed**: any complete record or snapshot whose
//!   checksum fails surfaces as [`StoreError::Corrupt`] — recovery either
//!   reconstructs a strict prefix of committed epochs or reports the
//!   damage; it never panics and never fabricates state.
//!
//! ```
//! use egka_store::{wal_stream_records, MemStore, Store};
//!
//! // Per-stream WALs: stream 0 is the control log, stream k+1 belongs to
//! // shard k. Each scans back independently, checksummed and in order.
//! let store = MemStore::new();
//! store.append(b"control record").unwrap();
//! store.append_stream(1, b"shard-0 record").unwrap();
//! assert_eq!(
//!     wal_stream_records(&store, 0).unwrap(),
//!     vec![b"control record".to_vec()]
//! );
//! assert_eq!(
//!     wal_stream_records(&store, 1).unwrap(),
//!     vec![b"shard-0 record".to_vec()]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wal;

mod file;
mod mem;

pub use file::FileStore;
pub use mem::MemStore;
pub use wal::{crc32, frame, scan, Tail};

/// Typed persistence failures.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying medium failed (filesystem errors; the in-memory
    /// backend never produces this).
    Io(std::io::Error),
    /// A checksummed structure (WAL record or snapshot) failed
    /// verification — the bytes are damaged, not merely truncated.
    Corrupt {
        /// What failed to verify.
        what: &'static str,
        /// Byte offset of the damaged structure within its stream.
        offset: u64,
    },
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Corrupt { what, offset } => {
                write!(f, "store corrupt at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Durable backing for one service's WAL + snapshot.
///
/// Implementations are internally synchronized (`&self` methods): the
/// service holds the store behind an `Arc` and appends from its
/// coordinator thread, while tooling may read concurrently.
///
/// ## Streams
///
/// The WAL is a family of independent append-only **streams**, addressed
/// by a `u32` id. Stream 0 is the default (and what the stream-oblivious
/// [`Store::append`] / [`Store::wal_bytes`] pair addresses); the service
/// layer uses stream 0 for coordinator-wide control records and one
/// stream per shard for group-addressed records, so appends against
/// different shards never serialize through one file. Each stream has its
/// own torn-tail contract (a clean prefix per stream); global ordering is
/// the service layer's business — its records carry LSNs and recovery
/// merges the streams by LSN. Backends that ignore the stream id (the
/// default trait methods) still satisfy the contract: everything lands on
/// one log, merged order equals append order.
pub trait Store: Send + Sync {
    /// Appends one record (framing it) and makes it durable before
    /// returning — the write-ahead guarantee. Equivalent to
    /// [`Store::append_stream`] on stream 0.
    fn append(&self, payload: &[u8]) -> Result<(), StoreError>;

    /// The raw WAL byte stream, exactly as persisted (framing included).
    /// Equivalent to [`Store::wal_stream_bytes`] on stream 0.
    fn wal_bytes(&self) -> Result<Vec<u8>, StoreError>;

    /// Appends one record to the given stream, durable before returning.
    /// The default implementation folds every stream onto stream 0 — a
    /// single-log backend is a valid (if serialized) multi-stream store.
    fn append_stream(&self, stream: u32, payload: &[u8]) -> Result<(), StoreError> {
        let _ = stream;
        self.append(payload)
    }

    /// The raw bytes of one stream (framing included); empty for a stream
    /// never appended to.
    fn wal_stream_bytes(&self, stream: u32) -> Result<Vec<u8>, StoreError> {
        if stream == 0 {
            self.wal_bytes()
        } else {
            Ok(Vec::new())
        }
    }

    /// Every stream id holding persisted bytes, ascending. Recovery walks
    /// this set and merges the decoded records by LSN.
    fn wal_streams(&self) -> Result<Vec<u32>, StoreError> {
        Ok(vec![0])
    }

    /// Atomically replaces the snapshot with `snapshot` (framed +
    /// checksummed by the implementation) and truncates **every** WAL
    /// stream — the compaction point. Durable before returning.
    fn install_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError>;

    /// The last installed snapshot's payload, if any, checksum-verified.
    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, StoreError>;

    /// How many durability barriers (fsyncs, or their in-memory
    /// equivalent) this store has performed — surfaced in service metrics.
    fn sync_count(&self) -> u64;
}

impl<T: Store + ?Sized> Store for std::sync::Arc<T> {
    fn append(&self, payload: &[u8]) -> Result<(), StoreError> {
        (**self).append(payload)
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        (**self).wal_bytes()
    }

    fn append_stream(&self, stream: u32, payload: &[u8]) -> Result<(), StoreError> {
        (**self).append_stream(stream, payload)
    }

    fn wal_stream_bytes(&self, stream: u32) -> Result<Vec<u8>, StoreError> {
        (**self).wal_stream_bytes(stream)
    }

    fn wal_streams(&self) -> Result<Vec<u32>, StoreError> {
        (**self).wal_streams()
    }

    fn install_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        (**self).install_snapshot(snapshot)
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).snapshot_bytes()
    }

    fn sync_count(&self) -> u64 {
        (**self).sync_count()
    }
}

/// A [`Store`] decorator that reports append / snapshot-install spans and
/// sync instants into an [`egka_trace::Tracer`].
///
/// The store has no virtual clock of its own, so spans are stamped on a
/// per-store operation counter (one tick per call) on the dedicated store
/// pid lane — ordering and durability structure are what a trace reader
/// wants here, not durations.
pub struct TracedStore<S> {
    inner: S,
    tracer: egka_trace::Tracer,
    seq: std::sync::atomic::AtomicU64,
}

impl<S: Store> TracedStore<S> {
    /// Wraps `inner`, reporting into `tracer`.
    pub fn new(inner: S, tracer: egka_trace::Tracer) -> Self {
        TracedStore {
            inner,
            tracer,
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn tick(&self) -> u64 {
        use egka_trace::SWEEP_NS;
        self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed) * SWEEP_NS
    }

    fn span<T>(
        &self,
        name: &'static str,
        bytes: u64,
        op: impl FnOnce(&S) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        use egka_trace::{Event, Payload, Phase, CONTROL_TID, STORE_PID};
        let start = self.tick();
        self.tracer.emit(
            Event::new(Phase::Begin, start, STORE_PID, CONTROL_TID, name)
                .with(Payload::Io { bytes }),
        );
        let out = op(&self.inner);
        self.tracer.emit(
            Event::new(Phase::End, self.tick(), STORE_PID, CONTROL_TID, name)
                .with(Payload::Io { bytes }),
        );
        out
    }
}

impl<S: Store> Store for TracedStore<S> {
    fn append(&self, payload: &[u8]) -> Result<(), StoreError> {
        self.span("store.append", payload.len() as u64, |s| s.append(payload))
    }

    fn wal_bytes(&self) -> Result<Vec<u8>, StoreError> {
        self.inner.wal_bytes()
    }

    fn append_stream(&self, stream: u32, payload: &[u8]) -> Result<(), StoreError> {
        self.span("store.append", payload.len() as u64, |s| {
            s.append_stream(stream, payload)
        })
    }

    fn wal_stream_bytes(&self, stream: u32) -> Result<Vec<u8>, StoreError> {
        self.inner.wal_stream_bytes(stream)
    }

    fn wal_streams(&self) -> Result<Vec<u32>, StoreError> {
        self.inner.wal_streams()
    }

    fn install_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        self.span("store.snapshot_install", snapshot.len() as u64, |s| {
            s.install_snapshot(snapshot)
        })
    }

    fn snapshot_bytes(&self) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.snapshot_bytes()
    }

    fn sync_count(&self) -> u64 {
        self.inner.sync_count()
    }
}

/// Decodes a store's full WAL into complete record payloads (owned), using
/// the [`wal::scan`] prefix/corrupt contract. Stream 0 only — see
/// [`wal_stream_records`] for the per-stream view.
pub fn wal_records(store: &dyn Store) -> Result<Vec<Vec<u8>>, StoreError> {
    let bytes = store.wal_bytes()?;
    let (records, _tail) = wal::scan(&bytes)?;
    Ok(records.into_iter().map(<[u8]>::to_vec).collect())
}

/// Decodes one stream's WAL into complete record payloads (owned), with
/// the same clean-prefix torn-tail contract as [`wal_records`].
pub fn wal_stream_records(store: &dyn Store, stream: u32) -> Result<Vec<Vec<u8>>, StoreError> {
    let bytes = store.wal_stream_bytes(stream)?;
    let (records, _tail) = wal::scan(&bytes)?;
    Ok(records.into_iter().map(<[u8]>::to_vec).collect())
}

/// Verifies and unwraps a persisted snapshot (exactly one [`wal::frame`]).
///
/// Unlike the log, a snapshot has no useful "clean prefix": it is all or
/// nothing, so a truncated or damaged snapshot is [`StoreError::Corrupt`].
pub(crate) fn unframe_snapshot(bytes: &[u8]) -> Result<Vec<u8>, StoreError> {
    let (records, tail) = wal::scan(bytes)?;
    match (records.as_slice(), tail) {
        ([payload], Tail::Clean) => Ok(payload.to_vec()),
        _ => Err(StoreError::Corrupt {
            what: "snapshot is not exactly one intact frame",
            offset: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn Store) {
        store.append(b"alpha").unwrap();
        store.append(b"beta").unwrap();
        assert_eq!(
            wal_records(store).unwrap(),
            vec![b"alpha".to_vec(), b"beta".to_vec()]
        );
        assert!(store.snapshot_bytes().unwrap().is_none());

        store.install_snapshot(b"state@2").unwrap();
        assert_eq!(store.snapshot_bytes().unwrap().unwrap(), b"state@2");
        assert!(
            wal_records(store).unwrap().is_empty(),
            "compaction truncates"
        );

        store.append(b"gamma").unwrap();
        assert_eq!(wal_records(store).unwrap(), vec![b"gamma".to_vec()]);
        assert_eq!(store.snapshot_bytes().unwrap().unwrap(), b"state@2");
        assert!(store.sync_count() >= 4);
    }

    fn exercise_streams(store: &dyn Store) {
        store.append_stream(0, b"ctl-1").unwrap();
        store.append_stream(3, b"s3-a").unwrap();
        store.append_stream(1, b"s1-a").unwrap();
        store.append_stream(3, b"s3-b").unwrap();

        // Streams are independent: each sees only its own records.
        assert_eq!(wal_records(store).unwrap(), vec![b"ctl-1".to_vec()]);
        assert_eq!(
            wal_stream_records(store, 0).unwrap(),
            vec![b"ctl-1".to_vec()]
        );
        assert_eq!(
            wal_stream_records(store, 1).unwrap(),
            vec![b"s1-a".to_vec()]
        );
        assert_eq!(
            wal_stream_records(store, 3).unwrap(),
            vec![b"s3-a".to_vec(), b"s3-b".to_vec()]
        );
        assert!(wal_stream_records(store, 2).unwrap().is_empty());
        assert_eq!(store.wal_streams().unwrap(), vec![0, 1, 3]);

        // Compaction truncates every stream, not just stream 0.
        store.install_snapshot(b"state@streams").unwrap();
        assert!(wal_records(store).unwrap().is_empty());
        assert!(wal_stream_records(store, 1).unwrap().is_empty());
        assert!(wal_stream_records(store, 3).unwrap().is_empty());

        store.append_stream(1, b"s1-post").unwrap();
        assert_eq!(
            wal_stream_records(store, 1).unwrap(),
            vec![b"s1-post".to_vec()]
        );
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn mem_store_stream_contract() {
        exercise_streams(&MemStore::new());
    }

    #[test]
    fn traced_store_stream_contract() {
        let (cfg, ring) = egka_trace::TraceConfig::ring(1 << 10);
        let traced = TracedStore::new(MemStore::new(), egka_trace::Tracer::from(cfg));
        exercise_streams(&traced);
        egka_trace::export::validate(&ring.events()).expect("balanced spans");
    }

    #[test]
    fn file_store_stream_contract_and_reopen() {
        let dir =
            std::env::temp_dir().join(format!("egka-store-streams-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise_streams(&FileStore::open(&dir).unwrap());
        // Reopening sees the post-compaction stream state and truncates
        // streams it has never opened a handle for on the next snapshot.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(
            wal_stream_records(&reopened, 1).unwrap(),
            vec![b"s1-post".to_vec()]
        );
        assert_eq!(reopened.wal_streams().unwrap(), vec![0, 1, 3]);
        reopened.install_snapshot(b"state@reopen").unwrap();
        assert!(wal_stream_records(&reopened, 1).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_store_contract_and_spans() {
        let (cfg, ring) = egka_trace::TraceConfig::ring(1 << 10);
        let traced = TracedStore::new(MemStore::new(), egka_trace::Tracer::from(cfg));
        exercise(&traced);
        let evs = ring.events();
        egka_trace::export::validate(&evs).expect("balanced spans");
        let appends = evs
            .iter()
            .filter(|e| e.name == "store.append" && e.phase == egka_trace::Phase::Begin)
            .count();
        assert_eq!(appends, 3, "alpha, beta, gamma");
        assert!(evs.iter().any(|e| e.name == "store.snapshot_install"));
        assert!(evs.iter().all(|e| e.pid == egka_trace::STORE_PID));
    }

    #[test]
    fn file_store_contract() {
        let dir = std::env::temp_dir().join(format!("egka-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FileStore::open(&dir).unwrap());
        // Reopening sees the same durable state.
        let reopened = FileStore::open(&dir).unwrap();
        assert_eq!(wal_records(&reopened).unwrap(), vec![b"gamma".to_vec()]);
        assert_eq!(reopened.snapshot_bytes().unwrap().unwrap(), b"state@2");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
