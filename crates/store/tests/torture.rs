//! Framing-layer torture: arbitrary damage to a WAL byte stream must
//! yield a clean record prefix or a typed error — never a panic, never a
//! record that was not written.

use egka_store::{frame, scan, MemStore, StoreError, Tail};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random record payloads (length varies 0..200).
fn records(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = (rng.next_u64() % 200) as usize;
            let mut payload = vec![0u8; len];
            rng.fill_bytes(&mut payload);
            payload
        })
        .collect()
}

fn log_of(records: &[Vec<u8>]) -> Vec<u8> {
    let mut log = Vec::new();
    for r in records {
        log.extend_from_slice(&frame(r));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any byte offset scans to a strict prefix of the
    /// written records, byte-identical, with no error.
    #[test]
    fn truncation_scans_to_a_strict_prefix(
        seed in any::<u64>(),
        n in 1usize..12,
        cut_permille in 0u64..1000,
    ) {
        let written = records(seed, n);
        let log = log_of(&written);
        let cut = (log.len() as u64 * cut_permille / 1000) as usize;
        let (scanned, tail) = scan(&log[..cut]).expect("truncation is never Corrupt");
        prop_assert!(scanned.len() <= written.len());
        for (got, want) in scanned.iter().zip(&written) {
            prop_assert_eq!(*got, want.as_slice());
        }
        if cut < log.len() {
            // Shorter than the full log: either we cut exactly on a frame
            // boundary (clean) or inside one (torn); both are prefixes.
            prop_assert!(scanned.len() < written.len() || matches!(tail, Tail::Clean));
        }
    }

    /// A single flipped bit anywhere in the stream is either caught by a
    /// checksum (typed Corrupt) or confined to the length field of a
    /// frame, where it reads as a torn tail — still a strict prefix of
    /// intact records.
    #[test]
    fn bitflip_is_corrupt_or_a_strict_prefix(
        seed in any::<u64>(),
        n in 1usize..10,
        pos_permille in 0u64..1000,
        bit in 0u8..8,
    ) {
        let written = records(seed, n);
        let mut log = log_of(&written);
        let at = (log.len() as u64 * pos_permille / 1000) as usize % log.len();
        log[at] ^= 1 << bit;
        match scan(&log) {
            Err(StoreError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
            Ok((scanned, _)) => {
                // Every record surfaced must be one that was written, in
                // order, from the start.
                prop_assert!(scanned.len() <= written.len());
                for (got, want) in scanned.iter().zip(&written) {
                    prop_assert_eq!(*got, want.as_slice());
                }
                prop_assert!(
                    scanned.len() < written.len(),
                    "a flipped bit cannot leave every frame intact"
                );
            }
        }
    }
}

/// The backends persist through the same framing, so a `MemStore` carrying
/// a damaged stream reports exactly what `scan` reports.
#[test]
fn store_surface_matches_scan_contract() {
    let written = records(7, 5);
    let log = log_of(&written);
    for cut in [0, 1, log.len() / 3, log.len() - 1, log.len()] {
        let store = MemStore::with_raw(log[..cut].to_vec(), None);
        let got = egka_store::wal_records(&store).expect("truncation is clean");
        assert!(got.len() <= written.len());
        for (g, w) in got.iter().zip(&written) {
            assert_eq!(g, w);
        }
    }
    let mut damaged = log;
    damaged[10] ^= 0xFF;
    let store = MemStore::with_raw(damaged, None);
    assert!(matches!(
        egka_store::wal_records(&store),
        Err(StoreError::Corrupt { .. })
    ));
}
