//! Property tests on the elliptic-curve substrate: field axioms, curve
//! group laws (on both the exhaustive toy curve and secp160r1), point
//! compression, and pairing bilinearity.

use egka_bigint::{mod_add, mod_mul, Ubig};
use egka_ec::{secp160r1, tiny19, Curve, Fp, PairingGroup, Point};
use proptest::prelude::*;

fn fp160() -> Fp {
    secp160r1().field().clone()
}

/// Deterministic pseudo-element of a field from a u64 seed.
fn elem(f: &Fp, seed: u64) -> Ubig {
    f.reduce(
        &Ubig::from_u64(seed).mul_ref(&Ubig::from_hex("9e3779b97f4a7c15f39cc0605cedc835").unwrap()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn field_ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let f = fp160();
        let (a, b, c) = (elem(&f, a), elem(&f, b), elem(&f, c));
        // commutativity + associativity + distributivity
        prop_assert_eq!(f.add(&a, &b), f.add(&b, &a));
        prop_assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        prop_assert_eq!(f.add(&f.add(&a, &b), &c), f.add(&a, &f.add(&b, &c)));
        prop_assert_eq!(f.mul(&f.mul(&a, &b), &c), f.mul(&a, &f.mul(&b, &c)));
        prop_assert_eq!(
            f.mul(&a, &f.add(&b, &c)),
            f.add(&f.mul(&a, &b), &f.mul(&a, &c))
        );
        // additive/multiplicative inverses
        prop_assert!(f.add(&a, &f.neg(&a)).is_zero());
        if !a.is_zero() {
            prop_assert!(f.mul(&a, &f.inv(&a).unwrap()).is_one());
        }
        // squares have roots (p ≡ 3 mod 4)
        let sq = f.sqr(&a);
        let r = f.sqrt(&sq).unwrap();
        prop_assert_eq!(f.sqr(&r), sq);
    }

    #[test]
    fn scalar_mul_is_homomorphic(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let c = secp160r1();
        let (ka, kb) = (Ubig::from_u64(a), Ubig::from_u64(b));
        // (a+b)G = aG + bG
        let sum = mod_add(&ka, &kb, c.order());
        prop_assert_eq!(
            c.mul_gen(&sum),
            c.add(&c.mul_gen(&ka), &c.mul_gen(&kb))
        );
        // a(bG) = (ab)G
        let prod = mod_mul(&ka, &kb, c.order());
        let bg = c.mul_gen(&kb);
        prop_assert_eq!(c.mul(&ka, &bg), c.mul_gen(&prod));
    }

    #[test]
    fn points_stay_on_curve_and_compress(k in 1u64..u64::MAX) {
        let c = secp160r1();
        let p = c.mul_gen(&Ubig::from_u64(k));
        prop_assert!(c.is_on_curve(&p));
        prop_assert_eq!(c.decompress(&c.compress(&p)), Some(p));
    }

    #[test]
    fn tiny_curve_full_group_law(i in 0u64..21, j in 0u64..21) {
        let c: Curve = tiny19();
        let g = c.generator().clone();
        let p = c.mul_raw(&Ubig::from_u64(i), &g);
        let q = c.mul_raw(&Ubig::from_u64(j), &g);
        let direct = c.add(&p, &q);
        let via_scalar = c.mul_raw(&Ubig::from_u64(i + j), &g);
        prop_assert_eq!(direct, via_scalar);
        // negation: P + (−P) = ∞
        prop_assert!(c.add(&p, &c.neg(&p)).is_infinity());
    }
}

proptest! {
    // Pairings are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pairing_bilinearity(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        use egka_hash::ChaChaRng;
        use rand::SeedableRng;
        let mut rng = ChaChaRng::seed_from_u64(0x70726f70);
        let g = egka_ec::gen_pairing_group(&mut rng, 80, 48);
        let gen: Point = g.curve().generator().clone();
        let (ka, kb) = (Ubig::from_u64(a), Ubig::from_u64(b));
        let lhs = g.pairing(&g.curve().mul(&ka, &gen), &g.curve().mul(&kb, &gen));
        let ab = mod_mul(&ka, &kb, g.order());
        let rhs = g.fp2().pow(&g.pairing(&gen, &gen), &ab);
        prop_assert_eq!(lhs, rhs);
    }
}

// -------------------------------------------------------------------------
// Reference equivalence: every accelerated ladder (generic wNAF `mul`, the
// fixed-base comb behind `mul_gen`, the Straus interleaving behind
// `mul_mul_add`) must agree with textbook MSB-first double-and-add — on
// random scalars and on the order-boundary edge cases where window and comb
// bookkeeping is most likely to slip.

/// Textbook double-and-add. Deliberately the dumbest correct algorithm: no
/// windows, no NAF, no comb — one double per bit, one add per set bit.
fn naive_mul(c: &Curve, k: &Ubig, p: &Point) -> Point {
    let mut acc = Point::Infinity;
    for bit in (0..k.bit_length()).rev() {
        acc = c.double(&acc);
        if k.bit(bit) {
            acc = c.add(&acc, p);
        }
    }
    acc
}

/// `0, 1, n−1, n, n+1` — the scalars that straddle the subgroup order.
fn edge_scalars(c: &Curve) -> Vec<Ubig> {
    let n = c.order();
    vec![
        Ubig::zero(),
        Ubig::one(),
        n.checked_sub(&Ubig::one()).unwrap(),
        n.clone(),
        n.add_ref(&Ubig::one()),
    ]
}

/// Asserts all three accelerated paths match the naive reference for `k`
/// (reduced mod the order first, matching `mul`/`mul_gen` semantics).
fn assert_ladders_match(c: &Curve, k: &Ubig) {
    let g = c.generator().clone();
    let reduced = k.rem_ref(c.order());
    let want = naive_mul(c, &reduced, &g);
    assert_eq!(c.mul(k, &g), want, "mul disagrees with double-and-add");
    assert_eq!(c.mul_gen(k), want, "mul_gen disagrees with double-and-add");
    // k·G + 0·G and ⌊k/2⌋·G + ⌈k/2⌉·G both equal k·G.
    let half = reduced.shr_bits(1);
    let rest = reduced.checked_sub(&half).unwrap();
    assert_eq!(
        c.mul_mul_add(&half, &g, &rest, &g),
        want,
        "mul_mul_add disagrees with double-and-add"
    );
}

#[test]
fn ladders_match_naive_on_edge_scalars() {
    for c in [tiny19(), secp160r1()] {
        for k in edge_scalars(&c) {
            assert_ladders_match(&c, &k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ladders_match_naive_on_random_scalars(seed in any::<u64>()) {
        for c in [tiny19(), secp160r1()] {
            // Stretch the u64 across the full scalar width so high comb
            // columns are exercised, not just the low 64 bits.
            let wide = elem(c.field(), seed);
            assert_ladders_match(&c, &wide);
            assert_ladders_match(&c, &Ubig::from_u64(seed));
        }
    }

    #[test]
    fn mul_mul_add_matches_naive_on_distinct_points(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let c = secp160r1();
        let g = c.generator().clone();
        let (ka, kb) = (Ubig::from_u64(a), Ubig::from_u64(b));
        let q = c.mul_gen(&Ubig::from_u64(0x9e37_79b9));
        let want = c.add(&naive_mul(&c, &ka, &g), &naive_mul(&c, &kb, &q));
        prop_assert_eq!(c.mul_mul_add(&ka, &g, &kb, &q), want);
    }
}

#[test]
fn fixture_pairing_group_is_reusable() {
    // Not a proptest (expensive); pins that the 194-bit fixture behaves.
    let g = PairingGroup::paper_fixture();
    let p = g.map_to_point(b"prop-fixture");
    assert!(g.curve().is_on_curve(&p));
    assert!(g.curve().mul_raw(g.order(), &p).is_infinity());
}
