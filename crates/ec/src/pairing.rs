//! Tate pairing on a supersingular curve, for the SOK ID-based signature.
//!
//! The curve is `E : y² = x³ + x` over `F_p` with `p ≡ 3 (mod 4)`, which is
//! supersingular with `#E(F_p) = p + 1` and embedding degree 2. For a prime
//! `q | p + 1` the modified Tate pairing
//!
//! ```text
//! ê(P, Q) = e_q(P, φ(Q)) ∈ μ_q ⊂ F_p²,   φ(x, y) = (−x, i·y)
//! ```
//!
//! (φ the distortion map, `i² = −1`) is a symmetric, non-degenerate bilinear
//! pairing on the order-`q` subgroup of `E(F_p)`. The Miller loop uses the
//! BKLS denominator-elimination trick: because `x(φ(Q)) = −x_Q ∈ F_p`, all
//! vertical-line factors land in `F_p` and are annihilated by the final
//! exponentiation `(p² − 1)/q = (p − 1) · cofactor`, so they are simply
//! skipped. The `(p − 1)` part of the final exponentiation is a Frobenius
//! (conjugation) plus one inversion; only the small cofactor exponent is a
//! real exponentiation.
//!
//! The paper prices this primitive via Table 2's "Tate Pairing" row (47.0 mJ
//! on the StrongARM); here it is implemented for real so the SOK-signed BD
//! variant actually verifies.

use egka_bigint::{is_prime, random_below, Ubig};
use egka_hash::mgf1;
use rand::Rng;

use crate::curve::{Curve, Point};
use crate::field::{Fp, Fp2, Fp2El};

/// Cached Miller-loop line coefficients for one fixed first argument —
/// see [`PairingGroup::precompute`]. One entry per loop line in schedule
/// order (`None` marks the verticals denominator elimination skips).
#[derive(Clone, Debug)]
pub struct MillerPrecomp {
    lines: Vec<Option<(Ubig, Ubig)>>,
}

/// A symmetric pairing group on a supersingular curve.
#[derive(Clone, Debug)]
pub struct PairingGroup {
    curve: Curve,
    fp2: Fp2,
    /// `(p + 1) / q`.
    cofactor: Ubig,
}

impl PairingGroup {
    /// Builds a pairing group from `(p, q, generator)` where `p ≡ 3 (mod 4)`
    /// is prime, `q` is an odd prime dividing `p + 1`, and `gen` generates
    /// the order-`q` subgroup of `E(F_p) : y² = x³ + x`.
    ///
    /// # Panics
    /// Panics if any of those conditions fails (primality is checked
    /// probabilistically with a deterministic RNG).
    pub fn new(p: Ubig, q: Ubig, gen: Point) -> Self {
        use rand::SeedableRng;
        let mut check_rng = rand::rngs::SmallRng::seed_from_u64(0x9e37_79b9);
        assert!(p.low_u64() & 3 == 3, "p must be ≡ 3 (mod 4)");
        assert!(is_prime(&p, &mut check_rng), "p must be prime");
        assert!(is_prime(&q, &mut check_rng), "q must be prime");
        let p_plus_1 = p.add_ref(&Ubig::one());
        let (cofactor, rem) = p_plus_1.div_rem(&q);
        assert!(rem.is_zero(), "q must divide p + 1");
        let field = Fp::new(p);
        let fp2 = Fp2::new(field.clone());
        // E: y² = x³ + 1·x + 0. Curve::new verifies gen is on-curve with order q.
        let curve = Curve::new(
            "supersingular-y2=x3+x",
            field,
            Ubig::one(),
            Ubig::zero(),
            q,
            cofactor.clone(),
            gen,
        );
        PairingGroup {
            curve,
            fp2,
            cofactor,
        }
    }

    /// The paper-profile fixture: 194-bit `p`, 160-bit `q` (matching the
    /// "194-bit SOK" sizing of Table 3). Generated once and pinned; the
    /// constructor re-validates every claimed property.
    pub fn paper_fixture() -> Self {
        let p = Ubig::from_hex("24056cb57801921f30c2993adcde17bb3d0b97964065e4a37").unwrap();
        let q = Ubig::from_hex("a1dbc22e24c7a629b282f6bcb7f2acef5ab3b75f").unwrap();
        let gen = Point::affine(
            Ubig::from_hex("15585c064032bdbd7ae9659c8d2a507b26854a5b8471d5b39").unwrap(),
            Ubig::from_hex("6ea1ebb6990e2a0feb51cd28eec9a264e1f80c4076df85ca").unwrap(),
        );
        Self::new(p, q, gen)
    }

    /// The underlying curve (group operations, scalar multiplication).
    pub fn curve(&self) -> &Curve {
        &self.curve
    }

    /// The extension field the pairing maps into.
    pub fn fp2(&self) -> &Fp2 {
        &self.fp2
    }

    /// Subgroup order `q`.
    pub fn order(&self) -> &Ubig {
        self.curve.order()
    }

    /// Hash an arbitrary byte string onto the order-`q` subgroup
    /// (the scheme's MapToPoint primitive).
    ///
    /// Try-and-increment on the x-coordinate followed by cofactor clearing;
    /// expected ~2 field square-root attempts.
    pub fn map_to_point(&self, msg: &[u8]) -> Point {
        let f = self.curve.field();
        let xbytes = f.byte_len() + 8; // oversample to make mod-p bias negligible
        for ctr in 0u32.. {
            let raw = mgf1(
                b"egka.map2point.v1",
                &[msg, &ctr.to_be_bytes()].concat(),
                xbytes,
            );
            let x = f.reduce(&Ubig::from_bytes_be(&raw));
            let rhs = f.add(&f.mul(&f.sqr(&x), &x), &x); // x³ + x
            if let Some(mut y) = f.sqrt(&rhs) {
                // Pick the lexicographically smaller root deterministically.
                let neg = f.neg(&y);
                if neg < y {
                    y = neg;
                }
                let pt = self.curve.mul(&self.cofactor, &Point::affine(x, y));
                if !pt.is_infinity() {
                    return pt;
                }
            }
        }
        unreachable!("try-and-increment terminates with overwhelming probability")
    }

    /// Uniformly random point of order `q` (for tests).
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let f = self.curve.field();
        loop {
            let x = random_below(rng, f.modulus());
            let rhs = f.add(&f.mul(&f.sqr(&x), &x), &x);
            if let Some(y) = f.sqrt(&rhs) {
                let pt = self.curve.mul(&self.cofactor, &Point::affine(x, y));
                if !pt.is_infinity() {
                    return pt;
                }
            }
        }
    }

    /// The modified Tate pairing `ê(P, Q) = e_q(P, φ(Q))`.
    ///
    /// Both inputs must lie in the order-`q` subgroup of `E(F_p)`. Returns an
    /// element of the order-`q` subgroup `μ_q ⊂ F_p²^*`; `ê(P, Q) = 1` iff
    /// either input is the identity.
    pub fn pairing(&self, p_pt: &Point, q_pt: &Point) -> Fp2El {
        let (qx, qy) = match q_pt.xy() {
            None => return Fp2El::one(),
            Some(xy) => (xy.0.clone(), xy.1.clone()),
        };
        if p_pt.is_infinity() {
            return Fp2El::one();
        }
        let f = self.curve.field();
        let fp2 = &self.fp2;
        // φ(Q) = (−qx, i·qy): the line evaluations below use these directly.
        let phi_x = f.neg(&qx);

        let order = self.curve.order().clone();
        let mut acc = Fp2El::one();
        let mut v = p_pt.clone();
        let bits = order.bit_length();
        for i in (0..bits - 1).rev() {
            // acc ← acc² · tangent_{V}(φQ); V ← 2V
            acc = fp2.sqr(&acc);
            if let Some(line) = self.tangent_eval(&v, &phi_x, &qy) {
                acc = fp2.mul(&acc, &line);
            }
            v = self.curve.double(&v);
            if order.bit(i) {
                // acc ← acc · line_{V,P}(φQ); V ← V + P
                if let Some(line) = self.chord_eval(&v, p_pt, &phi_x, &qy) {
                    acc = fp2.mul(&acc, &line);
                }
                v = self.curve.add(&v, p_pt);
            }
        }
        debug_assert!(v.is_infinity(), "order-q input must close the Miller loop");
        self.final_exponentiation(&acc)
    }

    /// Precomputes the Miller-loop line coefficients for a fixed first
    /// argument `P`: the loop's `V` trajectory (and every line slope λ)
    /// depends only on `P`, so a pairing against a long-lived point (the
    /// group generator, a master public key) can cache them once and
    /// evaluate each subsequent `Q` with one field multiply per line —
    /// no inversions in the loop ([`PairingGroup::pairing_fixed`]).
    pub fn precompute(&self, p_pt: &Point) -> MillerPrecomp {
        let order = self.curve.order().clone();
        let mut lines = Vec::new();
        let mut v = p_pt.clone();
        let bits = order.bit_length();
        for i in (0..bits - 1).rev() {
            lines.push(self.tangent_coeffs(&v));
            v = self.curve.double(&v);
            if order.bit(i) {
                lines.push(self.chord_coeffs(&v, p_pt));
                v = self.curve.add(&v, p_pt);
            }
        }
        debug_assert!(
            p_pt.is_infinity() || v.is_infinity(),
            "order-q input must close the Miller loop"
        );
        MillerPrecomp { lines }
    }

    /// The modified Tate pairing with the first argument's line
    /// coefficients precomputed ([`PairingGroup::precompute`]). Identical
    /// output to [`PairingGroup::pairing`] — each line's value at
    /// `φ(Q) = (−q_x, i·q_y)` is `(A − λ·φ_x) + i·q_y` with `(λ, A)`
    /// cached, so the loop costs one field multiply per line.
    ///
    /// # Panics
    /// May panic (or return garbage) if `pre` was built by a different
    /// pairing group: the line schedule is keyed to this group's order.
    pub fn pairing_fixed(&self, pre: &MillerPrecomp, q_pt: &Point) -> Fp2El {
        let (qx, qy) = match q_pt.xy() {
            None => return Fp2El::one(),
            Some(xy) => (xy.0.clone(), xy.1.clone()),
        };
        let f = self.curve.field();
        let fp2 = &self.fp2;
        let phi_x = f.neg(&qx);
        let order = self.curve.order();
        let bits = order.bit_length();
        let mut acc = Fp2El::one();
        let mut lines = pre.lines.iter();
        let eval = |acc: &Fp2El, line: Option<&(Ubig, Ubig)>| match line {
            Some((lambda, a)) => {
                let c0 = f.sub(a, &f.mul(lambda, &phi_x));
                fp2.mul(acc, &Fp2El { c0, c1: qy.clone() })
            }
            None => acc.clone(),
        };
        for i in (0..bits - 1).rev() {
            acc = fp2.sqr(&acc);
            acc = eval(&acc, lines.next().expect("line schedule").as_ref());
            if order.bit(i) {
                acc = eval(&acc, lines.next().expect("line schedule").as_ref());
            }
        }
        self.final_exponentiation(&acc)
    }

    /// `(λ, A = λ·x_V − y_V)` of the tangent at `V`, or `None` when
    /// vertical. The line's value at `φ(Q)` is `(A − λ·φ_x) + i·q_y`.
    fn tangent_coeffs(&self, v: &Point) -> Option<(Ubig, Ubig)> {
        let f = self.curve.field();
        let (vx, vy) = v.xy()?;
        if vy.is_zero() {
            return None;
        }
        let lambda = f.mul(
            &f.add(&f.mul_u64(&f.sqr(vx), 3), &Ubig::one()),
            &f.inv(&f.mul_u64(vy, 2)).expect("vy != 0"),
        );
        let a = f.sub(&f.mul(&lambda, vx), vy);
        Some((lambda, a))
    }

    /// `(λ, A)` of the chord through `V` and `P`, or `None` when vertical.
    fn chord_coeffs(&self, v: &Point, p: &Point) -> Option<(Ubig, Ubig)> {
        let f = self.curve.field();
        let (vx, vy) = v.xy()?;
        let (px, py) = p.xy()?;
        if vx == px {
            return None;
        }
        let lambda = f.mul(&f.sub(py, vy), &f.inv(&f.sub(px, vx)).expect("px != vx"));
        let a = f.sub(&f.mul(&lambda, vx), vy);
        Some((lambda, a))
    }

    /// Tangent line at `V` evaluated at `φ(Q) = (φ_x, i·q_y)`; `None` when the
    /// line is vertical (eliminated by the final exponentiation).
    fn tangent_eval(&self, v: &Point, phi_x: &Ubig, qy: &Ubig) -> Option<Fp2El> {
        let f = self.curve.field();
        let (vx, vy) = v.xy()?;
        if vy.is_zero() {
            return None; // vertical tangent at a 2-torsion point
        }
        // λ = (3x² + 1) / 2y  (curve a = 1)
        let lambda = f.mul(
            &f.add(&f.mul_u64(&f.sqr(vx), 3), &Ubig::one()),
            &f.inv(&f.mul_u64(vy, 2)).expect("vy != 0"),
        );
        // g = (i·qy) − vy − λ·(φ_x − vx)  →  c0 = −vy − λ(φ_x − vx), c1 = qy
        let c0 = f.sub(&f.mul(&lambda, &f.sub(vx, phi_x)), vy);
        Some(Fp2El { c0, c1: qy.clone() })
    }

    /// Line through `V` and `P` evaluated at `φ(Q)`; `None` when vertical.
    fn chord_eval(&self, v: &Point, p: &Point, phi_x: &Ubig, qy: &Ubig) -> Option<Fp2El> {
        let f = self.curve.field();
        let (vx, vy) = v.xy()?;
        let (px, py) = p.xy()?;
        if vx == px {
            return None; // vertical chord (V = −P or V = P with vertical handling)
        }
        let lambda = f.mul(&f.sub(py, vy), &f.inv(&f.sub(px, vx)).expect("px != vx"));
        let c0 = f.sub(&f.mul(&lambda, &f.sub(vx, phi_x)), vy);
        Some(Fp2El { c0, c1: qy.clone() })
    }

    /// `f ↦ f^{(p²−1)/q}` via Frobenius: `f^{p−1} = conj(f)·f^{−1}`, then one
    /// exponentiation by the (small) cofactor `(p+1)/q`.
    fn final_exponentiation(&self, f: &Fp2El) -> Fp2El {
        let fp2 = &self.fp2;
        let inv = fp2.inv(f).expect("Miller value is non-zero");
        let powered = fp2.mul(&fp2.conj(f), &inv);
        fp2.pow(&powered, &self.cofactor)
    }
}

/// Generates a fresh pairing group: `q` a `q_bits` prime, `p = q·c − 1` a
/// `p_bits` prime with `p ≡ 3 (mod 4)` (i.e. `4 | c`), plus a generator of
/// the order-`q` subgroup.
///
/// # Panics
/// Panics if `p_bits < q_bits + 3` (no room for the cofactor).
pub fn gen_pairing_group<R: Rng + ?Sized>(rng: &mut R, p_bits: u32, q_bits: u32) -> PairingGroup {
    assert!(p_bits >= q_bits + 3, "cofactor needs at least 3 bits");
    let q = egka_bigint::gen_prime(rng, q_bits);
    loop {
        // c: (p_bits − q_bits)-bit multiple of 4 ⇒ p = qc − 1 ≡ 3 (mod 4).
        let mut c = egka_bigint::random_bits(rng, p_bits - q_bits);
        c = c.shr_bits(2).shl_bits(2);
        if c.is_zero() {
            continue;
        }
        let p = q.mul_ref(&c).checked_sub(&Ubig::one()).unwrap();
        if p.bit_length() != p_bits || !is_prime(&p, rng) {
            continue;
        }
        // Random point → clear cofactor → generator of the order-q subgroup.
        let field = Fp::new(p.clone());
        loop {
            let x = random_below(rng, field.modulus());
            let rhs = field.add(&field.mul(&field.sqr(&x), &x), &x);
            let Some(y) = field.sqrt(&rhs) else { continue };
            // Scalar-multiply by hand here (no Curve yet: its constructor
            // wants the final generator).
            let tmp = Curve::new(
                "supersingular-tmp",
                field.clone(),
                Ubig::one(),
                Ubig::zero(),
                p.add_ref(&Ubig::one()), // full group order p+1
                Ubig::one(),
                Point::affine(x.clone(), y.clone()),
            );
            let gen = tmp.mul(&c, &Point::affine(x, y));
            if !gen.is_infinity() {
                return PairingGroup::new(p, q, gen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    /// Small pairing group for fast tests (generated fresh each call from a
    /// fixed seed, so all tests share identical parameters).
    fn small_group() -> PairingGroup {
        let mut rng = ChaChaRng::seed_from_u64(0x6567_6b61); // "egka"
        gen_pairing_group(&mut rng, 96, 64)
    }

    #[test]
    fn fixture_validates() {
        let g = PairingGroup::paper_fixture();
        assert_eq!(g.curve().field().bits(), 194);
        assert_eq!(g.order().bit_length(), 160);
    }

    #[test]
    fn pairing_is_nondegenerate() {
        let g = small_group();
        let gen = g.curve().generator().clone();
        let e = g.pairing(&gen, &gen);
        assert!(!e.is_one(), "ê(G, G) must be non-trivial (distortion map)");
        // and has order dividing q:
        let eq = g.fp2().pow(&e, g.order());
        assert!(eq.is_one());
    }

    #[test]
    fn pairing_is_bilinear() {
        let g = small_group();
        let mut rng = ChaChaRng::seed_from_u64(11);
        let gen = g.curve().generator().clone();
        let a = g.curve().random_scalar(&mut rng);
        let b = g.curve().random_scalar(&mut rng);
        let pa = g.curve().mul(&a, &gen);
        let pb = g.curve().mul(&b, &gen);
        // ê(aG, bG) == ê(G, G)^{ab} == ê(bG, aG)
        let lhs = g.pairing(&pa, &pb);
        let ab = egka_bigint::mod_mul(&a, &b, g.order());
        let rhs = g.fp2().pow(&g.pairing(&gen, &gen), &ab);
        assert_eq!(lhs, rhs);
        assert_eq!(lhs, g.pairing(&pb, &pa), "modified pairing is symmetric");
    }

    #[test]
    fn pairing_splits_products() {
        // ê(P + R, Q) = ê(P, Q) · ê(R, Q)
        let g = small_group();
        let mut rng = ChaChaRng::seed_from_u64(12);
        let p = g.random_point(&mut rng);
        let r = g.random_point(&mut rng);
        let q = g.random_point(&mut rng);
        let lhs = g.pairing(&g.curve().add(&p, &r), &q);
        let rhs = g.fp2().mul(&g.pairing(&p, &q), &g.pairing(&r, &q));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_identity_inputs() {
        let g = small_group();
        let gen = g.curve().generator().clone();
        assert!(g.pairing(&Point::Infinity, &gen).is_one());
        assert!(g.pairing(&gen, &Point::Infinity).is_one());
    }

    #[test]
    fn map_to_point_lands_in_subgroup() {
        let g = small_group();
        for id in ["alice", "bob", "carol", ""] {
            let pt = g.map_to_point(id.as_bytes());
            assert!(g.curve().is_on_curve(&pt));
            assert!(!pt.is_infinity());
            assert!(
                g.curve().mul_raw(g.order(), &pt).is_infinity(),
                "order-q check"
            );
        }
    }

    #[test]
    fn map_to_point_is_deterministic_and_injective_in_practice() {
        let g = small_group();
        let a1 = g.map_to_point(b"alice");
        let a2 = g.map_to_point(b"alice");
        let b = g.map_to_point(b"bob");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn fixed_base_pairing_matches_generic() {
        let g = small_group();
        let mut rng = ChaChaRng::seed_from_u64(14);
        let gen = g.curve().generator().clone();
        let pre = g.precompute(&gen);
        for _ in 0..4 {
            let q = g.random_point(&mut rng);
            assert_eq!(g.pairing_fixed(&pre, &q), g.pairing(&gen, &q));
        }
        assert!(g.pairing_fixed(&pre, &Point::Infinity).is_one());
        // An arbitrary (non-generator) fixed point works too.
        let p = g.random_point(&mut rng);
        let pre_p = g.precompute(&p);
        let q = g.random_point(&mut rng);
        assert_eq!(g.pairing_fixed(&pre_p, &q), g.pairing(&p, &q));
    }

    #[test]
    fn fixture_pairing_bilinear_spot_check() {
        // One (slower) bilinearity check on the full 194-bit fixture.
        let g = PairingGroup::paper_fixture();
        let mut rng = ChaChaRng::seed_from_u64(13);
        let gen = g.curve().generator().clone();
        let a = g.curve().random_scalar(&mut rng);
        let pa = g.curve().mul(&a, &gen);
        let lhs = g.pairing(&pa, &gen);
        let rhs = g.fp2().pow(&g.pairing(&gen, &gen), &a);
        assert_eq!(lhs, rhs);
    }
}
