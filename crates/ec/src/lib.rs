//! # egka-ec
//!
//! From-scratch elliptic-curve arithmetic for the `egka` reproduction of
//! Tan & Teo, *"Energy-Efficient ID-based Group Key Agreement Protocols for
//! Wireless Networks"* (IPPS 2006).
//!
//! The paper prices two elliptic-curve primitives (Table 2):
//!
//! * **EC scalar multiplication** (8.8 mJ) — the cost unit of ECDSA, the
//!   certificate-based baseline of Tables 1/4/5;
//! * **Tate pairing** (47.0 mJ) and **MapToPoint** (18.4 mJ) — the cost
//!   units of the SOK ID-based signature baseline.
//!
//! This crate provides the real machinery behind those rows:
//!
//! * [`field`] — prime fields `F_p` (Montgomery-backed) and the quadratic
//!   extension `F_p²` with `i² = −1`;
//! * [`curve`] — short-Weierstrass curves, Jacobian arithmetic, wNAF scalar
//!   multiplication, SEC1 point compression;
//! * [`curves`] — secp160r1 (the paper's 160-bit ECDSA curve), secp192r1,
//!   secp256k1 and a toy curve for exhaustive tests;
//! * [`pairing`] — the modified Tate pairing on a supersingular curve
//!   `y² = x³ + x` with embedding degree 2 (BKLS denominator elimination),
//!   plus MapToPoint hashing and pairing-group parameter generation.
//!
//! ```
//! use egka_bigint::Ubig;
//! use egka_ec::tiny19;
//!
//! // Scalar multiplication distributes over the group law:
//! // (2 + 3)·G = 2·G + 3·G.
//! let curve = tiny19();
//! let two_g = curve.mul_gen(&Ubig::from(2u64));
//! let three_g = curve.mul_gen(&Ubig::from(3u64));
//! let five_g = curve.mul_gen(&Ubig::from(5u64));
//! assert_eq!(curve.add(&two_g, &three_g), five_g);
//! assert!(curve.is_on_curve(&five_g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod curves;
pub mod field;
pub mod pairing;

pub use curve::{Curve, Point};
pub use curves::{secp160r1, secp192r1, secp256k1, tiny19};
pub use field::{Fp, Fp2, Fp2El};
pub use pairing::{gen_pairing_group, MillerPrecomp, PairingGroup};
