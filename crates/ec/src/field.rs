//! Prime-field arithmetic contexts.
//!
//! A [`Fp`] bundles an odd prime modulus with its Montgomery context from
//! `egka-bigint`; field elements are plain [`Ubig`] values reduced into
//! `[0, p)`. Keeping elements context-free (no `Arc` per element) makes the
//! point types in [`crate::curve`] plain data and keeps clones cheap.

use egka_bigint::{mod_inverse, Montgomery, Ubig};
use rand::Rng;

/// A prime field `F_p` for an odd prime `p`.
#[derive(Clone, Debug)]
pub struct Fp {
    p: Ubig,
    mont: Montgomery,
    /// `(p + 1) / 4`, defined only when `p ≡ 3 (mod 4)` (square-root exponent).
    sqrt_exp: Option<Ubig>,
}

impl Fp {
    /// Builds a field context.
    ///
    /// # Panics
    /// Panics if `p` is even or `p <= 1`. Primality is the caller's
    /// responsibility (checked in curve constructors and tests).
    pub fn new(p: Ubig) -> Self {
        assert!(
            p.is_odd() && !p.is_one(),
            "field modulus must be an odd prime"
        );
        let mont = Montgomery::new(p.clone());
        let sqrt_exp = if p.low_u64() & 3 == 3 {
            Some(p.add_ref(&Ubig::one()).shr_bits(2))
        } else {
            None
        };
        Fp { p, mont, sqrt_exp }
    }

    /// The modulus `p`.
    pub fn modulus(&self) -> &Ubig {
        &self.p
    }

    /// Number of bits in `p`.
    pub fn bits(&self) -> u32 {
        self.p.bit_length()
    }

    /// Canonical byte width of a serialized element.
    pub fn byte_len(&self) -> usize {
        (self.p.bit_length() as usize).div_ceil(8)
    }

    /// True iff `p ≡ 3 (mod 4)` (fast square roots available).
    pub fn is_3_mod_4(&self) -> bool {
        self.sqrt_exp.is_some()
    }

    /// Reduces an arbitrary integer into the field.
    pub fn reduce(&self, a: &Ubig) -> Ubig {
        a.rem_ref(&self.p)
    }

    /// `(a + b) mod p` for reduced operands.
    pub fn add(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let s = a.add_ref(b);
        if s >= self.p {
            s.checked_sub(&self.p).unwrap()
        } else {
            s
        }
    }

    /// `(a - b) mod p` for reduced operands.
    pub fn sub(&self, a: &Ubig, b: &Ubig) -> Ubig {
        if a >= b {
            a.checked_sub(b).unwrap()
        } else {
            a.add_ref(&self.p).checked_sub(b).unwrap()
        }
    }

    /// `-a mod p` for a reduced operand.
    pub fn neg(&self, a: &Ubig) -> Ubig {
        if a.is_zero() {
            Ubig::zero()
        } else {
            self.p.checked_sub(a).unwrap()
        }
    }

    /// `(a * b) mod p`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        a.mul_ref(b).rem_ref(&self.p)
    }

    /// `a² mod p`.
    pub fn sqr(&self, a: &Ubig) -> Ubig {
        a.square().rem_ref(&self.p)
    }

    /// `a * k mod p` for a small scalar.
    pub fn mul_u64(&self, a: &Ubig, k: u64) -> Ubig {
        self.mul(a, &Ubig::from_u64(k))
    }

    /// `a^e mod p` (Montgomery ladder under the hood).
    pub fn pow(&self, a: &Ubig, e: &Ubig) -> Ubig {
        self.mont.pow(&self.reduce(a), e)
    }

    /// `a^{-1} mod p`, or `None` for `a = 0`.
    pub fn inv(&self, a: &Ubig) -> Option<Ubig> {
        if a.is_zero() {
            return None;
        }
        mod_inverse(a, &self.p)
    }

    /// Legendre symbol test: true iff `a` is a non-zero quadratic residue.
    pub fn is_qr(&self, a: &Ubig) -> bool {
        !a.is_zero() && egka_bigint::jacobi(a, &self.p) == 1
    }

    /// Square root of a quadratic residue for `p ≡ 3 (mod 4)`:
    /// `a^{(p+1)/4}`. Returns `None` if `a` is a non-residue.
    ///
    /// # Panics
    /// Panics if the field modulus is not `≡ 3 (mod 4)`.
    pub fn sqrt(&self, a: &Ubig) -> Option<Ubig> {
        let e = self.sqrt_exp.as_ref().expect("sqrt requires p ≡ 3 (mod 4)");
        if a.is_zero() {
            return Some(Ubig::zero());
        }
        let r = self.mont.pow(a, e);
        if self.sqr(&r) == self.reduce(a) {
            Some(r)
        } else {
            None
        }
    }

    /// Uniformly random field element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Ubig {
        egka_bigint::random_below(rng, &self.p)
    }

    /// Uniformly random non-zero element.
    pub fn random_nonzero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ubig {
        loop {
            let v = self.random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }
}

/// An element of `F_p² = F_p[i] / (i² + 1)`, valid when `p ≡ 3 (mod 4)`.
///
/// Stored as `c0 + c1·i` with both coordinates reduced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fp2El {
    /// Real coordinate.
    pub c0: Ubig,
    /// Imaginary coordinate (coefficient of `i`).
    pub c1: Ubig,
}

impl Fp2El {
    /// The additive identity.
    pub fn zero() -> Self {
        Fp2El {
            c0: Ubig::zero(),
            c1: Ubig::zero(),
        }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp2El {
            c0: Ubig::one(),
            c1: Ubig::zero(),
        }
    }

    /// Embeds a base-field element.
    pub fn from_base(c0: Ubig) -> Self {
        Fp2El {
            c0,
            c1: Ubig::zero(),
        }
    }

    /// True iff this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// True iff this is the one element.
    pub fn is_one(&self) -> bool {
        self.c0.is_one() && self.c1.is_zero()
    }
}

/// The quadratic extension field `F_p²` with `i² = -1`.
///
/// Requires `p ≡ 3 (mod 4)` so that `x² + 1` is irreducible over `F_p`.
#[derive(Clone, Debug)]
pub struct Fp2 {
    base: Fp,
}

impl Fp2 {
    /// Builds the extension over `base`.
    ///
    /// # Panics
    /// Panics unless `p ≡ 3 (mod 4)` (otherwise `i² = -1` is reducible).
    pub fn new(base: Fp) -> Self {
        assert!(base.is_3_mod_4(), "F_p² with i² = -1 needs p ≡ 3 (mod 4)");
        Fp2 { base }
    }

    /// The base field.
    pub fn base(&self) -> &Fp {
        &self.base
    }

    /// `a + b`.
    pub fn add(&self, a: &Fp2El, b: &Fp2El) -> Fp2El {
        Fp2El {
            c0: self.base.add(&a.c0, &b.c0),
            c1: self.base.add(&a.c1, &b.c1),
        }
    }

    /// `a - b`.
    pub fn sub(&self, a: &Fp2El, b: &Fp2El) -> Fp2El {
        Fp2El {
            c0: self.base.sub(&a.c0, &b.c0),
            c1: self.base.sub(&a.c1, &b.c1),
        }
    }

    /// `-a`.
    pub fn neg(&self, a: &Fp2El) -> Fp2El {
        Fp2El {
            c0: self.base.neg(&a.c0),
            c1: self.base.neg(&a.c1),
        }
    }

    /// `a · b` (schoolbook; Karatsuba in `F_p²` saves one base mul but the
    /// pairing loop is dominated by the 3 base muls either way).
    pub fn mul(&self, a: &Fp2El, b: &Fp2El) -> Fp2El {
        let f = &self.base;
        let t0 = f.mul(&a.c0, &b.c0);
        let t1 = f.mul(&a.c1, &b.c1);
        let c0 = f.sub(&t0, &t1);
        // (a0 + a1)(b0 + b1) - t0 - t1 = a0 b1 + a1 b0
        let s = f.mul(&f.add(&a.c0, &a.c1), &f.add(&b.c0, &b.c1));
        let c1 = f.sub(&f.sub(&s, &t0), &t1);
        Fp2El { c0, c1 }
    }

    /// `a²`.
    pub fn sqr(&self, a: &Fp2El) -> Fp2El {
        let f = &self.base;
        // (a0 + a1 i)² = (a0+a1)(a0-a1) + 2 a0 a1 i
        let c0 = f.mul(&f.add(&a.c0, &a.c1), &f.sub(&a.c0, &a.c1));
        let t = f.mul(&a.c0, &a.c1);
        let c1 = f.add(&t, &t);
        Fp2El { c0, c1 }
    }

    /// Conjugate `a0 - a1·i` (which equals the Frobenius `a^p`).
    pub fn conj(&self, a: &Fp2El) -> Fp2El {
        Fp2El {
            c0: a.c0.clone(),
            c1: self.base.neg(&a.c1),
        }
    }

    /// Norm `a0² + a1² ∈ F_p`.
    pub fn norm(&self, a: &Fp2El) -> Ubig {
        let f = &self.base;
        f.add(&f.sqr(&a.c0), &f.sqr(&a.c1))
    }

    /// `a^{-1}`, or `None` for zero.
    pub fn inv(&self, a: &Fp2El) -> Option<Fp2El> {
        if a.is_zero() {
            return None;
        }
        let f = &self.base;
        let n_inv = f.inv(&self.norm(a))?;
        Some(Fp2El {
            c0: f.mul(&a.c0, &n_inv),
            c1: f.mul(&f.neg(&a.c1), &n_inv),
        })
    }

    /// `a^e` by square-and-multiply.
    pub fn pow(&self, a: &Fp2El, e: &Ubig) -> Fp2El {
        if e.is_zero() {
            return Fp2El::one();
        }
        let mut acc = Fp2El::one();
        for i in (0..e.bit_length()).rev() {
            acc = self.sqr(&acc);
            if e.bit(i) {
                acc = self.mul(&acc, a);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_bigint::mod_pow;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    fn f23() -> Fp {
        Fp::new(Ubig::from_u64(23)) // 23 ≡ 3 (mod 4)
    }

    #[test]
    fn add_sub_neg_small() {
        let f = f23();
        let a = Ubig::from_u64(20);
        let b = Ubig::from_u64(7);
        assert_eq!(f.add(&a, &b), Ubig::from_u64(4));
        assert_eq!(f.sub(&b, &a), Ubig::from_u64(10));
        assert_eq!(f.neg(&b), Ubig::from_u64(16));
        assert_eq!(f.neg(&Ubig::zero()), Ubig::zero());
    }

    #[test]
    fn inv_times_self() {
        let f = f23();
        for a in 1..23u64 {
            let a = Ubig::from_u64(a);
            let inv = f.inv(&a).unwrap();
            assert_eq!(f.mul(&a, &inv), Ubig::one());
        }
        assert!(f.inv(&Ubig::zero()).is_none());
    }

    #[test]
    fn sqrt_of_squares() {
        let f = f23();
        for a in 0..23u64 {
            let a = Ubig::from_u64(a);
            let sq = f.sqr(&a);
            let r = f.sqrt(&sq).expect("square must have a root");
            assert_eq!(f.sqr(&r), sq);
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        let f = f23();
        // 5 is a non-residue mod 23.
        assert!(!f.is_qr(&Ubig::from_u64(5)));
        assert!(f.sqrt(&Ubig::from_u64(5)).is_none());
    }

    #[test]
    fn pow_matches_modpow() {
        let f = f23();
        let a = Ubig::from_u64(7);
        let e = Ubig::from_u64(13);
        assert_eq!(f.pow(&a, &e), mod_pow(&a, &e, f.modulus()));
    }

    #[test]
    fn fp2_mul_known() {
        // In F_23[i]: (2 + 3i)(4 + 5i) = 8 + 10i + 12i + 15i² = -7 + 22i = 16 + 22i
        let f2 = Fp2::new(f23());
        let a = Fp2El {
            c0: Ubig::from_u64(2),
            c1: Ubig::from_u64(3),
        };
        let b = Fp2El {
            c0: Ubig::from_u64(4),
            c1: Ubig::from_u64(5),
        };
        let c = f2.mul(&a, &b);
        assert_eq!(c.c0, Ubig::from_u64(16));
        assert_eq!(c.c1, Ubig::from_u64(22));
    }

    #[test]
    fn fp2_sqr_matches_mul() {
        let f2 = Fp2::new(f23());
        for c0 in 0..23u64 {
            let a = Fp2El {
                c0: Ubig::from_u64(c0),
                c1: Ubig::from_u64((c0 * 7 + 3) % 23),
            };
            assert_eq!(f2.sqr(&a), f2.mul(&a, &a));
        }
    }

    #[test]
    fn fp2_inv_times_self() {
        let f2 = Fp2::new(f23());
        let mut rng = ChaChaRng::seed_from_u64(9);
        for _ in 0..50 {
            let a = Fp2El {
                c0: f2.base().random(&mut rng),
                c1: f2.base().random(&mut rng),
            };
            if a.is_zero() {
                continue;
            }
            let inv = f2.inv(&a).unwrap();
            assert!(f2.mul(&a, &inv).is_one());
        }
    }

    #[test]
    fn fp2_conj_is_frobenius() {
        // a^p == conj(a) for p ≡ 3 (mod 4).
        let f2 = Fp2::new(f23());
        let a = Fp2El {
            c0: Ubig::from_u64(11),
            c1: Ubig::from_u64(17),
        };
        let frob = f2.pow(&a, &Ubig::from_u64(23));
        assert_eq!(frob, f2.conj(&a));
    }

    #[test]
    fn fp2_pow_group_order() {
        // The multiplicative group of F_p² has order p² - 1.
        let f2 = Fp2::new(f23());
        let a = Fp2El {
            c0: Ubig::from_u64(3),
            c1: Ubig::from_u64(1),
        };
        let order = Ubig::from_u64(23 * 23 - 1);
        assert!(f2.pow(&a, &order).is_one());
    }

    #[test]
    fn large_field_sqrt() {
        // 1024-bit-ish prime ≡ 3 mod 4: use a known 127-bit Mersenne 2^127-1 ≡ 3 mod 4?
        // 2^127 - 1 ≡ 3 (mod 4) since 2^127 ≡ 0 (mod 4).
        let p = Ubig::one().shl_bits(127).checked_sub(&Ubig::one()).unwrap();
        let f = Fp::new(p);
        let mut rng = ChaChaRng::seed_from_u64(1);
        for _ in 0..10 {
            let a = f.random(&mut rng);
            let sq = f.sqr(&a);
            let r = f.sqrt(&sq).unwrap();
            assert_eq!(f.sqr(&r), sq);
        }
    }
}
