//! Named curve parameter sets.
//!
//! * [`secp160r1`] — the "160-bit ECDSA" curve the paper prices in Tables
//!   1–3 (86-byte certificates, 320-bit signatures).
//! * [`secp192r1`] / [`secp256k1`] — larger standard curves used by tests
//!   and benches to show the substrate generalizes.
//! * [`tiny19`] — a 19-point toy curve for exhaustive unit tests.
//!
//! All constants are validated on construction ([`crate::curve::Curve::new`]
//! checks the generator is on-curve and has the claimed order) and were
//! additionally cross-checked against an independent implementation.

use egka_bigint::Ubig;

use crate::curve::{Curve, Point};
use crate::field::Fp;

fn h(s: &str) -> Ubig {
    Ubig::from_hex(s).expect("valid hex constant")
}

/// SEC 2 secp160r1: `p = 2^160 − 2^31 − 1`, `a = −3`.
///
/// This is the paper's ECDSA curve: 160-bit order gives the 2×160-bit
/// signature of Table 3, and the `a = −3` fast doubling path.
pub fn secp160r1() -> Curve {
    let p = h("ffffffffffffffffffffffffffffffff7fffffff");
    let a = p.checked_sub(&Ubig::from_u64(3)).unwrap();
    Curve::new(
        "secp160r1",
        Fp::new(p),
        a,
        h("1c97befc54bd7a8b65acf89f81d4d4adc565fa45"),
        h("0100000000000000000001f4c8f927aed3ca752257"),
        Ubig::one(),
        Point::affine(
            h("4a96b5688ef573284664698968c38bb913cbfc82"),
            h("23a628553168947d59dcc912042351377ac5fb32"),
        ),
    )
}

/// SEC 2 secp192r1 (NIST P-192): `p = 2^192 − 2^64 − 1`, `a = −3`.
pub fn secp192r1() -> Curve {
    let p = h("fffffffffffffffffffffffffffffffeffffffffffffffff");
    let a = p.checked_sub(&Ubig::from_u64(3)).unwrap();
    Curve::new(
        "secp192r1",
        Fp::new(p),
        a,
        h("64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1"),
        h("ffffffffffffffffffffffff99def836146bc9b1b4d22831"),
        Ubig::one(),
        Point::affine(
            h("188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012"),
            h("07192b95ffc8da78631011ed6b24cdd573f977a11e794811"),
        ),
    )
}

/// SEC 2 secp256k1: `p = 2^256 − 2^32 − 977`, `y² = x³ + 7`.
pub fn secp256k1() -> Curve {
    Curve::new(
        "secp256k1",
        Fp::new(h(
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
        )),
        Ubig::zero(),
        Ubig::from_u64(7),
        h("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"),
        Ubig::one(),
        Point::affine(
            h("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"),
            h("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"),
        ),
    )
}

/// Toy curve `y² = x³ + x + 1` over `F_19` (21 points, generator `(0, 1)`).
///
/// Exhaustive group-law tests live on this curve; it is also handy for
/// property tests that would be slow on real curves.
pub fn tiny19() -> Curve {
    Curve::new(
        "tiny19",
        Fp::new(Ubig::from_u64(19)),
        Ubig::from_u64(1),
        Ubig::from_u64(1),
        Ubig::from_u64(21),
        Ubig::from_u64(1),
        Point::affine(Ubig::from_u64(0), Ubig::from_u64(1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    /// Construction itself validates on-curve + order; exercise it for all.
    #[test]
    fn named_curves_construct() {
        for c in [secp160r1(), secp192r1(), secp256k1(), tiny19()] {
            assert!(c.is_on_curve(c.generator()));
        }
    }

    #[test]
    fn secp160r1_scalar_mul_roundtrip() {
        let c = secp160r1();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let k = c.random_scalar(&mut rng);
        let p = c.mul_gen(&k);
        assert!(c.is_on_curve(&p));
        // (order − k)·G = −(k·G)
        let k_neg = c.order().checked_sub(&k).unwrap();
        assert_eq!(c.mul_gen(&k_neg), c.neg(&p));
    }

    #[test]
    fn secp160r1_distributivity() {
        let c = secp160r1();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let a = c.random_scalar(&mut rng);
        let b = c.random_scalar(&mut rng);
        let sum = egka_bigint::mod_add(&a, &b, c.order());
        let lhs = c.mul_gen(&sum);
        let rhs = c.add(&c.mul_gen(&a), &c.mul_gen(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn compress_roundtrip_all_curves() {
        let mut rng = ChaChaRng::seed_from_u64(7);
        for c in [secp160r1(), secp192r1(), secp256k1()] {
            let p = c.mul_gen(&c.random_scalar(&mut rng));
            let bytes = c.compress(&p);
            assert_eq!(bytes.len(), 1 + c.field().byte_len());
            assert_eq!(c.decompress(&bytes).as_ref(), Some(&p), "{}", c.name);
        }
    }

    #[test]
    fn p192_known_multiple() {
        // 2G computed two ways.
        let c = secp192r1();
        let two_g = c.double(c.generator());
        assert_eq!(c.mul_gen(&Ubig::from_u64(2)), two_g);
        assert!(c.is_on_curve(&two_g));
    }
}
