//! The epoch coordinator's blame-signing key.
//!
//! The robustness plane (`egka-robust`) evicts stall culprits and appends
//! a signed blame certificate to the WAL. Recovery must reproduce those
//! certificates **bit for bit** when it re-derives the evictions from the
//! replayed ledger, so the coordinator signs with ECDSA made fully
//! deterministic: the key pair derives from the service seed, and every
//! signature's nonce RNG is seeded from the key seed plus the message
//! digest (the RFC 6979 idea, realized over the workspace's own ChaCha
//! RNG rather than the RFC's HMAC construction).

use egka_ec::Point;
use egka_hash::{ChaChaRng, Digest, Sha256};
use rand::SeedableRng;

use crate::ecdsa::{Ecdsa, EcdsaKeyPair, EcdsaSignature};

/// Domain separation for the key-derivation RNG.
const KEYGEN_SALT: u64 = 0xb1a_e0c0_de5e_ed00;
/// Domain separation for the per-message nonce RNG.
const NONCE_SALT: u64 = 0xb1a_e0c0_de40_4ce0;

/// The coordinator's deterministic ECDSA signing key (secp160r1, the
/// paper's curve profile).
#[derive(Clone, Debug)]
pub struct CoordinatorKey {
    ecdsa: Ecdsa,
    key: EcdsaKeyPair,
    seed: u64,
}

impl CoordinatorKey {
    /// Derives the key pair from `seed` — the same seed always yields the
    /// same key, so a recovered controller signs identically.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = ChaChaRng::seed_from_u64(seed ^ KEYGEN_SALT);
        let ecdsa = Ecdsa::new(egka_ec::secp160r1());
        let key = ecdsa.keygen(&mut rng);
        CoordinatorKey { ecdsa, key, seed }
    }

    /// The verification half: hand this to anyone auditing blame
    /// certificates.
    pub fn public(&self) -> BlamePublic {
        BlamePublic {
            ecdsa: self.ecdsa.clone(),
            q: self.key.q.clone(),
        }
    }

    /// Signs `msg` deterministically: equal (seed, msg) pairs produce
    /// bit-identical signatures.
    pub fn sign(&self, msg: &[u8]) -> EcdsaSignature {
        let digest = Sha256::digest(msg);
        let mut k = self.seed ^ NONCE_SALT;
        for chunk in digest.chunks_exact(8) {
            k ^= u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
            k = k.rotate_left(13);
        }
        let mut rng = ChaChaRng::seed_from_u64(k);
        self.ecdsa.sign(&mut rng, &self.key, msg)
    }
}

/// The coordinator's public verification key.
#[derive(Clone, Debug)]
pub struct BlamePublic {
    ecdsa: Ecdsa,
    q: Point,
}

impl BlamePublic {
    /// Verifies a coordinator signature on `msg`.
    pub fn verify(&self, msg: &[u8], sig: &EcdsaSignature) -> bool {
        self.ecdsa.verify(&self.q, msg, sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signing_is_deterministic_per_seed_and_message() {
        let a = CoordinatorKey::from_seed(7);
        let b = CoordinatorKey::from_seed(7);
        let sig_a = a.sign(b"evict u3");
        let sig_b = b.sign(b"evict u3");
        assert_eq!(sig_a, sig_b, "same seed + message must re-sign identically");
        assert!(a.public().verify(b"evict u3", &sig_b));
        // Different messages (and different seeds) change the signature.
        assert_ne!(a.sign(b"evict u4"), sig_a);
        assert_ne!(CoordinatorKey::from_seed(8).sign(b"evict u3"), sig_a);
    }

    #[test]
    fn verification_rejects_forgeries() {
        let key = CoordinatorKey::from_seed(1);
        let other = CoordinatorKey::from_seed(2);
        let sig = key.sign(b"msg");
        assert!(!key.public().verify(b"tampered", &sig));
        assert!(!other.public().verify(b"msg", &sig));
    }
}
