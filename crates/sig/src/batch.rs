//! Seeded random-linear-combination (RLC) batch verification.
//!
//! A coordinator rekey verifies one signature per member — dozens of
//! independent `(key, message, signature)` triples under the same scheme.
//! This module verifies such an *epoch batch* faster than a loop of
//! individual verifications, without weakening soundness:
//!
//! * **ECDSA** ([`ecdsa_batch_verify`]) — the classic small-exponent test.
//!   Each verification equation `u1_i·G + u2_i·Q_i = R_i` is scaled by a
//!   random 64-bit coefficient `a_i` and the equations are summed, so one
//!   multi-scalar multiplication (plus a fixed-base comb evaluation for the
//!   aggregated generator term) replaces the per-item double-scalar
//!   multiplications. ECDSA transmits only `r_i = x(R_i) mod n`, so `R_i`
//!   is recovered by decompressing `r_i` and the unknown `y` parities are
//!   resolved with a Gray-code walk over sign vectors — which is why the
//!   batch works on small chunks ([`ECDSA_CHUNK`]) rather than the whole
//!   epoch at once.
//! * **DSA** ([`dsa_batch_verify`]) — **no RLC exists** for unmodified DSA:
//!   the verifier checks `r_i = (g^{u1_i} y_i^{u2_i} mod p) mod q`, and the
//!   outer `mod q` is not a group homomorphism, so per-equation scaling
//!   does not distribute over a product of the `r_i`. (Known DSA batch
//!   schemes require the signer to transmit the full `g^{k}` value.) The
//!   batch entry point instead amortizes shared state — one interned
//!   Montgomery context and one fixed-base comb for `g` across the whole
//!   batch — and reports the first failing index like its siblings.
//! * **GQ** ([`gq_batch_verify_split`]) — RLC over the *split* (shared
//!   challenge) form used by the GKA protocols: each member's response
//!   satisfies `s_i^e = t_i · h_i^c (mod n)`, a genuine multiplicative
//!   relation, so scaled equations multiply into
//!   `(∏ s_i^{a_i})^e = ∏ t_i^{a_i} · (∏ h_i^{a_i})^c` — three full-size
//!   exponentiations plus short 64-bit multi-exponentiations, regardless
//!   of batch size. The independent-signature form (`GqSignature`, which
//!   checks a *hash equality* `c = H(t, m)`) cannot be combined this way;
//!   the paper's own aggregate check (eq. (2), [`crate::gq`]) stays as-is.
//!
//! **Coefficient seeding.** The RLC coefficients must be unpredictable to
//! whoever chose the signatures, and must *not* consume protocol RNG (node
//! RNG draw order is golden-pinned by the simulator). They are therefore
//! derived Fiat–Shamir-style: a seed is hashed from the full batch
//! transcript (all keys, messages and signature components), and `a_i`
//! expands from `(seed, i)`. Flipping any bit of any input reshuffles every
//! coefficient.
//!
//! **Attribution.** All entry points return `Result<(), usize>` with the
//! lowest failing index. A failed RLC check falls back to individual
//! verification (ECDSA) or bisection over sub-batches (GQ) to find the
//! culprit — and since a batch of valid signatures satisfies the combined
//! equation *identically* (not just with high probability), the fallback
//! also absorbs the rare false rejection (e.g. an `R_i` that decompresses
//! to the wrong curve twist) without ever rejecting a valid batch.

use egka_bigint::{mod_inverse, mod_mul, mod_pow, mont_ctx, MontForm, Montgomery, Ubig};
use egka_ec::Point;
use egka_hash::mgf1;

use crate::dsa::{Dsa, DsaSignature};
use crate::ecdsa::{Ecdsa, EcdsaSignature};
use crate::gq::GqParams;

/// ECDSA chunk width: sign recovery enumerates `2^ECDSA_CHUNK` sign
/// vectors per chunk (Gray-coded, one point addition each), so this stays
/// small.
pub const ECDSA_CHUNK: usize = 4;

const ECDSA_TAG: &[u8] = b"egka.batch.ecdsa.v1";
const GQ_TAG: &[u8] = b"egka.batch.gq.v1";

/// One ECDSA triple in an epoch batch.
#[derive(Clone, Copy, Debug)]
pub struct EcdsaBatchItem<'a> {
    /// Signer public key.
    pub q: &'a Point,
    /// Signed message.
    pub msg: &'a [u8],
    /// The signature.
    pub sig: &'a EcdsaSignature,
}

/// One DSA triple in an epoch batch.
#[derive(Clone, Copy, Debug)]
pub struct DsaBatchItem<'a> {
    /// Signer public key `y = g^x`.
    pub y: &'a Ubig,
    /// Signed message.
    pub msg: &'a [u8],
    /// The signature.
    pub sig: &'a DsaSignature,
}

/// One member's split-form GQ values (shared challenge `c`).
#[derive(Clone, Copy, Debug)]
pub struct GqSplitItem<'a> {
    /// Member identity (hashed to `h_i` via [`GqParams::hash_id`]).
    pub id: &'a [u8],
    /// Round-1 commitment `t_i = τ_i^e`.
    pub t: &'a Ubig,
    /// Round-2 response `s_i = τ_i · S_IDᵢ^c`.
    pub s: &'a Ubig,
}

/// Expands `(seed, i)` to a nonzero 64-bit RLC coefficient.
fn coefficient(tag: &[u8], seed: &[u8], i: usize) -> u64 {
    let mut input = Vec::with_capacity(seed.len() + 8);
    input.extend_from_slice(seed);
    input.extend_from_slice(&(i as u64).to_be_bytes());
    let bytes = mgf1(tag, &input, 8);
    u64::from_be_bytes(bytes.try_into().expect("mgf1 returns 8 bytes")) | 1
}

/// Appends a length-prefixed field to a transcript.
fn push_field(transcript: &mut Vec<u8>, bytes: &[u8]) {
    transcript.extend_from_slice(&(bytes.len() as u64).to_be_bytes());
    transcript.extend_from_slice(bytes);
}

// ---------------------------------------------------------------- ECDSA

/// Batch-verifies ECDSA signatures; `Err(i)` is the lowest failing index.
///
/// Accepts exactly the set of batches whose every item passes
/// [`Ecdsa::verify`]: the RLC path is an accelerator, and any chunk it
/// cannot certify (combined equation fails for every sign vector, or an
/// `r_i` that does not decompress) is re-checked item by item.
pub fn ecdsa_batch_verify(scheme: &Ecdsa, items: &[EcdsaBatchItem<'_>]) -> Result<(), usize> {
    let seed = ecdsa_seed(scheme, items);
    for (chunk_idx, chunk) in items.chunks(ECDSA_CHUNK).enumerate() {
        let base = chunk_idx * ECDSA_CHUNK;
        if chunk.len() >= 2 && ecdsa_chunk_holds(scheme, chunk, base, &seed) {
            continue;
        }
        // Single-item chunk, or the RLC check failed: attribute (and
        // rescue any false rejection) by individual verification.
        for (j, it) in chunk.iter().enumerate() {
            if !scheme.verify(it.q, it.msg, it.sig) {
                return Err(base + j);
            }
        }
    }
    Ok(())
}

/// Hashes the whole batch transcript into a coefficient seed.
fn ecdsa_seed(scheme: &Ecdsa, items: &[EcdsaBatchItem<'_>]) -> Vec<u8> {
    let curve = scheme.curve();
    let mut transcript = Vec::new();
    for it in items {
        push_field(&mut transcript, &curve.compress(it.q));
        push_field(&mut transcript, it.msg);
        push_field(&mut transcript, &it.sig.r.to_bytes_be());
        push_field(&mut transcript, &it.sig.s.to_bytes_be());
    }
    mgf1(ECDSA_TAG, &transcript, 32)
}

/// Runs the RLC check on one chunk; `true` certifies every item in it.
fn ecdsa_chunk_holds(
    scheme: &Ecdsa,
    chunk: &[EcdsaBatchItem<'_>],
    base: usize,
    seed: &[u8],
) -> bool {
    let curve = scheme.curve();
    let n = curve.order();
    let f = curve.field();
    if !f.is_3_mod_4() {
        return false; // no fast sqrt → cannot recover R; fall back
    }

    // Per-item scalars and recovered commitment points.
    let mut sg = Ubig::zero(); // Σ a_i·u1_i mod n, aggregated generator scalar
    let mut u2s = Vec::with_capacity(chunk.len()); // a_i·u2_i mod n
    let mut coeffs = Vec::with_capacity(chunk.len()); // a_i as Ubig
    let mut r_pts = Vec::with_capacity(chunk.len()); // R_i candidates
    let mut neg_r_pts = Vec::with_capacity(chunk.len());
    for (j, it) in chunk.iter().enumerate() {
        if it.sig.r.is_zero() || &it.sig.r >= n || it.sig.s.is_zero() || &it.sig.s >= n {
            return false;
        }
        if it.q.is_infinity() || !curve.is_on_curve(it.q) {
            return false;
        }
        let Some(w) = mod_inverse(&it.sig.s, n) else {
            return false;
        };
        // Recover R_i from its x-coordinate r_i. (If n < p the true
        // x-coordinate could also be r_i + n; that rare case surfaces as
        // a chunk failure and is rescued by the individual fallback.)
        if &it.sig.r >= f.modulus() {
            return false;
        }
        let rhs = f.add(
            &f.mul(&f.add(&f.sqr(&it.sig.r), curve.a()), &it.sig.r),
            curve.b(),
        );
        let Some(y) = f.sqrt(&rhs) else {
            return false;
        };
        let r_pt = Point::affine(it.sig.r.clone(), y);
        let a_i = Ubig::from_u64(coefficient(ECDSA_TAG, seed, base + j));
        let h = scheme.hash_msg(it.msg);
        let u1 = mod_mul(&h, &w, n);
        let u2 = mod_mul(&it.sig.r, &w, n);
        sg = (sg.add_ref(&mod_mul(&a_i, &u1, n))).rem_ref(n);
        u2s.push(mod_mul(&a_i, &u2, n));
        neg_r_pts.push(curve.neg(&r_pt));
        r_pts.push(r_pt);
        coeffs.push(a_i);
    }

    // U(ε = all +1) = (Σ a_i u1_i)·G + Σ a_i u2_i·Q_i − Σ a_i·R_i.
    let mut terms: Vec<(&Ubig, &Point)> = Vec::with_capacity(2 * chunk.len());
    for (j, it) in chunk.iter().enumerate() {
        terms.push((&u2s[j], it.q));
        terms.push((&coeffs[j], &neg_r_pts[j]));
    }
    let mut u = curve.add(&curve.mul_gen(&sg), &curve.mul_multi(&terms));
    if u.is_infinity() {
        return true;
    }

    // Gray-code walk over the remaining 2^k − 1 sign vectors: each step
    // flips one ε_j, shifting U by ±2a_j·R_j (points built lazily —
    // low-index flips happen exponentially more often).
    let mut minus = vec![false; chunk.len()];
    let mut steps: Vec<Option<(Point, Point)>> = vec![None; chunk.len()];
    for step in 1usize..(1 << chunk.len()) {
        let j = step.trailing_zeros() as usize;
        let (e_j, neg_e_j) = steps[j].get_or_insert_with(|| {
            let two_a = Ubig::from_u64(2).mul_ref(&coeffs[j]);
            let e = curve.mul(&two_a, &r_pts[j]);
            let neg_e = curve.neg(&e);
            (e, neg_e)
        });
        minus[j] = !minus[j];
        u = curve.add(&u, if minus[j] { e_j } else { neg_e_j });
        if u.is_infinity() {
            return true;
        }
    }
    false
}

// ------------------------------------------------------------------ DSA

/// Verifies a DSA epoch batch; `Err(i)` is the lowest failing index.
///
/// See the module docs for why DSA admits no random-linear-combination:
/// this entry point amortizes the shared Montgomery context and the
/// fixed-base comb for `g` (both interned in `egka-bigint`) across the
/// batch, which is where the per-item savings actually come from.
pub fn dsa_batch_verify(scheme: &Dsa, items: &[DsaBatchItem<'_>]) -> Result<(), usize> {
    for (i, it) in items.iter().enumerate() {
        if !scheme.verify(it.y, it.msg, it.sig) {
            return Err(i);
        }
    }
    Ok(())
}

// ------------------------------------------------------------------- GQ

/// Batch-verifies split-form GQ responses under the shared challenge `c`;
/// `Err(i)` is the lowest failing index.
///
/// Checks `(∏ s_i^{a_i})^e == ∏ t_i^{a_i} · (∏ h_i^{a_i})^c (mod n)` —
/// valid batches satisfy this identically, so acceptance is exact; a
/// forged response survives only if its coefficient draw lands in a
/// ≈2⁻⁶³ bad set. On failure the culprit is located by bisection
/// (`O(log n)` sub-batch checks) rather than a full individual sweep.
pub fn gq_batch_verify_split(
    params: &GqParams,
    c: &Ubig,
    items: &[GqSplitItem<'_>],
) -> Result<(), usize> {
    // Malformed values fail fast with exact attribution.
    for (i, it) in items.iter().enumerate() {
        if it.s.is_zero() || it.s >= &params.n || it.t.is_zero() || it.t >= &params.n {
            return Err(i);
        }
    }
    if items.is_empty() {
        return Ok(());
    }
    let hs: Vec<Ubig> = items.iter().map(|it| params.hash_id(it.id)).collect();

    let mut transcript = Vec::new();
    push_field(&mut transcript, &c.to_bytes_be());
    for (it, h) in items.iter().zip(&hs) {
        push_field(&mut transcript, &it.t.to_bytes_be());
        push_field(&mut transcript, &it.s.to_bytes_be());
        push_field(&mut transcript, &h.to_bytes_be());
    }
    let seed = mgf1(GQ_TAG, &transcript, 32);
    let coeffs: Vec<u64> = (0..items.len())
        .map(|i| coefficient(GQ_TAG, &seed, i))
        .collect();

    let ctx = mont_ctx(&params.n);
    if gq_range_holds(params, &ctx, c, items, &hs, &coeffs, 0, items.len()) {
        return Ok(());
    }
    match gq_bisect(params, &ctx, c, items, &hs, &coeffs, 0, items.len()) {
        Some(i) => Err(i),
        // The combined equation failed but bisection lost the culprit to a
        // coefficient collision (≈2⁻⁶³): settle it with a linear sweep.
        None => match items
            .iter()
            .zip(&hs)
            .position(|(it, h)| !gq_single_holds(params, c, it, h))
        {
            Some(i) => Err(i),
            None => Ok(()),
        },
    }
}

/// RLC check over `items[lo..hi]`.
#[allow(clippy::too_many_arguments)]
fn gq_range_holds(
    params: &GqParams,
    ctx: &Montgomery,
    c: &Ubig,
    items: &[GqSplitItem<'_>],
    hs: &[Ubig],
    coeffs: &[u64],
    lo: usize,
    hi: usize,
) -> bool {
    let s_prod = multi_pow_64(ctx, (lo..hi).map(|i| (items[i].s, coeffs[i])));
    let t_prod = multi_pow_64(ctx, (lo..hi).map(|i| (items[i].t, coeffs[i])));
    let h_prod = multi_pow_64(ctx, (lo..hi).map(|i| (&hs[i], coeffs[i])));
    let lhs = ctx.pow(&s_prod, &params.e);
    let rhs = mod_mul(&t_prod, &ctx.pow(&h_prod, c), &params.n);
    lhs == rhs
}

/// Locates a failing index inside a range known to fail the RLC check.
#[allow(clippy::too_many_arguments)]
fn gq_bisect(
    params: &GqParams,
    ctx: &Montgomery,
    c: &Ubig,
    items: &[GqSplitItem<'_>],
    hs: &[Ubig],
    coeffs: &[u64],
    lo: usize,
    hi: usize,
) -> Option<usize> {
    if hi - lo == 1 {
        return (!gq_single_holds(params, c, &items[lo], &hs[lo])).then_some(lo);
    }
    let mid = lo + (hi - lo) / 2;
    // A failing range has a failing half (the full product splits into the
    // two half-products), so recurse only into halves that fail.
    if !gq_range_holds(params, ctx, c, items, hs, coeffs, lo, mid) {
        if let Some(i) = gq_bisect(params, ctx, c, items, hs, coeffs, lo, mid) {
            return Some(i);
        }
    }
    if !gq_range_holds(params, ctx, c, items, hs, coeffs, mid, hi) {
        if let Some(i) = gq_bisect(params, ctx, c, items, hs, coeffs, mid, hi) {
            return Some(i);
        }
    }
    None
}

/// The split-form check for one member: `s^e == t · h^c (mod n)`.
fn gq_single_holds(params: &GqParams, c: &Ubig, item: &GqSplitItem<'_>, h: &Ubig) -> bool {
    let lhs = mod_pow(item.s, &params.e, &params.n);
    let rhs = mod_mul(item.t, &mod_pow(h, c, &params.n), &params.n);
    lhs == rhs
}

/// `∏ base_i^{e_i} mod n` for 64-bit exponents via one shared
/// square-and-multiply chain: 64 squarings total plus ~32 multiplies per
/// term, instead of a full chain per term.
fn multi_pow_64<'a>(ctx: &Montgomery, pairs: impl Iterator<Item = (&'a Ubig, u64)>) -> Ubig {
    let ms: Vec<(MontForm, u64)> = pairs
        .map(|(b, e)| (ctx.to_mont(&b.rem_ref(ctx.modulus())), e))
        .collect();
    let mut acc = ctx.one();
    for bit in (0..64u32).rev() {
        acc = ctx.sqr(&acc);
        for (m, e) in &ms {
            if (e >> bit) & 1 == 1 {
                acc = ctx.mul(&acc, m);
            }
        }
    }
    ctx.from_mont(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gq::GqPkg;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    // ------------------------------------------------------------ ECDSA

    fn ecdsa_batch(n: usize, rng_seed: u64) -> (Ecdsa, Vec<(Point, Vec<u8>, EcdsaSignature)>) {
        let scheme = Ecdsa::new(egka_ec::secp160r1());
        let mut rng = ChaChaRng::seed_from_u64(rng_seed);
        let triples = (0..n)
            .map(|i| {
                let kp = scheme.keygen(&mut rng);
                let msg = format!("epoch rekey share {i}").into_bytes();
                let sig = scheme.sign(&mut rng, &kp, &msg);
                (kp.q, msg, sig)
            })
            .collect();
        (scheme, triples)
    }

    fn as_items(triples: &[(Point, Vec<u8>, EcdsaSignature)]) -> Vec<EcdsaBatchItem<'_>> {
        triples
            .iter()
            .map(|(q, msg, sig)| EcdsaBatchItem { q, msg, sig })
            .collect()
    }

    #[test]
    fn ecdsa_accepts_valid_batches_of_all_sizes() {
        for n in [0usize, 1, 2, 3, 4, 5, 9] {
            let (scheme, triples) = ecdsa_batch(n, 0xb47c + n as u64);
            assert_eq!(
                ecdsa_batch_verify(&scheme, &as_items(&triples)),
                Ok(()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ecdsa_attributes_each_forged_position() {
        let n = 6;
        for bad in 0..n {
            let (scheme, mut triples) = ecdsa_batch(n, 0xf0f0);
            triples[bad].2.s = triples[bad]
                .2
                .s
                .add_ref(&Ubig::one())
                .rem_ref(scheme.curve().order());
            let got = ecdsa_batch_verify(&scheme, &as_items(&triples));
            // s+1 could be 0 (rejected) or a wrong-but-in-range scalar;
            // either way the forged index is the one reported.
            assert_eq!(got, Err(bad), "forged position {bad}");
        }
    }

    #[test]
    fn ecdsa_reports_lowest_of_several_forgeries() {
        let (scheme, mut triples) = ecdsa_batch(8, 0xdead);
        for bad in [2usize, 5, 6] {
            triples[bad].2.r = triples[bad]
                .2
                .r
                .add_ref(&Ubig::one())
                .rem_ref(scheme.curve().order());
        }
        assert_eq!(ecdsa_batch_verify(&scheme, &as_items(&triples)), Err(2));
    }

    #[test]
    fn ecdsa_rejects_swapped_messages() {
        let (scheme, mut triples) = ecdsa_batch(4, 0xcafe);
        let m = triples[1].1.clone();
        triples[1].1 = triples[2].1.clone();
        triples[2].1 = m;
        let got = ecdsa_batch_verify(&scheme, &as_items(&triples));
        assert_eq!(got, Err(1));
    }

    #[test]
    fn ecdsa_batch_agrees_with_individual_on_random_corruption() {
        // The batch accepts iff every individual verification accepts.
        for seed in 0..8u64 {
            let (scheme, mut triples) = ecdsa_batch(5, 0x5eed + seed);
            if seed % 2 == 0 {
                let i = (seed as usize / 2) % triples.len();
                triples[i].2.r = Ubig::from_u64(12345 + seed);
            }
            let items = as_items(&triples);
            let individual = items
                .iter()
                .position(|it| !scheme.verify(it.q, it.msg, it.sig));
            let batch = ecdsa_batch_verify(&scheme, &items);
            assert_eq!(batch.err(), individual, "seed {seed}");
        }
    }

    // -------------------------------------------------------------- DSA

    #[test]
    fn dsa_batch_accepts_valid_and_attributes_forgery() {
        let mut rng = ChaChaRng::seed_from_u64(0xd5a);
        let group = egka_bigint::gen_schnorr_group(&mut rng, 256, 96);
        let scheme = Dsa::new(group);
        let triples: Vec<(Ubig, Vec<u8>, DsaSignature)> = (0..4)
            .map(|i| {
                let kp = scheme.keygen(&mut rng);
                let msg = format!("share {i}").into_bytes();
                let sig = scheme.sign(&mut rng, &kp, &msg);
                (kp.y, msg, sig)
            })
            .collect();
        let items: Vec<DsaBatchItem<'_>> = triples
            .iter()
            .map(|(y, msg, sig)| DsaBatchItem { y, msg, sig })
            .collect();
        assert_eq!(dsa_batch_verify(&scheme, &items), Ok(()));

        let mut forged = triples.clone();
        forged[2].2.s = forged[2].2.s.add_ref(&Ubig::one());
        let items: Vec<DsaBatchItem<'_>> = forged
            .iter()
            .map(|(y, msg, sig)| DsaBatchItem { y, msg, sig })
            .collect();
        assert_eq!(dsa_batch_verify(&scheme, &items), Err(2));
    }

    // --------------------------------------------------------------- GQ

    struct GqFixture {
        pkg: GqPkg,
        c: Ubig,
        values: Vec<(Vec<u8>, Ubig, Ubig)>, // (id, t, s)
    }

    fn gq_fixture(n: usize, seed: u64) -> GqFixture {
        let mut rng = ChaChaRng::seed_from_u64(seed);
        let pkg = GqPkg::setup_with_e_bits(&mut rng, 128, 41);
        let p = &pkg.params;
        let ids: Vec<Vec<u8>> = (0..n).map(|i| format!("member-{i}").into_bytes()).collect();
        let keys: Vec<_> = ids.iter().map(|id| pkg.extract(id)).collect();
        let commits: Vec<(Ubig, Ubig)> = (0..n).map(|_| p.commit(&mut rng)).collect();
        let t_agg =
            p.aggregate_commitments(&commits.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>());
        let c = p.shared_challenge(&t_agg, b"epoch binding");
        let values = (0..n)
            .map(|i| {
                let s = p.respond(&keys[i], &commits[i].0, &c);
                (ids[i].clone(), commits[i].1.clone(), s)
            })
            .collect();
        GqFixture { pkg, c, values }
    }

    fn gq_items(fx: &GqFixture) -> Vec<GqSplitItem<'_>> {
        fx.values
            .iter()
            .map(|(id, t, s)| GqSplitItem { id, t, s })
            .collect()
    }

    #[test]
    fn gq_accepts_valid_batches_of_all_sizes() {
        for n in [1usize, 2, 3, 7] {
            let fx = gq_fixture(n, 0x60 + n as u64);
            assert_eq!(
                gq_batch_verify_split(&fx.pkg.params, &fx.c, &gq_items(&fx)),
                Ok(()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn gq_attributes_each_forged_position() {
        let n = 5;
        for bad in 0..n {
            let mut fx = gq_fixture(n, 0x6abc);
            fx.values[bad].2 = mod_mul(&fx.values[bad].2, &Ubig::from_u64(7), &fx.pkg.params.n);
            assert_eq!(
                gq_batch_verify_split(&fx.pkg.params, &fx.c, &gq_items(&fx)),
                Err(bad),
                "forged position {bad}"
            );
        }
    }

    #[test]
    fn gq_reports_lowest_of_several_forgeries() {
        let mut fx = gq_fixture(6, 0x6def);
        for bad in [1usize, 4] {
            fx.values[bad].1 = mod_mul(&fx.values[bad].1, &Ubig::from_u64(3), &fx.pkg.params.n);
        }
        assert_eq!(
            gq_batch_verify_split(&fx.pkg.params, &fx.c, &gq_items(&fx)),
            Err(1)
        );
    }

    #[test]
    fn gq_rejects_out_of_range_values() {
        let mut fx = gq_fixture(3, 0x6066);
        fx.values[1].2 = Ubig::zero();
        assert_eq!(
            gq_batch_verify_split(&fx.pkg.params, &fx.c, &gq_items(&fx)),
            Err(1)
        );
    }

    #[test]
    fn gq_batch_agrees_with_single_checks() {
        // Batch accepts iff every member passes the split-form check.
        let fx = gq_fixture(4, 0x6aaa);
        let p = &fx.pkg.params;
        let items = gq_items(&fx);
        for (id, t, s) in &fx.values {
            let h = p.hash_id(id);
            assert!(gq_single_holds(p, &fx.c, &GqSplitItem { id, t, s }, &h));
        }
        assert_eq!(gq_batch_verify_split(p, &fx.c, &items), Ok(()));
    }
}
