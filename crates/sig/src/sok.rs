//! The Sakai–Ohgishi–Kasahara (SOK) ID-based signature — the paper's
//! pairing-based baseline ("BD with SOK", Tables 1–3).
//!
//! ```text
//! Setup:   master s ∈ Z_q*, P_pub = s·G
//! Extract: Q_ID = MapToPoint(ID), S_ID = s·Q_ID
//! Sign:    r ∈R Z_q*, Q_M = MapToPoint(M),
//!          S1 = S_ID + r·Q_M,  S2 = r·G          → σ = (S1, S2)
//! Verify:  ê(S1, G) == ê(Q_ID, P_pub) · ê(Q_M, S2)
//! ```
//!
//! Correctness: `ê(S1, G) = ê(s·Q_ID + r·Q_M, G)
//! = ê(Q_ID, G)^s · ê(Q_M, G)^r = ê(Q_ID, P_pub) · ê(Q_M, S2)`.
//!
//! The cost profile is exactly Table 2's SOK rows: signing is 2 scalar
//! multiplications (17.6 mJ = 2 × 8.8), verifying is 3 Tate pairings
//! (133.2 ms P3-450 = 3 × 44.4), and every verification of a *new* identity
//! or message needs a MapToPoint. Signatures are two compressed points
//! ("194-bit SOK" sizing in Table 3, note 2).

use std::sync::{Arc, OnceLock};

use egka_bigint::Ubig;
use egka_ec::{MillerPrecomp, PairingGroup, Point};
use rand::Rng;

/// Public parameters of a SOK instance.
#[derive(Clone, Debug)]
pub struct SokParams {
    group: PairingGroup,
    /// Master public key `P_pub = s·G`.
    pub p_pub: Point,
    /// Lazily built Miller precomputation for `G` (clone-shared): the
    /// verification pairings `ê(S1, G)` and `ê(Q_ID, P_pub)` both fix one
    /// argument, so their line coefficients are cached across signatures.
    gen_pre: Arc<OnceLock<MillerPrecomp>>,
    /// Same for `P_pub`.
    pub_pre: Arc<OnceLock<MillerPrecomp>>,
}

/// The PKG for SOK key extraction.
#[derive(Clone, Debug)]
pub struct SokPkg {
    /// Public parameters.
    pub params: SokParams,
    master: Ubig,
}

/// A user's extracted ID key `S_ID = s·Q_ID`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SokSecretKey {
    /// The identity the key was extracted for.
    pub id: Vec<u8>,
    /// `s·MapToPoint(ID)`.
    pub s_id: Point,
}

/// A SOK signature `σ = (S1, S2)` — two curve points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SokSignature {
    /// `S_ID + r·Q_M`.
    pub s1: Point,
    /// `r·G`.
    pub s2: Point,
}

impl SokPkg {
    /// Runs Setup over `group` with a fresh master key.
    pub fn setup<R: Rng + ?Sized>(rng: &mut R, group: PairingGroup) -> Self {
        let master = group.curve().random_scalar(rng);
        let gen = group.curve().generator().clone();
        let p_pub = group.curve().mul(&master, &gen);
        SokPkg {
            params: SokParams {
                group,
                p_pub,
                gen_pre: Arc::new(OnceLock::new()),
                pub_pre: Arc::new(OnceLock::new()),
            },
            master,
        }
    }

    /// Extracts `S_ID = s·MapToPoint(ID)`.
    pub fn extract(&self, id: &[u8]) -> SokSecretKey {
        let q_id = self.params.group.map_to_point(id);
        SokSecretKey {
            id: id.to_vec(),
            s_id: self.params.group.curve().mul(&self.master, &q_id),
        }
    }
}

impl SokParams {
    /// The pairing group.
    pub fn group(&self) -> &PairingGroup {
        &self.group
    }

    /// Signs `msg` under `key`: 2 scalar multiplications + 1 MapToPoint.
    pub fn sign<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        key: &SokSecretKey,
        msg: &[u8],
    ) -> SokSignature {
        let curve = self.group.curve();
        let r = curve.random_scalar(rng);
        let q_m = self.group.map_to_point(msg);
        let s1 = curve.add(&key.s_id, &curve.mul(&r, &q_m));
        let s2 = curve.mul(&r, &curve.generator().clone());
        SokSignature { s1, s2 }
    }

    /// Verifies `σ` on `msg` for `id`: 3 pairings + 2 MapToPoint.
    pub fn verify(&self, id: &[u8], msg: &[u8], sig: &SokSignature) -> bool {
        let curve = self.group.curve();
        if !curve.is_on_curve(&sig.s1) || !curve.is_on_curve(&sig.s2) {
            return false;
        }
        // Subgroup checks: both components must have order dividing q
        // (mul_raw — a reducing multiply would make this check vacuous).
        if !curve.mul_raw(curve.order(), &sig.s1).is_infinity()
            || !curve.mul_raw(curve.order(), &sig.s2).is_infinity()
        {
            return false;
        }
        let q_id = self.group.map_to_point(id);
        let q_m = self.group.map_to_point(msg);
        // The modified pairing is symmetric, so the two fixed-argument
        // pairings run against cached Miller-line coefficients:
        // ê(S1, G) = ê(G, S1) and ê(Q_ID, P_pub) = ê(P_pub, Q_ID).
        let gen_pre = self
            .gen_pre
            .get_or_init(|| self.group.precompute(curve.generator()));
        let pub_pre = self
            .pub_pre
            .get_or_init(|| self.group.precompute(&self.p_pub));
        let lhs = self.group.pairing_fixed(gen_pre, &sig.s1);
        let rhs = self.group.fp2().mul(
            &self.group.pairing_fixed(pub_pre, &q_id),
            &self.group.pairing(&q_m, &sig.s2),
        );
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    fn pkg() -> SokPkg {
        let mut rng = ChaChaRng::seed_from_u64(0x534f4b);
        let group = egka_ec::gen_pairing_group(&mut rng, 96, 64);
        SokPkg::setup(&mut rng, group)
    }

    #[test]
    fn extraction_is_master_multiple() {
        let pkg = pkg();
        let key = pkg.extract(b"alice");
        // ê(S_ID, G) == ê(Q_ID, P_pub)
        let g = pkg.params.group();
        let gen = g.curve().generator().clone();
        let q_id = g.map_to_point(b"alice");
        assert_eq!(
            g.pairing(&key.s_id, &gen),
            g.pairing(&q_id, &pkg.params.p_pub)
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"round-2 material");
        assert!(pkg.params.verify(b"alice", b"round-2 material", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"m1");
        assert!(!pkg.params.verify(b"alice", b"m2", &sig));
    }

    #[test]
    fn rejects_wrong_identity() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"m");
        assert!(!pkg.params.verify(b"bob", b"m", &sig));
    }

    #[test]
    fn rejects_component_swap() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"m");
        let swapped = SokSignature {
            s1: sig.s2.clone(),
            s2: sig.s1.clone(),
        };
        assert!(!pkg.params.verify(b"alice", b"m", &swapped));
    }

    #[test]
    fn rejects_off_curve_points() {
        let pkg = pkg();
        let bad = SokSignature {
            s1: Point::affine(Ubig::from_u64(1), Ubig::from_u64(2)),
            s2: Point::Infinity,
        };
        assert!(!pkg.params.verify(b"alice", b"m", &bad));
    }

    #[test]
    fn signatures_are_randomized() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let key = pkg.extract(b"alice");
        let s1 = pkg.params.sign(&mut rng, &key, b"m");
        let s2 = pkg.params.sign(&mut rng, &key, b"m");
        assert_ne!(s1, s2);
        assert!(pkg.params.verify(b"alice", b"m", &s1));
        assert!(pkg.params.verify(b"alice", b"m", &s2));
    }

    #[test]
    fn keys_do_not_cross_verify() {
        // A signature by alice's key claimed as bob must fail even though
        // both keys come from the same master.
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let alice = pkg.extract(b"alice");
        let bob = pkg.extract(b"bob");
        assert_ne!(alice.s_id, bob.s_id);
        let sig = pkg.params.sign(&mut rng, &alice, b"m");
        assert!(!pkg.params.verify(b"bob", b"m", &sig));
    }
}
