//! ECDSA (the paper's "160-bit ECDSA" baseline, on secp160r1).
//!
//! Signature `(r, s)` of 2×160 bits (Table 3, note 1); certificates are
//! 86 bytes. Table 2 prices signing at one scalar multiplication (8.8 mJ)
//! and verification at ~1.24 scalar multiplications (10.9 mJ) — our
//! verifier's fused double-scalar multiplication matches that shape.

use egka_bigint::{mod_inverse, mod_mul, Ubig};
use egka_ec::{Curve, Point};
use egka_hash::hash_to_below;
use rand::Rng;

/// Domain tag for message hashing.
const MSG_TAG: &[u8] = b"egka.ecdsa.msg.v1";

/// An ECDSA key pair.
#[derive(Clone, Debug)]
pub struct EcdsaKeyPair {
    /// Secret scalar `d ∈ [1, order)`.
    pub d: Ubig,
    /// Public point `Q = d·G`.
    pub q: Point,
}

/// An ECDSA signature `(r, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcdsaSignature {
    /// `r = x(k·G) mod order`.
    pub r: Ubig,
    /// `s = k⁻¹·(H(m) + d·r) mod order`.
    pub s: Ubig,
}

/// ECDSA over a fixed curve.
#[derive(Clone, Debug)]
pub struct Ecdsa {
    curve: Curve,
}

impl Ecdsa {
    /// Wraps a curve (use [`egka_ec::secp160r1`] for the paper profile).
    pub fn new(curve: Curve) -> Self {
        Ecdsa { curve }
    }

    /// The underlying curve.
    pub fn curve(&self) -> &Curve {
        &self.curve
    }

    pub(crate) fn hash_msg(&self, msg: &[u8]) -> Ubig {
        hash_to_below(MSG_TAG, msg, self.curve.order())
    }

    /// Generates a key pair.
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> EcdsaKeyPair {
        let d = self.curve.random_scalar(rng);
        let q = self.curve.mul_gen(&d);
        EcdsaKeyPair { d, q }
    }

    /// Signs `msg`.
    pub fn sign<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        key: &EcdsaKeyPair,
        msg: &[u8],
    ) -> EcdsaSignature {
        let n = self.curve.order();
        let h = self.hash_msg(msg);
        loop {
            let k = self.curve.random_scalar(rng);
            let kg = self.curve.mul_gen(&k);
            let Some((x, _)) = kg.xy() else { continue };
            let r = x.rem_ref(n);
            if r.is_zero() {
                continue;
            }
            let k_inv = mod_inverse(&k, n).expect("order prime, k != 0");
            let s = mod_mul(&k_inv, &h.add_ref(&mod_mul(&key.d, &r, n)), n);
            if s.is_zero() {
                continue;
            }
            return EcdsaSignature { r, s };
        }
    }

    /// Verifies `(r, s)` on `msg` under public point `q`.
    pub fn verify(&self, q: &Point, msg: &[u8], sig: &EcdsaSignature) -> bool {
        let n = self.curve.order();
        if sig.r.is_zero() || &sig.r >= n || sig.s.is_zero() || &sig.s >= n {
            return false;
        }
        if q.is_infinity() || !self.curve.is_on_curve(q) {
            return false;
        }
        let Some(w) = mod_inverse(&sig.s, n) else {
            return false;
        };
        let h = self.hash_msg(msg);
        let u1 = mod_mul(&h, &w, n);
        let u2 = mod_mul(&sig.r, &w, n);
        // One fused double-scalar multiplication: u1·G + u2·Q.
        let g = self.curve.generator().clone();
        let pt = self.curve.mul_mul_add(&u1, &g, &u2, q);
        match pt.xy() {
            None => false,
            Some((x, _)) => x.rem_ref(n) == sig.r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    fn ecdsa() -> Ecdsa {
        Ecdsa::new(egka_ec::secp160r1())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let kp = e.keygen(&mut rng);
        let sig = e.sign(&mut rng, &kp, b"message");
        assert!(e.verify(&kp.q, b"message", &sig));
    }

    #[test]
    fn rejects_wrong_message_and_key() {
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let kp1 = e.keygen(&mut rng);
        let kp2 = e.keygen(&mut rng);
        let sig = e.sign(&mut rng, &kp1, b"message");
        assert!(!e.verify(&kp1.q, b"other", &sig));
        assert!(!e.verify(&kp2.q, b"message", &sig));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let kp = e.keygen(&mut rng);
        let sig = e.sign(&mut rng, &kp, b"m");
        assert!(!e.verify(&Point::Infinity, b"m", &sig));
        let bad = EcdsaSignature {
            r: Ubig::zero(),
            s: sig.s.clone(),
        };
        assert!(!e.verify(&kp.q, b"m", &bad));
        let bad2 = EcdsaSignature {
            r: sig.r.clone(),
            s: e.curve().order().clone(),
        };
        assert!(!e.verify(&kp.q, b"m", &bad2));
    }

    #[test]
    fn rejects_off_curve_key() {
        let e = ecdsa();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let kp = e.keygen(&mut rng);
        let sig = e.sign(&mut rng, &kp, b"m");
        let off = Point::affine(Ubig::from_u64(1), Ubig::from_u64(1));
        assert!(!e.verify(&off, b"m", &sig));
    }

    #[test]
    fn works_on_larger_curves() {
        for curve in [egka_ec::secp192r1(), egka_ec::secp256k1()] {
            let e = Ecdsa::new(curve);
            let mut rng = ChaChaRng::seed_from_u64(5);
            let kp = e.keygen(&mut rng);
            let sig = e.sign(&mut rng, &kp, b"x");
            assert!(e.verify(&kp.q, b"x", &sig), "{}", e.curve().name);
        }
    }
}
