//! DSA over a Schnorr group (the paper's "1024-bit DSA" baseline).
//!
//! FIPS 186-style: 1024-bit `p`, 160-bit `q`, signature `(r, s)` of 2×160
//! bits (Table 3, note 1). The certificate-based BD baseline signs its
//! round-2 message with this scheme and ships a 263-byte DSA certificate.

use egka_bigint::{mod_inverse, mod_mul, mod_pow, mod_pow_fixed, random_below, SchnorrGroup, Ubig};
use egka_hash::hash_to_below;
use rand::Rng;

/// Domain tag for message hashing.
const MSG_TAG: &[u8] = b"egka.dsa.msg.v1";

/// A DSA key pair over a Schnorr group.
#[derive(Clone, Debug)]
pub struct DsaKeyPair {
    /// Secret exponent `x ∈ [1, q)`.
    pub x: Ubig,
    /// Public key `y = g^x mod p`.
    pub y: Ubig,
}

/// A DSA signature `(r, s)`, both in `[1, q)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaSignature {
    /// `r = (g^k mod p) mod q`.
    pub r: Ubig,
    /// `s = k⁻¹·(H(m) + x·r) mod q`.
    pub s: Ubig,
}

/// DSA over a fixed Schnorr group.
#[derive(Clone, Debug)]
pub struct Dsa {
    group: SchnorrGroup,
}

impl Dsa {
    /// Wraps a (caller-validated) Schnorr group.
    pub fn new(group: SchnorrGroup) -> Self {
        Dsa { group }
    }

    /// The underlying group.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// `H(m) mod q` — DSA's truncated message hash.
    fn hash_msg(&self, msg: &[u8]) -> Ubig {
        hash_to_below(MSG_TAG, msg, &self.group.q)
    }

    /// Generates a key pair.
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> DsaKeyPair {
        let x = loop {
            let x = random_below(rng, &self.group.q);
            if !x.is_zero() {
                break x;
            }
        };
        let y = mod_pow_fixed(&self.group.g, &x, &self.group.p);
        DsaKeyPair { x, y }
    }

    /// Signs `msg` (retries internally on the measure-zero `r = 0` / `s = 0`
    /// degeneracies, per FIPS 186).
    pub fn sign<R: Rng + ?Sized>(&self, rng: &mut R, key: &DsaKeyPair, msg: &[u8]) -> DsaSignature {
        let (p, q, g) = (&self.group.p, &self.group.q, &self.group.g);
        let h = self.hash_msg(msg);
        loop {
            let k = random_below(rng, q);
            if k.is_zero() {
                continue;
            }
            let r = mod_pow_fixed(g, &k, p).rem_ref(q);
            if r.is_zero() {
                continue;
            }
            let k_inv = mod_inverse(&k, q).expect("q prime, k != 0");
            let s = mod_mul(&k_inv, &h.add_ref(&mod_mul(&key.x, &r, q)), q);
            if s.is_zero() {
                continue;
            }
            return DsaSignature { r, s };
        }
    }

    /// Verifies `(r, s)` on `msg` under public key `y`.
    pub fn verify(&self, y: &Ubig, msg: &[u8], sig: &DsaSignature) -> bool {
        let (p, q, g) = (&self.group.p, &self.group.q, &self.group.g);
        if sig.r.is_zero() || &sig.r >= q || sig.s.is_zero() || &sig.s >= q {
            return false;
        }
        let w = match mod_inverse(&sig.s, q) {
            Some(w) => w,
            None => return false,
        };
        let h = self.hash_msg(msg);
        let u1 = mod_mul(&h, &w, q);
        let u2 = mod_mul(&sig.r, &w, q);
        let v = mod_mul(&mod_pow_fixed(g, &u1, p), &mod_pow(y, &u2, p), p).rem_ref(q);
        v == sig.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    /// Small Schnorr group for fast tests.
    fn dsa() -> Dsa {
        let mut rng = ChaChaRng::seed_from_u64(0x445341);
        Dsa::new(egka_bigint::gen_schnorr_group(&mut rng, 256, 96))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let kp = d.keygen(&mut rng);
        let sig = d.sign(&mut rng, &kp, b"message");
        assert!(d.verify(&kp.y, b"message", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let kp = d.keygen(&mut rng);
        let sig = d.sign(&mut rng, &kp, b"message");
        assert!(!d.verify(&kp.y, b"other", &sig));
    }

    #[test]
    fn rejects_wrong_key() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let kp1 = d.keygen(&mut rng);
        let kp2 = d.keygen(&mut rng);
        let sig = d.sign(&mut rng, &kp1, b"message");
        assert!(!d.verify(&kp2.y, b"message", &sig));
    }

    #[test]
    fn rejects_out_of_range_components() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let kp = d.keygen(&mut rng);
        let sig = d.sign(&mut rng, &kp, b"m");
        let bad_r = DsaSignature {
            r: d.group().q.clone(),
            s: sig.s.clone(),
        };
        assert!(!d.verify(&kp.y, b"m", &bad_r));
        let bad_s = DsaSignature {
            r: sig.r.clone(),
            s: Ubig::zero(),
        };
        assert!(!d.verify(&kp.y, b"m", &bad_s));
    }

    #[test]
    fn signatures_are_randomized() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let kp = d.keygen(&mut rng);
        let s1 = d.sign(&mut rng, &kp, b"m");
        let s2 = d.sign(&mut rng, &kp, b"m");
        assert_ne!(s1, s2, "fresh k per signature");
        assert!(d.verify(&kp.y, b"m", &s1) && d.verify(&kp.y, b"m", &s2));
    }

    #[test]
    fn tampered_signature_rejected() {
        let d = dsa();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let kp = d.keygen(&mut rng);
        let mut sig = d.sign(&mut rng, &kp, b"m");
        sig.r = egka_bigint::mod_add(&sig.r, &Ubig::one(), &d.group().q);
        assert!(!d.verify(&kp.y, b"m", &sig));
    }
}
