//! # egka-sig
//!
//! The four signature schemes priced by the paper's Table 2 plus the
//! certificate machinery of its certificate-based baselines:
//!
//! * [`gq`] — the Guillou–Quisquater ID-based variant of paper §3, including
//!   the **aggregate/batch verification** of eq. (2) that powers the
//!   proposed GKA protocol;
//! * [`dsa`] — 1024-bit DSA over a Schnorr group;
//! * [`ecdsa`] — ECDSA over secp160r1 (and any other `egka-ec` curve);
//! * [`sok`] — the Sakai–Ohgishi–Kasahara pairing-based ID-based signature
//!   (2 scalar-mul sign, 3-pairing verify, MapToPoint per identity/message);
//! * [`batch`] — seeded random-linear-combination **epoch batch
//!   verification** for ECDSA and split-form GQ (plus an amortized DSA
//!   batch loop), with lowest-failing-index attribution;
//! * [`certs`] — an X.509-like certificate format, DSA/ECDSA certifying
//!   authorities, and the [`certs::CertStore`] verified-certificate cache
//!   that reproduces the paper's "returning members don't re-verify
//!   certificates" accounting;
//! * [`blame`] — the epoch coordinator's deterministic ECDSA key for
//!   signing eviction blame certificates (`egka-robust`), reproducible bit
//!   for bit across crash recovery.
//!
//! All schemes are built exclusively on the workspace's own substrates
//! (`egka-bigint`, `egka-hash`, `egka-ec`); no external cryptography.
//!
//! ```
//! use egka_ec::secp160r1;
//! use egka_hash::ChaChaRng;
//! use egka_sig::Ecdsa;
//! use rand::SeedableRng;
//!
//! // ECDSA over the paper's 160-bit curve: a good signature verifies,
//! // and verification binds the message.
//! let mut rng = ChaChaRng::seed_from_u64(5);
//! let ecdsa = Ecdsa::new(secp160r1());
//! let keys = ecdsa.keygen(&mut rng);
//! let sig = ecdsa.sign(&mut rng, &keys, b"join round 2");
//! assert!(ecdsa.verify(&keys.q, b"join round 2", &sig));
//! assert!(!ecdsa.verify(&keys.q, b"a different message", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod blame;
pub mod certs;
pub mod dsa;
pub mod ecdsa;
pub mod gq;
pub mod sok;

pub use batch::{
    dsa_batch_verify, ecdsa_batch_verify, gq_batch_verify_split, DsaBatchItem, EcdsaBatchItem,
    GqSplitItem,
};
pub use blame::{BlamePublic, CoordinatorKey};
pub use certs::{
    CaPublic, CaSignature, CertCheck, CertScheme, CertStore, Certificate, CertificateAuthority,
    SubjectKey,
};
pub use dsa::{Dsa, DsaKeyPair, DsaSignature};
pub use ecdsa::{Ecdsa, EcdsaKeyPair, EcdsaSignature};
pub use gq::{GqMasterKey, GqParams, GqPkg, GqSecretKey, GqSignature};
pub use sok::{SokParams, SokPkg, SokSecretKey, SokSignature};
