//! The Guillou–Quisquater ID-based signature variant of paper §3, with the
//! aggregate ("batch") verification of paper eq. (2).
//!
//! ```text
//! Setup:   n = p'·q' (RSA modulus), prime e with gcd(e, Φ(n)) = 1,
//!          d = e⁻¹ mod Φ(n);  params = (n, e, H), master = (p', q', d)
//! Extract: S_ID = H(ID)^d mod n
//! Sign:    τ ∈R Z_n*, t = τ^e, c = H(t, M), s = τ·S_ID^c;  σ = (s, c)
//! Verify:  c == H(s^e · H(ID)^{−c}, M)
//! ```
//!
//! The GKA protocol uses the **split** form: commitments `t_i` are broadcast
//! in Round 1, a *shared* challenge `c = H(∏ t_i, Z)` binds everyone, each
//! user answers with `s_i`, and a single aggregate check
//!
//! ```text
//! c == H((∏ s_i)^e · (∏ H(U_i))^{−c}, Z)          (paper eq. (2))
//! ```
//!
//! replaces `n` individual verifications — that is what makes the proposed
//! protocol's "Sign Ver" row in Table 1 a constant 1.
//!
//! Security parameters follow the paper: 512-bit prime factors (1024-bit
//! `n`), 160-bit challenges, and a prime `e` one bit longer than the
//! challenge (classic GQ requires `e > 2^l` for soundness).

use egka_bigint::{gcd, gen_prime, mod_inverse, mod_mul, mod_pow, random_unit, Ubig};
use egka_hash::{challenge_hash, hash_to_unit};
use rand::Rng;

/// Domain-separation tag for identity hashing.
const ID_TAG: &[u8] = b"egka.gq.id.v1";

/// Public parameters of a GQ instance: `(n, e)` plus the hash conventions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GqParams {
    /// RSA modulus `n = p'·q'`.
    pub n: Ubig,
    /// Public (verification) exponent, a prime with `e > 2^l`.
    pub e: Ubig,
}

/// The PKG's master key.
#[derive(Clone, Debug)]
pub struct GqMasterKey {
    /// First prime factor.
    pub p: Ubig,
    /// Second prime factor.
    pub q: Ubig,
    /// Extraction exponent `d = e⁻¹ mod Φ(n)`.
    pub d: Ubig,
}

/// A user's extracted ID key `S_ID = H(ID)^d mod n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GqSecretKey {
    /// The identity the key was extracted for.
    pub id: Vec<u8>,
    /// `H(ID)^d mod n`.
    pub s_id: Ubig,
}

/// A GQ signature `σ = (s, c)`.
///
/// Wire size (paper Table 3, note 3): `|s| = 1024` bits, `|c| = 160` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GqSignature {
    /// Response `s = τ·S_ID^c mod n`.
    pub s: Ubig,
    /// Challenge `c = H(t, M)`.
    pub c: Ubig,
}

/// A GQ private-key-generator (paper's PKG for the proposed protocol).
#[derive(Clone, Debug)]
pub struct GqPkg {
    /// Public parameters.
    pub params: GqParams,
    master: GqMasterKey,
}

impl GqPkg {
    /// Runs Setup with `factor_bits`-bit prime factors (paper: 512) and a
    /// `challenge_bits + 1`-bit prime `e` (paper: l = 160 ⇒ 161-bit `e`).
    pub fn setup<R: Rng + ?Sized>(rng: &mut R, factor_bits: u32) -> Self {
        Self::setup_with_e_bits(rng, factor_bits, 161)
    }

    /// Setup with an explicit `e` size (smaller values make unit tests with
    /// toy moduli possible; `e` must stay above the challenge space for real
    /// deployments).
    pub fn setup_with_e_bits<R: Rng + ?Sized>(rng: &mut R, factor_bits: u32, e_bits: u32) -> Self {
        loop {
            let p = gen_prime(rng, factor_bits);
            let q = gen_prime(rng, factor_bits);
            if p == q {
                continue;
            }
            let n = p.mul_ref(&q);
            let phi = p
                .checked_sub(&Ubig::one())
                .unwrap()
                .mul_ref(&q.checked_sub(&Ubig::one()).unwrap());
            // Prime e coprime to Φ(n); d = e⁻¹ mod Φ(n).
            let e = loop {
                let cand = gen_prime(rng, e_bits);
                if gcd(&cand, &phi).is_one() {
                    break cand;
                }
            };
            let d = mod_inverse(&e, &phi).expect("e coprime to phi");
            return GqPkg {
                params: GqParams { n, e },
                master: GqMasterKey { p, q, d },
            };
        }
    }

    /// Rebuilds a PKG from its prime factors and public exponent (used by
    /// pinned parameter fixtures).
    ///
    /// # Panics
    /// Panics if `e` is not invertible modulo `Φ(p·q)`. Primality of the
    /// factors is the caller's responsibility (fixture tests re-validate).
    pub fn from_master(p: Ubig, q: Ubig, e: Ubig) -> Self {
        let n = p.mul_ref(&q);
        let phi = p
            .checked_sub(&Ubig::one())
            .unwrap()
            .mul_ref(&q.checked_sub(&Ubig::one()).unwrap());
        let d = mod_inverse(&e, &phi).expect("fixture e must be a unit mod phi");
        GqPkg {
            params: GqParams { n, e },
            master: GqMasterKey { p, q, d },
        }
    }

    /// Extracts the ID key `S_ID = H(ID)^d mod n` (paper's Extract).
    pub fn extract(&self, id: &[u8]) -> GqSecretKey {
        let h = self.params.hash_id(id);
        GqSecretKey {
            id: id.to_vec(),
            s_id: mod_pow(&h, &self.master.d, &self.params.n),
        }
    }

    /// The master key (exposed for tests of the `d·e ≡ 1` invariant).
    pub fn master(&self) -> &GqMasterKey {
        &self.master
    }
}

impl GqParams {
    /// Full-domain identity hash `H : {0,1}* → Z_n^*`.
    pub fn hash_id(&self, id: &[u8]) -> Ubig {
        hash_to_unit(ID_TAG, id, &self.n)
    }

    /// The `l = 160`-bit challenge `c = H(t, m)` used by Sign/Verify.
    pub fn challenge(&self, t: &Ubig, msg: &[u8]) -> Ubig {
        challenge_hash(&[&t.to_bytes_be(), msg])
    }

    /// Signs `msg` under `key` (paper's Sign).
    pub fn sign<R: Rng + ?Sized>(&self, rng: &mut R, key: &GqSecretKey, msg: &[u8]) -> GqSignature {
        let tau = random_unit(rng, &self.n);
        let t = mod_pow(&tau, &self.e, &self.n);
        let c = self.challenge(&t, msg);
        let s = mod_mul(&tau, &mod_pow(&key.s_id, &c, &self.n), &self.n);
        GqSignature { s, c }
    }

    /// Verifies `σ = (s, c)` on `msg` for identity `id` (paper's Verify):
    /// recomputes `t' = s^e · H(ID)^{−c}` and checks `c == H(t', msg)`.
    pub fn verify(&self, id: &[u8], msg: &[u8], sig: &GqSignature) -> bool {
        if sig.s.is_zero() || sig.s >= self.n {
            return false;
        }
        let h = self.hash_id(id);
        let t = match self.recover_commitment(&[h], &sig.s, &sig.c) {
            Some(t) => t,
            None => return false,
        };
        self.challenge(&t, msg) == sig.c
    }

    /// `s^e · (∏ h_i)^{−c} mod n` — the commitment-recovery core shared by
    /// single and aggregate verification. Returns `None` if the identity
    /// product is not invertible (cannot happen for honest hashes).
    fn recover_commitment(&self, id_hashes: &[Ubig], s: &Ubig, c: &Ubig) -> Option<Ubig> {
        let mut h_prod = Ubig::one();
        for h in id_hashes {
            h_prod = mod_mul(&h_prod, h, &self.n);
        }
        let h_inv = mod_inverse(&h_prod, &self.n)?;
        let se = mod_pow(s, &self.e, &self.n);
        let hc = mod_pow(&h_inv, c, &self.n);
        Some(mod_mul(&se, &hc, &self.n))
    }

    // ----- split API used by the GKA protocol -----

    /// Round-1 commitment: samples `τ` and returns `(τ, t = τ^e)`.
    pub fn commit<R: Rng + ?Sized>(&self, rng: &mut R) -> (Ubig, Ubig) {
        let tau = random_unit(rng, &self.n);
        let t = mod_pow(&tau, &self.e, &self.n);
        (tau, t)
    }

    /// The protocol's shared challenge `c = H(T, Z)` where `T = ∏ t_i mod n`
    /// and `bind` is the protocol binding (the paper's `Z`).
    pub fn shared_challenge(&self, t_agg: &Ubig, bind: &[u8]) -> Ubig {
        challenge_hash(&[&t_agg.to_bytes_be(), bind])
    }

    /// Round-2 response `s = τ·S_ID^c mod n`.
    pub fn respond(&self, key: &GqSecretKey, tau: &Ubig, c: &Ubig) -> Ubig {
        mod_mul(tau, &mod_pow(&key.s_id, c, &self.n), &self.n)
    }

    /// Aggregates commitments: `T = ∏ t_i mod n`.
    pub fn aggregate_commitments(&self, ts: &[Ubig]) -> Ubig {
        ts.iter()
            .fold(Ubig::one(), |acc, t| mod_mul(&acc, t, &self.n))
    }

    /// The paper's batch verification (eq. (2)): checks
    /// `c == H((∏ s_i)^e · (∏ H(U_i))^{−c}, bind)`.
    ///
    /// Costs two modular exponentiations regardless of the number of
    /// signers — this is the row that makes the proposed scheme's Table 1
    /// column constant.
    pub fn aggregate_verify(
        &self,
        ids: &[&[u8]],
        responses: &[Ubig],
        c: &Ubig,
        bind: &[u8],
    ) -> bool {
        if ids.is_empty() || ids.len() != responses.len() {
            return false;
        }
        let mut s_prod = Ubig::one();
        for s in responses {
            if s.is_zero() || s >= &self.n {
                return false;
            }
            s_prod = mod_mul(&s_prod, s, &self.n);
        }
        let id_hashes: Vec<Ubig> = ids.iter().map(|id| self.hash_id(id)).collect();
        let t = match self.recover_commitment(&id_hashes, &s_prod, c) {
            Some(t) => t,
            None => return false,
        };
        &self.shared_challenge(&t, bind) == c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egka_hash::ChaChaRng;
    use rand::SeedableRng;

    /// Toy-sized PKG shared across tests (128-bit factors, 41-bit e so the
    /// soundness margin still exceeds nothing — fine for functional tests).
    fn pkg() -> GqPkg {
        let mut rng = ChaChaRng::seed_from_u64(0x4751);
        GqPkg::setup_with_e_bits(&mut rng, 128, 41)
    }

    #[test]
    fn master_key_inverts_e() {
        let pkg = pkg();
        let phi = pkg
            .master()
            .p
            .checked_sub(&Ubig::one())
            .unwrap()
            .mul_ref(&pkg.master().q.checked_sub(&Ubig::one()).unwrap());
        assert_eq!(mod_mul(&pkg.params.e, &pkg.master().d, &phi), Ubig::one());
    }

    #[test]
    fn extraction_satisfies_gq_identity() {
        // S_ID^e == H(ID) mod n
        let pkg = pkg();
        let key = pkg.extract(b"alice");
        let lhs = mod_pow(&key.s_id, &pkg.params.e, &pkg.params.n);
        assert_eq!(lhs, pkg.params.hash_id(b"alice"));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(1);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"hello group");
        assert!(pkg.params.verify(b"alice", b"hello group", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(2);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"msg");
        assert!(!pkg.params.verify(b"alice", b"other msg", &sig));
    }

    #[test]
    fn verify_rejects_wrong_identity() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(3);
        let key = pkg.extract(b"alice");
        let sig = pkg.params.sign(&mut rng, &key, b"msg");
        assert!(!pkg.params.verify(b"bob", b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(4);
        let key = pkg.extract(b"alice");
        let mut sig = pkg.params.sign(&mut rng, &key, b"msg");
        sig.s = mod_mul(&sig.s, &Ubig::from_u64(2), &pkg.params.n);
        assert!(!pkg.params.verify(b"alice", b"msg", &sig));
    }

    #[test]
    fn verify_rejects_out_of_range_s() {
        let pkg = pkg();
        let sig = GqSignature {
            s: pkg.params.n.clone(),
            c: Ubig::from_u64(1),
        };
        assert!(!pkg.params.verify(b"alice", b"msg", &sig));
        let sig0 = GqSignature {
            s: Ubig::zero(),
            c: Ubig::from_u64(1),
        };
        assert!(!pkg.params.verify(b"alice", b"msg", &sig0));
    }

    #[test]
    fn aggregate_verify_accepts_honest_group() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(5);
        let ids: Vec<Vec<u8>> = (0..8u32)
            .map(|i| format!("user-{i}").into_bytes())
            .collect();
        let keys: Vec<GqSecretKey> = ids.iter().map(|id| pkg.extract(id)).collect();
        let bind = b"protocol binding Z";

        // Round 1: commitments.
        let mut taus = Vec::new();
        let mut ts = Vec::new();
        for _ in &ids {
            let (tau, t) = pkg.params.commit(&mut rng);
            taus.push(tau);
            ts.push(t);
        }
        let t_agg = pkg.params.aggregate_commitments(&ts);
        let c = pkg.params.shared_challenge(&t_agg, bind);
        // Round 2: responses.
        let responses: Vec<Ubig> = keys
            .iter()
            .zip(&taus)
            .map(|(k, tau)| pkg.params.respond(k, tau, &c))
            .collect();
        let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
        assert!(pkg.params.aggregate_verify(&id_refs, &responses, &c, bind));
    }

    #[test]
    fn aggregate_verify_rejects_one_bad_response() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(6);
        let ids: Vec<Vec<u8>> = (0..4u32)
            .map(|i| format!("user-{i}").into_bytes())
            .collect();
        let keys: Vec<GqSecretKey> = ids.iter().map(|id| pkg.extract(id)).collect();
        let bind = b"Z";
        let mut taus = Vec::new();
        let mut ts = Vec::new();
        for _ in &ids {
            let (tau, t) = pkg.params.commit(&mut rng);
            taus.push(tau);
            ts.push(t);
        }
        let c = pkg
            .params
            .shared_challenge(&pkg.params.aggregate_commitments(&ts), bind);
        let mut responses: Vec<Ubig> = keys
            .iter()
            .zip(&taus)
            .map(|(k, tau)| pkg.params.respond(k, tau, &c))
            .collect();
        // Corrupt user 2's response.
        responses[2] = mod_mul(&responses[2], &Ubig::from_u64(3), &pkg.params.n);
        let id_refs: Vec<&[u8]> = ids.iter().map(|v| v.as_slice()).collect();
        assert!(!pkg.params.aggregate_verify(&id_refs, &responses, &c, bind));
    }

    #[test]
    fn aggregate_verify_rejects_wrong_binding() {
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(7);
        let ids = [b"a".as_slice(), b"b".as_slice()];
        let keys: Vec<GqSecretKey> = ids.iter().map(|id| pkg.extract(id)).collect();
        let mut taus = Vec::new();
        let mut ts = Vec::new();
        for _ in ids {
            let (tau, t) = pkg.params.commit(&mut rng);
            taus.push(tau);
            ts.push(t);
        }
        let c = pkg
            .params
            .shared_challenge(&pkg.params.aggregate_commitments(&ts), b"bind-1");
        let responses: Vec<Ubig> = keys
            .iter()
            .zip(&taus)
            .map(|(k, tau)| pkg.params.respond(k, tau, &c))
            .collect();
        assert!(!pkg.params.aggregate_verify(&ids, &responses, &c, b"bind-2"));
    }

    #[test]
    fn aggregate_verify_rejects_shape_mismatch() {
        let pkg = pkg();
        assert!(!pkg.params.aggregate_verify(&[], &[], &Ubig::one(), b""));
        assert!(!pkg
            .params
            .aggregate_verify(&[b"a".as_slice()], &[], &Ubig::one(), b""));
    }

    /// Security note made concrete (see DESIGN.md §security-notes): the
    /// paper's Leave/Partition protocols let a member answer a *fresh*
    /// challenge with its *old* commitment τ. Two responses under one τ
    /// fully leak the ID key: with `s = τ·S^c`, `s̄ = τ·S^c̄`,
    /// `s/s̄ = S^{c−c̄}`; since `e` is prime and `0 < c−c̄ < e`, extended
    /// Euclid gives `a(c−c̄) = 1 + t·e`, so
    /// `S = (s/s̄)^a · H(ID)^{−t}` — everything on the right is public.
    #[test]
    fn tau_reuse_recovers_secret_key() {
        let pkg = pkg();
        let params = &pkg.params;
        let key = pkg.extract(b"victim");
        let mut rng = ChaChaRng::seed_from_u64(9);
        // One commitment, two different challenges (exactly what a Leave
        // following the initial GKA produces for an even-indexed member).
        let (tau, _t) = params.commit(&mut rng);
        let c1 = params.shared_challenge(&Ubig::from_u64(111), b"session-1");
        let c2 = params.shared_challenge(&Ubig::from_u64(222), b"session-2");
        assert_ne!(c1, c2);
        let s1 = params.respond(&key, &tau, &c1);
        let s2 = params.respond(&key, &tau, &c2);

        // Attacker's computation, using only public values and (s1, s2).
        let (hi, lo) = if c1 > c2 { (&c1, &c2) } else { (&c2, &c1) };
        let (s_hi, s_lo) = if c1 > c2 { (&s1, &s2) } else { (&s2, &s1) };
        let dc = hi.checked_sub(lo).unwrap();
        // s_hi / s_lo = S^dc mod n
        let s_dc = mod_mul(
            s_hi,
            &egka_bigint::mod_inverse(s_lo, &params.n).unwrap(),
            &params.n,
        );
        // a·dc ≡ 1 (mod e)  ⇒  a·dc = 1 + t·e
        let a = egka_bigint::mod_inverse(&dc, &params.e).expect("e prime, 0 < dc < e");
        let t = a
            .mul_ref(&dc)
            .checked_sub(&Ubig::one())
            .unwrap()
            .div_rem(&params.e)
            .0;
        // S = (S^dc)^a · H^{−t}
        let h = params.hash_id(b"victim");
        let h_inv = egka_bigint::mod_inverse(&h, &params.n).unwrap();
        let recovered = mod_mul(
            &mod_pow(&s_dc, &a, &params.n),
            &mod_pow(&h_inv, &t, &params.n),
            &params.n,
        );
        assert_eq!(recovered, key.s_id, "full ID-key recovery from τ reuse");
    }

    #[test]
    fn single_signature_is_special_case_of_aggregate() {
        // A 1-party "aggregate" with the shared challenge equals the plain
        // scheme with bind as message.
        let pkg = pkg();
        let mut rng = ChaChaRng::seed_from_u64(8);
        let key = pkg.extract(b"solo");
        let (tau, t) = pkg.params.commit(&mut rng);
        let c = pkg.params.shared_challenge(&t, b"bind");
        let s = pkg.params.respond(&key, &tau, &c);
        assert!(pkg
            .params
            .aggregate_verify(&[b"solo".as_slice()], &[s], &c, b"bind"));
    }
}
